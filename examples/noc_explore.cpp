// NoC exploration: the paper's non-expert workflow end to end.
//
// 1. characterize a few random samples of the VC-router space,
// 2. estimate hints from them (HintEstimator = "synthesizing 80 designs and
//    observing trends", paper section 4.1),
// 3. run guided queries for two different goals and print the winners.

#include <cstdio>
#include <iostream>

#include "core/hint_estimator.hpp"
#include "exp/experiment.hpp"
#include "noc/router_generator.hpp"

using namespace nautilus;
using ip::Metric;

int main()
{
    std::puts("== NoC router exploration (non-expert guided) ==\n");
    const noc::RouterGenerator gen;
    std::printf("IP: %s, %zu parameters, %.0f configurations\n", gen.name().c_str(),
                gen.space().size(), gen.space().cardinality());

    // Estimate hints for the frequency metric from 80 random samples.
    const HintEstimator estimator;
    const HintSet freq_hints =
        estimator.estimate(gen.space(), gen.metric_eval(Metric::freq_mhz));
    std::puts("\nestimated frequency hints (importance / bias):");
    for (std::size_t i = 0; i < gen.space().size(); ++i) {
        const ParamHints& h = freq_hints.param(i);
        std::printf("  %-16s %5.1f  %s\n", gen.space()[i].name.c_str(), h.importance,
                    h.bias ? std::to_string(*h.bias).c_str() : "--");
    }

    // Query 1: fastest router.
    {
        exp::ExperimentConfig cfg;
        cfg.runs = 10;
        exp::Experiment e{gen,
                          exp::Query::simple("max-freq", Metric::freq_mhz,
                                             Direction::maximize),
                          cfg};
        e.add_engine({"baseline", GuidanceLevel::none, std::nullopt, std::nullopt});
        e.add_engine({"nautilus", GuidanceLevel::strong, freq_hints, std::nullopt});
        const auto r = e.run();
        std::printf("\nmax-frequency query (10 runs):\n");
        for (const auto& er : r.engines)
            std::printf("  %-10s mean best %.1f MHz\n", er.spec.label.c_str(),
                        er.curve.mean_final_best());
    }

    // Query 2: best area-delay tradeoff with a single guided run; print the
    // chosen microarchitecture.
    {
        const exp::Query q =
            exp::Query::simple("min-adp", Metric::area_delay_product, Direction::minimize);
        const HintSet adp_hints = exp::query_hints(gen, q);  // author hints, folded
        GaConfig cfg;
        cfg.seed = 7;
        HintSet strong = adp_hints;
        strong.set_confidence(guidance_confidence(GuidanceLevel::strong, 0.0));
        const GaEngine engine{gen.space(), cfg, q.direction, exp::query_eval(gen, q),
                              strong};
        const RunResult r = engine.run();
        const noc::RouterConfig winner = noc::decode_router(gen.space(), r.best_genome);
        std::printf("\nbest area-delay router found (%zu synthesis jobs):\n  %s\n",
                    r.distinct_evals, winner.to_string().c_str());
        std::printf("  area-delay product: %.0f ns*LUTs\n", r.best_eval.value);
    }
    return 0;
}
