// Quickstart: tune a tiny custom IP with the baseline GA and with Nautilus.
//
// Shows the minimum integration surface: define a parameter space, provide
// an evaluation function, optionally attach author hints, and run.

#include <cstdio>

#include "core/ga.hpp"
#include "core/nautilus.hpp"

using namespace nautilus;

int main()
{
    std::puts("== Nautilus quickstart ==\n");

    // 1. Describe the IP's parameters (a toy FIR filter generator).
    ParameterSpace space;
    space.add("taps", ParamDomain::int_range(4, 64, 4), "number of filter taps");
    space.add("coeff_width", ParamDomain::int_range(8, 24, 2), "coefficient bits");
    space.add("parallelism", ParamDomain::pow2(0, 4), "samples per cycle");
    space.add("symmetric", ParamDomain::boolean(), "exploit coefficient symmetry");

    // 2. Provide the evaluation function (here: a made-up area model; in
    //    real use this launches synthesis or looks up a characterization).
    const EvalFn area_luts = [&](const Genome& g) {
        const double taps = g.numeric_value(space, 0);
        const double width = g.numeric_value(space, 1);
        const double par = g.numeric_value(space, 2);
        const bool symmetric = g.gene(3) == 1;
        double luts = taps * width * par * 0.9;
        if (symmetric) luts *= 0.55;  // symmetric filters halve the multipliers
        return Evaluation{true, luts + 120.0};
    };

    // 3. Run the baseline GA (the paper's configuration is the default:
    //    population 10, mutation rate 0.1, 80 generations).
    GaConfig config;
    config.seed = 42;
    const GaEngine baseline{space, config, Direction::minimize, area_luts,
                            HintSet::none(space)};
    const RunResult base = baseline.run();
    std::printf("baseline GA:   best %7.0f LUTs after %3zu distinct evaluations\n",
                base.best_eval.value, base.distinct_evals);
    std::printf("               %s\n", base.best_genome.to_string(space).c_str());

    // 4. Attach author hints and run Nautilus.  Bias is authored in metric
    //    orientation: "+" means increasing the parameter increases area.
    HintSet hints = HintSet::none(space);
    hints.param(0).importance = 80.0;
    hints.param(0).bias = 0.8;   // more taps -> more area
    hints.param(1).importance = 60.0;
    hints.param(1).bias = 0.6;   // wider coefficients -> more area
    hints.param(2).importance = 70.0;
    hints.param(2).bias = 0.7;   // more parallelism -> more area
    hints.param(3).importance = 40.0;
    hints.param(3).bias = -0.5;  // symmetry -> less area

    const NautilusEngine guided{space,  config,           Direction::minimize,
                                area_luts, hints, GuidanceLevel::strong};
    const RunResult nat = guided.run();
    std::printf("nautilus:      best %7.0f LUTs after %3zu distinct evaluations\n",
                nat.best_eval.value, nat.distinct_evals);
    std::printf("               %s\n", nat.best_genome.to_string(space).c_str());

    // 5. Compare the evaluation cost to reach the baseline's final quality.
    const auto guided_cost = nat.curve.evals_to_reach(base.best_eval.value);
    if (guided_cost)
        std::printf("\nnautilus matched the baseline's final quality after only %.0f"
                    " evaluations\n(each evaluation = one synthesis job in real use).\n",
                    *guided_cost);
    return 0;
}
