// Constrained search: "maximize frequency subject to an area budget".
//
// Demonstrates the paper's fitness-constraint mechanism (section 2): hard
// constraints mark violating points infeasible; penalty constraints keep a
// gradient back into the budget.  Compares both modes under tight and loose
// LUT budgets on the VC router.

#include <cstdio>

#include "core/nautilus.hpp"
#include "exp/constraint.hpp"
#include "exp/query.hpp"
#include "noc/router_generator.hpp"

using namespace nautilus;
using ip::Metric;

int main()
{
    std::puts("== Constrained search: max frequency under a LUT budget ==\n");
    const noc::RouterGenerator gen;
    const ip::Dataset ds = ip::Dataset::enumerate(gen);

    const HintSet author = exp::query_hints(
        gen, exp::Query::simple("f", Metric::freq_mhz, Direction::maximize));

    for (double budget : {6000.0, 1500.0}) {
        const std::vector<exp::Constraint> constraints{
            {Metric::area_luts, exp::Constraint::Bound::upper, budget}};
        const double rate = exp::constraint_satisfaction_rate(ds, constraints);
        std::printf("budget: area_luts <= %.0f  (%.1f%% of the space qualifies)\n", budget,
                    rate * 100.0);

        for (const auto mode : {exp::ConstraintMode::hard, exp::ConstraintMode::penalty}) {
            const EvalFn eval = exp::constrained_eval(gen, Metric::freq_mhz,
                                                      Direction::maximize, constraints,
                                                      mode);
            GaConfig cfg;
            cfg.seed = 31;
            HintSet hints = author;
            hints.set_confidence(guidance_confidence(GuidanceLevel::strong, 0.0));
            const GaEngine engine{gen.space(), cfg, Direction::maximize, eval, hints};
            const RunResult r = engine.run();

            // Verify the winner against the raw metrics.
            const auto mv = gen.evaluate(r.best_genome);
            const bool within = mv.get(Metric::area_luts) <= budget;
            std::printf("  %-8s best %6.1f MHz at %6.0f LUTs (%s, %zu evals)\n",
                        mode == exp::ConstraintMode::hard ? "hard" : "penalty",
                        mv.get(Metric::freq_mhz), mv.get(Metric::area_luts),
                        within ? "within budget" : "VIOLATES budget", r.distinct_evals);
        }
        std::puts("");
    }
    std::puts("note: the hard mode is the paper's 'assign very low scores to regions\n"
              "that should be avoided'; penalty mode trades strictness for a smoother\n"
              "landscape when the feasible region is small.");
    return 0;
}
