// Pareto tradeoffs: mapping the area/throughput frontier of the FFT IP
// with a handful of guided queries.
//
// Shows the multi-objective utilities: true front extraction from a
// characterized dataset, weighted-sum scalarization, and front-quality
// metrics (hypervolume, coverage).

#include <cstdio>
#include <iostream>

#include "core/nsga2.hpp"
#include "core/pareto.hpp"
#include "exp/query.hpp"
#include "exp/series.hpp"
#include "fft/fft_generator.hpp"
#include "ip/dataset.hpp"

using namespace nautilus;
using ip::Metric;

int main()
{
    std::puts("== Pareto tradeoffs: FFT area vs throughput ==\n");
    const fft::FftGenerator gen{synth::FpgaTech::virtex6_lx760t(), /*measure_snr=*/false};
    const ip::Dataset ds = ip::Dataset::enumerate(gen);

    const std::vector<Direction> dirs{Direction::minimize, Direction::maximize};
    std::vector<ObjectivePoint> points;
    for (std::size_t i = 0; i < ds.size(); ++i) {
        const auto& e = ds.entry(i);
        if (!e.values.feasible) continue;
        points.push_back({i,
                          {e.values.get(Metric::area_luts),
                           e.values.get(Metric::throughput_msps)}});
    }

    const auto front = pareto_front(points, dirs);
    std::printf("feasible designs: %zu; Pareto-optimal: %zu\n\n", points.size(),
                front.size());

    std::puts("the area/throughput frontier (every point is a distinct FFT config):");
    exp::ScatterGroup cloud{"dominated", '.', {}};
    exp::ScatterGroup frontier{"pareto-optimal", 'O', {}};
    for (std::size_t i = 0; i < points.size(); i += 7)
        cloud.points.push_back({points[i].values[0], points[i].values[1]});
    for (std::size_t idx : front)
        frontier.points.push_back({points[idx].values[0], points[idx].values[1]});
    exp::ScatterOptions opts;
    opts.log_x = true;
    opts.log_y = true;
    exp::print_scatter(std::cout, "throughput vs area", "Area (LUTs)",
                       "Throughput (MSPS)", {cloud, frontier}, opts);

    std::puts("\nknee-point picks along the frontier:");
    for (std::size_t idx : {front.front(), front[front.size() / 2], front.back()}) {
        const auto& p = points[idx];
        const auto cfg = fft::decode_fft(gen.space(), ds.entry(p.tag).genome);
        std::printf("  %7.0f LUTs -> %7.0f MSPS   %s\n", p.values[0], p.values[1],
                    cfg.to_string().c_str());
    }

    // In real use the dataset does not exist yet -- map the same frontier
    // with the multi-objective GA instead of enumerating 18,900 designs.
    const MultiEvalFn eval = [&gen](const Genome& g) -> std::optional<std::vector<double>> {
        const auto mv = gen.evaluate(g);
        if (!mv.feasible) return std::nullopt;
        return std::vector<double>{mv.get(Metric::area_luts),
                                   mv.get(Metric::throughput_msps)};
    };
    MultiObjectiveConfig cfg;
    cfg.generations = 50;
    cfg.seed = 12;
    const Nsga2Engine nsga2{gen.space(), cfg, dirs, eval, HintSet::none(gen.space())};
    const MultiObjectiveResult searched = nsga2.run();
    std::printf("\nNSGA-II found a %zu-point front with only %zu synthesis jobs\n",
                searched.front.size(), searched.distinct_evals);
    std::vector<ObjectivePoint> approx;
    for (const auto& p : searched.front) approx.push_back({0, p.values});
    std::vector<ObjectivePoint> truth;
    for (std::size_t idx : front) truth.push_back(points[idx]);
    std::printf("covering %.0f%% of the enumerated frontier.\n",
                100.0 * front_coverage(approx, truth, dirs));
    return 0;
}
