// FFT exploration: expert-guided tuning of a Spiral-style FFT generator.
//
// Uses the generator's shipped (expert) hints to answer two realistic
// queries -- a LUT budget search and a throughput-efficiency search -- and
// inspects the SNR of the chosen fixed-point configuration by actually
// running the quantized transform.

#include <cstdio>

#include "core/nautilus.hpp"
#include "exp/query.hpp"
#include "fft/fft_generator.hpp"

using namespace nautilus;
using ip::Metric;

int main()
{
    std::puts("== FFT generator exploration (expert-guided) ==\n");
    const fft::FftGenerator gen;  // SNR measurement enabled
    std::printf("IP: %s, %zu parameters, %.0f configurations\n", gen.name().c_str(),
                gen.space().size(), gen.space().cardinality());

    GaConfig cfg;
    cfg.seed = 99;

    // Query 1: cheapest feasible FFT.
    {
        const exp::Query q =
            exp::Query::simple("min-luts", Metric::area_luts, Direction::minimize);
        HintSet hints = exp::query_hints(gen, q);
        hints.set_confidence(guidance_confidence(GuidanceLevel::strong, 0.0));
        const GaEngine engine{gen.space(), cfg, q.direction, exp::query_eval(gen, q),
                              hints};
        const RunResult r = engine.run();
        const fft::FftConfig winner = fft::decode_fft(gen.space(), r.best_genome);
        std::printf("\nsmallest FFT found (%zu synthesis jobs): %.0f LUTs\n  %s\n",
                    r.distinct_evals, r.best_eval.value, winner.to_string().c_str());
    }

    // Query 2: best throughput per LUT, then report the winner's full
    // characterization including measured SNR.
    {
        const exp::Query q = exp::Query::simple("max-tput-per-lut",
                                                Metric::throughput_per_lut,
                                                Direction::maximize);
        HintSet hints = exp::query_hints(gen, q);
        hints.set_confidence(guidance_confidence(GuidanceLevel::strong, 0.0));
        const GaEngine engine{gen.space(), cfg, q.direction, exp::query_eval(gen, q),
                              hints};
        const RunResult r = engine.run();
        const fft::FftConfig winner = fft::decode_fft(gen.space(), r.best_genome);
        const auto mv = gen.evaluate(r.best_genome);
        std::printf("\nmost efficient FFT found (%zu synthesis jobs):\n  %s\n",
                    r.distinct_evals, winner.to_string().c_str());
        std::printf("  %.0f LUTs, %.0f MHz, %.0f MSPS, %.3f MSPS/LUT, SNR %.1f dB\n",
                    mv.get(Metric::area_luts), mv.get(Metric::freq_mhz),
                    mv.get(Metric::throughput_msps), mv.get(Metric::throughput_per_lut),
                    mv.get(Metric::snr_db));

        // Demonstrate the functional substrate directly: rerun the winner's
        // fixed-point transform and report its error profile.
        fft::FixedFftConfig fc;
        fc.n = winner.n();
        fc.data_width = winner.data_width;
        fc.twiddle_width = winner.twiddle_width;
        fc.scaling = winner.scaling;
        std::printf("  re-measured SNR over fresh inputs: %.1f dB\n",
                    fft::measure_snr_db(fc, /*seed=*/123, /*trials=*/4));
    }
    return 0;
}
