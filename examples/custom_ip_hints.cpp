// Author-side integration: packaging hints with a custom IP generator.
//
// Implements a small "crossbar switch" IP generator with author hints for
// two metrics, shows composite-metric hint merging, and compares the
// author's hints against what a non-expert would estimate from samples --
// the two hint-provenance modes of the paper's evaluation.

#include <cmath>
#include <cstdio>

#include "core/hint_estimator.hpp"
#include "exp/experiment.hpp"
#include "ip/ip_generator.hpp"

using namespace nautilus;
using ip::Metric;

namespace {

// A parameterized crossbar generator with an analytic cost model.
class CrossbarGenerator final : public ip::IpGenerator {
public:
    CrossbarGenerator()
    {
        space_.add("ports", ParamDomain::int_range(2, 16), "endpoints switched");
        space_.add("width", ParamDomain::pow2(3, 8), "datapath bits");
        space_.add("registered", ParamDomain::boolean(), "register the outputs");
        space_.add("arbiter", ParamDomain::categorical({"fixed", "rr", "matrix"}, true),
                   "arbitration scheme (ordered by cost)");
    }

    std::string name() const override { return "crossbar"; }
    const ParameterSpace& space() const override { return space_; }
    std::vector<Metric> metrics() const override
    {
        return {Metric::area_luts, Metric::freq_mhz};
    }
    ip::MetricValues evaluate(const Genome& g) const override
    {
        const double p = g.numeric_value(space_, 0);
        const double w = g.numeric_value(space_, 1);
        const bool registered = g.gene(2) == 1;
        const double arb = 1.0 + 0.4 * g.gene(3);
        ip::MetricValues mv;
        mv.set(Metric::area_luts, p * p * w * 0.4 * arb + (registered ? p * w : 0.0));
        const double depth = 2.0 + std::log2(p) + 0.5 * g.gene(3);
        mv.set(Metric::freq_mhz, 1000.0 / (1.0 + depth * (registered ? 0.45 : 0.8)));
        return mv;
    }

    // The author knows the model: quadratic port cost, linear width cost.
    HintSet author_hints(Metric m) const override
    {
        HintSet h = HintSet::none(space_);
        if (m == Metric::area_luts) {
            h.param(0).importance = 95.0;
            h.param(0).bias = 0.9;
            h.param(1).importance = 70.0;
            h.param(1).bias = 0.7;
            h.param(3).importance = 30.0;
            h.param(3).bias = 0.4;
        }
        if (m == Metric::freq_mhz) {
            h.param(2).importance = 80.0;
            h.param(2).bias = 0.8;  // registering outputs speeds the clock
            h.param(0).importance = 60.0;
            h.param(0).bias = -0.5;
            h.param(3).importance = 30.0;
            h.param(3).bias = -0.4;
        }
        return h;
    }

private:
    ParameterSpace space_;
};

}  // namespace

int main()
{
    std::puts("== Author-side hint packaging for a custom IP ==\n");
    const CrossbarGenerator gen;

    // Composite query: merge the author's area and frequency hints.
    exp::Query q = exp::Query::simple("min-area-delay", Metric::area_delay_product,
                                      Direction::minimize);
    q.hint_components = {{Metric::area_luts, Direction::minimize, 0.5},
                         {Metric::freq_mhz, Direction::maximize, 0.5}};
    // area_delay_product is derivable from area + freq:
    // the generator's evaluate() does not publish it, so derive via a query
    // on area with folded frequency hints would lose information; instead we
    // extend the evaluation through derive_composites in a tiny adapter.
    const EvalFn adp_eval = [&gen](const Genome& g) -> Evaluation {
        ip::MetricValues mv = gen.evaluate(g);
        ip::derive_composites(mv);
        if (!mv.feasible || !mv.has(Metric::area_delay_product)) return {false, 0.0};
        return {true, mv.get(Metric::area_delay_product)};
    };

    const HintSet merged = exp::query_hints(gen, q);
    std::puts("merged composite hints (objective orientation):");
    for (std::size_t i = 0; i < gen.space().size(); ++i) {
        const ParamHints& h = merged.param(i);
        std::printf("  %-12s importance %5.1f  bias %s\n", gen.space()[i].name.c_str(),
                    h.importance, h.bias ? std::to_string(*h.bias).c_str() : "--");
    }

    // Author hints vs estimator hints on the same query.
    const HintEstimator estimator;
    HintSet estimated = estimator.estimate(gen.space(), adp_eval).negated_bias();

    GaConfig cfg;
    cfg.seed = 5;
    auto run_with = [&](const HintSet& hints, double confidence) {
        HintSet h = hints;
        h.set_confidence(confidence);
        const GaEngine engine{gen.space(), cfg, Direction::minimize, adp_eval, h};
        return engine.run_many(10);
    };
    const MultiRunCurve baseline = run_with(HintSet::none(gen.space()), 0.0);
    const MultiRunCurve author = run_with(merged, 0.8);
    const MultiRunCurve nonexpert = run_with(estimated, 0.8);

    std::puts("\nmin area-delay query, 10 runs each:");
    std::printf("  %-22s mean best %10.1f\n", "baseline GA:", baseline.mean_final_best());
    std::printf("  %-22s mean best %10.1f\n", "author-guided:", author.mean_final_best());
    std::printf("  %-22s mean best %10.1f\n",
                "estimator-guided:", nonexpert.mean_final_best());

    const double target = baseline.mean_final_best();
    const auto author_cost = author.evals_to_reach(target);
    const auto base_cost = baseline.evals_to_reach(target);
    if (author_cost.reached > 0 && base_cost.reached > 0)
        std::printf("\nevals to reach the baseline's final quality: author-guided %.1f vs"
                    " baseline %.1f\n",
                    author_cost.mean_evals, base_cost.mean_evals);
    return 0;
}
