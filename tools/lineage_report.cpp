// lineage_report: explain *why* a search found what it found, from the
// lineage events in a JSONL trace (DESIGN.md section 11).
//
//   lineage_report run.jsonl           per-run report: hint-class efficacy
//                                      table (offspring produced -> survived
//                                      -> improved-best), winner gene
//                                      attribution, winner ancestry tree
//   lineage_report run.jsonl --run N   report only run N (0-based)
//
// The report is driven by each run's `lineage_summary` event; when the run
// started from scratch (births_at_start == 0) the tool also rebuilds the
// birth-record table from the `birth` events, re-derives the attribution
// with obs::summarize_lineage and fails (exit 1) if the two disagree --
// the same arithmetic double-entry the engines used, done independently.
//
// Exit codes: 0 report printed, 1 unreadable/invalid trace or cross-check
// mismatch, 2 usage error.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "obs/lineage.hpp"
#include "obs/trace.hpp"

using nautilus::obs::BirthOp;
using nautilus::obs::BirthRecord;
using nautilus::obs::GeneOrigin;
using nautilus::obs::LineageSummary;
using nautilus::obs::TraceEvent;

namespace {

struct RunLineage {
    std::string engine;
    std::size_t first_line = 0;
    std::vector<BirthRecord> records;  // dense only when births_at_start == 0
    bool dense = true;                 // ids are 0..records.size()-1
    bool have_summary = false;
    LineageSummary summary;
};

const char* usage_text()
{
    return "usage: %s TRACE.jsonl [--run N]\n";
}

[[noreturn]] void usage(const char* argv0)
{
    std::fprintf(stderr, usage_text(), argv0);
    std::exit(2);
}

[[noreturn]] void help(const char* argv0)
{
    std::printf(usage_text(), argv0);
    std::printf("  --run N     report only run N (0-based; default: all runs)\n"
                "  -h, --help  show this help\n");
    std::exit(0);
}

std::uint64_t field_u64(const TraceEvent& ev, const char* key)
{
    return ev.unsigned_int(key).value_or(0);
}

LineageSummary parse_summary(const TraceEvent& ev)
{
    LineageSummary s;
    s.births = field_u64(ev, "births");
    s.births_at_start = field_u64(ev, "births_at_start");
    s.roots = field_u64(ev, "roots");
    s.elites = field_u64(ev, "elites");
    s.mutation_births = field_u64(ev, "mutation_births");
    s.crossover_births = field_u64(ev, "crossover_births");
    s.survived = field_u64(ev, "survived");
    s.improved = field_u64(ev, "improved");
    s.genes_fresh = field_u64(ev, "genes_fresh");
    s.genes_inherited = field_u64(ev, "genes_inherited");
    s.genes_crossed = field_u64(ev, "genes_crossed");
    s.genes_uniform = field_u64(ev, "genes_uniform");
    s.genes_bias = field_u64(ev, "genes_bias");
    s.genes_target = field_u64(ev, "genes_target");
    s.genes_repair = field_u64(ev, "genes_repair");
    s.offspring_uniform = field_u64(ev, "offspring_uniform");
    s.offspring_bias = field_u64(ev, "offspring_bias");
    s.offspring_target = field_u64(ev, "offspring_target");
    s.survived_uniform = field_u64(ev, "survived_uniform");
    s.survived_bias = field_u64(ev, "survived_bias");
    s.survived_target = field_u64(ev, "survived_target");
    s.improved_uniform = field_u64(ev, "improved_uniform");
    s.improved_bias = field_u64(ev, "improved_bias");
    s.improved_target = field_u64(ev, "improved_target");
    if (ev.find("winner") != nullptr) {
        s.have_winner = true;
        s.winner = field_u64(ev, "winner");
        s.winner_count = field_u64(ev, "winner_count");
        s.winner_genes = field_u64(ev, "winner_genes");
        s.winner_fresh = field_u64(ev, "winner_fresh");
        s.winner_uniform = field_u64(ev, "winner_uniform");
        s.winner_bias = field_u64(ev, "winner_bias");
        s.winner_target = field_u64(ev, "winner_target");
        s.winner_repair = field_u64(ev, "winner_repair");
        s.winner_depth = field_u64(ev, "winner_depth");
    }
    return s;
}

void print_efficacy(const LineageSummary& s)
{
    std::printf("  hint-class efficacy (offspring -> survived -> improved-best):\n");
    std::printf("    %-8s %10s %10s %10s\n", "class", "offspring", "survived",
                "improved");
    const auto row = [](const char* name, std::uint64_t off, std::uint64_t sur,
                        std::uint64_t imp) {
        std::printf("    %-8s %10llu %10llu %10llu\n", name,
                    static_cast<unsigned long long>(off),
                    static_cast<unsigned long long>(sur),
                    static_cast<unsigned long long>(imp));
    };
    row("bias", s.offspring_bias, s.survived_bias, s.improved_bias);
    row("target", s.offspring_target, s.survived_target, s.improved_target);
    row("uniform", s.offspring_uniform, s.survived_uniform, s.improved_uniform);
}

void print_winner(const LineageSummary& s)
{
    if (!s.have_winner) {
        std::printf("  winner: none (no feasible best)\n");
        return;
    }
    std::printf("  winner: id %llu (%llu genome%s, ancestry depth %llu)\n",
                static_cast<unsigned long long>(s.winner),
                static_cast<unsigned long long>(s.winner_count),
                s.winner_count == 1 ? "" : "s",
                static_cast<unsigned long long>(s.winner_depth));
    const auto pct = [&](std::uint64_t n) {
        return s.winner_genes > 0
                   ? 100.0 * static_cast<double>(n) / static_cast<double>(s.winner_genes)
                   : 0.0;
    };
    std::printf("  winner gene attribution (%llu genes):\n",
                static_cast<unsigned long long>(s.winner_genes));
    std::printf("    bias %llu (%.1f%%), target %llu (%.1f%%), uniform %llu (%.1f%%), "
                "fresh %llu (%.1f%%), repair %llu (%.1f%%)\n",
                static_cast<unsigned long long>(s.winner_bias), pct(s.winner_bias),
                static_cast<unsigned long long>(s.winner_target), pct(s.winner_target),
                static_cast<unsigned long long>(s.winner_uniform), pct(s.winner_uniform),
                static_cast<unsigned long long>(s.winner_fresh), pct(s.winner_fresh),
                static_cast<unsigned long long>(s.winner_repair), pct(s.winner_repair));
}

// Primary-parent ancestry chain of the winner, newest first.
void print_ancestry(const RunLineage& run)
{
    if (!run.dense || !run.summary.have_winner) return;
    const std::vector<BirthRecord>& records = run.records;
    std::uint64_t id = run.summary.winner;
    if (id >= records.size()) return;
    std::printf("  winner ancestry (primary-parent chain):\n");
    std::size_t hops = 0;
    while (id < records.size()) {
        const BirthRecord& rec = records[id];
        if (hops >= 24) {
            std::printf("    ... (%llu older ancestors elided)\n",
                        static_cast<unsigned long long>(rec.generation + 1));
            break;
        }
        std::printf("    gen %-5llu %-9s id %llu",
                    static_cast<unsigned long long>(rec.generation),
                    nautilus::obs::birth_op_name(rec.op),
                    static_cast<unsigned long long>(rec.id));
        if (rec.parent_a != nautilus::obs::k_no_parent) {
            std::printf("  pa %llu", static_cast<unsigned long long>(rec.parent_a));
            if (rec.op == BirthOp::crossover)
                std::printf(" pb %llu", static_cast<unsigned long long>(rec.parent_b));
        }
        if (!rec.origins.empty()) {
            std::uint64_t u = 0, b = 0, t = 0;
            for (const GeneOrigin o : rec.origins) {
                if (o == GeneOrigin::uniform) ++u;
                else if (o == GeneOrigin::bias) ++b;
                else if (o == GeneOrigin::target) ++t;
            }
            if (u + b + t > 0)
                std::printf("  mutated: bias %llu, target %llu, uniform %llu",
                            static_cast<unsigned long long>(b),
                            static_cast<unsigned long long>(t),
                            static_cast<unsigned long long>(u));
        }
        std::printf("\n");
        ++hops;
        if (rec.parent_a == nautilus::obs::k_no_parent) break;
        if (rec.parent_a >= rec.id) break;  // corrupt; acyclicity gate catches it
        id = rec.parent_a;
    }
}

// Re-derive the event-independent summary fields from rebuilt records and
// compare.  Survival/improvement flags are not replayed from the trace, so
// only birth-op tallies, gene-class totals and (for single-winner engines)
// the winner attribution take part.
std::size_t cross_check(const RunLineage& run, std::size_t run_index)
{
    if (!run.dense || !run.have_summary || run.summary.births_at_start != 0) return 0;
    std::vector<std::uint64_t> winners;
    if (run.summary.have_winner && run.summary.winner_count == 1)
        winners.push_back(run.summary.winner);
    const LineageSummary derived =
        summarize_lineage(run.records, winners, /*births_at_start=*/0);
    std::size_t mismatches = 0;
    const auto expect = [&](const char* what, std::uint64_t got, std::uint64_t want) {
        if (got == want) return;
        ++mismatches;
        std::fprintf(stderr, "lineage_report: run %zu: rebuilt %s %llu != summary %llu\n",
                     run_index, what, static_cast<unsigned long long>(got),
                     static_cast<unsigned long long>(want));
    };
    expect("births", derived.births, run.summary.births);
    expect("roots", derived.roots, run.summary.roots);
    expect("elites", derived.elites, run.summary.elites);
    expect("mutation_births", derived.mutation_births, run.summary.mutation_births);
    expect("crossover_births", derived.crossover_births, run.summary.crossover_births);
    expect("genes_fresh", derived.genes_fresh, run.summary.genes_fresh);
    expect("genes_inherited", derived.genes_inherited, run.summary.genes_inherited);
    expect("genes_crossed", derived.genes_crossed, run.summary.genes_crossed);
    expect("genes_uniform", derived.genes_uniform, run.summary.genes_uniform);
    expect("genes_bias", derived.genes_bias, run.summary.genes_bias);
    expect("genes_target", derived.genes_target, run.summary.genes_target);
    expect("genes_repair", derived.genes_repair, run.summary.genes_repair);
    if (!winners.empty()) {
        expect("winner_genes", derived.winner_genes, run.summary.winner_genes);
        expect("winner_fresh", derived.winner_fresh, run.summary.winner_fresh);
        expect("winner_uniform", derived.winner_uniform, run.summary.winner_uniform);
        expect("winner_bias", derived.winner_bias, run.summary.winner_bias);
        expect("winner_target", derived.winner_target, run.summary.winner_target);
        expect("winner_repair", derived.winner_repair, run.summary.winner_repair);
        expect("winner_depth", derived.winner_depth, run.summary.winner_depth);
    }
    return mismatches;
}

}  // namespace

int main(int argc, char** argv)
{
    std::string path;
    std::optional<std::size_t> only_run;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0)
            help(argv[0]);
        else if (std::strcmp(argv[i], "--run") == 0) {
            if (i + 1 >= argc) usage(argv[0]);
            char* end = nullptr;
            const unsigned long long n = std::strtoull(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0') usage(argv[0]);
            only_run = static_cast<std::size_t>(n);
        }
        else if (argv[i][0] == '-') {
            std::fprintf(stderr, "lineage_report: unknown option '%s'\n", argv[i]);
            usage(argv[0]);
        }
        else if (path.empty()) path = argv[i];
        else usage(argv[0]);
    }
    if (path.empty()) usage(argv[0]);

    std::ifstream in{path};
    if (!in) {
        std::fprintf(stderr, "lineage_report: cannot read %s\n", path.c_str());
        return 1;
    }

    std::vector<RunLineage> runs;
    std::optional<std::size_t> open_run;
    std::size_t parse_errors = 0;

    std::string line;
    for (std::size_t lineno = 1; std::getline(in, line); ++lineno) {
        if (line.empty()) continue;
        const std::optional<TraceEvent> parsed = nautilus::obs::parse_jsonl_line(line);
        if (!parsed) {
            ++parse_errors;
            std::fprintf(stderr, "%s:%zu: unparseable trace line\n", path.c_str(), lineno);
            continue;
        }
        const TraceEvent& ev = *parsed;
        if (ev.type == "run_start") {
            RunLineage run;
            run.engine = ev.string("engine").value_or("?");
            run.first_line = lineno;
            runs.push_back(std::move(run));
            open_run = runs.size() - 1;
        }
        else if (ev.type == "run_end") {
            open_run.reset();
        }
        else if (ev.type == "birth" && open_run) {
            RunLineage& run = runs[*open_run];
            BirthRecord rec;
            rec.id = field_u64(ev, "id");
            rec.generation = field_u64(ev, "gen");
            if (!nautilus::obs::birth_op_from_name(ev.string("op").value_or(""), rec.op)) {
                ++parse_errors;
                std::fprintf(stderr, "%s:%zu: birth with unknown op\n", path.c_str(),
                             lineno);
                continue;
            }
            if (const std::optional<std::uint64_t> pa = ev.unsigned_int("pa"))
                rec.parent_a = *pa;
            if (const std::optional<std::uint64_t> pb = ev.unsigned_int("pb"))
                rec.parent_b = *pb;
            const std::string codes = ev.string("origins").value_or("-");
            if (codes != "-" &&
                !nautilus::obs::origins_from_codes(codes, rec.origins)) {
                ++parse_errors;
                std::fprintf(stderr, "%s:%zu: birth with bad origin codes\n",
                             path.c_str(), lineno);
                continue;
            }
            if (rec.id != run.records.size()) run.dense = false;
            run.records.push_back(std::move(rec));
        }
        else if (ev.type == "lineage_summary" && open_run) {
            RunLineage& run = runs[*open_run];
            run.have_summary = true;
            run.summary = parse_summary(ev);
        }
    }

    if (runs.empty()) {
        std::fprintf(stderr, "lineage_report: %s holds no runs\n", path.c_str());
        return 1;
    }
    if (only_run && *only_run >= runs.size()) {
        std::fprintf(stderr, "lineage_report: run %zu out of range (%zu runs)\n",
                     *only_run, runs.size());
        return 1;
    }

    std::size_t mismatches = 0;
    std::size_t reported = 0;
    for (std::size_t i = 0; i < runs.size(); ++i) {
        if (only_run && *only_run != i) continue;
        const RunLineage& run = runs[i];
        if (!run.have_summary) {
            std::printf("run %zu (%s, line %zu): no lineage recorded\n", i,
                        run.engine.c_str(), run.first_line);
            continue;
        }
        ++reported;
        const LineageSummary& s = run.summary;
        std::printf("run %zu (%s):\n", i, run.engine.c_str());
        std::printf("  births %llu (roots %llu, elites %llu, mutation %llu, "
                    "crossover %llu)%s\n",
                    static_cast<unsigned long long>(s.births),
                    static_cast<unsigned long long>(s.roots),
                    static_cast<unsigned long long>(s.elites),
                    static_cast<unsigned long long>(s.mutation_births),
                    static_cast<unsigned long long>(s.crossover_births),
                    s.births_at_start > 0 ? "  [resumed: ancestry tree spans the"
                                            " restored records]"
                                          : "");
        std::printf("  survived %llu, improved-best %llu\n",
                    static_cast<unsigned long long>(s.survived),
                    static_cast<unsigned long long>(s.improved));
        print_efficacy(s);
        print_winner(s);
        print_ancestry(run);
        mismatches += cross_check(run, i);
    }

    if (parse_errors > 0 || mismatches > 0) {
        std::fprintf(stderr, "lineage_report: FAIL (%zu parse errors, %zu cross-check"
                             " mismatches)\n",
                     parse_errors, mismatches);
        return 1;
    }
    if (reported == 0)
        std::printf("lineage_report: no lineage events in %s\n", path.c_str());
    return 0;
}
