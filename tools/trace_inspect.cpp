// trace_inspect: summarize and validate JSONL traces written by
// `nautilus_cli --trace PATH` (or any obs::JsonlFileSink).
//
//   trace_inspect run.jsonl            human-readable summary
//   trace_inspect run.jsonl --check    validation mode: every line must parse
//                                      and per-run evaluation accounting must
//                                      be self-consistent; exits nonzero on
//                                      any failure
//   trace_inspect run.jsonl --chrome OUT.json
//                                      additionally convert the trace to the
//                                      Chrome trace-event JSON array format;
//                                      load OUT.json at https://ui.perfetto.dev
//
// Unknown flags are rejected with a usage message and a nonzero exit, so CI
// scripts fail fast on typos instead of treating a flag as the trace path.
//
// The summary reports event counts by type, aggregate span timings, a
// per-run table (engine, waves, distinct vs. total evaluations, cache hit
// rate, wall-clock) and the hint-guided mutation draw distribution.
//
// Validation covers the fault-tolerance invariants (DESIGN.md section 8):
// per run, summed wave `fresh` must equal the distinct evaluations charged
// *in this trace* (run_end distinct_evals minus the checkpointed
// distinct_at_start on resumed runs), and every guarded attempt must be
// accounted for: attempts - attempts_at_start == fresh + (retries -
// retries_at_start).
//
// Traces carrying lineage events (DESIGN.md section 11) are additionally
// held to the lineage conservation invariants: birth ids are dense and
// strictly increasing within a run, ancestry is acyclic (parents precede
// children), GA birth counts and per-class origin sums match the breed
// events gene-for-gene, the NSGA-II `born` field matches its generation's
// births, and the lineage_summary totals agree with the events observed.
//
// Server-job traces close with a `job_summary` accounting event (DESIGN.md
// section 13); its eval counters must reconcile exactly with the run's own
// run_end (distinct_evals, store_hits, retries) and its granted worker
// count with the run_start workers field.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "obs/export.hpp"
#include "obs/trace.hpp"

using nautilus::obs::TraceEvent;

namespace {

struct SpanAgg {
    std::uint64_t count = 0;
    double seconds = 0.0;
};

// Births observed at one generation within a run window.
struct GenBirths {
    std::uint64_t total = 0;  // non-root births (elite + mutation + crossover)
    std::uint64_t elites = 0;
    std::uint64_t uniform = 0;  // per-gene origin class sums
    std::uint64_t bias = 0;
    std::uint64_t target = 0;
};

// One GA breed event (or NSGA-II generation draw block) at one generation.
struct GenBreed {
    std::uint64_t children = 0;
    std::uint64_t elites = 0;
    std::uint64_t uniform = 0;
    std::uint64_t bias = 0;
    std::uint64_t target = 0;
};

// Accounting for one run_start..run_end window.  Waves are attributed to the
// innermost open run; engines run sequentially so runs never nest.
struct RunAgg {
    std::string engine;
    std::size_t first_line = 0;
    std::uint64_t waves = 0;
    std::uint64_t items = 0;
    std::uint64_t fresh = 0;
    std::uint64_t hits = 0;
    std::uint64_t waits = 0;
    double wave_seconds = 0.0;
    // From run_start: resume baselines (zero for fresh runs).
    bool resumed = false;
    std::uint64_t workers = 0;
    std::uint64_t distinct_at_start = 0;
    std::uint64_t attempts_at_start = 0;
    std::uint64_t retries_at_start = 0;
    // Event tallies within the run window.
    std::uint64_t fault_events = 0;
    std::uint64_t quarantine_events = 0;
    std::uint64_t checkpoint_events = 0;
    // From run_end (absent if the trace was truncated mid-run).
    std::optional<std::uint64_t> distinct_evals;
    std::optional<std::uint64_t> total_calls;
    std::optional<std::uint64_t> attempts;
    std::optional<std::uint64_t> retries;
    // Persistent-store accounting (0 when no store was attached).
    std::uint64_t store_hits = 0;
    std::uint64_t store_misses = 0;
    std::optional<std::uint64_t> quarantined;
    std::optional<double> best;
    bool feasible = false;
    // Lineage accounting within the run window (DESIGN.md section 11).
    std::uint64_t births_in_window = 0;
    std::uint64_t roots = 0;
    std::uint64_t elite_births = 0;
    std::uint64_t mutation_births = 0;
    std::uint64_t crossover_births = 0;
    std::optional<std::uint64_t> first_birth_id;
    std::map<std::uint64_t, GenBirths> birth_gens;  // non-root births by gen
    std::map<std::uint64_t, GenBreed> breed_gens;   // GA breed events by gen
    std::map<std::uint64_t, std::uint64_t> born_gens;  // NSGA-II `born` by gen
    std::map<std::uint64_t, GenBreed> draw_gens;    // NSGA-II draws by gen
    // From the lineage_summary event (absent when lineage was off).
    std::optional<std::uint64_t> sum_births;
    std::uint64_t sum_births_at_start = 0;
    std::uint64_t sum_roots = 0;
    std::uint64_t sum_elites = 0;
    std::uint64_t sum_mutation = 0;
    std::uint64_t sum_crossover = 0;
    // From the job_summary event (server jobs only; emitted after run_end,
    // so it attaches to the most recently closed run).
    std::optional<std::uint64_t> job_distinct;
    std::optional<std::uint64_t> job_fresh;
    std::optional<std::uint64_t> job_store_hits;
    std::optional<std::uint64_t> job_retries;
    std::optional<std::uint64_t> job_workers;
};

const char* usage_text()
{
    return "usage: %s TRACE.jsonl [--check] [--chrome OUT.json]\n";
}

[[noreturn]] void usage(const char* argv0)
{
    std::fprintf(stderr, usage_text(), argv0);
    std::exit(2);
}

[[noreturn]] void help(const char* argv0)
{
    std::printf(usage_text(), argv0);
    std::printf("  --check          validate accounting invariants; nonzero exit on any"
                " failure\n"
                "  --chrome OUT     also write Chrome trace-event JSON (ui.perfetto.dev)\n"
                "  -h, --help       show this help\n");
    std::exit(0);
}

}  // namespace

int main(int argc, char** argv)
{
    std::string path;
    std::string chrome_out;
    bool check = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--check") == 0) check = true;
        else if (std::strcmp(argv[i], "--chrome") == 0) {
            if (i + 1 >= argc) usage(argv[0]);
            chrome_out = argv[++i];
        }
        else if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0)
            help(argv[0]);
        else if (argv[i][0] == '-') {
            std::fprintf(stderr, "trace_inspect: unknown option '%s'\n", argv[i]);
            usage(argv[0]);
        }
        else if (path.empty()) path = argv[i];
        else usage(argv[0]);
    }
    if (path.empty()) usage(argv[0]);

    std::ifstream in{path};
    if (!in) {
        std::fprintf(stderr, "trace_inspect: cannot read %s\n", path.c_str());
        return 1;
    }

    std::map<std::string, std::uint64_t> counts;
    std::map<std::string, SpanAgg> spans;
    std::vector<TraceEvent> chrome_events;  // kept only with --chrome
    std::vector<RunAgg> runs;
    std::optional<std::size_t> open_run;     // index into runs
    std::optional<std::size_t> last_closed;  // most recent run with a run_end
    std::uint64_t bias_draws = 0;
    std::uint64_t target_draws = 0;
    std::uint64_t uniform_draws = 0;
    std::uint64_t genes_mutated = 0;
    std::size_t lines = 0;
    std::size_t parse_errors = 0;
    double last_t = 0.0;

    std::string line;
    for (std::size_t lineno = 1; std::getline(in, line); ++lineno) {
        if (line.empty()) continue;
        ++lines;
        const std::optional<TraceEvent> parsed = nautilus::obs::parse_jsonl_line(line);
        if (!parsed) {
            ++parse_errors;
            std::fprintf(stderr, "%s:%zu: unparseable trace line\n", path.c_str(), lineno);
            continue;
        }
        const TraceEvent& ev = *parsed;
        if (!chrome_out.empty()) chrome_events.push_back(ev);
        ++counts[ev.type];
        last_t = ev.t;

        if (ev.type == "span") {
            SpanAgg& agg = spans[ev.string("name").value_or("?")];
            ++agg.count;
            agg.seconds += ev.number("seconds").value_or(0.0);
        }
        else if (ev.type == "run_start") {
            RunAgg run;
            run.engine = ev.string("engine").value_or("?");
            run.first_line = lineno;
            if (const nautilus::obs::FieldValue* f = ev.find("resumed"))
                if (const bool* b = std::get_if<bool>(f)) run.resumed = *b;
            run.workers = ev.unsigned_int("workers").value_or(0);
            run.distinct_at_start = ev.unsigned_int("distinct_at_start").value_or(0);
            run.attempts_at_start = ev.unsigned_int("attempts_at_start").value_or(0);
            run.retries_at_start = ev.unsigned_int("retries_at_start").value_or(0);
            runs.push_back(std::move(run));
            open_run = runs.size() - 1;
        }
        else if (ev.type == "eval_fault" || ev.type == "quarantine" ||
                 ev.type == "checkpoint") {
            if (open_run) {
                RunAgg& run = runs[*open_run];
                if (ev.type == "eval_fault") ++run.fault_events;
                else if (ev.type == "quarantine") ++run.quarantine_events;
                else ++run.checkpoint_events;
            }
            else if (check) {
                ++parse_errors;
                std::fprintf(stderr, "%s:%zu: %s outside any run\n", path.c_str(), lineno,
                             ev.type.c_str());
            }
        }
        else if (ev.type == "eval_wave") {
            if (open_run) {
                RunAgg& run = runs[*open_run];
                ++run.waves;
                run.items += ev.unsigned_int("size").value_or(0);
                run.fresh += ev.unsigned_int("fresh").value_or(0);
                run.hits += ev.unsigned_int("hits").value_or(0);
                run.waits += ev.unsigned_int("waits").value_or(0);
                run.wave_seconds += ev.number("seconds").value_or(0.0);
            }
            else if (check) {
                ++parse_errors;
                std::fprintf(stderr, "%s:%zu: eval_wave outside any run\n", path.c_str(),
                             lineno);
            }
        }
        else if (ev.type == "run_end") {
            if (open_run) {
                RunAgg& run = runs[*open_run];
                run.distinct_evals = ev.unsigned_int("distinct_evals");
                run.total_calls = ev.unsigned_int("total_calls");
                run.attempts = ev.unsigned_int("attempts");
                run.retries = ev.unsigned_int("retries");
                run.quarantined = ev.unsigned_int("quarantined");
                run.store_hits = ev.unsigned_int("store_hits").value_or(0);
                run.store_misses = ev.unsigned_int("store_misses").value_or(0);
                run.best = ev.number("best");
                if (const nautilus::obs::FieldValue* f = ev.find("feasible"))
                    if (const bool* b = std::get_if<bool>(f)) run.feasible = *b;
                last_closed = open_run;
                open_run.reset();
            }
            else if (check) {
                ++parse_errors;
                std::fprintf(stderr, "%s:%zu: run_end without run_start\n", path.c_str(),
                             lineno);
            }
        }
        else if (ev.type == "breed") {
            bias_draws += ev.unsigned_int("bias_draws").value_or(0);
            target_draws += ev.unsigned_int("target_draws").value_or(0);
            uniform_draws += ev.unsigned_int("uniform_draws").value_or(0);
            genes_mutated += ev.unsigned_int("genes_mutated").value_or(0);
            if (open_run) {
                if (const std::optional<std::uint64_t> gen = ev.unsigned_int("gen")) {
                    GenBreed& breed = runs[*open_run].breed_gens[*gen];
                    breed.children += ev.unsigned_int("children").value_or(0);
                    breed.elites += ev.unsigned_int("elites").value_or(0);
                    breed.uniform += ev.unsigned_int("uniform_draws").value_or(0);
                    breed.bias += ev.unsigned_int("bias_draws").value_or(0);
                    breed.target += ev.unsigned_int("target_draws").value_or(0);
                }
            }
        }
        else if (ev.type == "generation") {
            // NSGA-II reports draws on the generation event instead of breed.
            bias_draws += ev.unsigned_int("bias_draws").value_or(0);
            target_draws += ev.unsigned_int("target_draws").value_or(0);
            uniform_draws += ev.unsigned_int("uniform_draws").value_or(0);
            genes_mutated += ev.unsigned_int("genes_mutated").value_or(0);
            if (open_run) {
                const std::optional<std::uint64_t> gen = ev.unsigned_int("gen");
                const std::optional<std::uint64_t> born = ev.unsigned_int("born");
                if (gen && born) {
                    RunAgg& run = runs[*open_run];
                    run.born_gens[*gen] += *born;
                    GenBreed& draw = run.draw_gens[*gen];
                    draw.uniform += ev.unsigned_int("uniform_draws").value_or(0);
                    draw.bias += ev.unsigned_int("bias_draws").value_or(0);
                    draw.target += ev.unsigned_int("target_draws").value_or(0);
                }
            }
        }
        else if (ev.type == "birth") {
            if (!open_run) {
                if (check) {
                    ++parse_errors;
                    std::fprintf(stderr, "%s:%zu: birth outside any run\n", path.c_str(),
                                 lineno);
                }
                continue;
            }
            RunAgg& run = runs[*open_run];
            const std::uint64_t id = ev.unsigned_int("id").value_or(0);
            if (!run.first_birth_id) run.first_birth_id = id;
            // Ids are minted densely: each birth is first_id + count so far.
            if (id != *run.first_birth_id + run.births_in_window) {
                ++parse_errors;
                std::fprintf(stderr, "%s:%zu: birth id %llu breaks the dense sequence\n",
                             path.c_str(), lineno, static_cast<unsigned long long>(id));
            }
            ++run.births_in_window;
            // Ancestry is acyclic: parents are always older (smaller id).
            for (const char* key : {"pa", "pb"}) {
                if (const std::optional<std::uint64_t> parent = ev.unsigned_int(key)) {
                    if (*parent >= id) {
                        ++parse_errors;
                        std::fprintf(stderr,
                                     "%s:%zu: birth %llu has %s %llu >= its own id\n",
                                     path.c_str(), lineno,
                                     static_cast<unsigned long long>(id), key,
                                     static_cast<unsigned long long>(*parent));
                    }
                }
            }
            const std::string op = ev.string("op").value_or("?");
            if (op == "init" || op == "resume") ++run.roots;
            else {
                if (op == "elite") ++run.elite_births;
                else if (op == "mutation") ++run.mutation_births;
                else if (op == "crossover") ++run.crossover_births;
                else if (check) {
                    ++parse_errors;
                    std::fprintf(stderr, "%s:%zu: birth with unknown op '%s'\n",
                                 path.c_str(), lineno, op.c_str());
                }
                const std::uint64_t gen = ev.unsigned_int("gen").value_or(0);
                GenBirths& gb = run.birth_gens[gen];
                ++gb.total;
                if (op == "elite") ++gb.elites;
                for (const char c : ev.string("origins").value_or("")) {
                    if (c == 'u') ++gb.uniform;
                    else if (c == 'b') ++gb.bias;
                    else if (c == 't') ++gb.target;
                }
            }
        }
        else if (ev.type == "job_summary") {
            if (last_closed) {
                RunAgg& run = runs[*last_closed];
                run.job_distinct = ev.unsigned_int("distinct_evals");
                run.job_fresh = ev.unsigned_int("fresh_evals");
                run.job_store_hits = ev.unsigned_int("store_hits");
                run.job_retries = ev.unsigned_int("retries");
                run.job_workers = ev.unsigned_int("workers");
            }
            else if (check) {
                ++parse_errors;
                std::fprintf(stderr, "%s:%zu: job_summary without a completed run\n",
                             path.c_str(), lineno);
            }
        }
        else if (ev.type == "lineage_summary") {
            if (open_run) {
                RunAgg& run = runs[*open_run];
                run.sum_births = ev.unsigned_int("births");
                run.sum_births_at_start = ev.unsigned_int("births_at_start").value_or(0);
                run.sum_roots = ev.unsigned_int("roots").value_or(0);
                run.sum_elites = ev.unsigned_int("elites").value_or(0);
                run.sum_mutation = ev.unsigned_int("mutation_births").value_or(0);
                run.sum_crossover = ev.unsigned_int("crossover_births").value_or(0);
            }
            else if (check) {
                ++parse_errors;
                std::fprintf(stderr, "%s:%zu: lineage_summary outside any run\n",
                             path.c_str(), lineno);
            }
        }
    }

    if (lines == 0) {
        std::fprintf(stderr, "trace_inspect: %s holds no events\n", path.c_str());
        return 1;
    }

    if (!chrome_out.empty()) {
        std::ofstream out{chrome_out};
        if (!out) {
            std::fprintf(stderr, "trace_inspect: cannot write %s\n", chrome_out.c_str());
            return 1;
        }
        out << nautilus::obs::chrome_trace_json(chrome_events);
        std::printf("chrome trace written to %s (%zu events; open at ui.perfetto.dev)\n",
                    chrome_out.c_str(), chrome_events.size());
    }

    // -- validation ---------------------------------------------------------
    std::size_t accounting_errors = 0;
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const RunAgg& run = runs[i];
        if (!run.distinct_evals) {
            if (check) {
                ++accounting_errors;
                std::fprintf(stderr, "run %zu (%s, line %zu): run_start without run_end\n",
                             i, run.engine.c_str(), run.first_line);
            }
            continue;
        }
        // Resumed runs restored distinct_at_start evaluations from the
        // checkpoint; only the delta was freshly charged in this trace.
        const std::uint64_t expect_fresh = *run.distinct_evals - run.distinct_at_start;
        if (run.fresh != expect_fresh) {
            ++accounting_errors;
            std::fprintf(stderr,
                         "run %zu (%s): summed wave fresh %llu != run distinct_evals %llu"
                         " - distinct_at_start %llu\n",
                         i, run.engine.c_str(),
                         static_cast<unsigned long long>(run.fresh),
                         static_cast<unsigned long long>(*run.distinct_evals),
                         static_cast<unsigned long long>(run.distinct_at_start));
        }
        // Guard invariant: every cache miss is exactly one guarded call --
        // except misses the persistent store answered, which never reach the
        // guard -- and each guarded call makes 1 + retries attempts, so
        //   attempts - attempts_at_start
        //     == fresh - store_hits + (retries - retries_at_start).
        if (run.attempts && run.retries) {
            const std::uint64_t d_attempts = *run.attempts - run.attempts_at_start;
            const std::uint64_t d_retries = *run.retries - run.retries_at_start;
            if (d_attempts + run.store_hits != run.fresh + d_retries) {
                ++accounting_errors;
                std::fprintf(stderr,
                             "run %zu (%s): attempts %llu != fresh %llu - store_hits %llu"
                             " + retries %llu\n",
                             i, run.engine.c_str(),
                             static_cast<unsigned long long>(d_attempts),
                             static_cast<unsigned long long>(run.fresh),
                             static_cast<unsigned long long>(run.store_hits),
                             static_cast<unsigned long long>(d_retries));
            }
        }
        if (run.items != run.fresh + run.hits) {
            ++accounting_errors;
            std::fprintf(stderr,
                         "run %zu (%s): wave items %llu != fresh %llu + hits %llu\n", i,
                         run.engine.c_str(), static_cast<unsigned long long>(run.items),
                         static_cast<unsigned long long>(run.fresh),
                         static_cast<unsigned long long>(run.hits));
        }
        // -- job_summary reconciliation (DESIGN.md section 13) --------------
        // A server job's closing summary mirrors the run's own counters; any
        // divergence means the scheduler accounted cost the engine never
        // reported (or vice versa).
        if (run.job_distinct) {
            const auto jerr = [&](const char* what, std::uint64_t got,
                                  std::uint64_t want) {
                ++accounting_errors;
                std::fprintf(stderr, "run %zu (%s): job_summary %s %llu != run %llu\n", i,
                             run.engine.c_str(), what,
                             static_cast<unsigned long long>(got),
                             static_cast<unsigned long long>(want));
            };
            if (*run.job_distinct != *run.distinct_evals)
                jerr("distinct_evals", *run.job_distinct, *run.distinct_evals);
            if (run.job_workers && *run.job_workers != run.workers)
                jerr("workers", *run.job_workers, run.workers);
            if (run.job_store_hits && *run.job_store_hits != run.store_hits)
                jerr("store_hits", *run.job_store_hits, run.store_hits);
            if (run.job_retries && run.retries && *run.job_retries != *run.retries)
                jerr("retries", *run.job_retries, *run.retries);
            if (run.job_fresh) {
                const std::uint64_t hits = run.job_store_hits.value_or(0);
                const std::uint64_t want =
                    *run.distinct_evals - (hits < *run.distinct_evals
                                               ? hits
                                               : *run.distinct_evals);
                if (*run.job_fresh != want) jerr("fresh_evals", *run.job_fresh, want);
            }
        }
        // -- lineage conservation (DESIGN.md section 11) --------------------
        if (run.births_in_window == 0 && !run.sum_births) continue;
        const auto u64err = [&](const char* what, std::uint64_t got,
                                std::uint64_t want) {
            ++accounting_errors;
            std::fprintf(stderr, "run %zu (%s): %s %llu != expected %llu\n", i,
                         run.engine.c_str(), what, static_cast<unsigned long long>(got),
                         static_cast<unsigned long long>(want));
        };
        if (run.sum_births) {
            // Summary totals cover restored records too; the window only holds
            // births minted in this trace.
            if (*run.sum_births != run.sum_births_at_start + run.births_in_window)
                u64err("lineage_summary births", *run.sum_births,
                       run.sum_births_at_start + run.births_in_window);
            if (run.sum_births_at_start == 0) {
                if (run.sum_roots != run.roots)
                    u64err("lineage_summary roots", run.sum_roots, run.roots);
                if (run.sum_elites != run.elite_births)
                    u64err("lineage_summary elites", run.sum_elites, run.elite_births);
                if (run.sum_mutation != run.mutation_births)
                    u64err("lineage_summary mutation_births", run.sum_mutation,
                           run.mutation_births);
                if (run.sum_crossover != run.crossover_births)
                    u64err("lineage_summary crossover_births", run.sum_crossover,
                           run.crossover_births);
            }
        }
        else if (run.distinct_evals) {
            ++accounting_errors;
            std::fprintf(stderr, "run %zu (%s): births without a lineage_summary\n", i,
                         run.engine.c_str());
        }
        if (run.engine == "ga") {
            // Every breed event's offspring must be born, gene class for
            // gene class; every non-root birth must have a breed event.
            for (const auto& [gen, breed] : run.breed_gens) {
                const auto it = run.birth_gens.find(gen);
                const GenBirths births =
                    it != run.birth_gens.end() ? it->second : GenBirths{};
                if (births.total != breed.children + breed.elites)
                    u64err("gen births", births.total, breed.children + breed.elites);
                if (births.elites != breed.elites)
                    u64err("gen elite births", births.elites, breed.elites);
                if (births.uniform != breed.uniform)
                    u64err("gen uniform origins", births.uniform, breed.uniform);
                if (births.bias != breed.bias)
                    u64err("gen bias origins", births.bias, breed.bias);
                if (births.target != breed.target)
                    u64err("gen target origins", births.target, breed.target);
            }
            for (const auto& [gen, births] : run.birth_gens)
                if (run.breed_gens.find(gen) == run.breed_gens.end())
                    u64err("births without a breed event at gen", births.total, 0);
        }
        else if (run.engine == "nsga2") {
            for (const auto& [gen, born] : run.born_gens) {
                const auto it = run.birth_gens.find(gen);
                const GenBirths births =
                    it != run.birth_gens.end() ? it->second : GenBirths{};
                if (births.total != born) u64err("gen births vs born", births.total, born);
                const auto draw_it = run.draw_gens.find(gen);
                const GenBreed draws =
                    draw_it != run.draw_gens.end() ? draw_it->second : GenBreed{};
                if (births.uniform != draws.uniform)
                    u64err("gen uniform origins", births.uniform, draws.uniform);
                if (births.bias != draws.bias)
                    u64err("gen bias origins", births.bias, draws.bias);
                if (births.target != draws.target)
                    u64err("gen target origins", births.target, draws.target);
            }
        }
    }

    if (check) {
        if (parse_errors > 0 || accounting_errors > 0) {
            std::fprintf(stderr,
                         "trace_inspect: FAIL (%zu parse errors, %zu accounting errors)\n",
                         parse_errors, accounting_errors);
            return 1;
        }
        std::printf("trace_inspect: OK (%zu events, %zu runs, accounting consistent)\n",
                    lines, runs.size());
        return 0;
    }

    // -- summary ------------------------------------------------------------
    std::printf("trace: %s (%zu events, %.3f s span)\n", path.c_str(), lines, last_t);
    std::printf("events by type:\n");
    for (const auto& [type, n] : counts)
        std::printf("  %-14s %8llu\n", type.c_str(), static_cast<unsigned long long>(n));

    if (!spans.empty()) {
        std::printf("span timings:\n");
        for (const auto& [name, agg] : spans)
            std::printf("  %-14s %8llu x %10.4f s total\n", name.c_str(),
                        static_cast<unsigned long long>(agg.count), agg.seconds);
    }

    if (!runs.empty()) {
        std::printf("runs:\n");
        std::printf("  %3s  %-8s %6s %8s %9s %8s %6s %9s %12s\n", "#", "engine", "waves",
                    "items", "distinct", "hits", "hit%", "eval s", "best");
        std::uint64_t total_items = 0;
        std::uint64_t total_fresh = 0;
        for (std::size_t i = 0; i < runs.size(); ++i) {
            const RunAgg& run = runs[i];
            total_items += run.items;
            total_fresh += run.fresh;
            const double hit_rate =
                run.items > 0
                    ? 100.0 * static_cast<double>(run.hits) / static_cast<double>(run.items)
                    : 0.0;
            std::printf("  %3zu  %-8s %6llu %8llu %9llu %8llu %5.1f%% %9.4f ", i,
                        run.engine.c_str(), static_cast<unsigned long long>(run.waves),
                        static_cast<unsigned long long>(run.items),
                        static_cast<unsigned long long>(run.fresh),
                        static_cast<unsigned long long>(run.hits), hit_rate,
                        run.wave_seconds);
            if (run.best && run.feasible) std::printf("%12.3f", *run.best);
            else std::printf("%12s", "-");
            if (run.resumed) std::printf("  [resumed @%llu]",
                                         static_cast<unsigned long long>(run.distinct_at_start));
            if (run.fault_events > 0 || run.quarantine_events > 0)
                std::printf("  [faults %llu, quarantined %llu]",
                            static_cast<unsigned long long>(run.fault_events),
                            static_cast<unsigned long long>(run.quarantine_events));
            if (run.checkpoint_events > 0)
                std::printf("  [checkpoints %llu]",
                            static_cast<unsigned long long>(run.checkpoint_events));
            if (!run.distinct_evals) std::printf("  [unterminated]");
            std::printf("\n");
        }
        const double overall_hit =
            total_items > 0 ? 100.0 * static_cast<double>(total_items - total_fresh) /
                                  static_cast<double>(total_items)
                            : 0.0;
        std::printf("  overall: %llu items, %llu distinct, %.1f%% cache hits\n",
                    static_cast<unsigned long long>(total_items),
                    static_cast<unsigned long long>(total_fresh), overall_hit);
    }

    const std::uint64_t draws = bias_draws + target_draws + uniform_draws;
    if (draws > 0) {
        std::printf("mutation draws: %llu genes (bias %.1f%%, target %.1f%%, uniform "
                    "%.1f%%)\n",
                    static_cast<unsigned long long>(genes_mutated),
                    100.0 * static_cast<double>(bias_draws) / static_cast<double>(draws),
                    100.0 * static_cast<double>(target_draws) / static_cast<double>(draws),
                    100.0 * static_cast<double>(uniform_draws) /
                        static_cast<double>(draws));
    }

    if (accounting_errors > 0) {
        std::fprintf(stderr, "trace_inspect: %zu accounting inconsistencies (see above)\n",
                     accounting_errors);
        return 1;
    }
    return 0;
}
