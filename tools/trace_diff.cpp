// trace_diff: compare two JSONL traces of the same workload and gate on
// regressions.  Built for CI: run the same seeded search before and after a
// change, diff the traces, and fail the build when the candidate run drifts
// past the configured thresholds.
//
//   trace_diff BASE.jsonl CAND.jsonl [options]
//
// Two families of checks:
//
//   Deterministic (on by default, zero tolerance): run count and engines,
//   per-run distinct evaluations, total calls, cache hits, retries, and the
//   final best value.  For identical-seed runs of a deterministic engine
//   these must match bit-for-bit (the repo's determinism contract), so any
//   delta is a real behavioural regression, not noise.
//     --allow-best-delta X      tolerate |best_base - best_cand| <= X
//     --allow-count-delta N     tolerate counter deltas up to N
//     --no-counters             skip the deterministic family entirely
//
//   Timing (off by default; wall-clock is machine-dependent so they only
//   gate when explicitly enabled with a nonzero percentage):
//     --max-throughput-drop P   fail when candidate distinct-evals/s is more
//                               than P percent below the baseline
//     --max-phase-slowdown P    fail when any span phase (ga.run, ga.breed,
//                               ...) is more than P percent slower, for
//                               phases taking >= 10 ms in the baseline
//
//   Store check (off by default): treat the candidate as a warm re-run of
//   the baseline against a persistent evaluation store.  In addition to the
//   deterministic gates (which prove the warm run reproduced the cold run's
//   results bit-for-bit), require that the store actually absorbed the work:
//     --store-check             fail unless the candidate served at least
//                               --min-store-hit-rate percent of its
//                               evaluations from the store (default 99)
//     --min-store-hit-rate P    override the hit-rate floor
//
// Exit status: 0 all gates pass, 1 gate failure or unreadable/empty trace,
// 2 bad usage.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "obs/trace.hpp"

using nautilus::obs::TraceEvent;

namespace {

struct RunSummary {
    std::string engine;
    std::uint64_t waves = 0;
    std::uint64_t items = 0;
    std::uint64_t fresh = 0;
    std::uint64_t hits = 0;
    std::uint64_t distinct_at_start = 0;
    std::uint64_t distinct_evals = 0;
    std::uint64_t total_calls = 0;
    std::uint64_t retries = 0;
    std::uint64_t store_hits = 0;
    std::uint64_t store_misses = 0;
    double eval_seconds = 0.0;
    std::optional<double> best;
};

struct TraceSummary {
    std::size_t events = 0;
    std::vector<RunSummary> runs;
    std::map<std::string, double> span_seconds;  // by span name

    std::uint64_t distinct() const
    {
        std::uint64_t n = 0;
        for (const RunSummary& r : runs) n += r.distinct_evals - r.distinct_at_start;
        return n;
    }
    double eval_seconds() const
    {
        double s = 0.0;
        for (const RunSummary& r : runs) s += r.eval_seconds;
        return s;
    }
    // Distinct (fresh) evaluations per second of evaluation wall-clock.
    double throughput() const
    {
        const double s = eval_seconds();
        return s > 0.0 ? static_cast<double>(distinct()) / s : 0.0;
    }
};

std::optional<TraceSummary> load(const std::string& path)
{
    std::ifstream in{path};
    if (!in) {
        std::fprintf(stderr, "trace_diff: cannot read %s\n", path.c_str());
        return std::nullopt;
    }
    TraceSummary sum;
    std::optional<std::size_t> open_run;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        const std::optional<TraceEvent> parsed = nautilus::obs::parse_jsonl_line(line);
        if (!parsed) continue;
        const TraceEvent& ev = *parsed;
        ++sum.events;
        if (ev.type == "run_start") {
            RunSummary run;
            run.engine = ev.string("engine").value_or("?");
            run.distinct_at_start = ev.unsigned_int("distinct_at_start").value_or(0);
            sum.runs.push_back(std::move(run));
            open_run = sum.runs.size() - 1;
        }
        else if (ev.type == "eval_wave" && open_run) {
            RunSummary& run = sum.runs[*open_run];
            ++run.waves;
            run.items += ev.unsigned_int("size").value_or(0);
            run.fresh += ev.unsigned_int("fresh").value_or(0);
            run.hits += ev.unsigned_int("hits").value_or(0);
            run.eval_seconds += ev.number("seconds").value_or(0.0);
        }
        else if (ev.type == "run_end" && open_run) {
            RunSummary& run = sum.runs[*open_run];
            run.distinct_evals = ev.unsigned_int("distinct_evals").value_or(0);
            run.total_calls = ev.unsigned_int("total_calls").value_or(0);
            run.retries = ev.unsigned_int("retries").value_or(0);
            run.store_hits = ev.unsigned_int("store_hits").value_or(0);
            run.store_misses = ev.unsigned_int("store_misses").value_or(0);
            bool feasible = false;
            if (const nautilus::obs::FieldValue* f = ev.find("feasible"))
                if (const bool* b = std::get_if<bool>(f)) feasible = *b;
            if (feasible) run.best = ev.number("best");
            open_run.reset();
        }
        else if (ev.type == "span") {
            sum.span_seconds[ev.string("name").value_or("?")] +=
                ev.number("seconds").value_or(0.0);
        }
    }
    if (sum.events == 0) {
        std::fprintf(stderr, "trace_diff: %s holds no events\n", path.c_str());
        return std::nullopt;
    }
    return sum;
}

const char* usage_text()
{
    return "usage: %s BASE.jsonl CAND.jsonl [--allow-best-delta X]\n"
           "          [--allow-count-delta N] [--no-counters]\n"
           "          [--max-throughput-drop PCT] [--max-phase-slowdown PCT]\n"
           "          [--store-check] [--min-store-hit-rate PCT]\n";
}

[[noreturn]] void usage(const char* argv0)
{
    std::fprintf(stderr, usage_text(), argv0);
    std::exit(2);
}

[[noreturn]] void help(const char* argv0)
{
    std::printf(usage_text(), argv0);
    std::exit(0);
}

// Numeric flag parsing: the whole token must parse and the value must be
// sane, otherwise report the offending flag and exit 2 (usage) instead of
// letting std::stod/std::stoull throw through main.
double parse_number(const char* argv0, const std::string& flag, const char* text)
{
    try {
        std::size_t used = 0;
        const double v = std::stod(text, &used);
        if (used == std::strlen(text) && std::isfinite(v)) return v;
    }
    catch (...) {
    }
    std::fprintf(stderr, "trace_diff: invalid value '%s' for %s (expected a finite number)\n",
                 text, flag.c_str());
    usage(argv0);
}

std::uint64_t parse_u64(const char* argv0, const std::string& flag, const char* text)
{
    try {
        if (text[0] != '-' && text[0] != '+') {
            std::size_t used = 0;
            const unsigned long long v = std::stoull(text, &used);
            if (used == std::strlen(text)) return v;
        }
    }
    catch (...) {
    }
    std::fprintf(stderr,
                 "trace_diff: invalid value '%s' for %s (expected a non-negative integer)\n",
                 text, flag.c_str());
    usage(argv0);
}

}  // namespace

int main(int argc, char** argv)
{
    std::vector<std::string> paths;
    double allow_best_delta = 0.0;
    std::uint64_t allow_count_delta = 0;
    bool counters = true;
    double max_throughput_drop = 0.0;  // percent; 0 = timing gate disabled
    double max_phase_slowdown = 0.0;   // percent; 0 = timing gate disabled
    bool store_check = false;
    double min_store_hit_rate = 99.0;  // percent, only gates with --store-check
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto need_value = [&]() -> const char* {
            if (i + 1 >= argc) usage(argv[0]);
            return argv[++i];
        };
        auto number = [&] { return parse_number(argv[0], arg, need_value()); };
        if (arg == "--allow-best-delta") allow_best_delta = number();
        else if (arg == "--allow-count-delta")
            allow_count_delta = parse_u64(argv[0], arg, need_value());
        else if (arg == "--no-counters") counters = false;
        else if (arg == "--max-throughput-drop") max_throughput_drop = number();
        else if (arg == "--max-phase-slowdown") max_phase_slowdown = number();
        else if (arg == "--store-check") store_check = true;
        else if (arg == "--min-store-hit-rate") min_store_hit_rate = number();
        else if (arg == "--help" || arg == "-h") help(argv[0]);
        else if (arg[0] == '-') {
            std::fprintf(stderr, "trace_diff: unknown option '%s'\n", arg.c_str());
            usage(argv[0]);
        }
        else paths.push_back(arg);
    }
    if (paths.size() != 2) usage(argv[0]);

    const std::optional<TraceSummary> base = load(paths[0]);
    const std::optional<TraceSummary> cand = load(paths[1]);
    if (!base || !cand) return 1;

    std::size_t failures = 0;
    const auto fail = [&](const char* fmt, auto... args) {
        ++failures;
        std::fprintf(stderr, "trace_diff: FAIL: ");
        std::fprintf(stderr, fmt, args...);
        std::fprintf(stderr, "\n");
    };
    const auto check_count = [&](const char* what, std::size_t run,
                                 std::uint64_t b, std::uint64_t c) {
        const std::uint64_t delta = b > c ? b - c : c - b;
        if (delta > allow_count_delta)
            fail("run %zu %s: base %llu, candidate %llu", run, what,
                 static_cast<unsigned long long>(b),
                 static_cast<unsigned long long>(c));
    };

    std::printf("trace_diff: %s (base) vs %s (candidate)\n", paths[0].c_str(),
                paths[1].c_str());
    std::printf("  %-26s %14s %14s\n", "", "base", "candidate");
    std::printf("  %-26s %14zu %14zu\n", "events", base->events, cand->events);
    std::printf("  %-26s %14zu %14zu\n", "runs", base->runs.size(),
                cand->runs.size());
    std::printf("  %-26s %14llu %14llu\n", "distinct evals",
                static_cast<unsigned long long>(base->distinct()),
                static_cast<unsigned long long>(cand->distinct()));
    std::printf("  %-26s %14.4f %14.4f\n", "eval seconds", base->eval_seconds(),
                cand->eval_seconds());
    std::printf("  %-26s %14.1f %14.1f\n", "evals/s", base->throughput(),
                cand->throughput());

    if (counters) {
        if (base->runs.size() != cand->runs.size())
            fail("run count: base %zu, candidate %zu", base->runs.size(),
                 cand->runs.size());
        const std::size_t n = std::min(base->runs.size(), cand->runs.size());
        for (std::size_t i = 0; i < n; ++i) {
            const RunSummary& b = base->runs[i];
            const RunSummary& c = cand->runs[i];
            if (b.engine != c.engine)
                fail("run %zu engine: base '%s', candidate '%s'", i, b.engine.c_str(),
                     c.engine.c_str());
            check_count("distinct evals", i, b.distinct_evals - b.distinct_at_start,
                        c.distinct_evals - c.distinct_at_start);
            check_count("total calls", i, b.total_calls, c.total_calls);
            check_count("cache hits", i, b.hits, c.hits);
            check_count("retries", i, b.retries, c.retries);
            if (b.best.has_value() != c.best.has_value())
                fail("run %zu feasibility: base %s, candidate %s", i,
                     b.best ? "feasible" : "infeasible",
                     c.best ? "feasible" : "infeasible");
            else if (b.best && std::abs(*b.best - *c.best) > allow_best_delta)
                fail("run %zu best: base %.6f, candidate %.6f (delta %.6g > %.6g)", i,
                     *b.best, *c.best, std::abs(*b.best - *c.best), allow_best_delta);
        }
    }

    if (max_throughput_drop > 0.0 && base->throughput() > 0.0) {
        const double floor = base->throughput() * (1.0 - max_throughput_drop / 100.0);
        if (cand->throughput() < floor)
            fail("throughput: candidate %.1f evals/s < %.1f (base %.1f - %.1f%%)",
                 cand->throughput(), floor, base->throughput(), max_throughput_drop);
    }
    if (max_phase_slowdown > 0.0) {
        for (const auto& [name, b_seconds] : base->span_seconds) {
            if (b_seconds < 0.010) continue;  // below timing noise
            const auto it = cand->span_seconds.find(name);
            if (it == cand->span_seconds.end()) continue;
            const double cap = b_seconds * (1.0 + max_phase_slowdown / 100.0);
            if (it->second > cap)
                fail("phase %s: candidate %.4f s > %.4f s (base %.4f s + %.1f%%)",
                     name.c_str(), it->second, cap, b_seconds, max_phase_slowdown);
        }
    }

    if (store_check) {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        for (const RunSummary& r : cand->runs) {
            hits += r.store_hits;
            misses += r.store_misses;
        }
        const std::uint64_t total = hits + misses;
        const double rate =
            total > 0 ? 100.0 * static_cast<double>(hits) / static_cast<double>(total) : 0.0;
        std::printf("  store-check: candidate served %llu/%llu evals from the store"
                    " (%.1f%% hit rate, floor %.1f%%)\n",
                    static_cast<unsigned long long>(hits),
                    static_cast<unsigned long long>(total), rate, min_store_hit_rate);
        if (total == 0)
            fail("%s", "store-check: candidate trace records no store activity"
                       " (was it run with --store?)");
        else if (rate < min_store_hit_rate)
            fail("store-check: hit rate %.1f%% < %.1f%% (%llu/%llu evals hit the store)",
                 rate, min_store_hit_rate, static_cast<unsigned long long>(hits),
                 static_cast<unsigned long long>(total));
    }

    if (failures > 0) {
        std::fprintf(stderr, "trace_diff: %zu gate failure(s)\n", failures);
        return 1;
    }
    std::printf("trace_diff: OK (all gates passed)\n");
    return 0;
}
