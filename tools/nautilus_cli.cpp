// nautilus_cli: command-line front end to the search engines.
//
//   nautilus_cli --ip fft --metric area_luts --direction min
//                --guidance strong --runs 20 --generations 80
//
// Options:
//   --ip {router,fft,network}   IP generator to explore (default router)
//   --metric NAME               metric to optimize (default per IP)
//   --direction {min,max}       optimization direction (default per metric)
//   --guidance {none,weak,strong,estimated}
//                               hint provenance: author hints at the given
//                               confidence, or non-expert estimation from
//                               samples (default none = baseline GA)
//   --runs N                    runs to average (default 10)
//   --generations N             GA generations (default 80)
//   --population N              GA population (default 10)
//   --seed N                    experiment seed (default 2015)
//   --workers N                 threads for population evaluation (default 1;
//                               results are identical for any worker count)
//   --samples N                 estimation samples for --guidance estimated
//   --sensitivity               print the dataset sensitivity report instead
//                               of searching (enumerates the space)
//   --save-dataset PATH         characterize the space and write CSV
//   --dataset PATH              serve evaluations from a saved CSV dataset
//   --pareto METRIC2            map the METRIC x METRIC2 Pareto front with
//                               the multi-objective engine instead of a
//                               single-metric query
//   --trace PATH                write a structured JSONL trace of the run
//                               (inspect with trace_inspect; includes birth
//                               and lineage_summary events, see lineage_report)
//   --lineage                   track search lineage live (hint-class
//                               attribution) and print an efficacy summary at
//                               the end; also feeds the /lineage endpoint
//   --metrics                   print the metrics registry dump at the end
//   --serve PORT                serve live observability over HTTP while the
//                               search runs: /metrics (Prometheus text),
//                               /status (JSON progress), /healthz.  PORT 0
//                               picks an ephemeral port (printed at startup)
//   --serve-grace S             keep the HTTP endpoint alive S seconds after
//                               the run finishes (scrape-after-completion)
//   --progress [S]              print a one-line progress heartbeat to
//                               stderr every S seconds (default 5)
//   --store PATH                cross-run persistent evaluation store: serve
//                               repeat evaluations from PATH and record fresh
//                               ones (results are bit-for-bit identical with
//                               or without the store; see DESIGN.md)
//   --store-max-bytes N         evict oldest store records past N bytes
//                               (default 0 = unlimited)
//
// Fault tolerance / checkpointing (single-run GA mode; any of these flags
// switches from the multi-run experiment harness to one GA run):
//   --checkpoint PATH           write run state to PATH every
//                               --checkpoint-every generations (default 1)
//   --resume PATH               resume a checkpointed run (bit-for-bit
//                               identical to an uninterrupted one at any
//                               --workers count)
//   --die-at-gen N              write a checkpoint at generation N and stop
//                               (deterministic stand-in for a killed run)
//   --retries N                 evaluation attempts per design point
//   --retry-backoff MS          base backoff before retry 2 (exponential)
//   --eval-timeout S            per-attempt watchdog timeout in seconds
//   --chaos-fail R              inject failures with probability R (chaos
//                               mode; implies quarantine-on-exhaustion)
//   --chaos-hang R              inject hangs (sleep) with probability R
//   --chaos-flaky R             perturb values with probability R
//   --chaos-seed N              fault-injection seed (default 0xc4a05)
//
// Job plane (search-as-a-service; see DESIGN.md §12):
//   --job SPEC.json             run one job spec standalone (the reference
//                               side of the server determinism gate); honors
//                               --trace, --store, --checkpoint, --die-at-gen
//   --serve-jobs PORT           run the multi-tenant job server: POST /jobs
//                               submits specs, GET /jobs/<id> streams
//                               progress, DELETE /jobs/<id> cancels with a
//                               resumable checkpoint.  PORT 0 = ephemeral
//   --jobs-capacity N           total evaluation-worker slots shared by all
//                               jobs (default 4)
//   --jobs-dir PATH             directory for per-job traces and checkpoints
//                               (default .)
//   --serve-duration S          serve for S seconds then exit (default 0 =
//                               serve until killed)
//   --log PATH                  append the structured server log (JSONL) to
//                               PATH: per-request access records plus job
//                               lifecycle records, all carrying the request
//                               id echoed in X-Nautilus-Request-Id.  The
//                               in-memory tail is always served at /logs?n=K
//   --log-level L               minimum level kept: debug|info|warn|error
//                               (default info)

#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <memory>
#include <string>
#include <thread>

#include "core/eval_store.hpp"
#include "core/fault_injection.hpp"
#include "core/hint_estimator.hpp"
#include "core/nautilus.hpp"
#include "core/nsga2.hpp"
#include "exp/experiment.hpp"
#include "obs/http_server.hpp"
#include "obs/obs.hpp"
#include "fft/fft_generator.hpp"
#include "ip/analysis.hpp"
#include "noc/network_generator.hpp"
#include "noc/router_generator.hpp"
#include "serve/scheduler.hpp"

using namespace nautilus;
using ip::Metric;

namespace {

struct CliOptions {
    std::string ip = "router";
    std::string metric;
    std::string direction;
    std::string guidance = "none";
    std::size_t runs = 10;
    std::size_t generations = 80;
    std::size_t population = 10;
    std::uint64_t seed = 2015;
    std::size_t workers = 1;
    std::size_t samples = 80;
    bool sensitivity = false;
    std::string save_dataset;
    std::string dataset;
    std::string pareto_metric;
    std::string trace_path;
    bool lineage = false;
    bool metrics = false;
    int serve_port = -1;            // >= 0 enables the HTTP endpoint
    double serve_grace = 0.0;       // seconds to keep serving after the run
    double progress_interval = 0.0; // > 0 enables the stderr heartbeat
    std::string store;              // persistent evaluation store directory
    std::uint64_t store_max_bytes = 0;  // 0 = unlimited
    bool scalar_breed = false;      // pre-refactor GA breed path (bit-identical)

    // Job plane: one standalone spec run, or the multi-tenant server.
    std::string job_spec;            // --job SPEC.json
    int serve_jobs_port = -1;        // >= 0 enables the job server
    std::size_t jobs_capacity = 4;   // shared eval-worker slots
    std::string jobs_dir = ".";      // per-job traces + checkpoints
    double serve_duration = 0.0;     // 0 = serve until killed
    std::string log_path;            // structured server log file (JSONL)
    std::string log_level = "info";  // debug|info|warn|error

    // Single-run fault-tolerance / checkpoint mode.
    std::string checkpoint;
    std::size_t checkpoint_every = 1;
    std::string resume;
    std::size_t die_at_gen = 0;
    std::size_t retries = 1;
    double retry_backoff_ms = 0.0;
    double eval_timeout = 0.0;
    double chaos_fail = 0.0;
    double chaos_hang = 0.0;
    double chaos_flaky = 0.0;
    std::uint64_t chaos_seed = 0xc4a05;

    bool single_run() const
    {
        return !checkpoint.empty() || !resume.empty() || die_at_gen != 0 ||
               chaos_fail > 0.0 || chaos_hang > 0.0 || chaos_flaky > 0.0 ||
               retries > 1 || eval_timeout > 0.0;
    }
};

[[noreturn]] void usage(const char* argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--ip router|fft|network] [--metric NAME]\n"
                 "          [--direction min|max] [--guidance none|weak|strong|estimated]\n"
                 "          [--runs N] [--generations N] [--population N] [--seed N]\n"
                 "          [--workers N] [--samples N] [--sensitivity] [--save-dataset PATH]\n"
                 "          [--dataset PATH] [--pareto METRIC2] [--trace PATH] [--lineage]\n"
                 "          [--metrics]\n"
                 "          [--serve PORT] [--serve-grace S] [--progress [S]]\n"
                 "          [--store PATH] [--store-max-bytes N] [--scalar-breed]\n"
                 "          [--job SPEC.json] [--serve-jobs PORT] [--jobs-capacity N]\n"
                 "          [--jobs-dir PATH] [--serve-duration S]\n"
                 "          [--log PATH] [--log-level debug|info|warn|error]\n"
                 "          [--checkpoint PATH] [--checkpoint-every N] [--resume PATH]\n"
                 "          [--die-at-gen N] [--retries N] [--retry-backoff MS]\n"
                 "          [--eval-timeout S] [--chaos-fail R] [--chaos-hang R]\n"
                 "          [--chaos-flaky R] [--chaos-seed N]\n",
                 argv0);
    std::exit(2);
}

// Numeric flag parsing.  std::stoul/std::stod throw on garbage and silently
// accept partial matches ("--seed 1e99" parses as 1); either way the user
// typed something that is not the number they meant.  These helpers demand
// that the whole token parse, and on failure print the offending flag plus
// the usage text and exit 2 instead of letting the exception escape to
// std::terminate.
std::uint64_t parse_u64(const char* argv0, const std::string& flag, const char* text)
{
    try {
        const std::string s{text};
        if (!s.empty() && s[0] != '-' && s[0] != '+') {
            std::size_t pos = 0;
            const unsigned long long v = std::stoull(s, &pos);
            if (pos == s.size()) return static_cast<std::uint64_t>(v);
        }
    }
    catch (const std::exception&) {
    }
    std::fprintf(stderr, "invalid value '%s' for %s (expected a non-negative integer)\n",
                 text, flag.c_str());
    usage(argv0);
}

std::size_t parse_count(const char* argv0, const std::string& flag, const char* text)
{
    return static_cast<std::size_t>(parse_u64(argv0, flag, text));
}

double parse_number(const char* argv0, const std::string& flag, const char* text)
{
    try {
        const std::string s{text};
        std::size_t pos = 0;
        const double v = std::stod(s, &pos);
        if (pos == s.size() && std::isfinite(v)) return v;
    }
    catch (const std::exception&) {
    }
    std::fprintf(stderr, "invalid value '%s' for %s (expected a finite number)\n", text,
                 flag.c_str());
    usage(argv0);
}

CliOptions parse(int argc, char** argv)
{
    CliOptions opt;
    auto need_value = [&](int& i) -> const char* {
        if (i + 1 >= argc) usage(argv[0]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto count = [&](int& j) { return parse_count(argv[0], arg, need_value(j)); };
        const auto u64 = [&](int& j) { return parse_u64(argv[0], arg, need_value(j)); };
        const auto number = [&](int& j) { return parse_number(argv[0], arg, need_value(j)); };
        if (arg == "--ip") opt.ip = need_value(i);
        else if (arg == "--metric") opt.metric = need_value(i);
        else if (arg == "--direction") opt.direction = need_value(i);
        else if (arg == "--guidance") opt.guidance = need_value(i);
        else if (arg == "--runs") opt.runs = count(i);
        else if (arg == "--generations") opt.generations = count(i);
        else if (arg == "--population") opt.population = count(i);
        else if (arg == "--seed") opt.seed = u64(i);
        else if (arg == "--workers") opt.workers = count(i);
        else if (arg == "--samples") opt.samples = count(i);
        else if (arg == "--sensitivity") opt.sensitivity = true;
        else if (arg == "--save-dataset") opt.save_dataset = need_value(i);
        else if (arg == "--dataset") opt.dataset = need_value(i);
        else if (arg == "--pareto") opt.pareto_metric = need_value(i);
        else if (arg == "--trace") opt.trace_path = need_value(i);
        else if (arg == "--lineage") opt.lineage = true;
        else if (arg == "--metrics") opt.metrics = true;
        else if (arg == "--serve") {
            const std::uint64_t port = u64(i);
            if (port > 65535) {
                std::fprintf(stderr, "--serve port out of range (0..65535)\n");
                usage(argv[0]);
            }
            opt.serve_port = static_cast<int>(port);
        }
        else if (arg == "--serve-grace") opt.serve_grace = number(i);
        else if (arg == "--progress") {
            // Optional numeric value: `--progress 2` or bare `--progress`.
            opt.progress_interval = 5.0;
            if (i + 1 < argc && std::isdigit(static_cast<unsigned char>(argv[i + 1][0])))
                opt.progress_interval = parse_number(argv[0], arg, argv[++i]);
        }
        else if (arg == "--store") opt.store = need_value(i);
        else if (arg == "--store-max-bytes") opt.store_max_bytes = u64(i);
        else if (arg == "--scalar-breed") opt.scalar_breed = true;
        else if (arg == "--job") opt.job_spec = need_value(i);
        else if (arg == "--serve-jobs") {
            const std::uint64_t port = u64(i);
            if (port > 65535) {
                std::fprintf(stderr, "--serve-jobs port out of range (0..65535)\n");
                usage(argv[0]);
            }
            opt.serve_jobs_port = static_cast<int>(port);
        }
        else if (arg == "--jobs-capacity") opt.jobs_capacity = count(i);
        else if (arg == "--jobs-dir") opt.jobs_dir = need_value(i);
        else if (arg == "--serve-duration") opt.serve_duration = number(i);
        else if (arg == "--log") opt.log_path = need_value(i);
        else if (arg == "--log-level") opt.log_level = need_value(i);
        else if (arg == "--checkpoint") opt.checkpoint = need_value(i);
        else if (arg == "--checkpoint-every") opt.checkpoint_every = count(i);
        else if (arg == "--resume") opt.resume = need_value(i);
        else if (arg == "--die-at-gen") opt.die_at_gen = count(i);
        else if (arg == "--retries") opt.retries = count(i);
        else if (arg == "--retry-backoff") opt.retry_backoff_ms = number(i);
        else if (arg == "--eval-timeout") opt.eval_timeout = number(i);
        else if (arg == "--chaos-fail") opt.chaos_fail = number(i);
        else if (arg == "--chaos-hang") opt.chaos_hang = number(i);
        else if (arg == "--chaos-flaky") opt.chaos_flaky = number(i);
        else if (arg == "--chaos-seed") opt.chaos_seed = u64(i);
        else if (arg == "--help" || arg == "-h") usage(argv[0]);
        else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage(argv[0]);
        }
    }
    if (opt.workers == 0) {
        std::fprintf(stderr, "--workers must be at least 1\n");
        usage(argv[0]);
    }
    return opt;
}

std::unique_ptr<ip::IpGenerator> make_generator(const std::string& name)
{
    if (name == "router") return std::make_unique<noc::RouterGenerator>();
    if (name == "fft")
        return std::make_unique<fft::FftGenerator>(synth::FpgaTech::virtex6_lx760t(),
                                                   /*measure_snr=*/false);
    if (name == "network") return std::make_unique<noc::NetworkGenerator>();
    std::fprintf(stderr, "unknown IP '%s' (router, fft, network)\n", name.c_str());
    std::exit(2);
}

Metric default_metric(const std::string& ip)
{
    if (ip == "fft") return Metric::area_luts;
    if (ip == "network") return Metric::bisection_gbps;
    return Metric::freq_mhz;
}

std::shared_ptr<EvalStore> open_store(const CliOptions& opt)
{
    if (opt.store.empty()) return nullptr;
    EvalStoreConfig sc;
    sc.path = opt.store;
    sc.max_bytes = opt.store_max_bytes;
    return std::make_shared<EvalStore>(sc);
}

// `--job SPEC.json`: run one job spec standalone through the same
// serve::run_job entry point the scheduler uses.  This is the reference
// side of the server determinism gate -- its trace must be byte-identical
// to the server-side trace of the same spec.
int run_job_mode(const CliOptions& opt)
{
    std::ifstream in{opt.job_spec};
    if (!in) {
        std::fprintf(stderr, "cannot read %s\n", opt.job_spec.c_str());
        return 2;
    }
    const std::string json{std::istreambuf_iterator<char>{in},
                           std::istreambuf_iterator<char>{}};
    serve::JobSpec spec;
    try {
        spec = serve::parse_job_spec(json);
    }
    catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "invalid job spec: %s\n", e.what());
        return 2;
    }

    serve::JobRunInputs inputs;
    inputs.trace_path = opt.trace_path;
    inputs.checkpoint_path = opt.checkpoint;
    inputs.halt_at_generation = opt.die_at_gen;
    std::shared_ptr<EvalStore> store;
    try {
        store = open_store(opt);
        inputs.store = store;
        std::printf("job: %s\n", serve::canonical_spec_json(spec).c_str());
        const serve::JobOutcome r = serve::run_job(spec, inputs);
        if (r.halted)
            std::printf("halted at a checkpoint boundary (rerun to resume)\n");
        if (!r.feasible) std::printf("no feasible design found\n");
        else if (spec.engine == "nsga2") {
            std::printf("front: %zu points\n", r.front.size());
            for (const serve::FrontEntry& p : r.front) {
                std::printf("  [");
                for (std::size_t k = 0; k < p.values.size(); ++k)
                    std::printf("%s%.17g", k == 0 ? "" : ", ", p.values[k]);
                std::printf("]  %s\n", p.genome.c_str());
            }
        }
        else {
            std::printf("best: %.17g\n", r.best);
            if (!r.best_genome.empty()) std::printf("genome: %s\n", r.best_genome.c_str());
        }
        std::printf("evals: %zu distinct, %zu calls\n", r.distinct_evals,
                    r.total_eval_calls);
        if (store) store->flush();
    }
    catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
    return 0;
}

// `--serve-jobs PORT`: the multi-tenant job server.  One scheduler over a
// shared worker-slot pool and (optionally) one shared evaluation store;
// the observability HTTP server is the submission plane.
int serve_jobs_mode(const CliOptions& opt)
{
    const auto metrics = std::make_shared<obs::MetricsRegistry>();
    const auto progress = std::make_shared<obs::ProgressTracker>();

    // The structured log is always live (the in-memory ring backs /logs);
    // --log additionally appends every record to a JSONL file.
    const auto level = obs::log_level_from_name(opt.log_level);
    if (!level) {
        std::fprintf(stderr, "unknown log level '%s' (expected debug|info|warn|error)\n",
                     opt.log_level.c_str());
        return 2;
    }
    std::shared_ptr<obs::Logger> logger;
    try {
        obs::LogConfig lc;
        lc.level = *level;
        lc.path = opt.log_path;
        logger = std::make_shared<obs::Logger>(lc);
    }
    catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }

    std::shared_ptr<EvalStore> store;
    try {
        store = open_store(opt);
    }
    catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
    if (store) {
        store->attach_metrics(metrics);
        std::printf("evaluation store: %s (%zu records)\n", opt.store.c_str(),
                    store->records());
    }

    serve::SchedulerConfig sc;
    sc.worker_capacity = opt.jobs_capacity;
    sc.jobs_dir = opt.jobs_dir;
    sc.store = store;
    sc.metrics = metrics;
    sc.log = logger;
    auto scheduler = std::make_shared<serve::JobScheduler>(sc);

    obs::HttpServerConfig http;
    http.port = static_cast<std::uint16_t>(opt.serve_jobs_port);
    auto server = std::make_unique<obs::ObsHttpServer>(http, metrics, progress);
    server->attach_logger(logger);
    server->attach_jobs(scheduler);
    try {
        server->start();
    }
    catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
    std::printf("serving jobs on http://127.0.0.1:%u/jobs (capacity %zu, dir %s)\n",
                static_cast<unsigned>(server->port()), scheduler->capacity(),
                opt.jobs_dir.c_str());
    if (!opt.log_path.empty())
        std::printf("logging to %s (level %s)\n", opt.log_path.c_str(),
                    opt.log_level.c_str());
    std::fflush(stdout);

    if (opt.serve_duration > 0.0)
        std::this_thread::sleep_for(std::chrono::duration<double>(opt.serve_duration));
    else
        while (true) std::this_thread::sleep_for(std::chrono::hours(1));

    server->stop();
    server.reset();     // drops the server's scheduler reference
    scheduler.reset();  // cancels + joins running jobs (checkpoints written)
    if (store) store->flush();
    std::printf("job server stopped\n");
    return 0;
}

}  // namespace

int main(int argc, char** argv)
{
    const CliOptions opt = parse(argc, argv);

    // Job-plane modes are self-contained (specs name their own IP and the
    // server multiplexes many searches); handle them before the single-query
    // setup below so e.g. --trace is not opened twice.
    if (!opt.job_spec.empty()) return run_job_mode(opt);
    if (opt.serve_jobs_port >= 0) return serve_jobs_mode(opt);

    const auto generator = make_generator(opt.ip);

    Metric metric = default_metric(opt.ip);
    if (!opt.metric.empty()) {
        const auto parsed = ip::metric_from_name(opt.metric);
        if (!parsed) {
            std::fprintf(stderr, "unknown metric '%s'\n", opt.metric.c_str());
            return 2;
        }
        metric = *parsed;
    }
    Direction direction = ip::metric_default_direction(metric);
    if (opt.direction == "min") direction = Direction::minimize;
    else if (opt.direction == "max") direction = Direction::maximize;
    else if (!opt.direction.empty()) usage(argv[0]);

    std::printf("IP: %s (%zu parameters, %.0f configurations)\n",
                generator->name().c_str(), generator->space().size(),
                generator->space().cardinality());

    // Observability: tracing to a JSONL file and/or an end-of-run metrics
    // dump.  Both default off; a default-constructed Instrumentation costs a
    // predicted branch per site.
    obs::Instrumentation inst;
    if (!opt.trace_path.empty()) {
        try {
            inst.tracer = obs::Tracer{std::make_shared<obs::JsonlFileSink>(opt.trace_path)};
        }
        catch (const std::exception& e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 1;
        }
        std::printf("tracing to %s\n", opt.trace_path.c_str());
    }
    if (opt.lineage) inst.lineage = std::make_shared<obs::LineageTracker>();
    if (opt.metrics) inst.metrics = std::make_shared<obs::MetricsRegistry>();
    const auto dump_metrics = [&] {
        if (!opt.metrics || !inst.metrics) return;
        std::cout << "-- metrics --\n";
        inst.metrics->write_text(std::cout);
    };
    // End-of-run lineage efficacy line: the last finished run's per-hint-class
    // offspring -> survived -> improved funnel plus winner attribution.
    const auto dump_lineage = [&] {
        if (!inst.lineage) return;
        const obs::LineageCounters c = inst.lineage->counters();
        if (!c.have_last) return;
        const obs::LineageSummary& s = c.last;
        std::printf("lineage (%s, last of %llu runs): %llu births "
                    "(%llu roots, %llu elites, %llu mutation, %llu crossover), "
                    "%llu survived, %llu improved\n",
                    c.engine.c_str(), static_cast<unsigned long long>(c.runs),
                    static_cast<unsigned long long>(s.births),
                    static_cast<unsigned long long>(s.roots),
                    static_cast<unsigned long long>(s.elites),
                    static_cast<unsigned long long>(s.mutation_births),
                    static_cast<unsigned long long>(s.crossover_births),
                    static_cast<unsigned long long>(s.survived),
                    static_cast<unsigned long long>(s.improved));
        std::printf("  hint efficacy (offspring/survived/improved): "
                    "bias %llu/%llu/%llu, target %llu/%llu/%llu, "
                    "uniform %llu/%llu/%llu\n",
                    static_cast<unsigned long long>(s.offspring_bias),
                    static_cast<unsigned long long>(s.survived_bias),
                    static_cast<unsigned long long>(s.improved_bias),
                    static_cast<unsigned long long>(s.offspring_target),
                    static_cast<unsigned long long>(s.survived_target),
                    static_cast<unsigned long long>(s.improved_target),
                    static_cast<unsigned long long>(s.offspring_uniform),
                    static_cast<unsigned long long>(s.survived_uniform),
                    static_cast<unsigned long long>(s.improved_uniform));
        if (s.have_winner)
            std::printf("  winner genes: %llu bias, %llu target, %llu uniform, "
                        "%llu fresh, %llu repair (ancestry depth %llu)\n",
                        static_cast<unsigned long long>(s.winner_bias),
                        static_cast<unsigned long long>(s.winner_target),
                        static_cast<unsigned long long>(s.winner_uniform),
                        static_cast<unsigned long long>(s.winner_fresh),
                        static_cast<unsigned long long>(s.winner_repair),
                        static_cast<unsigned long long>(s.winner_depth));
    };

    // Live observability: the progress tracker feeds both the HTTP /status
    // endpoint and the stderr heartbeat; --serve additionally exposes the
    // metrics registry (created on demand so /metrics is never empty-handed).
    std::shared_ptr<obs::ProgressTracker> progress;
    std::unique_ptr<obs::ObsHttpServer> server;
    std::unique_ptr<obs::ProgressHeartbeat> heartbeat;
    if (opt.serve_port >= 0 || opt.progress_interval > 0.0) {
        progress = std::make_shared<obs::ProgressTracker>();
        inst.progress = progress;
    }
    if (opt.serve_port >= 0) {
        if (!inst.metrics) inst.metrics = std::make_shared<obs::MetricsRegistry>();
        obs::HttpServerConfig http;
        http.port = static_cast<std::uint16_t>(opt.serve_port);
        server = std::make_unique<obs::ObsHttpServer>(http, inst.metrics, progress,
                                                      inst.lineage);
        try {
            server->start();
        }
        catch (const std::exception& e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 1;
        }
        std::printf("serving http://127.0.0.1:%u/  (/metrics /status /healthz)\n",
                    static_cast<unsigned>(server->port()));
        std::fflush(stdout);
    }
    if (opt.progress_interval > 0.0)
        heartbeat = std::make_unique<obs::ProgressHeartbeat>(progress, opt.progress_interval);

    // Cross-run persistent evaluation store: repeat evaluations are served
    // from disk, fresh ones recorded for the next invocation.  Namespaced by
    // IP + metric so different queries never collide in one store directory.
    std::shared_ptr<EvalStore> store;
    if (!opt.store.empty()) {
        EvalStoreConfig sc;
        sc.path = opt.store;
        sc.max_bytes = opt.store_max_bytes;
        try {
            store = std::make_shared<EvalStore>(sc);
        }
        catch (const std::exception& e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 1;
        }
        if (inst.metrics) store->attach_metrics(inst.metrics);
        std::printf("evaluation store: %s (%zu records)\n", opt.store.c_str(),
                    store->records());
    }
    const auto dump_store = [&] {
        if (!store) return;
        store->flush();
        const EvalStoreCounters c = store->counters();
        const std::uint64_t probes = c.hits + c.misses;
        std::printf("store: %zu records; %llu hits / %llu misses (%.1f%% hit rate), "
                    "%llu writes, %llu compactions, %llu evictions\n",
                    store->records(), static_cast<unsigned long long>(c.hits),
                    static_cast<unsigned long long>(c.misses),
                    probes == 0 ? 0.0 : 100.0 * static_cast<double>(c.hits) / probes,
                    static_cast<unsigned long long>(c.writes),
                    static_cast<unsigned long long>(c.compactions),
                    static_cast<unsigned long long>(c.evictions));
    };

    // Wind down the live plane: stop the heartbeat, honor --serve-grace so a
    // scraper can still read the final /metrics + /status, then stop serving.
    const auto finish = [&](int code) {
        heartbeat.reset();
        if (server != nullptr) {
            if (opt.serve_grace > 0.0) {
                std::printf("serving for %.1f more seconds (--serve-grace)\n",
                            opt.serve_grace);
                std::fflush(stdout);
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(opt.serve_grace));
            }
            server->stop();
        }
        return code;
    };

    if (!opt.save_dataset.empty() || opt.sensitivity) {
        std::printf("characterizing the full design space...\n");
        const ip::Dataset ds = ip::Dataset::enumerate(*generator);
        std::printf("%zu points, %zu feasible\n", ds.size(), ds.feasible_count());
        if (!opt.save_dataset.empty()) {
            std::ofstream out{opt.save_dataset};
            if (!out) {
                std::fprintf(stderr, "cannot write %s\n", opt.save_dataset.c_str());
                return finish(1);
            }
            ds.save_csv(out, *generator);
            std::printf("dataset written to %s\n", opt.save_dataset.c_str());
        }
        if (opt.sensitivity) {
            const auto effects = ip::main_effects(ds, *generator, metric);
            ip::print_sensitivity_report(std::cout, *generator, metric, effects);
        }
        return finish(0);
    }

    // Pareto mode: map a two-metric front with NSGA-II.
    if (!opt.pareto_metric.empty()) {
        const auto second = ip::metric_from_name(opt.pareto_metric);
        if (!second) {
            std::fprintf(stderr, "unknown metric '%s'\n", opt.pareto_metric.c_str());
            return finish(2);
        }
        const std::vector<Direction> dirs{direction,
                                          ip::metric_default_direction(*second)};
        const MultiEvalFn eval =
            [&](const Genome& g) -> std::optional<std::vector<double>> {
            const auto mv = generator->evaluate(g);
            if (!mv.feasible) return std::nullopt;
            const auto a = mv.try_get(metric);
            const auto b = mv.try_get(*second);
            if (!a || !b) return std::nullopt;
            return std::vector<double>{*a, *b};
        };
        MultiObjectiveConfig mo;
        mo.generations = opt.generations;
        mo.seed = opt.seed;
        mo.eval_workers = opt.workers;
        mo.obs = inst;
        if (store) {
            mo.store = store;
            mo.store_namespace = EvalStore::namespace_key(
                opt.ip + "/" + ip::metric_name(metric) + "+" + ip::metric_name(*second));
        }
        const Nsga2Engine engine{generator->space(), mo, dirs, eval,
                                 HintSet::none(generator->space())};
        const auto result = engine.run();
        std::printf("Pareto front of %s vs %s: %zu points (%zu evaluations)\n",
                    ip::metric_name(metric), ip::metric_name(*second),
                    result.front.size(), result.distinct_evals);
        for (const auto& p : result.front)
            std::printf("  %12.2f  %12.2f   %s\n", p.values[0], p.values[1],
                        p.genome.to_string(generator->space()).c_str());
        std::printf("evaluation pipeline: %.3f s @ %zu workers, %zu distinct / %zu calls\n",
                    result.eval_seconds, result.eval_workers, result.distinct_evals,
                    result.total_eval_calls);
        dump_lineage();
        dump_store();
        dump_metrics();
        return finish(0);
    }

    // Single-run GA mode: fault tolerance, chaos injection, checkpoints.
    // The experiment harness averages many runs; checkpoint/resume and chaos
    // accounting are about *one* long-lived run, so these flags bypass it.
    if (opt.single_run()) {
        EvalFn eval = generator->metric_eval(metric);
        std::unique_ptr<FaultInjectingEvaluator> chaos;
        const bool chaotic =
            opt.chaos_fail > 0.0 || opt.chaos_hang > 0.0 || opt.chaos_flaky > 0.0;
        if (chaotic) {
            FaultInjectionConfig fic;
            fic.fail_rate = opt.chaos_fail;
            fic.hang_rate = opt.chaos_hang;
            fic.flaky_value_rate = opt.chaos_flaky;
            fic.seed = opt.chaos_seed;
            chaos = std::make_unique<FaultInjectingEvaluator>(std::move(eval), fic);
            eval = chaos->as_eval_fn();
            std::printf("chaos mode: fail %.3f, hang %.3f, flaky %.3f (seed %llu)\n",
                        opt.chaos_fail, opt.chaos_hang, opt.chaos_flaky,
                        static_cast<unsigned long long>(opt.chaos_seed));
        }

        GaConfig ga;
        ga.generations = opt.generations;
        ga.population_size = opt.population;
        ga.seed = opt.seed;
        ga.eval_workers = opt.workers;
        ga.obs = inst;
        ga.fault.retry.max_attempts = std::max<std::size_t>(opt.retries, 1);
        ga.fault.retry.backoff_ms = opt.retry_backoff_ms;
        ga.fault.retry.timeout_seconds = opt.eval_timeout;
        ga.fault.tolerate_failures = chaotic || opt.retries > 1;
        ga.checkpoint_path = !opt.checkpoint.empty() ? opt.checkpoint : opt.resume;
        ga.checkpoint_every = opt.checkpoint_every;
        ga.halt_at_generation = opt.die_at_gen;
        ga.scalar_breed = opt.scalar_breed;
        if (store) {
            ga.store = store;
            ga.store_namespace =
                EvalStore::namespace_key(opt.ip + "/" + ip::metric_name(metric));
        }

        HintSet hints = HintSet::none(generator->space());
        if (opt.guidance == "weak" || opt.guidance == "strong") {
            const GuidanceLevel level =
                opt.guidance == "weak" ? GuidanceLevel::weak : GuidanceLevel::strong;
            hints = apply_guidance(generator->author_hints(metric), direction, level);
        }

        try {
            const GaEngine engine{generator->space(), ga, direction, eval, hints};
            const RunResult r =
                opt.resume.empty() ? engine.run() : engine.resume(opt.resume);
            if (r.halted)
                std::printf("halted at generation %zu (checkpoint written to %s)\n",
                            ga.halt_at_generation, ga.checkpoint_path.c_str());
            else if (r.best_eval.feasible)
                std::printf("best %s = %.4f after %zu generations: %s\n",
                            ip::metric_name(metric), r.best_eval.value,
                            r.history.size(),  // includes pre-checkpoint gens
                            r.best_genome.to_string(generator->space()).c_str());
            else
                std::printf("no feasible design found\n");
            std::printf(
                "evaluations: %zu distinct / %zu calls; attempts %llu (retries %llu, "
                "failures %llu, timeouts %llu, quarantined %llu)\n",
                r.distinct_evals, r.total_eval_calls,
                static_cast<unsigned long long>(r.fault.attempts),
                static_cast<unsigned long long>(r.fault.retries),
                static_cast<unsigned long long>(r.fault.failures),
                static_cast<unsigned long long>(r.fault.timeouts),
                static_cast<unsigned long long>(r.fault.quarantined));
            if (store)
                std::printf("store served %zu of %zu distinct evaluations\n",
                            r.store_hits, r.distinct_evals);
            if (chaos)
                std::printf("chaos injected: %llu failures, %llu hangs, %llu flaky\n",
                            static_cast<unsigned long long>(chaos->injected_failures()),
                            static_cast<unsigned long long>(chaos->injected_hangs()),
                            static_cast<unsigned long long>(chaos->injected_flaky()));
        }
        catch (const std::exception& e) {
            std::fprintf(stderr, "%s\n", e.what());
            return finish(1);
        }
        dump_lineage();
        dump_store();
        dump_metrics();
        return finish(0);
    }

    exp::ExperimentConfig cfg;
    cfg.runs = opt.runs;
    cfg.ga.generations = opt.generations;
    cfg.ga.population_size = opt.population;
    cfg.ga.seed = opt.seed;
    cfg.ga.eval_workers = opt.workers;
    cfg.ga.obs = inst;
    cfg.ga.scalar_breed = opt.scalar_breed;
    if (store) {
        cfg.ga.store = store;
        cfg.ga.store_namespace =
            EvalStore::namespace_key(opt.ip + "/" + ip::metric_name(metric));
    }

    const exp::Query query = exp::Query::simple(
        std::string(direction_name(direction)) + " " + ip::metric_name(metric), metric,
        direction);

    exp::Experiment experiment{*generator, query, cfg};
    std::optional<ip::Dataset> cached;
    if (!opt.dataset.empty()) {
        std::ifstream in{opt.dataset};
        if (!in) {
            std::fprintf(stderr, "cannot read %s\n", opt.dataset.c_str());
            return finish(1);
        }
        cached = ip::Dataset::load_csv(in, *generator);
        std::printf("serving evaluations from %s (%zu points)\n", opt.dataset.c_str(),
                    cached->size());
        experiment.use_dataset(*cached);
    }
    experiment.add_engine({"baseline", GuidanceLevel::none, std::nullopt, std::nullopt});
    if (opt.guidance == "weak" || opt.guidance == "strong") {
        const GuidanceLevel level =
            opt.guidance == "weak" ? GuidanceLevel::weak : GuidanceLevel::strong;
        experiment.add_engine({"nautilus-" + opt.guidance, level, std::nullopt,
                               std::nullopt});
    }
    else if (opt.guidance == "estimated") {
        HintEstimatorConfig ec;
        ec.samples = opt.samples;
        ec.seed = opt.seed ^ 0xe57;
        ec.tracer = inst.tracer;
        HintSet estimated =
            HintEstimator{ec}.estimate(generator->space(), generator->metric_eval(metric));
        if (direction == Direction::minimize) estimated = estimated.negated_bias();
        experiment.add_engine({"nautilus-estimated", GuidanceLevel::strong,
                               std::move(estimated), std::nullopt});
    }
    else if (opt.guidance != "none") {
        usage(argv[0]);
    }

    const exp::ExperimentResult result = experiment.run();
    result.print(std::cout);
    dump_lineage();
    dump_store();
    dump_metrics();
    return finish(0);
}
