# Empty dependencies file for bench_fig2_noc_tradeoffs.
# This may be replaced when dependencies are built.
