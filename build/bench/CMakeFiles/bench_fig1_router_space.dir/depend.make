# Empty dependencies file for bench_fig1_router_space.
# This may be replaced when dependencies are built.
