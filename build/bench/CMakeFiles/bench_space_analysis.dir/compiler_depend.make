# Empty compiler generated dependencies file for bench_space_analysis.
# This may be replaced when dependencies are built.
