file(REMOVE_RECURSE
  "CMakeFiles/bench_space_analysis.dir/bench_space_analysis.cpp.o"
  "CMakeFiles/bench_space_analysis.dir/bench_space_analysis.cpp.o.d"
  "bench_space_analysis"
  "bench_space_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_space_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
