file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_bias_hints.dir/bench_fig3_bias_hints.cpp.o"
  "CMakeFiles/bench_fig3_bias_hints.dir/bench_fig3_bias_hints.cpp.o.d"
  "bench_fig3_bias_hints"
  "bench_fig3_bias_hints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_bias_hints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
