# Empty compiler generated dependencies file for bench_fig3_bias_hints.
# This may be replaced when dependencies are built.
