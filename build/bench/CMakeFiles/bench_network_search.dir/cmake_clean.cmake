file(REMOVE_RECURSE
  "CMakeFiles/bench_network_search.dir/bench_network_search.cpp.o"
  "CMakeFiles/bench_network_search.dir/bench_network_search.cpp.o.d"
  "bench_network_search"
  "bench_network_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_network_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
