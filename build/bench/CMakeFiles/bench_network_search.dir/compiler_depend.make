# Empty compiler generated dependencies file for bench_network_search.
# This may be replaced when dependencies are built.
