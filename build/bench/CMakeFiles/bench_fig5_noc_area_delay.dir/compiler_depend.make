# Empty compiler generated dependencies file for bench_fig5_noc_area_delay.
# This may be replaced when dependencies are built.
