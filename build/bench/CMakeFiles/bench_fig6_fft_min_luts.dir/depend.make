# Empty dependencies file for bench_fig6_fft_min_luts.
# This may be replaced when dependencies are built.
