file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_fft_min_luts.dir/bench_fig6_fft_min_luts.cpp.o"
  "CMakeFiles/bench_fig6_fft_min_luts.dir/bench_fig6_fft_min_luts.cpp.o.d"
  "bench_fig6_fft_min_luts"
  "bench_fig6_fft_min_luts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_fft_min_luts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
