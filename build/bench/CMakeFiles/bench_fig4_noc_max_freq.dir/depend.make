# Empty dependencies file for bench_fig4_noc_max_freq.
# This may be replaced when dependencies are built.
