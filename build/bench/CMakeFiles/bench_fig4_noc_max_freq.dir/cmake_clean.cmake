file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_noc_max_freq.dir/bench_fig4_noc_max_freq.cpp.o"
  "CMakeFiles/bench_fig4_noc_max_freq.dir/bench_fig4_noc_max_freq.cpp.o.d"
  "bench_fig4_noc_max_freq"
  "bench_fig4_noc_max_freq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_noc_max_freq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
