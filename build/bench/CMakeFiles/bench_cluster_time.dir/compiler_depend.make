# Empty compiler generated dependencies file for bench_cluster_time.
# This may be replaced when dependencies are built.
