file(REMOVE_RECURSE
  "CMakeFiles/bench_cluster_time.dir/bench_cluster_time.cpp.o"
  "CMakeFiles/bench_cluster_time.dir/bench_cluster_time.cpp.o.d"
  "bench_cluster_time"
  "bench_cluster_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cluster_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
