# Empty compiler generated dependencies file for bench_fig7_fft_tput_per_lut.
# This may be replaced when dependencies are built.
