file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_fft_tput_per_lut.dir/bench_fig7_fft_tput_per_lut.cpp.o"
  "CMakeFiles/bench_fig7_fft_tput_per_lut.dir/bench_fig7_fft_tput_per_lut.cpp.o.d"
  "bench_fig7_fft_tput_per_lut"
  "bench_fig7_fft_tput_per_lut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_fft_tput_per_lut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
