file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_wrong_hints.dir/bench_ablation_wrong_hints.cpp.o"
  "CMakeFiles/bench_ablation_wrong_hints.dir/bench_ablation_wrong_hints.cpp.o.d"
  "bench_ablation_wrong_hints"
  "bench_ablation_wrong_hints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_wrong_hints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
