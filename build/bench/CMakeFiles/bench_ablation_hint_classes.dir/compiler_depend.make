# Empty compiler generated dependencies file for bench_ablation_hint_classes.
# This may be replaced when dependencies are built.
