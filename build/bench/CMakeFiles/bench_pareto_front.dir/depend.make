# Empty dependencies file for bench_pareto_front.
# This may be replaced when dependencies are built.
