file(REMOVE_RECURSE
  "libnautilus_core.a"
)
