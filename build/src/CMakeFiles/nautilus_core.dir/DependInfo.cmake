
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/evaluator.cpp" "src/CMakeFiles/nautilus_core.dir/core/evaluator.cpp.o" "gcc" "src/CMakeFiles/nautilus_core.dir/core/evaluator.cpp.o.d"
  "/root/repo/src/core/fitness.cpp" "src/CMakeFiles/nautilus_core.dir/core/fitness.cpp.o" "gcc" "src/CMakeFiles/nautilus_core.dir/core/fitness.cpp.o.d"
  "/root/repo/src/core/ga.cpp" "src/CMakeFiles/nautilus_core.dir/core/ga.cpp.o" "gcc" "src/CMakeFiles/nautilus_core.dir/core/ga.cpp.o.d"
  "/root/repo/src/core/genome.cpp" "src/CMakeFiles/nautilus_core.dir/core/genome.cpp.o" "gcc" "src/CMakeFiles/nautilus_core.dir/core/genome.cpp.o.d"
  "/root/repo/src/core/hint_estimator.cpp" "src/CMakeFiles/nautilus_core.dir/core/hint_estimator.cpp.o" "gcc" "src/CMakeFiles/nautilus_core.dir/core/hint_estimator.cpp.o.d"
  "/root/repo/src/core/hints.cpp" "src/CMakeFiles/nautilus_core.dir/core/hints.cpp.o" "gcc" "src/CMakeFiles/nautilus_core.dir/core/hints.cpp.o.d"
  "/root/repo/src/core/local_search.cpp" "src/CMakeFiles/nautilus_core.dir/core/local_search.cpp.o" "gcc" "src/CMakeFiles/nautilus_core.dir/core/local_search.cpp.o.d"
  "/root/repo/src/core/nautilus.cpp" "src/CMakeFiles/nautilus_core.dir/core/nautilus.cpp.o" "gcc" "src/CMakeFiles/nautilus_core.dir/core/nautilus.cpp.o.d"
  "/root/repo/src/core/nsga2.cpp" "src/CMakeFiles/nautilus_core.dir/core/nsga2.cpp.o" "gcc" "src/CMakeFiles/nautilus_core.dir/core/nsga2.cpp.o.d"
  "/root/repo/src/core/operators.cpp" "src/CMakeFiles/nautilus_core.dir/core/operators.cpp.o" "gcc" "src/CMakeFiles/nautilus_core.dir/core/operators.cpp.o.d"
  "/root/repo/src/core/parameter.cpp" "src/CMakeFiles/nautilus_core.dir/core/parameter.cpp.o" "gcc" "src/CMakeFiles/nautilus_core.dir/core/parameter.cpp.o.d"
  "/root/repo/src/core/pareto.cpp" "src/CMakeFiles/nautilus_core.dir/core/pareto.cpp.o" "gcc" "src/CMakeFiles/nautilus_core.dir/core/pareto.cpp.o.d"
  "/root/repo/src/core/random_search.cpp" "src/CMakeFiles/nautilus_core.dir/core/random_search.cpp.o" "gcc" "src/CMakeFiles/nautilus_core.dir/core/random_search.cpp.o.d"
  "/root/repo/src/core/rng.cpp" "src/CMakeFiles/nautilus_core.dir/core/rng.cpp.o" "gcc" "src/CMakeFiles/nautilus_core.dir/core/rng.cpp.o.d"
  "/root/repo/src/core/run_stats.cpp" "src/CMakeFiles/nautilus_core.dir/core/run_stats.cpp.o" "gcc" "src/CMakeFiles/nautilus_core.dir/core/run_stats.cpp.o.d"
  "/root/repo/src/core/selection.cpp" "src/CMakeFiles/nautilus_core.dir/core/selection.cpp.o" "gcc" "src/CMakeFiles/nautilus_core.dir/core/selection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
