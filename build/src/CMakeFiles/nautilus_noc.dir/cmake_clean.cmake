file(REMOVE_RECURSE
  "CMakeFiles/nautilus_noc.dir/noc/network_generator.cpp.o"
  "CMakeFiles/nautilus_noc.dir/noc/network_generator.cpp.o.d"
  "CMakeFiles/nautilus_noc.dir/noc/network_model.cpp.o"
  "CMakeFiles/nautilus_noc.dir/noc/network_model.cpp.o.d"
  "CMakeFiles/nautilus_noc.dir/noc/router_generator.cpp.o"
  "CMakeFiles/nautilus_noc.dir/noc/router_generator.cpp.o.d"
  "CMakeFiles/nautilus_noc.dir/noc/router_model.cpp.o"
  "CMakeFiles/nautilus_noc.dir/noc/router_model.cpp.o.d"
  "CMakeFiles/nautilus_noc.dir/noc/router_params.cpp.o"
  "CMakeFiles/nautilus_noc.dir/noc/router_params.cpp.o.d"
  "CMakeFiles/nautilus_noc.dir/noc/topology.cpp.o"
  "CMakeFiles/nautilus_noc.dir/noc/topology.cpp.o.d"
  "CMakeFiles/nautilus_noc.dir/noc/traffic.cpp.o"
  "CMakeFiles/nautilus_noc.dir/noc/traffic.cpp.o.d"
  "libnautilus_noc.a"
  "libnautilus_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nautilus_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
