# Empty dependencies file for nautilus_noc.
# This may be replaced when dependencies are built.
