file(REMOVE_RECURSE
  "libnautilus_noc.a"
)
