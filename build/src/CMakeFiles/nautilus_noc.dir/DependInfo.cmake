
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/noc/network_generator.cpp" "src/CMakeFiles/nautilus_noc.dir/noc/network_generator.cpp.o" "gcc" "src/CMakeFiles/nautilus_noc.dir/noc/network_generator.cpp.o.d"
  "/root/repo/src/noc/network_model.cpp" "src/CMakeFiles/nautilus_noc.dir/noc/network_model.cpp.o" "gcc" "src/CMakeFiles/nautilus_noc.dir/noc/network_model.cpp.o.d"
  "/root/repo/src/noc/router_generator.cpp" "src/CMakeFiles/nautilus_noc.dir/noc/router_generator.cpp.o" "gcc" "src/CMakeFiles/nautilus_noc.dir/noc/router_generator.cpp.o.d"
  "/root/repo/src/noc/router_model.cpp" "src/CMakeFiles/nautilus_noc.dir/noc/router_model.cpp.o" "gcc" "src/CMakeFiles/nautilus_noc.dir/noc/router_model.cpp.o.d"
  "/root/repo/src/noc/router_params.cpp" "src/CMakeFiles/nautilus_noc.dir/noc/router_params.cpp.o" "gcc" "src/CMakeFiles/nautilus_noc.dir/noc/router_params.cpp.o.d"
  "/root/repo/src/noc/topology.cpp" "src/CMakeFiles/nautilus_noc.dir/noc/topology.cpp.o" "gcc" "src/CMakeFiles/nautilus_noc.dir/noc/topology.cpp.o.d"
  "/root/repo/src/noc/traffic.cpp" "src/CMakeFiles/nautilus_noc.dir/noc/traffic.cpp.o" "gcc" "src/CMakeFiles/nautilus_noc.dir/noc/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nautilus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nautilus_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nautilus_ip.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
