# Empty compiler generated dependencies file for nautilus_exp.
# This may be replaced when dependencies are built.
