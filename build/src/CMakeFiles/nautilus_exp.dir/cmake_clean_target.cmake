file(REMOVE_RECURSE
  "libnautilus_exp.a"
)
