file(REMOVE_RECURSE
  "CMakeFiles/nautilus_exp.dir/exp/constraint.cpp.o"
  "CMakeFiles/nautilus_exp.dir/exp/constraint.cpp.o.d"
  "CMakeFiles/nautilus_exp.dir/exp/experiment.cpp.o"
  "CMakeFiles/nautilus_exp.dir/exp/experiment.cpp.o.d"
  "CMakeFiles/nautilus_exp.dir/exp/query.cpp.o"
  "CMakeFiles/nautilus_exp.dir/exp/query.cpp.o.d"
  "CMakeFiles/nautilus_exp.dir/exp/series.cpp.o"
  "CMakeFiles/nautilus_exp.dir/exp/series.cpp.o.d"
  "libnautilus_exp.a"
  "libnautilus_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nautilus_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
