
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exp/constraint.cpp" "src/CMakeFiles/nautilus_exp.dir/exp/constraint.cpp.o" "gcc" "src/CMakeFiles/nautilus_exp.dir/exp/constraint.cpp.o.d"
  "/root/repo/src/exp/experiment.cpp" "src/CMakeFiles/nautilus_exp.dir/exp/experiment.cpp.o" "gcc" "src/CMakeFiles/nautilus_exp.dir/exp/experiment.cpp.o.d"
  "/root/repo/src/exp/query.cpp" "src/CMakeFiles/nautilus_exp.dir/exp/query.cpp.o" "gcc" "src/CMakeFiles/nautilus_exp.dir/exp/query.cpp.o.d"
  "/root/repo/src/exp/series.cpp" "src/CMakeFiles/nautilus_exp.dir/exp/series.cpp.o" "gcc" "src/CMakeFiles/nautilus_exp.dir/exp/series.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nautilus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nautilus_ip.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
