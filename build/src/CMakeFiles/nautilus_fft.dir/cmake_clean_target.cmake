file(REMOVE_RECURSE
  "libnautilus_fft.a"
)
