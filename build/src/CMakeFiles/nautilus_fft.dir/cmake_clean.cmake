file(REMOVE_RECURSE
  "CMakeFiles/nautilus_fft.dir/fft/fft_generator.cpp.o"
  "CMakeFiles/nautilus_fft.dir/fft/fft_generator.cpp.o.d"
  "CMakeFiles/nautilus_fft.dir/fft/fft_kernel.cpp.o"
  "CMakeFiles/nautilus_fft.dir/fft/fft_kernel.cpp.o.d"
  "CMakeFiles/nautilus_fft.dir/fft/fft_model.cpp.o"
  "CMakeFiles/nautilus_fft.dir/fft/fft_model.cpp.o.d"
  "CMakeFiles/nautilus_fft.dir/fft/fft_params.cpp.o"
  "CMakeFiles/nautilus_fft.dir/fft/fft_params.cpp.o.d"
  "CMakeFiles/nautilus_fft.dir/fft/fixed_point.cpp.o"
  "CMakeFiles/nautilus_fft.dir/fft/fixed_point.cpp.o.d"
  "libnautilus_fft.a"
  "libnautilus_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nautilus_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
