# Empty dependencies file for nautilus_fft.
# This may be replaced when dependencies are built.
