
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fft/fft_generator.cpp" "src/CMakeFiles/nautilus_fft.dir/fft/fft_generator.cpp.o" "gcc" "src/CMakeFiles/nautilus_fft.dir/fft/fft_generator.cpp.o.d"
  "/root/repo/src/fft/fft_kernel.cpp" "src/CMakeFiles/nautilus_fft.dir/fft/fft_kernel.cpp.o" "gcc" "src/CMakeFiles/nautilus_fft.dir/fft/fft_kernel.cpp.o.d"
  "/root/repo/src/fft/fft_model.cpp" "src/CMakeFiles/nautilus_fft.dir/fft/fft_model.cpp.o" "gcc" "src/CMakeFiles/nautilus_fft.dir/fft/fft_model.cpp.o.d"
  "/root/repo/src/fft/fft_params.cpp" "src/CMakeFiles/nautilus_fft.dir/fft/fft_params.cpp.o" "gcc" "src/CMakeFiles/nautilus_fft.dir/fft/fft_params.cpp.o.d"
  "/root/repo/src/fft/fixed_point.cpp" "src/CMakeFiles/nautilus_fft.dir/fft/fixed_point.cpp.o" "gcc" "src/CMakeFiles/nautilus_fft.dir/fft/fixed_point.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nautilus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nautilus_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nautilus_ip.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
