# Empty compiler generated dependencies file for nautilus_synth.
# This may be replaced when dependencies are built.
