
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/job_queue.cpp" "src/CMakeFiles/nautilus_synth.dir/synth/job_queue.cpp.o" "gcc" "src/CMakeFiles/nautilus_synth.dir/synth/job_queue.cpp.o.d"
  "/root/repo/src/synth/resources.cpp" "src/CMakeFiles/nautilus_synth.dir/synth/resources.cpp.o" "gcc" "src/CMakeFiles/nautilus_synth.dir/synth/resources.cpp.o.d"
  "/root/repo/src/synth/synthesizer.cpp" "src/CMakeFiles/nautilus_synth.dir/synth/synthesizer.cpp.o" "gcc" "src/CMakeFiles/nautilus_synth.dir/synth/synthesizer.cpp.o.d"
  "/root/repo/src/synth/tech.cpp" "src/CMakeFiles/nautilus_synth.dir/synth/tech.cpp.o" "gcc" "src/CMakeFiles/nautilus_synth.dir/synth/tech.cpp.o.d"
  "/root/repo/src/synth/timing.cpp" "src/CMakeFiles/nautilus_synth.dir/synth/timing.cpp.o" "gcc" "src/CMakeFiles/nautilus_synth.dir/synth/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nautilus_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
