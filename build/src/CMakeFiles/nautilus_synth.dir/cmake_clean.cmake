file(REMOVE_RECURSE
  "CMakeFiles/nautilus_synth.dir/synth/job_queue.cpp.o"
  "CMakeFiles/nautilus_synth.dir/synth/job_queue.cpp.o.d"
  "CMakeFiles/nautilus_synth.dir/synth/resources.cpp.o"
  "CMakeFiles/nautilus_synth.dir/synth/resources.cpp.o.d"
  "CMakeFiles/nautilus_synth.dir/synth/synthesizer.cpp.o"
  "CMakeFiles/nautilus_synth.dir/synth/synthesizer.cpp.o.d"
  "CMakeFiles/nautilus_synth.dir/synth/tech.cpp.o"
  "CMakeFiles/nautilus_synth.dir/synth/tech.cpp.o.d"
  "CMakeFiles/nautilus_synth.dir/synth/timing.cpp.o"
  "CMakeFiles/nautilus_synth.dir/synth/timing.cpp.o.d"
  "libnautilus_synth.a"
  "libnautilus_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nautilus_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
