file(REMOVE_RECURSE
  "libnautilus_synth.a"
)
