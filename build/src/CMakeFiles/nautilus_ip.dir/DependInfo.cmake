
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ip/analysis.cpp" "src/CMakeFiles/nautilus_ip.dir/ip/analysis.cpp.o" "gcc" "src/CMakeFiles/nautilus_ip.dir/ip/analysis.cpp.o.d"
  "/root/repo/src/ip/dataset.cpp" "src/CMakeFiles/nautilus_ip.dir/ip/dataset.cpp.o" "gcc" "src/CMakeFiles/nautilus_ip.dir/ip/dataset.cpp.o.d"
  "/root/repo/src/ip/ip_generator.cpp" "src/CMakeFiles/nautilus_ip.dir/ip/ip_generator.cpp.o" "gcc" "src/CMakeFiles/nautilus_ip.dir/ip/ip_generator.cpp.o.d"
  "/root/repo/src/ip/metrics.cpp" "src/CMakeFiles/nautilus_ip.dir/ip/metrics.cpp.o" "gcc" "src/CMakeFiles/nautilus_ip.dir/ip/metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nautilus_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
