file(REMOVE_RECURSE
  "CMakeFiles/nautilus_ip.dir/ip/analysis.cpp.o"
  "CMakeFiles/nautilus_ip.dir/ip/analysis.cpp.o.d"
  "CMakeFiles/nautilus_ip.dir/ip/dataset.cpp.o"
  "CMakeFiles/nautilus_ip.dir/ip/dataset.cpp.o.d"
  "CMakeFiles/nautilus_ip.dir/ip/ip_generator.cpp.o"
  "CMakeFiles/nautilus_ip.dir/ip/ip_generator.cpp.o.d"
  "CMakeFiles/nautilus_ip.dir/ip/metrics.cpp.o"
  "CMakeFiles/nautilus_ip.dir/ip/metrics.cpp.o.d"
  "libnautilus_ip.a"
  "libnautilus_ip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nautilus_ip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
