file(REMOVE_RECURSE
  "libnautilus_ip.a"
)
