# Empty dependencies file for nautilus_ip.
# This may be replaced when dependencies are built.
