file(REMOVE_RECURSE
  "CMakeFiles/nautilus_cli.dir/nautilus_cli.cpp.o"
  "CMakeFiles/nautilus_cli.dir/nautilus_cli.cpp.o.d"
  "nautilus_cli"
  "nautilus_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nautilus_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
