# Empty dependencies file for nautilus_tests.
# This may be replaced when dependencies are built.
