
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/nautilus_tests.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/nautilus_tests.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/test_constraint.cpp" "tests/CMakeFiles/nautilus_tests.dir/test_constraint.cpp.o" "gcc" "tests/CMakeFiles/nautilus_tests.dir/test_constraint.cpp.o.d"
  "/root/repo/tests/test_dataset.cpp" "tests/CMakeFiles/nautilus_tests.dir/test_dataset.cpp.o" "gcc" "tests/CMakeFiles/nautilus_tests.dir/test_dataset.cpp.o.d"
  "/root/repo/tests/test_edge_cases.cpp" "tests/CMakeFiles/nautilus_tests.dir/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/nautilus_tests.dir/test_edge_cases.cpp.o.d"
  "/root/repo/tests/test_evaluator.cpp" "tests/CMakeFiles/nautilus_tests.dir/test_evaluator.cpp.o" "gcc" "tests/CMakeFiles/nautilus_tests.dir/test_evaluator.cpp.o.d"
  "/root/repo/tests/test_exp.cpp" "tests/CMakeFiles/nautilus_tests.dir/test_exp.cpp.o" "gcc" "tests/CMakeFiles/nautilus_tests.dir/test_exp.cpp.o.d"
  "/root/repo/tests/test_fft_kernel.cpp" "tests/CMakeFiles/nautilus_tests.dir/test_fft_kernel.cpp.o" "gcc" "tests/CMakeFiles/nautilus_tests.dir/test_fft_kernel.cpp.o.d"
  "/root/repo/tests/test_fft_model.cpp" "tests/CMakeFiles/nautilus_tests.dir/test_fft_model.cpp.o" "gcc" "tests/CMakeFiles/nautilus_tests.dir/test_fft_model.cpp.o.d"
  "/root/repo/tests/test_fitness.cpp" "tests/CMakeFiles/nautilus_tests.dir/test_fitness.cpp.o" "gcc" "tests/CMakeFiles/nautilus_tests.dir/test_fitness.cpp.o.d"
  "/root/repo/tests/test_fixed_point.cpp" "tests/CMakeFiles/nautilus_tests.dir/test_fixed_point.cpp.o" "gcc" "tests/CMakeFiles/nautilus_tests.dir/test_fixed_point.cpp.o.d"
  "/root/repo/tests/test_ga.cpp" "tests/CMakeFiles/nautilus_tests.dir/test_ga.cpp.o" "gcc" "tests/CMakeFiles/nautilus_tests.dir/test_ga.cpp.o.d"
  "/root/repo/tests/test_ga_features.cpp" "tests/CMakeFiles/nautilus_tests.dir/test_ga_features.cpp.o" "gcc" "tests/CMakeFiles/nautilus_tests.dir/test_ga_features.cpp.o.d"
  "/root/repo/tests/test_genome.cpp" "tests/CMakeFiles/nautilus_tests.dir/test_genome.cpp.o" "gcc" "tests/CMakeFiles/nautilus_tests.dir/test_genome.cpp.o.d"
  "/root/repo/tests/test_hint_estimator.cpp" "tests/CMakeFiles/nautilus_tests.dir/test_hint_estimator.cpp.o" "gcc" "tests/CMakeFiles/nautilus_tests.dir/test_hint_estimator.cpp.o.d"
  "/root/repo/tests/test_hints.cpp" "tests/CMakeFiles/nautilus_tests.dir/test_hints.cpp.o" "gcc" "tests/CMakeFiles/nautilus_tests.dir/test_hints.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/nautilus_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/nautilus_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_job_queue.cpp" "tests/CMakeFiles/nautilus_tests.dir/test_job_queue.cpp.o" "gcc" "tests/CMakeFiles/nautilus_tests.dir/test_job_queue.cpp.o.d"
  "/root/repo/tests/test_local_search.cpp" "tests/CMakeFiles/nautilus_tests.dir/test_local_search.cpp.o" "gcc" "tests/CMakeFiles/nautilus_tests.dir/test_local_search.cpp.o.d"
  "/root/repo/tests/test_metrics_ip.cpp" "tests/CMakeFiles/nautilus_tests.dir/test_metrics_ip.cpp.o" "gcc" "tests/CMakeFiles/nautilus_tests.dir/test_metrics_ip.cpp.o.d"
  "/root/repo/tests/test_nautilus.cpp" "tests/CMakeFiles/nautilus_tests.dir/test_nautilus.cpp.o" "gcc" "tests/CMakeFiles/nautilus_tests.dir/test_nautilus.cpp.o.d"
  "/root/repo/tests/test_nsga2.cpp" "tests/CMakeFiles/nautilus_tests.dir/test_nsga2.cpp.o" "gcc" "tests/CMakeFiles/nautilus_tests.dir/test_nsga2.cpp.o.d"
  "/root/repo/tests/test_operators.cpp" "tests/CMakeFiles/nautilus_tests.dir/test_operators.cpp.o" "gcc" "tests/CMakeFiles/nautilus_tests.dir/test_operators.cpp.o.d"
  "/root/repo/tests/test_parameter.cpp" "tests/CMakeFiles/nautilus_tests.dir/test_parameter.cpp.o" "gcc" "tests/CMakeFiles/nautilus_tests.dir/test_parameter.cpp.o.d"
  "/root/repo/tests/test_pareto.cpp" "tests/CMakeFiles/nautilus_tests.dir/test_pareto.cpp.o" "gcc" "tests/CMakeFiles/nautilus_tests.dir/test_pareto.cpp.o.d"
  "/root/repo/tests/test_random_search.cpp" "tests/CMakeFiles/nautilus_tests.dir/test_random_search.cpp.o" "gcc" "tests/CMakeFiles/nautilus_tests.dir/test_random_search.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/nautilus_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/nautilus_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_router.cpp" "tests/CMakeFiles/nautilus_tests.dir/test_router.cpp.o" "gcc" "tests/CMakeFiles/nautilus_tests.dir/test_router.cpp.o.d"
  "/root/repo/tests/test_run_stats.cpp" "tests/CMakeFiles/nautilus_tests.dir/test_run_stats.cpp.o" "gcc" "tests/CMakeFiles/nautilus_tests.dir/test_run_stats.cpp.o.d"
  "/root/repo/tests/test_selection.cpp" "tests/CMakeFiles/nautilus_tests.dir/test_selection.cpp.o" "gcc" "tests/CMakeFiles/nautilus_tests.dir/test_selection.cpp.o.d"
  "/root/repo/tests/test_synth.cpp" "tests/CMakeFiles/nautilus_tests.dir/test_synth.cpp.o" "gcc" "tests/CMakeFiles/nautilus_tests.dir/test_synth.cpp.o.d"
  "/root/repo/tests/test_topology_network.cpp" "tests/CMakeFiles/nautilus_tests.dir/test_topology_network.cpp.o" "gcc" "tests/CMakeFiles/nautilus_tests.dir/test_topology_network.cpp.o.d"
  "/root/repo/tests/test_traffic.cpp" "tests/CMakeFiles/nautilus_tests.dir/test_traffic.cpp.o" "gcc" "tests/CMakeFiles/nautilus_tests.dir/test_traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nautilus_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nautilus_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nautilus_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nautilus_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nautilus_ip.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nautilus_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
