# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/nautilus_tests[1]_include.cmake")
add_test(smoke_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(smoke_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;44;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(smoke_noc_explore "/root/repo/build/examples/noc_explore")
set_tests_properties(smoke_noc_explore PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;44;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(smoke_fft_explore "/root/repo/build/examples/fft_explore")
set_tests_properties(smoke_fft_explore PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;44;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(smoke_custom_ip_hints "/root/repo/build/examples/custom_ip_hints")
set_tests_properties(smoke_custom_ip_hints PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;44;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(smoke_constrained_search "/root/repo/build/examples/constrained_search")
set_tests_properties(smoke_constrained_search PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;44;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(smoke_pareto_tradeoffs "/root/repo/build/examples/pareto_tradeoffs")
set_tests_properties(smoke_pareto_tradeoffs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;44;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(smoke_cli_fft "/root/repo/build/tools/nautilus_cli" "--ip" "fft" "--metric" "area_luts" "--guidance" "strong" "--runs" "3" "--generations" "15")
set_tests_properties(smoke_cli_fft PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;47;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(smoke_cli_estimated "/root/repo/build/tools/nautilus_cli" "--ip" "router" "--metric" "freq_mhz" "--guidance" "estimated" "--runs" "3" "--generations" "15")
set_tests_properties(smoke_cli_estimated PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;50;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(smoke_cli_network "/root/repo/build/tools/nautilus_cli" "--ip" "network" "--runs" "2" "--generations" "10")
set_tests_properties(smoke_cli_network PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;53;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(smoke_cli_pareto "/root/repo/build/tools/nautilus_cli" "--ip" "fft" "--metric" "area_luts" "--pareto" "throughput_msps" "--generations" "10")
set_tests_properties(smoke_cli_pareto PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;55;add_test;/root/repo/tests/CMakeLists.txt;0;")
