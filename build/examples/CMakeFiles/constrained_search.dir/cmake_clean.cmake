file(REMOVE_RECURSE
  "CMakeFiles/constrained_search.dir/constrained_search.cpp.o"
  "CMakeFiles/constrained_search.dir/constrained_search.cpp.o.d"
  "constrained_search"
  "constrained_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constrained_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
