file(REMOVE_RECURSE
  "CMakeFiles/custom_ip_hints.dir/custom_ip_hints.cpp.o"
  "CMakeFiles/custom_ip_hints.dir/custom_ip_hints.cpp.o.d"
  "custom_ip_hints"
  "custom_ip_hints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_ip_hints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
