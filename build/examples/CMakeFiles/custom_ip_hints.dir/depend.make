# Empty dependencies file for custom_ip_hints.
# This may be replaced when dependencies are built.
