
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/custom_ip_hints.cpp" "examples/CMakeFiles/custom_ip_hints.dir/custom_ip_hints.cpp.o" "gcc" "examples/CMakeFiles/custom_ip_hints.dir/custom_ip_hints.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nautilus_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nautilus_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nautilus_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nautilus_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nautilus_ip.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nautilus_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
