# Empty dependencies file for fft_explore.
# This may be replaced when dependencies are built.
