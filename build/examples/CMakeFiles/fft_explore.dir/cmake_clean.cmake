file(REMOVE_RECURSE
  "CMakeFiles/fft_explore.dir/fft_explore.cpp.o"
  "CMakeFiles/fft_explore.dir/fft_explore.cpp.o.d"
  "fft_explore"
  "fft_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
