file(REMOVE_RECURSE
  "CMakeFiles/noc_explore.dir/noc_explore.cpp.o"
  "CMakeFiles/noc_explore.dir/noc_explore.cpp.o.d"
  "noc_explore"
  "noc_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noc_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
