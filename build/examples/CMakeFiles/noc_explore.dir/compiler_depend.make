# Empty compiler generated dependencies file for noc_explore.
# This may be replaced when dependencies are built.
