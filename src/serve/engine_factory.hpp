#pragma once
// From a parsed JobSpec to a finished search: one entry point for all five
// engines, shared by the job scheduler and `nautilus_cli --job`.
//
// Using the same factory on both sides is what makes the determinism gate
// trivial to argue: a server job and a standalone run of the same spec build
// the *same* engine configuration by construction, and every engine's
// results are bit-for-bit independent of the worker count, so the granted
// worker cap (which depends on pool capacity) cannot change the outcome.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/eval_store.hpp"
#include "ip/ip_generator.hpp"
#include "obs/progress.hpp"
#include "serve/job_spec.hpp"

namespace nautilus::serve {

// Instantiate an IP generator by spec name.  Throws std::invalid_argument
// for unknown names (parse_job_spec already validates, so this only fires
// on hand-built specs).
std::unique_ptr<ip::IpGenerator> make_generator(const std::string& ip);

// Everything the surrounding system attaches to one run.  All members are
// optional; a default-constructed JobRunInputs runs the spec bare.
struct JobRunInputs {
    // Granted eval workers; 0 = use spec.workers.  Results are identical
    // for any value (the repo-wide worker-count-independence contract).
    std::size_t workers = 0;
    std::shared_ptr<EvalStore> store;  // shared persistent store; may be null
    std::string trace_path;            // per-job JSONL trace; empty = no trace
    std::string checkpoint_path;       // ga/nsga2 checkpoints; empty = none.
                                       // When the file already exists the run
                                       // resumes from it (bit-exactly).
    std::shared_ptr<const std::atomic<bool>> cancel;  // cooperative cancel token
    std::shared_ptr<obs::ProgressTracker> progress;   // live /jobs/<id> progress
    // Test hook mirroring `--die-at-gen`: halt with a checkpoint at this
    // generation (ga/nsga2 only; 0 = never).
    std::size_t halt_at_generation = 0;
    // Telemetry identity (0 = standalone run).  A nonzero job_id tags the
    // trace's run_start with job_id/request_id and emits a closing
    // `job_summary` accounting event; standalone runs leave both at 0 and
    // their traces stay byte-identical to a server job's engine events.
    std::uint64_t job_id = 0;
    std::uint64_t request_id = 0;
    double queue_wait_seconds = 0.0;  // scheduler queue wait, echoed in job_summary
};

struct FrontEntry {
    std::string genome;  // rendered via the space ("param=value ...")
    std::vector<double> values;
};

struct JobOutcome {
    bool halted = false;       // stopped at a checkpointed boundary (cancel/halt)
    bool feasible = false;     // a feasible design was found
    double best = 0.0;         // scalar engines, when feasible
    std::string best_genome;   // rendered best point (ga only; curve engines
                               // track values, not genomes)
    std::vector<FrontEntry> front;  // nsga2 only
    std::size_t distinct_evals = 0;
    std::size_t total_eval_calls = 0;  // 0 for the curve engines
    std::size_t store_hits = 0;
    std::size_t store_misses = 0;
    std::size_t start_generation = 0;  // nonzero when resumed from a checkpoint
    std::size_t retries = 0;           // fault-guard retries (ga/nsga2 only)
};

// Run one job to completion or to a cancel/halt boundary.  Throws on
// configuration errors (bad checkpoint fingerprint, unwritable trace path).
JobOutcome run_job(const JobSpec& spec, const JobRunInputs& inputs);

}  // namespace nautilus::serve
