#pragma once
// Job specifications for the multi-tenant search server.
//
// A job spec is a flat JSON object describing one search: which engine,
// which IP space, which metric(s) and direction, the guidance level, the
// budget (generations for the evolutionary engines, distinct evaluations
// for the budgeted ones), the seed and the requested worker cap.  The same
// parsed spec drives both `POST /jobs` and `nautilus_cli --job`, so a
// server-side run is the same engine configuration as a standalone run by
// construction -- the foundation of the determinism gate (DESIGN.md §12).
//
//   {"engine":"ga","ip":"router","metric":"freq_mhz","guidance":"strong",
//    "generations":12,"seed":7,"workers":4}
//
// Parsing is strict: unknown fields, wrong budget axes and out-of-range
// values are rejected with actionable messages (the HTTP layer maps them to
// 400).  Guidance "estimated" is deliberately not accepted -- hint
// estimation samples the space and would draw extra RNG, breaking the
// spec-determines-result contract.

#include <cstdint>
#include <string>
#include <string_view>

namespace nautilus::serve {

struct JobSpec {
    std::string engine;             // ga | nsga2 | random | sa | hc
    std::string ip = "router";      // router | fft | network
    std::string metric;             // resolved to the IP default when omitted
    std::string metric2;            // second objective (nsga2 only)
    std::string direction;          // resolved to the metric default: min | max
    std::string guidance = "none";  // none | weak | strong
    std::size_t generations = 0;    // budget for ga/nsga2
    std::size_t evals = 0;          // distinct-eval budget for random/sa/hc
    std::size_t population = 0;     // 0 = engine default (ga/nsga2 only)
    std::uint64_t seed = 1;
    std::size_t workers = 1;        // requested worker cap (the scheduler may
                                    // grant fewer; results are identical)

    bool evolutionary() const { return engine == "ga" || engine == "nsga2"; }
};

// Parse and validate one spec.  Throws std::invalid_argument with an
// actionable message on malformed JSON, unknown fields/engines/metrics,
// missing budgets or non-positive worker counts.  Defaults (metric,
// direction) are resolved before returning, so the result is canonical.
JobSpec parse_job_spec(std::string_view json);

// Deterministic re-rendering of a parsed spec: fixed key order, resolved
// defaults, %-free integer formatting.  Two specs with the same canonical
// JSON are the same job.
std::string canonical_spec_json(const JobSpec& spec);

// FNV-1a 64 over the canonical JSON; keys checkpoint files so a cancelled
// job resumes when the identical spec is resubmitted.
std::uint64_t spec_fingerprint(const JobSpec& spec);

// "<jobs_dir>/spec-<fingerprint hex>.ckpt"
std::string checkpoint_file(const std::string& jobs_dir, const JobSpec& spec);

// Minimal JSON string escaping (backslash, quote, control chars) shared by
// the scheduler's status/error rendering.
std::string json_escape(std::string_view text);

}  // namespace nautilus::serve
