#include "serve/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "obs/format.hpp"

namespace nautilus::serve {

namespace {

bool terminal(JobState s)
{
    return s == JobState::done || s == JobState::cancelled || s == JobState::failed;
}

// "/jobs/<id>" -> id; nullopt for anything that is not all digits.
std::optional<std::uint64_t> parse_job_id(std::string_view path)
{
    const std::string_view tail = path.substr(6);  // past "/jobs/"
    if (tail.empty() || tail.size() > 19) return std::nullopt;
    std::uint64_t id = 0;
    for (const char c : tail) {
        if (c < '0' || c > '9') return std::nullopt;
        id = id * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return id;
}

obs::HttpResponse json_response(int status, std::string body)
{
    return {status, "application/json", std::move(body), {}};
}

obs::HttpResponse error_response(int status, std::string_view message,
                                 std::string allow = {})
{
    std::string body = "{\"error\":\"";
    body += json_escape(message);
    body += "\"}\n";
    return {status, "application/json", std::move(body), std::move(allow)};
}

}  // namespace

std::string_view job_state_name(JobState state)
{
    switch (state) {
    case JobState::queued: return "queued";
    case JobState::running: return "running";
    case JobState::done: return "done";
    case JobState::cancelled: return "cancelled";
    case JobState::failed: return "failed";
    }
    return "unknown";
}

JobScheduler::JobScheduler(SchedulerConfig config) : config_(std::move(config))
{
    if (config_.worker_capacity == 0) config_.worker_capacity = 1;
    free_slots_ = config_.worker_capacity;
    if (config_.metrics)
        config_.metrics->gauge("jobs.capacity")
            .set(static_cast<double>(config_.worker_capacity));
}

JobScheduler::~JobScheduler()
{
    std::vector<std::thread> threads;
    {
        const std::lock_guard lock{mutex_};
        stopping_ = true;
        for (auto& [id, job] : jobs_) {
            job->cancel->store(true, std::memory_order_release);
            if (job->thread.joinable()) threads.push_back(std::move(job->thread));
        }
    }
    cv_.notify_all();
    for (std::thread& t : threads) t.join();
}

SubmitResult JobScheduler::submit(std::string_view spec_json, std::uint64_t request_id)
{
    JobSpec spec;
    try {
        spec = parse_job_spec(spec_json);
    }
    catch (const std::invalid_argument& e) {
        if (config_.metrics) config_.metrics->counter("jobs.rejected").add();
        if (config_.log && config_.log->enabled(obs::LogLevel::warn)) {
            obs::TraceEvent ev{"job"};
            ev.add("phase", "rejected");
            if (request_id != 0) ev.add("request_id", obs::FieldValue{request_id});
            ev.add("detail", obs::FieldValue{std::string{e.what()}});
            config_.log->log(obs::LogLevel::warn, std::move(ev));
        }
        return {0, 400, e.what()};
    }

    std::unique_lock lock{mutex_};
    if (stopping_) return {0, 503, "scheduler is shutting down"};

    const std::uint64_t fingerprint = spec_fingerprint(spec);
    for (const auto& [id, job] : jobs_) {
        if (job->fingerprint == fingerprint && !terminal(job->state)) {
            if (config_.metrics) config_.metrics->counter("jobs.rejected").add();
            return {0, 409,
                    "identical spec is already active as job " + std::to_string(id)};
        }
    }

    auto job = std::make_unique<Job>();
    job->id = next_id_++;
    job->spec = std::move(spec);
    job->canonical = canonical_spec_json(job->spec);
    job->fingerprint = fingerprint;
    // The grant depends only on the spec and the configured capacity, never
    // on current load: the worker count (and hence the trace) a job runs
    // with is the same whatever else is queued.
    job->grant = std::min(job->spec.workers, config_.worker_capacity);
    job->cancel = std::make_shared<std::atomic<bool>>(false);
    job->progress = std::make_shared<obs::ProgressTracker>();
    job->request_id = request_id;
    job->submitted_at = std::chrono::steady_clock::now();

    Job& ref = *job;
    const std::uint64_t id = job->id;
    jobs_.emplace(id, std::move(job));
    queue_.push_back(id);
    if (config_.metrics) {
        config_.metrics->counter("jobs.submitted").add();
        config_.metrics->gauge("jobs.queued").set(static_cast<double>(queue_.size()));
    }
    log_job(obs::LogLevel::info, ref, "submitted");
    ref.thread = std::thread{[this, &ref] { job_main(ref); }};
    lock.unlock();
    cv_.notify_all();

    return {id, 201, {}};
}

void JobScheduler::job_main(Job& job)
{
    {
        std::unique_lock lock{mutex_};
        cv_.wait(lock, [this, &job] {
            return stopping_ || job.cancel->load(std::memory_order_acquire) ||
                   (!queue_.empty() && queue_.front() == job.id &&
                    free_slots_ >= job.grant);
        });
        const auto pos = std::find(queue_.begin(), queue_.end(), job.id);
        if (pos != queue_.end()) queue_.erase(pos);
        if (stopping_ || job.cancel->load(std::memory_order_acquire)) {
            // Cancelled while queued: nothing ran, nothing to checkpoint.
            job.state = JobState::cancelled;
            job.queue_wait_seconds = std::chrono::duration<double>(
                                         std::chrono::steady_clock::now() - job.submitted_at)
                                         .count();
            if (config_.metrics) {
                config_.metrics->counter("jobs.cancelled").add();
                config_.metrics->gauge("jobs.queued")
                    .set(static_cast<double>(queue_.size()));
            }
            log_job(obs::LogLevel::info, job, "cancelled_queued");
            lock.unlock();
            cv_.notify_all();
            return;
        }
        free_slots_ -= job.grant;
        job.state = JobState::running;
        job.admitted = true;
        job.admitted_at = std::chrono::steady_clock::now();
        job.queue_wait_seconds =
            std::chrono::duration<double>(job.admitted_at - job.submitted_at).count();
        admission_order_.push_back(job.id);
        // Decide "resumed" while still holding the lock: status_json reads it
        // under mutex_, and 409-on-active-duplicate guarantees no other job
        // can touch this spec's checkpoint between admission and run start.
        if (job.spec.evolutionary())
            job.resumed =
                std::ifstream{checkpoint_file(config_.jobs_dir, job.spec)}.good();
        if (config_.metrics) {
            std::size_t running = 0;
            for (const auto& [id, j] : jobs_)
                if (j->state == JobState::running) ++running;
            config_.metrics->gauge("jobs.queued").set(static_cast<double>(queue_.size()));
            config_.metrics->gauge("jobs.running").set(static_cast<double>(running));
            config_.metrics->gauge("jobs.workers_busy")
                .set(static_cast<double>(config_.worker_capacity - free_slots_));
        }
        log_job(obs::LogLevel::info, job, "admitted");
    }
    cv_.notify_all();

    JobRunInputs inputs;
    inputs.workers = job.grant;
    inputs.store = config_.store;
    inputs.trace_path = trace_path_for(job.id);
    if (job.spec.evolutionary())
        inputs.checkpoint_path = checkpoint_file(config_.jobs_dir, job.spec);
    inputs.cancel = job.cancel;
    inputs.progress = job.progress;
    inputs.job_id = job.id;
    inputs.request_id = job.request_id;
    inputs.queue_wait_seconds = job.queue_wait_seconds;

    try {
        const JobOutcome outcome = run_job(job.spec, inputs);
        const std::lock_guard lock{mutex_};
        job.run_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - job.admitted_at)
                .count();
        job.outcome = outcome;
        if (outcome.halted) {
            // Stopped at a checkpointed boundary; the checkpoint stays on
            // disk so a resubmitted identical spec resumes bit-exactly.
            finish(job, JobState::cancelled, {});
        }
        else {
            // A finished job's checkpoint must not linger: a later fresh
            // submission of the same spec should start from generation zero,
            // not "resume" past the end and fail the determinism diff.
            if (!inputs.checkpoint_path.empty())
                std::remove(inputs.checkpoint_path.c_str());
            finish(job, JobState::done, {});
        }
    }
    catch (const std::exception& e) {
        const std::lock_guard lock{mutex_};
        job.run_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - job.admitted_at)
                .count();
        finish(job, JobState::failed, e.what());
    }
    cv_.notify_all();
}

// Caller holds mutex_.
void JobScheduler::finish(Job& job, JobState state, std::string error)
{
    job.state = state;
    job.error = std::move(error);
    free_slots_ += job.grant;
    if (config_.metrics) {
        const char* name = state == JobState::done        ? "jobs.completed"
                           : state == JobState::cancelled ? "jobs.cancelled"
                                                          : "jobs.failed";
        config_.metrics->counter(name).add();
        std::size_t running = 0;
        for (const auto& [id, j] : jobs_)
            if (j->state == JobState::running) ++running;
        config_.metrics->gauge("jobs.running").set(static_cast<double>(running));
        config_.metrics->gauge("jobs.workers_busy")
            .set(static_cast<double>(config_.worker_capacity - free_slots_));
        // Per-job resource accounting (nautilus_job_*): how long the job
        // waited, how long it ran, and what its evaluations cost.
        config_.metrics
            ->histogram("job.queue_wait_seconds", obs::Histogram::seconds_buckets())
            .observe(job.queue_wait_seconds);
        config_.metrics->histogram("job.run_seconds", obs::Histogram::seconds_buckets())
            .observe(job.run_seconds);
        config_.metrics->counter("job.granted_workers").add(job.grant);
        const JobOutcome& r = job.outcome;
        config_.metrics->counter("job.fresh_evals")
            .add(r.distinct_evals - std::min(r.store_hits, r.distinct_evals));
        config_.metrics->counter("job.store_hits").add(r.store_hits);
        config_.metrics->counter("job.retries").add(r.retries);
    }
    log_job(state == JobState::failed ? obs::LogLevel::error : obs::LogLevel::info, job,
            "finished", job.error);
}

// Safe with or without mutex_ held as long as `job`'s mutable fields are
// stable (callers log from under the lock, or before the job thread can
// run); the Logger itself is internally synchronized.
void JobScheduler::log_job(obs::LogLevel level, const Job& job, std::string_view phase,
                           std::string_view detail) const
{
    if (!config_.log || !config_.log->enabled(level)) return;
    obs::TraceEvent ev{"job"};
    ev.add("phase", obs::FieldValue{std::string{phase}})
        .add("job_id", obs::FieldValue{job.id});
    if (job.request_id != 0) ev.add("request_id", obs::FieldValue{job.request_id});
    ev.add("engine", obs::FieldValue{job.spec.engine})
        .add("state", obs::FieldValue{std::string{job_state_name(job.state)}});
    if (job.admitted) {
        ev.add("workers", job.grant)
            .add("queue_wait_seconds", obs::FieldValue{job.queue_wait_seconds});
        if (job.state != JobState::running)
            ev.add("run_seconds", obs::FieldValue{job.run_seconds});
    }
    if (!detail.empty()) ev.add("detail", obs::FieldValue{std::string{detail}});
    config_.log->log(level, std::move(ev));
}

bool JobScheduler::cancel(std::uint64_t id)
{
    const std::lock_guard lock{mutex_};
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return false;
    it->second->cancel->store(true, std::memory_order_release);
    cv_.notify_all();
    return true;
}

JobState JobScheduler::state(std::uint64_t id) const
{
    const std::lock_guard lock{mutex_};
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return JobState::failed;
    return it->second->state;
}

bool JobScheduler::wait(std::uint64_t id, double timeout_seconds) const
{
    std::unique_lock lock{mutex_};
    return cv_.wait_for(lock, std::chrono::duration<double>{timeout_seconds},
                        [this, id] {
                            const auto it = jobs_.find(id);
                            return it == jobs_.end() || terminal(it->second->state);
                        });
}

std::string JobScheduler::trace_path_for(std::uint64_t id) const
{
    return config_.jobs_dir + "/job-" + std::to_string(id) + ".trace.jsonl";
}

std::vector<std::uint64_t> JobScheduler::admission_order() const
{
    const std::lock_guard lock{mutex_};
    return admission_order_;
}

// Caller holds mutex_.
std::string JobScheduler::status_json_locked(const Job& job) const
{
    std::string out = "{\"id\":" + std::to_string(job.id);
    out += ",\"state\":\"";
    out += job_state_name(job.state);
    out += "\",\"engine\":\"";
    out += json_escape(job.spec.engine);
    out += "\",\"workers\":" + std::to_string(job.grant);
    out += ",\"resumed\":";
    out += job.resumed ? "true" : "false";
    if (job.request_id != 0)
        out += ",\"request_id\":" + std::to_string(job.request_id);
    out += ",\"spec\":" + job.canonical;
    out += ",\"progress\":" + obs::to_json(job.progress->snapshot());
    if (job.admitted) {
        // Resource accounting: queue wait, run wall-clock (live for running
        // jobs), and -- once terminal -- the evaluation cost split.
        out += ",\"accounting\":{\"workers\":" + std::to_string(job.grant);
        out += ",\"queue_wait_seconds\":";
        obs::append_json_double(out, job.queue_wait_seconds);
        out += ",\"run_seconds\":";
        const double run_seconds =
            terminal(job.state)
                ? job.run_seconds
                : std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                job.admitted_at)
                      .count();
        obs::append_json_double(out, run_seconds);
        if (job.state == JobState::done || job.state == JobState::cancelled) {
            const JobOutcome& r = job.outcome;
            out += ",\"fresh_evals\":" +
                   std::to_string(r.distinct_evals -
                                  std::min(r.store_hits, r.distinct_evals));
            out += ",\"store_hits\":" + std::to_string(r.store_hits);
            out += ",\"retries\":" + std::to_string(r.retries);
        }
        out += "}";
    }
    if (job.state == JobState::done || job.state == JobState::cancelled) {
        const JobOutcome& r = job.outcome;
        out += ",\"result\":{\"feasible\":";
        out += r.feasible ? "true" : "false";
        if (r.feasible && job.spec.engine != "nsga2") {
            out += ",\"best\":";
            obs::append_json_double(out, r.best);
        }
        if (!r.best_genome.empty()) {
            out += ",\"genome\":\"";
            out += json_escape(r.best_genome);
            out += "\"";
        }
        if (job.spec.engine == "nsga2") {
            out += ",\"front\":[";
            for (std::size_t i = 0; i < r.front.size(); ++i) {
                if (i != 0) out += ",";
                out += "{\"genome\":\"";
                out += json_escape(r.front[i].genome);
                out += "\",\"values\":[";
                for (std::size_t k = 0; k < r.front[i].values.size(); ++k) {
                    if (k != 0) out += ",";
                    obs::append_json_double(out, r.front[i].values[k]);
                }
                out += "]}";
            }
            out += "]";
        }
        out += ",\"distinct_evals\":" + std::to_string(r.distinct_evals);
        out += ",\"total_calls\":" + std::to_string(r.total_eval_calls);
        out += ",\"store_hits\":" + std::to_string(r.store_hits);
        out += "}";
    }
    if (job.state == JobState::cancelled) {
        const bool resumable =
            job.spec.evolutionary() &&
            std::ifstream{checkpoint_file(config_.jobs_dir, job.spec)}.good();
        out += ",\"resumable\":";
        out += resumable ? "true" : "false";
    }
    if (job.state == JobState::failed) {
        out += ",\"error\":\"";
        out += json_escape(job.error);
        out += "\"";
    }
    out += "}\n";
    return out;
}

std::string JobScheduler::status_json(std::uint64_t id) const
{
    const std::lock_guard lock{mutex_};
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return {};
    return status_json_locked(*it->second);
}

std::string JobScheduler::list_json() const
{
    const std::lock_guard lock{mutex_};
    std::string out = "{\"capacity\":" + std::to_string(config_.worker_capacity);
    out += ",\"free_workers\":" + std::to_string(free_slots_);
    out += ",\"queued\":" + std::to_string(queue_.size());
    out += ",\"jobs\":[";
    bool first = true;
    for (const auto& [id, job] : jobs_) {
        if (!first) out += ",";
        first = false;
        out += "{\"id\":" + std::to_string(id);
        out += ",\"state\":\"";
        out += job_state_name(job->state);
        out += "\",\"engine\":\"";
        out += json_escape(job->spec.engine);
        out += "\",\"workers\":" + std::to_string(job->grant);
        out += "}";
    }
    out += "]}\n";
    return out;
}

obs::HttpResponse JobScheduler::handle_jobs(std::string_view method,
                                            std::string_view path,
                                            std::string_view body,
                                            std::uint64_t request_id)
{
    if (path == "/jobs") {
        if (method == "POST") {
            const SubmitResult r = submit(body, request_id);
            if (r.status != 201) {
                obs::HttpResponse resp = error_response(r.status, r.error);
                // Shutdown backpressure: tell clients when to try again
                // rather than leaving 503 handling to guesswork.
                if (r.status == 503) resp.retry_after = "1";
                return resp;
            }
            return json_response(201, status_json(r.id));
        }
        if (method == "GET" || method == "HEAD") return json_response(200, list_json());
        return error_response(405, "method not allowed on /jobs", "GET, POST");
    }

    const auto id = parse_job_id(path);
    if (!id) return error_response(404, "no such job");

    if (method == "GET" || method == "HEAD") {
        std::string status = status_json(*id);
        if (status.empty()) return error_response(404, "no such job");
        return json_response(200, std::move(status));
    }
    if (method == "DELETE") {
        if (!cancel(*id)) return error_response(404, "no such job");
        return json_response(200, status_json(*id));
    }
    return error_response(405, "method not allowed on /jobs/<id>", "GET, DELETE");
}

}  // namespace nautilus::serve
