#include "serve/engine_factory.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <stdexcept>

#include "core/ga.hpp"
#include "core/local_search.hpp"
#include "core/nautilus.hpp"
#include "core/nsga2.hpp"
#include "core/random_search.hpp"
#include "fft/fft_generator.hpp"
#include "ip/metrics.hpp"
#include "noc/network_generator.hpp"
#include "noc/router_generator.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

namespace nautilus::serve {

namespace {

using ip::Metric;

// Resolve a metric name and confirm the generator actually models it --
// a spec naming a metric this IP never sets would otherwise run a full
// budget of evaluations and report "no feasible design", which is a
// misleading answer to a configuration error.
Metric metric_or_throw(const ip::IpGenerator& generator, const std::string& name)
{
    const auto m = ip::metric_from_name(name);
    if (!m) throw std::invalid_argument("unknown metric '" + name + "'");
    const auto provided = generator.metrics();
    for (const Metric p : provided)
        if (p == *m) return *m;
    std::string names;
    for (const Metric p : provided) {
        if (!names.empty()) names += ", ";
        names += ip::metric_name(p);
    }
    throw std::invalid_argument("ip '" + generator.name() + "' does not provide metric '" +
                                name + "' (available: " + names + ")");
}

Direction direction_of(const JobSpec& spec)
{
    return spec.direction == "min" ? Direction::minimize : Direction::maximize;
}

HintSet hints_for(const ip::IpGenerator& generator, const JobSpec& spec, Metric metric,
                  Direction direction)
{
    if (spec.guidance == "weak" || spec.guidance == "strong") {
        const GuidanceLevel level =
            spec.guidance == "weak" ? GuidanceLevel::weak : GuidanceLevel::strong;
        return apply_guidance(generator.author_hints(metric), direction, level);
    }
    return HintSet::none(generator.space());
}

obs::Instrumentation instrumentation_for(const JobRunInputs& inputs)
{
    obs::Instrumentation inst;
    if (!inputs.trace_path.empty())
        inst.tracer = obs::Tracer{std::make_shared<obs::JsonlFileSink>(inputs.trace_path)};
    inst.progress = inputs.progress;
    // Server jobs tag run_start with their identity so one grep on a
    // request id joins the trace against the access and server logs.
    if (inputs.job_id != 0) {
        inst.run_tags.emplace_back("job_id", obs::FieldValue{inputs.job_id});
        if (inputs.request_id != 0)
            inst.run_tags.emplace_back("request_id", obs::FieldValue{inputs.request_id});
    }
    return inst;
}

bool checkpoint_exists(const std::string& path)
{
    return !path.empty() && std::ifstream{path}.good();
}

// The store namespace is derived from ip + metric(s) exactly like the
// single-run CLI, so server jobs and standalone runs share records.
std::uint64_t store_namespace(const JobSpec& spec)
{
    std::string context = spec.ip + "/" + spec.metric;
    if (spec.engine == "nsga2") context += "+" + spec.metric2;
    return EvalStore::namespace_key(context);
}

void absorb_curve(JobOutcome& out, const Curve& curve)
{
    out.feasible = !curve.empty();
    if (out.feasible) out.best = curve.final_best();
    out.distinct_evals = static_cast<std::size_t>(curve.final_evals());
}

JobOutcome run_ga(const ip::IpGenerator& generator, const JobSpec& spec,
                  const JobRunInputs& inputs, std::size_t workers,
                  const obs::Instrumentation& inst)
{
    const Metric metric = metric_or_throw(generator, spec.metric);
    const Direction direction = direction_of(spec);

    GaConfig ga;
    ga.generations = spec.generations;
    if (spec.population != 0) ga.population_size = spec.population;
    ga.seed = spec.seed;
    ga.eval_workers = workers;
    ga.obs = inst;
    ga.cancel = inputs.cancel;
    ga.checkpoint_path = inputs.checkpoint_path;
    ga.halt_at_generation = inputs.halt_at_generation;
    if (inputs.store) {
        ga.store = inputs.store;
        ga.store_namespace = store_namespace(spec);
    }

    const GaEngine engine{generator.space(), ga, direction,
                          generator.metric_eval(metric),
                          hints_for(generator, spec, metric, direction)};
    const RunResult r = checkpoint_exists(inputs.checkpoint_path)
                            ? engine.resume(inputs.checkpoint_path)
                            : engine.run();

    JobOutcome out;
    out.halted = r.halted;
    out.feasible = r.best_eval.feasible;
    if (out.feasible) {
        out.best = r.best_eval.value;
        out.best_genome = r.best_genome.to_string(generator.space());
    }
    out.distinct_evals = r.distinct_evals;
    out.total_eval_calls = r.total_eval_calls;
    out.store_hits = r.store_hits;
    out.store_misses = r.store_misses;
    out.start_generation = r.start_generation;
    out.retries = r.fault.retries;
    return out;
}

JobOutcome run_nsga2(const ip::IpGenerator& generator, const JobSpec& spec,
                     const JobRunInputs& inputs, std::size_t workers,
                     const obs::Instrumentation& inst)
{
    const Metric first = metric_or_throw(generator, spec.metric);
    const Metric second = metric_or_throw(generator, spec.metric2);
    const Direction direction = direction_of(spec);
    const std::vector<Direction> dirs{direction, ip::metric_default_direction(second)};

    const MultiEvalFn eval = [&generator, first,
                              second](const Genome& g) -> std::optional<std::vector<double>> {
        const auto mv = generator.evaluate(g);
        if (!mv.feasible) return std::nullopt;
        const auto a = mv.try_get(first);
        const auto b = mv.try_get(second);
        if (!a || !b) return std::nullopt;
        return std::vector<double>{*a, *b};
    };

    MultiObjectiveConfig mo;
    mo.generations = spec.generations;
    if (spec.population != 0) mo.population_size = spec.population;
    mo.seed = spec.seed;
    mo.eval_workers = workers;
    mo.obs = inst;
    mo.cancel = inputs.cancel;
    mo.checkpoint_path = inputs.checkpoint_path;
    mo.halt_at_generation = inputs.halt_at_generation;
    if (inputs.store) {
        mo.store = inputs.store;
        mo.store_namespace = store_namespace(spec);
    }

    const Nsga2Engine engine{generator.space(), mo, dirs, eval,
                             hints_for(generator, spec, first, direction)};
    const MultiObjectiveResult r = checkpoint_exists(inputs.checkpoint_path)
                                       ? engine.resume(inputs.checkpoint_path)
                                       : engine.run();

    JobOutcome out;
    out.halted = r.halted;
    out.feasible = !r.front.empty();
    out.front.reserve(r.front.size());
    for (const FrontPoint& p : r.front)
        out.front.push_back({p.genome.to_string(generator.space()), p.values});
    out.distinct_evals = r.distinct_evals;
    out.total_eval_calls = r.total_eval_calls;
    out.store_hits = r.store_hits;
    out.store_misses = r.store_misses;
    out.start_generation = r.start_generation;
    out.retries = r.fault.retries;
    return out;
}

JobOutcome run_budgeted(const ip::IpGenerator& generator, const JobSpec& spec,
                        const JobRunInputs& inputs, std::size_t workers,
                        const obs::Instrumentation& inst)
{
    const Metric metric = metric_or_throw(generator, spec.metric);
    const Direction direction = direction_of(spec);
    const EvalFn eval = generator.metric_eval(metric);

    JobOutcome out;
    if (spec.engine == "random") {
        RandomSearchConfig rs;
        rs.max_distinct_evals = spec.evals;
        rs.seed = spec.seed;
        rs.eval_workers = workers;
        rs.obs = inst;
        if (inputs.store) {
            rs.store = inputs.store;
            rs.store_namespace = store_namespace(spec);
        }
        absorb_curve(out, RandomSearch{generator.space(), rs, direction, eval}.run(spec.seed));
    }
    else if (spec.engine == "sa") {
        AnnealingConfig sa;
        sa.max_distinct_evals = spec.evals;
        sa.seed = spec.seed;
        sa.eval_workers = workers;
        sa.obs = inst;
        if (inputs.store) {
            sa.store = inputs.store;
            sa.store_namespace = store_namespace(spec);
        }
        absorb_curve(out, SimulatedAnnealing{generator.space(), sa, direction, eval,
                                             hints_for(generator, spec, metric, direction)}
                              .run(spec.seed));
    }
    else {
        HillClimbConfig hc;
        hc.max_distinct_evals = spec.evals;
        hc.seed = spec.seed;
        hc.eval_workers = workers;
        hc.obs = inst;
        if (inputs.store) {
            hc.store = inputs.store;
            hc.store_namespace = store_namespace(spec);
        }
        absorb_curve(out, HillClimber{generator.space(), hc, direction, eval,
                                      hints_for(generator, spec, metric, direction)}
                              .run(spec.seed));
    }
    return out;
}

}  // namespace

std::unique_ptr<ip::IpGenerator> make_generator(const std::string& ip)
{
    if (ip == "router") return std::make_unique<noc::RouterGenerator>();
    if (ip == "fft")
        return std::make_unique<fft::FftGenerator>(synth::FpgaTech::virtex6_lx760t(),
                                                   /*measure_snr=*/false);
    if (ip == "network") return std::make_unique<noc::NetworkGenerator>();
    throw std::invalid_argument("unknown ip '" + ip + "' (expected router, fft, network)");
}

JobOutcome run_job(const JobSpec& spec, const JobRunInputs& inputs)
{
    const std::unique_ptr<ip::IpGenerator> generator = make_generator(spec.ip);
    const std::size_t workers = inputs.workers != 0 ? inputs.workers : spec.workers;
    const obs::Instrumentation inst = instrumentation_for(inputs);

    const auto started = std::chrono::steady_clock::now();
    JobOutcome out;
    if (spec.engine == "ga")
        out = run_ga(*generator, spec, inputs, workers, inst);
    else if (spec.engine == "nsga2")
        out = run_nsga2(*generator, spec, inputs, workers, inst);
    else
        out = run_budgeted(*generator, spec, inputs, workers, inst);
    const double run_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - started).count();

    // Server jobs close their trace with a resource-accounting summary.
    // The eval counters mirror the run's own `run_end` exactly (checked by
    // `trace_inspect --check`); queue wait comes from the scheduler.  Pure
    // observation: zero RNG, so determinism gates are untouched.
    if (inputs.job_id != 0 && inst.tracer.enabled()) {
        const bool evolutionary = spec.engine == "ga" || spec.engine == "nsga2";
        obs::TraceEvent ev{"job_summary"};
        ev.add("job_id", obs::FieldValue{inputs.job_id});
        if (inputs.request_id != 0)
            ev.add("request_id", obs::FieldValue{inputs.request_id});
        ev.add("engine", obs::FieldValue{spec.engine})
            .add("workers", workers)
            .add("queue_wait_seconds", obs::FieldValue{inputs.queue_wait_seconds})
            .add("run_seconds", obs::FieldValue{run_seconds})
            .add("halted", obs::FieldValue{out.halted})
            .add("distinct_evals", out.distinct_evals)
            .add("fresh_evals", out.distinct_evals - std::min(out.store_hits,
                                                              out.distinct_evals));
        if (evolutionary)
            ev.add("store_hits", out.store_hits).add("retries", out.retries);
        inst.tracer.emit(std::move(ev));
    }
    return out;
}

}  // namespace nautilus::serve
