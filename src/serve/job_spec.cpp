#include "serve/job_spec.hpp"

#include <cstdio>
#include <map>
#include <stdexcept>

#include "ip/metrics.hpp"

namespace nautilus::serve {

namespace {

[[noreturn]] void fail(const std::string& message)
{
    throw std::invalid_argument(message);
}

// One parsed JSON value.  Numbers keep their source text so integer fields
// can reject fractions, exponents and negatives with the offending token in
// the message.
struct RawValue {
    enum class Kind { string, number, boolean };
    Kind kind = Kind::string;
    std::string text;
    bool truth = false;
};

void skip_ws(std::string_view s, std::size_t& i)
{
    while (i < s.size() &&
           (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r'))
        ++i;
}

std::string parse_quoted(std::string_view s, std::size_t& i)
{
    if (i >= s.size() || s[i] != '"') fail("spec is not valid JSON: expected a string");
    ++i;
    std::string out;
    while (i < s.size() && s[i] != '"') {
        char c = s[i++];
        if (c == '\\') {
            if (i >= s.size()) fail("spec is not valid JSON: unterminated escape");
            const char esc = s[i++];
            switch (esc) {
            case '"': c = '"'; break;
            case '\\': c = '\\'; break;
            case '/': c = '/'; break;
            case 'n': c = '\n'; break;
            case 't': c = '\t'; break;
            default: fail(std::string("spec is not valid JSON: unsupported escape '\\") +
                          esc + "'");
            }
        }
        else if (static_cast<unsigned char>(c) < 0x20) {
            fail("spec is not valid JSON: control character inside a string");
        }
        out += c;
    }
    if (i >= s.size()) fail("spec is not valid JSON: unterminated string");
    ++i;  // closing quote
    return out;
}

RawValue parse_value(std::string_view s, std::size_t& i)
{
    skip_ws(s, i);
    if (i >= s.size()) fail("spec is not valid JSON: expected a value");
    RawValue v;
    if (s[i] == '"') {
        v.kind = RawValue::Kind::string;
        v.text = parse_quoted(s, i);
        return v;
    }
    if (s.compare(i, 4, "true") == 0) {
        v.kind = RawValue::Kind::boolean;
        v.truth = true;
        i += 4;
        return v;
    }
    if (s.compare(i, 5, "false") == 0) {
        v.kind = RawValue::Kind::boolean;
        i += 5;
        return v;
    }
    const std::size_t start = i;
    while (i < s.size() && (s[i] == '-' || s[i] == '+' || s[i] == '.' ||
                            s[i] == 'e' || s[i] == 'E' ||
                            (s[i] >= '0' && s[i] <= '9')))
        ++i;
    if (i == start) fail("spec is not valid JSON: expected a string, number or boolean");
    v.kind = RawValue::Kind::number;
    v.text = std::string(s.substr(start, i - start));
    return v;
}

// The spec is a single flat object of string/number/boolean fields --
// nothing nested, nothing null.  Duplicate keys are rejected.
std::map<std::string, RawValue> parse_object(std::string_view s)
{
    std::size_t i = 0;
    skip_ws(s, i);
    if (i >= s.size() || s[i] != '{')
        fail("spec is not valid JSON: expected a '{...}' object");
    ++i;
    std::map<std::string, RawValue> fields;
    skip_ws(s, i);
    if (i < s.size() && s[i] == '}') {
        ++i;
    }
    else {
        for (;;) {
            skip_ws(s, i);
            const std::string key = parse_quoted(s, i);
            skip_ws(s, i);
            if (i >= s.size() || s[i] != ':')
                fail("spec is not valid JSON: expected ':' after \"" + key + "\"");
            ++i;
            const RawValue value = parse_value(s, i);
            if (!fields.emplace(key, value).second)
                fail("duplicate field '" + key + "'");
            skip_ws(s, i);
            if (i < s.size() && s[i] == ',') {
                ++i;
                continue;
            }
            if (i < s.size() && s[i] == '}') {
                ++i;
                break;
            }
            fail("spec is not valid JSON: expected ',' or '}' after \"" + key + "\"");
        }
    }
    skip_ws(s, i);
    if (i != s.size()) fail("spec is not valid JSON: trailing content after the object");
    return fields;
}

std::string take_string(std::map<std::string, RawValue>& fields, const std::string& name,
                        std::string fallback)
{
    const auto it = fields.find(name);
    if (it == fields.end()) return fallback;
    if (it->second.kind != RawValue::Kind::string)
        fail("field '" + name + "' must be a string");
    std::string out = std::move(it->second.text);
    fields.erase(it);
    return out;
}

// Integer fields: the token must be a plain non-negative decimal -- no
// fractions, exponents or signs -- so "workers": -2 and "seed": 1e99 are
// both rejected with the offending text.
std::uint64_t take_uint(std::map<std::string, RawValue>& fields, const std::string& name,
                        std::uint64_t fallback, bool* present = nullptr)
{
    const auto it = fields.find(name);
    if (present != nullptr) *present = it != fields.end();
    if (it == fields.end()) return fallback;
    const RawValue& v = it->second;
    if (v.kind != RawValue::Kind::number)
        fail("field '" + name + "' must be a non-negative integer");
    if (v.text.find_first_of(".eE") != std::string::npos || v.text.front() == '-' ||
        v.text.front() == '+')
        fail("field '" + name + "' must be a non-negative integer (got " + v.text + ")");
    std::uint64_t out = 0;
    try {
        std::size_t used = 0;
        out = std::stoull(v.text, &used);
        if (used != v.text.size()) throw std::invalid_argument(v.text);
    }
    catch (const std::exception&) {
        fail("field '" + name + "' must be a non-negative integer (got " + v.text + ")");
    }
    fields.erase(it);
    return out;
}

const char* kAllowedFields =
    "engine, ip, metric, metric2, direction, guidance, generations, evals, "
    "population, seed, workers";

void validate_metric_name(const std::string& field, const std::string& name)
{
    if (!ip::metric_from_name(name))
        fail("unknown " + field + " '" + name +
             "' (see ip::metric_name for the metric list)");
}

void append_uint(std::string& out, std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
    out += buf;
}

}  // namespace

JobSpec parse_job_spec(std::string_view json)
{
    std::map<std::string, RawValue> fields = parse_object(json);

    JobSpec spec;
    spec.engine = take_string(fields, "engine", "");
    if (spec.engine.empty())
        fail("missing field 'engine' (expected one of: ga, nsga2, random, sa, hc)");
    if (spec.engine != "ga" && spec.engine != "nsga2" && spec.engine != "random" &&
        spec.engine != "sa" && spec.engine != "hc")
        fail("unknown engine '" + spec.engine +
             "' (expected one of: ga, nsga2, random, sa, hc)");

    spec.ip = take_string(fields, "ip", "router");
    if (spec.ip != "router" && spec.ip != "fft" && spec.ip != "network")
        fail("unknown ip '" + spec.ip + "' (expected router, fft, network)");

    const std::string default_metric = spec.ip == "fft"       ? "area_luts"
                                       : spec.ip == "network" ? "bisection_gbps"
                                                              : "freq_mhz";
    spec.metric = take_string(fields, "metric", default_metric);
    validate_metric_name("metric", spec.metric);

    spec.metric2 = take_string(fields, "metric2", "");
    if (spec.engine == "nsga2") {
        if (spec.metric2.empty())
            fail("missing field 'metric2': nsga2 jobs map a two-metric front");
        validate_metric_name("metric2", spec.metric2);
        if (spec.metric2 == spec.metric)
            fail("fields 'metric' and 'metric2' must name different metrics");
    }
    else if (!spec.metric2.empty()) {
        fail("field 'metric2' only applies to engine 'nsga2'");
    }

    spec.direction = take_string(fields, "direction", "");
    if (spec.direction.empty()) {
        const auto m = ip::metric_from_name(spec.metric);
        spec.direction =
            ip::metric_default_direction(*m) == Direction::minimize ? "min" : "max";
    }
    else if (spec.direction != "min" && spec.direction != "max") {
        fail("field 'direction' must be 'min' or 'max' (got '" + spec.direction + "')");
    }

    spec.guidance = take_string(fields, "guidance", "none");
    if (spec.guidance != "none" && spec.guidance != "weak" && spec.guidance != "strong")
        fail("field 'guidance' must be none, weak or strong ('estimated' samples the "
             "space with extra RNG draws and is not allowed in job specs)");

    bool have_generations = false;
    bool have_evals = false;
    spec.generations =
        static_cast<std::size_t>(take_uint(fields, "generations", 0, &have_generations));
    spec.evals = static_cast<std::size_t>(take_uint(fields, "evals", 0, &have_evals));
    if (spec.evolutionary()) {
        if (have_evals)
            fail("field 'evals' does not apply to engine '" + spec.engine +
                 "' (its budget is 'generations')");
        if (!have_generations)
            fail("missing field 'generations': " + spec.engine +
                 " jobs take their budget in generations");
        if (spec.generations == 0)
            fail("field 'generations' must be a positive integer (got 0)");
    }
    else {
        if (have_generations)
            fail("field 'generations' does not apply to engine '" + spec.engine +
                 "' (its budget is 'evals', the distinct-evaluation cap)");
        if (!have_evals)
            fail("missing field 'evals': " + spec.engine +
                 " jobs take their budget in distinct evaluations");
        if (spec.evals == 0) fail("field 'evals' must be a positive integer (got 0)");
    }

    bool have_population = false;
    spec.population =
        static_cast<std::size_t>(take_uint(fields, "population", 0, &have_population));
    if (have_population) {
        if (!spec.evolutionary())
            fail("field 'population' does not apply to engine '" + spec.engine + "'");
        if (spec.population == 0)
            fail("field 'population' must be a positive integer (got 0)");
    }

    spec.seed = take_uint(fields, "seed", 1);
    spec.workers = static_cast<std::size_t>(take_uint(fields, "workers", 1));
    if (spec.workers == 0) fail("field 'workers' must be a positive integer (got 0)");

    if (!fields.empty())
        fail("unknown field '" + fields.begin()->first + "' (allowed: " + kAllowedFields +
             ")");
    return spec;
}

std::string canonical_spec_json(const JobSpec& spec)
{
    std::string out = "{\"engine\":\"" + json_escape(spec.engine) + "\"";
    out += ",\"ip\":\"" + json_escape(spec.ip) + "\"";
    out += ",\"metric\":\"" + json_escape(spec.metric) + "\"";
    if (!spec.metric2.empty()) out += ",\"metric2\":\"" + json_escape(spec.metric2) + "\"";
    out += ",\"direction\":\"" + json_escape(spec.direction) + "\"";
    out += ",\"guidance\":\"" + json_escape(spec.guidance) + "\"";
    if (spec.evolutionary()) {
        out += ",\"generations\":";
        append_uint(out, spec.generations);
        if (spec.population != 0) {
            out += ",\"population\":";
            append_uint(out, spec.population);
        }
    }
    else {
        out += ",\"evals\":";
        append_uint(out, spec.evals);
    }
    out += ",\"seed\":";
    append_uint(out, spec.seed);
    out += ",\"workers\":";
    append_uint(out, spec.workers);
    out += "}";
    return out;
}

std::uint64_t spec_fingerprint(const JobSpec& spec)
{
    const std::string canonical = canonical_spec_json(spec);
    std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64
    for (const char c : canonical) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

std::string checkpoint_file(const std::string& jobs_dir, const JobSpec& spec)
{
    char hex[17];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(spec_fingerprint(spec)));
    return jobs_dir + "/spec-" + hex + ".ckpt";
}

std::string json_escape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            }
            else {
                out += c;
            }
        }
    }
    return out;
}

}  // namespace nautilus::serve
