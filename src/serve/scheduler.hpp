#pragma once
// Multi-tenant job scheduler: many concurrent searches over one shared
// worker-slot pool and one shared EvalStore.
//
// The pool is a slot budget, not a thread pool: each job runs on its own
// thread and is *admitted* when the scheduler grants it
// `min(spec.workers, capacity)` evaluation-worker slots.  The grant depends
// only on the spec and the configured capacity -- never on current load --
// so the worker count a job runs with (and therefore its trace) is
// reproducible regardless of what else is queued.  Combined with the
// repo-wide worker-count-independence contract, a job's result is
// bit-identical to the same spec run standalone at any cap.
//
// Fairness is strict FIFO admission: a job starts only when it is at the
// head of the queue AND enough slots are free.  Small jobs never leapfrog a
// big job waiting for slots (no starvation of wide jobs), and a big job
// that saturates the pool cannot re-enter ahead of queued small jobs (no
// starvation of narrow ones).  The admission order therefore equals the
// submission order, which the fairness unit test asserts literally.
//
// Cancellation (DELETE /jobs/<id>) sets the job's cooperative cancel token;
// GA/NSGA-II observe it at the next generation boundary, write their
// checkpoint (keyed by the spec fingerprint under jobs_dir) and stop with
// halted=true.  Resubmitting the identical spec finds the checkpoint and
// resumes bit-exactly.  Completed jobs delete their checkpoint so a fresh
// resubmission starts from generation zero.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/eval_store.hpp"
#include "obs/http_server.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "serve/engine_factory.hpp"
#include "serve/job_spec.hpp"

namespace nautilus::serve {

enum class JobState { queued, running, done, cancelled, failed };

std::string_view job_state_name(JobState state);

struct SchedulerConfig {
    std::size_t worker_capacity = 4;  // total eval-worker slots in the pool
    std::string jobs_dir = ".";       // traces + checkpoints live here
    std::shared_ptr<EvalStore> store;               // shared across jobs; may be null
    std::shared_ptr<obs::MetricsRegistry> metrics;  // nautilus_jobs_*; may be null
    std::shared_ptr<obs::Logger> log;               // "job" lifecycle records; may be null
};

// Outcome of submit(): HTTP-ish status plus either a job id or an error.
struct SubmitResult {
    std::uint64_t id = 0;
    int status = 201;   // 201 created | 400 bad spec | 409 duplicate | 503 stopping
    std::string error;  // set when status != 201
};

class JobScheduler final : public obs::JobApi {
public:
    explicit JobScheduler(SchedulerConfig config);
    ~JobScheduler() override;  // cancels and joins every job thread

    JobScheduler(const JobScheduler&) = delete;
    JobScheduler& operator=(const JobScheduler&) = delete;

    // Parse + validate + enqueue.  Each accepted job gets its own thread
    // immediately; the thread blocks until FIFO admission grants it slots.
    // `request_id` (0 = none) is the HTTP request id of the submitting
    // POST; it is stamped into the job's trace and log records.
    SubmitResult submit(std::string_view spec_json, std::uint64_t request_id = 0);

    // Request cancellation.  Returns false for unknown ids; true otherwise
    // (idempotent -- cancelling a finished job is a no-op that returns true).
    bool cancel(std::uint64_t id);

    // Job inspection.  status_json returns "" for unknown ids.
    JobState state(std::uint64_t id) const;
    std::string status_json(std::uint64_t id) const;
    std::string list_json() const;

    // Block until the job leaves queued/running or `timeout_seconds` passes.
    // Returns true when the job reached a terminal state.
    bool wait(std::uint64_t id, double timeout_seconds) const;

    std::size_t capacity() const { return config_.worker_capacity; }
    std::string trace_path_for(std::uint64_t id) const;

    // The order jobs were admitted to run, for the fairness test.
    std::vector<std::uint64_t> admission_order() const;

    // obs::JobApi: routes POST/GET/DELETE under /jobs.
    obs::HttpResponse handle_jobs(std::string_view method, std::string_view path,
                                  std::string_view body,
                                  std::uint64_t request_id) override;

private:
    struct Job {
        std::uint64_t id = 0;
        JobSpec spec;
        std::string canonical;  // canonical_spec_json(spec)
        std::uint64_t fingerprint = 0;
        JobState state = JobState::queued;
        std::size_t grant = 0;  // slots this job runs with (load-independent)
        std::shared_ptr<std::atomic<bool>> cancel;
        std::shared_ptr<obs::ProgressTracker> progress;
        std::string error;   // failed jobs
        JobOutcome outcome;  // valid once terminal (done/cancelled)
        bool resumed = false;
        // Telemetry: the submitting HTTP request (0 = direct submit()) and
        // the per-job resource accounting (DESIGN.md section 13).
        std::uint64_t request_id = 0;
        std::chrono::steady_clock::time_point submitted_at{};
        std::chrono::steady_clock::time_point admitted_at{};
        bool admitted = false;
        double queue_wait_seconds = 0.0;  // submit -> admission
        double run_seconds = 0.0;         // admission -> terminal
        std::thread thread;
    };

    void job_main(Job& job);
    void finish(Job& job, JobState state, std::string error);
    void log_job(obs::LogLevel level, const Job& job, std::string_view phase,
                 std::string_view detail = {}) const;
    std::string status_json_locked(const Job& job) const;

    SchedulerConfig config_;

    mutable std::mutex mutex_;
    mutable std::condition_variable cv_;
    std::map<std::uint64_t, std::unique_ptr<Job>> jobs_;  // stable pointers
    std::deque<std::uint64_t> queue_;                     // FIFO admission order
    std::vector<std::uint64_t> admission_order_;
    std::size_t free_slots_ = 0;
    std::uint64_t next_id_ = 1;
    bool stopping_ = false;
};

}  // namespace nautilus::serve
