#pragma once
// Shared float-formatting discipline for every exporter.
//
// The trace writer, the Prometheus exposition and the /status JSON all
// serialize doubles; they must agree on the rendering so a value can be
// compared bit-for-bit across surfaces (e.g. /status "best" against the
// trace's run_end "best").  %.17g is the shortest width guaranteed to
// round-trip an IEEE-754 double exactly through strtod.

#include <cmath>
#include <cstdio>
#include <string>

namespace nautilus::obs {

// Append the round-trip (%.17g) decimal rendering of a finite double.
inline void append_double_17g(std::string& out, double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
}

// JSON rendering: non-finite values become null; a plain integer rendering
// gets ".0" appended so parsers can tell doubles from integer fields.
inline void append_json_double(std::string& out, double v)
{
    if (!std::isfinite(v)) {
        out += "null";
        return;
    }
    const std::size_t start = out.size();
    append_double_17g(out, v);
    if (out.find_first_of(".eE", start) == std::string::npos) out += ".0";
}

}  // namespace nautilus::obs
