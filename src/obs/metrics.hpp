#pragma once
// Thread-safe metrics registry: counters, gauges and fixed-bucket histograms.
//
// The registry is the *naming* layer: instruments are created (or found) by
// name under a mutex, once, and live as long as the registry.  The returned
// handles are plain references to stable storage, so hot paths -- including
// BatchEvaluator worker threads -- update lock-free atomics and never touch
// the registry again.  Reading (snapshot / write_text) is safe concurrently
// with updates; values are individually atomic, not mutually consistent.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace nautilus::obs {

// Monotonically increasing count (events, items, cache hits, ...).
class Counter {
public:
    void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
    std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> value_{0};
};

// Last-write-wins scalar (worker count, current temperature, ...).
class Gauge {
public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    double value() const { return value_.load(std::memory_order_relaxed); }

private:
    std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram.  Bucket i counts observations <= bounds[i]; one
// implicit overflow bucket counts the rest.  Bounds are set at creation and
// immutable, so observe() is a branch-light scan plus one atomic increment.
class Histogram {
public:
    explicit Histogram(std::vector<double> bounds);

    void observe(double x);

    const std::vector<double>& bounds() const { return bounds_; }
    // counts() has bounds().size() + 1 entries (the last is overflow).
    std::vector<std::uint64_t> counts() const;
    std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
    double sum() const { return sum_.load(std::memory_order_relaxed); }

    // Estimate the q-quantile (q in [0, 1], else std::invalid_argument)
    // from the bucket counts, Prometheus histogram_quantile style: locate
    // the bucket holding rank q*count and interpolate linearly inside it
    // (the first bucket's lower edge is 0 when its bound is positive,
    // otherwise the bound itself).  Ranks falling in the overflow bucket
    // clamp to the highest finite bound.  NaN when the histogram is empty.
    double quantile(double q) const;

    // Default bucket bounds for wall-clock seconds (1us .. 100s, decades).
    static std::vector<double> seconds_buckets();

private:
    std::vector<double> bounds_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

// Point-in-time copy of every instrument, for reporting and tests.
struct MetricsSnapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    struct HistogramRow {
        std::string name;
        std::vector<double> bounds;
        std::vector<std::uint64_t> counts;  // bounds.size() + 1 (overflow last)
        std::uint64_t count = 0;
        double sum = 0.0;
    };
    std::vector<HistogramRow> histograms;
};

class MetricsRegistry {
public:
    MetricsRegistry();
    ~MetricsRegistry();  // out-of-line: Instrument is incomplete here
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    // Create-or-get by name.  Throws std::invalid_argument when the name is
    // already registered as a different instrument kind (or, for histograms,
    // with different bounds).
    Counter& counter(std::string_view name);
    Gauge& gauge(std::string_view name);
    Histogram& histogram(std::string_view name, std::vector<double> bounds);

    MetricsSnapshot snapshot() const;

    // "counter eval.items 1234"-style dump, sorted by name.
    void write_text(std::ostream& out) const;

private:
    struct Instrument;  // tagged union of the three kinds

    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Instrument>, std::less<>> instruments_;
};

}  // namespace nautilus::obs
