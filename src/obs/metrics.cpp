#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace nautilus::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds))
{
    if (!std::is_sorted(bounds_.begin(), bounds_.end()))
        throw std::invalid_argument("Histogram: bucket bounds must be sorted");
    if (std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end())
        throw std::invalid_argument("Histogram: duplicate bucket bound");
    buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
}

void Histogram::observe(double x)
{
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
    const std::size_t bucket = static_cast<std::size_t>(it - bounds_.begin());
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double old = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(old, old + x, std::memory_order_relaxed)) {
    }
}

std::vector<std::uint64_t> Histogram::counts() const
{
    std::vector<std::uint64_t> out(bounds_.size() + 1);
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = buckets_[i].load(std::memory_order_relaxed);
    return out;
}

double Histogram::quantile(double q) const
{
    if (q < 0.0 || q > 1.0 || std::isnan(q))
        throw std::invalid_argument("Histogram::quantile: q out of [0, 1]");
    const std::vector<std::uint64_t> counts = this->counts();
    std::uint64_t total = 0;
    for (const std::uint64_t c : counts) total += c;
    if (total == 0) return std::numeric_limits<double>::quiet_NaN();
    if (bounds_.empty()) return std::numeric_limits<double>::quiet_NaN();

    const double rank = q * static_cast<double>(total);
    double cumulative = 0.0;
    for (std::size_t b = 0; b < bounds_.size(); ++b) {
        const double in_bucket = static_cast<double>(counts[b]);
        if (cumulative + in_bucket >= rank) {
            const double hi = bounds_[b];
            if (in_bucket == 0.0) return hi;  // rank == cumulative boundary
            double lo = b > 0 ? bounds_[b - 1] : (hi > 0.0 ? 0.0 : hi);
            return lo + (hi - lo) * (rank - cumulative) / in_bucket;
        }
        cumulative += in_bucket;
    }
    // Overflow bucket: no finite upper edge to interpolate toward.
    return bounds_.back();
}

std::vector<double> Histogram::seconds_buckets()
{
    return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0};
}

struct MetricsRegistry::Instrument {
    enum class Kind { counter, gauge, histogram } kind;
    Counter counter;
    Gauge gauge;
    std::unique_ptr<Histogram> histogram;
};

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

Counter& MetricsRegistry::counter(std::string_view name)
{
    std::lock_guard lock{mutex_};
    auto it = instruments_.find(name);
    if (it == instruments_.end()) {
        auto inst = std::make_unique<Instrument>();
        inst->kind = Instrument::Kind::counter;
        it = instruments_.emplace(std::string{name}, std::move(inst)).first;
    }
    else if (it->second->kind != Instrument::Kind::counter) {
        throw std::invalid_argument("MetricsRegistry: '" + std::string{name} +
                                    "' already registered as a different kind");
    }
    return it->second->counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name)
{
    std::lock_guard lock{mutex_};
    auto it = instruments_.find(name);
    if (it == instruments_.end()) {
        auto inst = std::make_unique<Instrument>();
        inst->kind = Instrument::Kind::gauge;
        it = instruments_.emplace(std::string{name}, std::move(inst)).first;
    }
    else if (it->second->kind != Instrument::Kind::gauge) {
        throw std::invalid_argument("MetricsRegistry: '" + std::string{name} +
                                    "' already registered as a different kind");
    }
    return it->second->gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name, std::vector<double> bounds)
{
    std::lock_guard lock{mutex_};
    auto it = instruments_.find(name);
    if (it == instruments_.end()) {
        auto inst = std::make_unique<Instrument>();
        inst->kind = Instrument::Kind::histogram;
        inst->histogram = std::make_unique<Histogram>(std::move(bounds));
        it = instruments_.emplace(std::string{name}, std::move(inst)).first;
    }
    else if (it->second->kind != Instrument::Kind::histogram) {
        throw std::invalid_argument("MetricsRegistry: '" + std::string{name} +
                                    "' already registered as a different kind");
    }
    else if (it->second->histogram->bounds() != bounds) {
        throw std::invalid_argument("MetricsRegistry: '" + std::string{name} +
                                    "' re-registered with different bounds");
    }
    return *it->second->histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const
{
    std::lock_guard lock{mutex_};
    MetricsSnapshot snap;
    for (const auto& [name, inst] : instruments_) {
        switch (inst->kind) {
        case Instrument::Kind::counter:
            snap.counters.emplace_back(name, inst->counter.value());
            break;
        case Instrument::Kind::gauge:
            snap.gauges.emplace_back(name, inst->gauge.value());
            break;
        case Instrument::Kind::histogram:
            snap.histograms.push_back({name, inst->histogram->bounds(),
                                       inst->histogram->counts(), inst->histogram->count(),
                                       inst->histogram->sum()});
            break;
        }
    }
    return snap;
}

void MetricsRegistry::write_text(std::ostream& out) const
{
    // Callers may leave the stream in std::fixed/low-precision mode; dump
    // with default float formatting so small bounds don't collapse to 0.0.
    const std::ios_base::fmtflags flags = out.flags();
    const std::streamsize precision = out.precision();
    out.unsetf(std::ios_base::floatfield);
    out.precision(6);

    const MetricsSnapshot snap = snapshot();
    for (const auto& [name, v] : snap.counters) out << "counter " << name << ' ' << v << '\n';
    for (const auto& [name, v] : snap.gauges) out << "gauge " << name << ' ' << v << '\n';
    for (const auto& h : snap.histograms) {
        out << "histogram " << h.name << " count " << h.count << " sum " << h.sum << '\n';
        for (std::size_t i = 0; i < h.counts.size(); ++i) {
            if (h.counts[i] == 0) continue;
            out << "  le ";
            if (i < h.bounds.size()) out << h.bounds[i];
            else out << "+inf";
            out << ' ' << h.counts[i] << '\n';
        }
    }

    out.flags(flags);
    out.precision(precision);
}

}  // namespace nautilus::obs
