#pragma once
// Instrumentation: the observability bundle threaded through engine configs.
//
// One small value type carries both the structured-trace handle and the
// metrics registry, so every search config grows a single `obs` member and
// stays cheap to copy (two shared_ptr copies).  Both halves default to off:
// a default-constructed Instrumentation traces nothing and records nothing,
// and the instrumented hot paths guard on `tracer.enabled()` /
// `metrics != nullptr` so the disabled cost is a branch per site.

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/lineage.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"

namespace nautilus::obs {

struct Instrumentation {
    Tracer tracer;
    std::shared_ptr<MetricsRegistry> metrics;
    // Live run progress (generation, best, eval counters) feeding the
    // `/status` endpoint and the `--progress` heartbeat.  Null by default.
    std::shared_ptr<ProgressTracker> progress;
    // Live lineage counters feeding the `/lineage` endpoint.  Null by
    // default; engines record lineage whenever tracing is on OR this is set.
    std::shared_ptr<LineageTracker> lineage;
    // Extra fields every engine copies onto its `run_start` event, in
    // order.  The job server uses this to stamp `job_id` / `request_id`
    // so a trace joins against the access and server logs; standalone
    // runs leave it empty and their traces are byte-identical to before.
    std::vector<std::pair<std::string, FieldValue>> run_tags;

    bool tracing() const { return tracer.enabled(); }
    MetricsRegistry* registry() const { return metrics.get(); }
    ProgressTracker* progress_tracker() const { return progress.get(); }
    LineageTracker* lineage_tracker() const { return lineage.get(); }

    // Convenience constructors for the common wirings.
    static Instrumentation with_sink(std::shared_ptr<TraceSink> sink)
    {
        Instrumentation inst;
        inst.tracer = Tracer{std::move(sink)};
        return inst;
    }
};

}  // namespace nautilus::obs
