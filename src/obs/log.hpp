#pragma once
// Structured service log: leveled JSONL records shared between a file sink
// and a lock-free in-memory ring served by `/logs`.
//
// Records reuse the trace layer's TraceEvent shape -- one flat JSON object
// per line, `{"type":"access","t":1.25,"level":"info",...}` -- serialized by
// to_jsonl, so every log line round-trips through parse_jsonl_line and the
// same jq/grep tooling that reads engine traces.  `t` is seconds since the
// Logger was constructed (the server's log time origin) and `level` is
// always the first field after the reserved keys.
//
// Concurrency model: the file sink is a plain mutex + ofstream (append
// mode), acceptable at access-log rates.  The ring is a bounded multi-writer
// seqlock: each slot carries a sequence word (odd while a writer owns it,
// `2*ticket+2` once record #ticket is published) over an array of
// std::atomic<char> payload bytes, so scraping `/logs` while workers log is
// wait-free for writers and clean under ThreadSanitizer -- every shared
// byte is an atomic.  Readers revalidate the sequence after copying and
// drop torn slots; tickets recovered from the sequence word give a total
// order for the tail.  Records longer than a slot are dropped from the ring
// (counted) but still reach the file sink.
//
// Like the rest of obs::, the logger is opt-in: sites hold a
// shared_ptr<Logger> that may be null and guard on it (or on
// enabled(level)) before building a record.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "obs/trace.hpp"

namespace nautilus::obs {

enum class LogLevel : int { debug = 0, info = 1, warn = 2, error = 3 };

// "debug" / "info" / "warn" / "error".
std::string_view log_level_name(LogLevel level);
// Inverse of log_level_name; nullopt on any other spelling.
std::optional<LogLevel> log_level_from_name(std::string_view name);

struct LogConfig {
    LogLevel level = LogLevel::info;
    std::string path;                  // empty = ring only, no file sink
    std::size_t ring_capacity = 1024;  // slots kept for /logs (min 1)
};

class Logger {
public:
    // Throws std::runtime_error if `config.path` is set and cannot be
    // opened for append.
    explicit Logger(LogConfig config);

    Logger(const Logger&) = delete;
    Logger& operator=(const Logger&) = delete;

    LogLevel level() const { return config_.level; }
    bool enabled(LogLevel level) const
    {
        return static_cast<int>(level) >= static_cast<int>(config_.level);
    }

    // Stamps `t` and the "level" field, serializes once, appends to the
    // file sink (if any) and publishes into the ring.  Records below the
    // configured level are discarded without serialization.
    void log(LogLevel level, TraceEvent event);

    // `{"logged":N,"dropped":D,"records":[...]}` -- the most recent `n`
    // ring records in emission order.  Safe to call concurrently with
    // writers.
    std::string tail_json(std::size_t n) const;

    // Records accepted (post level filter) / records that never reached
    // the ring (oversized payload; they still reach the file sink).
    std::uint64_t records_logged() const
    {
        return records_logged_.load(std::memory_order_relaxed);
    }
    std::uint64_t records_dropped() const
    {
        return records_dropped_.load(std::memory_order_relaxed);
    }

    double seconds_since_open() const
    {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() - opened_)
            .count();
    }

private:
    // One seqlock-protected record slot.  seq == 0: never written; odd:
    // writer in progress; even 2*ticket+2: record #ticket is readable.
    static constexpr std::size_t kSlotPayload = 768;
    struct Slot {
        std::atomic<std::uint64_t> seq{0};
        std::atomic<std::uint32_t> size{0};
        std::atomic<char> bytes[kSlotPayload];
    };

    void publish(const std::string& line);

    LogConfig config_;
    std::chrono::steady_clock::time_point opened_ = std::chrono::steady_clock::now();

    std::mutex file_mutex_;
    std::ofstream file_;
    bool file_open_ = false;

    std::size_t slot_count_;
    std::unique_ptr<Slot[]> slots_;
    std::atomic<std::uint64_t> head_{0};  // next ticket to assign

    std::atomic<std::uint64_t> records_logged_{0};
    std::atomic<std::uint64_t> records_dropped_{0};
};

}  // namespace nautilus::obs
