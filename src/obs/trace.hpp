#pragma once
// Structured trace layer: typed events serialized as JSONL to a pluggable
// sink.
//
// Every event is one flat JSON object per line -- `{"type":"eval_wave",
// "t":0.0123,"size":10,...}` -- so traces are greppable, diffable and
// trivially consumed by jq/pandas or the bundled `trace_inspect` tool.
// Field values are typed (bool / int / uint / double / string / double
// array) and round-trip exactly through parse_jsonl_line(); non-finite
// doubles serialize as JSON null and parse back as NaN.
//
// The Tracer is a cheap value handle around a shared sink.  A
// default-constructed Tracer is *disabled*: enabled() is a single pointer
// test, and all instrumentation sites guard event construction behind it, so
// tracing off costs one predictable branch per site (verified by
// bench_engine_micro).  Sinks serialize concurrent writers internally, so
// one Tracer may be shared across engine and worker threads.

#include <chrono>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace nautilus::obs {

using FieldValue =
    std::variant<bool, std::int64_t, std::uint64_t, double, std::string, std::vector<double>>;

// One trace record.  `t` is seconds since the sink was opened (filled in by
// Tracer::emit); fields keep insertion order for stable serialization.
struct TraceEvent {
    std::string type;
    double t = 0.0;
    std::vector<std::pair<std::string, FieldValue>> fields;

    explicit TraceEvent(std::string event_type) : type(std::move(event_type)) {}

    TraceEvent& add(std::string_view key, FieldValue value)
    {
        fields.emplace_back(std::string{key}, std::move(value));
        return *this;
    }
    // Convenience overloads so call sites don't need explicit casts.
    TraceEvent& add(std::string_view key, std::size_t value)
    {
        return add(key, FieldValue{static_cast<std::uint64_t>(value)});
    }
    TraceEvent& add(std::string_view key, int value)
    {
        return add(key, FieldValue{static_cast<std::int64_t>(value)});
    }
    TraceEvent& add(std::string_view key, const char* value)
    {
        return add(key, FieldValue{std::string{value}});
    }

    // First field with this key, if any.
    const FieldValue* find(std::string_view key) const;
    // Typed lookups returning nullopt on missing key or kind mismatch
    // (integers widen to double for `number`).
    std::optional<double> number(std::string_view key) const;
    std::optional<std::uint64_t> unsigned_int(std::string_view key) const;
    std::optional<std::string> string(std::string_view key) const;
};

// One JSON object on one line, no trailing newline.
std::string to_jsonl(const TraceEvent& event);

// Inverse of to_jsonl for the subset it emits (flat object, "type" and "t"
// reserved keys).  Returns nullopt on malformed input.
std::optional<TraceEvent> parse_jsonl_line(std::string_view line);

// Receives serialized events.  Implementations must be safe to call from
// several threads.
class TraceSink {
public:
    virtual ~TraceSink() = default;
    virtual void write(const TraceEvent& event) = 0;
    virtual void flush() {}

    // Seconds since this sink was constructed (the trace's time origin).
    double seconds_since_open() const
    {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() - opened_)
            .count();
    }

private:
    std::chrono::steady_clock::time_point opened_ = std::chrono::steady_clock::now();
};

// Appends one JSONL line per event.  Throws std::runtime_error if the file
// cannot be opened.
class JsonlFileSink final : public TraceSink {
public:
    explicit JsonlFileSink(const std::string& path);
    ~JsonlFileSink() override;

    void write(const TraceEvent& event) override;
    void flush() override;

private:
    std::mutex mutex_;
    std::ofstream out_;
};

// Keeps events in memory; for tests and in-process inspection.
class MemorySink final : public TraceSink {
public:
    void write(const TraceEvent& event) override;

    std::vector<TraceEvent> events() const;
    std::size_t size() const;
    // Events of one type, in emission order.
    std::vector<TraceEvent> events_of(std::string_view type) const;

private:
    mutable std::mutex mutex_;
    std::vector<TraceEvent> events_;
};

// Cheap, copyable handle.  Disabled (default) tracers make emit() a no-op
// and enabled() false so call sites can skip building events entirely.
class Tracer {
public:
    Tracer() = default;
    explicit Tracer(std::shared_ptr<TraceSink> sink) : sink_(std::move(sink)) {}

    bool enabled() const { return sink_ != nullptr; }
    TraceSink* sink() const { return sink_.get(); }

    // Stamps event.t and forwards to the sink; no-op when disabled.
    void emit(TraceEvent event) const
    {
        if (!sink_) return;
        event.t = sink_->seconds_since_open();
        sink_->write(event);
    }

private:
    std::shared_ptr<TraceSink> sink_;
};

// RAII scoped timer: emits a "span" event {name, seconds, depth} when the
// scope exits.  Depth counts live ScopedTimers on the current thread (outer
// span = 1), so nested phases reconstruct into a tree even though inner
// spans are emitted first.  Costs nothing when the tracer is disabled.
class ScopedTimer {
public:
    ScopedTimer(const Tracer& tracer, std::string_view name);
    ~ScopedTimer();

    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

    int depth() const { return depth_; }

private:
    const Tracer* tracer_ = nullptr;  // null when disabled
    std::string name_;
    std::chrono::steady_clock::time_point start_;
    int depth_ = 0;
};

}  // namespace nautilus::obs
