#pragma once
// Search lineage & hint attribution (DESIGN.md §11).
//
// A LineageRecorder captures, for every genome an engine materializes, a
// BirthRecord: parent ids, the operator that created it, and a per-gene
// origin class (inherited / crossover-inherited / uniform / bias / target /
// repair).  Recording is pure observation — it never draws from the RNG, so
// the bit-exact determinism contract (DESIGN.md §10) is unaffected whether
// lineage is on or off.  At the end of a run the recorder computes a
// per-hint-class efficacy summary (offspring produced → survived →
// improved-best) and walks the winning genome's ancestry to attribute each
// final gene to the terminal draw class that produced its value.
//
// This header is part of nautilus_obs and must not include core headers.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.hpp"

namespace nautilus::obs {

// Where one gene of a newborn genome came from.  `fresh` covers random
// initialization and restored/unknown ancestry; `parent_a` is the parent the
// child was copied from; `parent_b` marks genes exchanged by crossover.
enum class GeneOrigin : std::uint8_t {
    fresh = 0,
    parent_a,
    parent_b,
    uniform,
    bias,
    target,
    repair,
};

inline constexpr std::size_t k_gene_origin_count = 7;

char gene_origin_code(GeneOrigin origin);         // 'f','a','x','u','b','t','r'
const char* gene_origin_name(GeneOrigin origin);  // "fresh", "parent_a", ...
bool gene_origin_from_code(char code, GeneOrigin& out);

// Compact per-gene rendering used by birth events and checkpoints, e.g.
// "aaxubt".  An empty origin vector renders as "-".
std::string origin_codes(std::span<const GeneOrigin> origins);
bool origins_from_codes(std::string_view codes, std::vector<GeneOrigin>& out);

// How a genome came to exist.
enum class BirthOp : std::uint8_t {
    init = 0,   // random initialization at generation 0
    resume,     // root synthesized when resuming without stored lineage
    elite,      // carried unchanged by elitism
    mutation,   // bred without a crossover draw (mutation only)
    crossover,  // bred with crossover, then mutated
};

inline constexpr std::size_t k_birth_op_count = 5;

const char* birth_op_name(BirthOp op);
bool birth_op_from_name(std::string_view name, BirthOp& out);

inline constexpr std::uint64_t k_no_parent = ~std::uint64_t{0};

struct BirthRecord {
    std::uint64_t id = 0;
    std::uint64_t parent_a = k_no_parent;  // the parent the child copies
    std::uint64_t parent_b = k_no_parent;  // the crossover partner
    std::uint64_t generation = 0;
    BirthOp op = BirthOp::init;
    std::vector<GeneOrigin> origins;  // one entry per gene; empty for elites
    bool survived = false;  // selected into a later generation / accepted
    bool improved = false;  // advanced best-so-far or joined the final front
};

// Everything needed to continue lineage accounting across checkpoint/resume.
struct LineageState {
    std::uint64_t next_id = 0;
    std::uint64_t last_improved = k_no_parent;  // current best's birth id
    std::vector<std::uint64_t> slot_ids;  // birth id of each population slot
    std::vector<BirthRecord> records;     // dense, records[i].id == i
};

// End-of-run accounting.  Offspring-level efficacy counts a birth toward a
// draw class when at least one of its genes used that class; winner
// attribution walks each winning gene back through parent links to the
// terminal class that last set its value.
struct LineageSummary {
    std::uint64_t births = 0;
    std::uint64_t births_at_start = 0;  // restored from a checkpoint
    std::uint64_t roots = 0;
    std::uint64_t elites = 0;
    std::uint64_t mutation_births = 0;
    std::uint64_t crossover_births = 0;
    std::uint64_t survived = 0;
    std::uint64_t improved = 0;
    std::uint64_t genes_fresh = 0;
    std::uint64_t genes_inherited = 0;  // parent_a
    std::uint64_t genes_crossed = 0;    // parent_b
    std::uint64_t genes_uniform = 0;
    std::uint64_t genes_bias = 0;
    std::uint64_t genes_target = 0;
    std::uint64_t genes_repair = 0;
    std::uint64_t offspring_uniform = 0;
    std::uint64_t offspring_bias = 0;
    std::uint64_t offspring_target = 0;
    std::uint64_t survived_uniform = 0;
    std::uint64_t survived_bias = 0;
    std::uint64_t survived_target = 0;
    std::uint64_t improved_uniform = 0;
    std::uint64_t improved_bias = 0;
    std::uint64_t improved_target = 0;
    bool have_winner = false;
    std::uint64_t winner = 0;        // first winner id
    std::uint64_t winner_count = 0;  // GA: 1; NSGA-II: final front size
    std::uint64_t winner_genes = 0;  // summed over all winners
    std::uint64_t winner_fresh = 0;
    std::uint64_t winner_uniform = 0;
    std::uint64_t winner_bias = 0;
    std::uint64_t winner_target = 0;
    std::uint64_t winner_repair = 0;
    std::uint64_t winner_depth = 0;  // longest ancestry walk, in hops
};

// Pure summary computation over a dense record table (records[i].id == i),
// shared by the recorder and by tools that rebuild records from a trace.
LineageSummary summarize_lineage(std::span<const BirthRecord> records,
                                 std::span<const std::uint64_t> winners,
                                 std::uint64_t births_at_start);

class LineageTracker;

// Per-run recorder.  Single-threaded: engines mint births from the search
// loop only.  `tracer` (nullable) receives birth/lineage_summary events;
// `tracker` (nullable) is fed live counters for the /lineage endpoint.
class LineageRecorder {
public:
    LineageRecorder(const Tracer* tracer, LineageTracker* tracker, std::string engine);

    // Mint a parentless record (random init or resume without stored state).
    std::uint64_t on_root(std::uint64_t generation, BirthOp op, std::size_t genes);
    // Mint an elitism copy; the parent is marked survived.
    std::uint64_t on_elite(std::uint64_t parent, std::uint64_t generation);
    // Mint a bred child.  `parent_b` may be k_no_parent (local search).
    std::uint64_t on_child(std::uint64_t parent_a,
                           std::uint64_t parent_b,
                           bool crossed,
                           std::uint64_t generation,
                           std::vector<GeneOrigin> origins);
    void on_survived(std::uint64_t id);
    void on_improved(std::uint64_t id);

    std::uint64_t births() const { return next_id_; }
    std::uint64_t births_at_start() const { return births_at_start_; }
    const BirthRecord* record(std::uint64_t id) const;
    std::uint64_t last_improved() const { return last_improved_; }  // k_no_parent if none

    LineageState snapshot(const std::vector<std::uint64_t>& slot_ids) const;
    void restore(const LineageState& state);

    // Mark `winners` improved, compute the summary, emit the
    // `lineage_summary` trace event and feed the tracker.  Call once,
    // immediately before the run_end event.
    LineageSummary finish(std::span<const std::uint64_t> winners);

private:
    BirthRecord& mint(BirthOp op, std::uint64_t generation);
    void emit_birth(const BirthRecord& rec);

    const Tracer* tracer_;
    LineageTracker* tracker_;
    std::string engine_;
    std::uint64_t next_id_ = 0;
    std::uint64_t births_at_start_ = 0;
    std::uint64_t last_improved_ = k_no_parent;
    std::vector<BirthRecord> records_;
};

// Cumulative cross-run lineage counters served by /lineage and /metrics.
struct LineageCounters {
    std::uint64_t runs = 0;  // finished runs
    std::uint64_t births = 0;
    std::uint64_t roots = 0;
    std::uint64_t elites = 0;
    std::uint64_t mutation_births = 0;
    std::uint64_t crossover_births = 0;
    std::uint64_t survived = 0;
    std::uint64_t improved = 0;
    std::uint64_t genes_fresh = 0;
    std::uint64_t genes_inherited = 0;
    std::uint64_t genes_crossed = 0;
    std::uint64_t genes_uniform = 0;
    std::uint64_t genes_bias = 0;
    std::uint64_t genes_target = 0;
    std::uint64_t genes_repair = 0;
    bool have_last = false;        // a run has finished
    std::string engine;            // engine of the last finished run
    LineageSummary last;           // last finished run's summary
};

std::string to_json(const LineageCounters& counters);

// Thread-safe sink shared between the recording engine thread and HTTP
// scrape threads.  Counter updates are relaxed atomics; the last-run summary
// block is guarded by a mutex (same discipline as ProgressTracker).
class LineageTracker {
public:
    void on_birth(BirthOp op, std::span<const GeneOrigin> origins);
    void on_survived();
    void on_improved();
    void on_run_finish(const std::string& engine, const LineageSummary& summary);

    LineageCounters counters() const;

private:
    std::atomic<std::uint64_t> births_{0};
    std::atomic<std::uint64_t> roots_{0};
    std::atomic<std::uint64_t> elites_{0};
    std::atomic<std::uint64_t> mutation_births_{0};
    std::atomic<std::uint64_t> crossover_births_{0};
    std::atomic<std::uint64_t> survived_{0};
    std::atomic<std::uint64_t> improved_{0};
    std::atomic<std::uint64_t> genes_[k_gene_origin_count] = {};

    mutable std::mutex mutex_;  // guards runs_/engine_/last_/have_last_
    std::uint64_t runs_ = 0;
    std::string engine_;
    LineageSummary last_;
    bool have_last_ = false;
};

}  // namespace nautilus::obs
