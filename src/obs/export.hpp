#pragma once
// Standard-format exporters for the obs layer.
//
// Two consumers, two formats:
//   * Prometheus text exposition (v0.0.4) of a MetricsSnapshot, served by
//     ObsHttpServer at /metrics and scrapeable by any Prometheus-compatible
//     collector.  Names are sanitized to the Prometheus charset, counters
//     get the conventional `_total` suffix, histogram buckets are emitted
//     cumulatively with an explicit `+Inf` bucket plus `_count`/`_sum`
//     series, and output order is deterministic (sorted by name within each
//     kind) so expositions diff cleanly.
//   * Chrome trace-event JSON built from the JSONL trace, loadable in
//     Perfetto / chrome://tracing (`trace_inspect --chrome OUT.json`).
//     Spans and evaluation waves become complete ("X") events, generations
//     become counter ("C") tracks, everything else becomes instants.

#include <string>
#include <string_view>
#include <vector>

#include "obs/lineage.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"

namespace nautilus::obs {

// Map an instrument name onto the Prometheus metric-name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*: every other character becomes '_', and a
// leading digit is prefixed with '_'.  Empty input becomes "_".
std::string sanitize_metric_name(std::string_view name);

struct PrometheusOptions {
    // Prepended to every (sanitized) instrument name.
    std::string prefix = "nautilus_";
};

// Full exposition of a snapshot: counters (suffixed `_total` unless already
// so named), gauges, then histograms, each preceded by a `# TYPE` line.
std::string to_prometheus(const MetricsSnapshot& snap,
                          const PrometheusOptions& options = {});

// Append the run-progress gauges (`<prefix>progress_*`) to an exposition,
// so one /metrics scrape carries both pipeline counters and live progress.
void append_progress_exposition(std::string& out, const ProgressSnapshot& snap,
                                const PrometheusOptions& options = {});

// Append the lineage gauges (`<prefix>lineage_*`) to an exposition:
// cumulative birth/survival/improvement and per-class gene counters, plus
// the last finished run's hint-attribution summary (winner gene classes).
void append_lineage_exposition(std::string& out, const LineageCounters& counters,
                               const PrometheusOptions& options = {});

// Convert parsed trace events into a Chrome trace-event JSON array.  All
// events land in pid 1; spans on tid 1 (nested by containment), evaluation
// waves on tid 2.  Timestamps are microseconds, clamped to >= 0, and the
// array is sorted by ts so `ts`/`dur` are monotonically consistent.
std::string chrome_trace_json(const std::vector<TraceEvent>& events);

}  // namespace nautilus::obs
