#include "obs/http_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <stdexcept>

#include "obs/export.hpp"
#include "obs/format.hpp"

namespace nautilus::obs {

namespace {

constexpr std::size_t kMaxRequestBytes = 65536;

const char* reason_phrase(int status)
{
    switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 411: return "Length Required";
    case 413: return "Content Too Large";
    case 503: return "Service Unavailable";
    default: return "Response";
    }
}

// `head_only` suppresses the payload but not the headers: a HEAD response
// must advertise the Content-Length the matching GET would carry
// (RFC 9110 section 9.3.2), so the header is always computed from the real
// body size.  `request_id` (nonzero) is echoed as X-Nautilus-Request-Id so
// a client can join its request against the server's access log.
std::string render_response(const HttpResponse& r, bool head_only = false,
                            std::uint64_t request_id = 0)
{
    std::string out =
        "HTTP/1.1 " + std::to_string(r.status) + ' ' + reason_phrase(r.status) + "\r\n";
    out += "Content-Type: ";
    out += r.content_type;
    out += "\r\nContent-Length: " + std::to_string(r.body.size());
    if (!r.allow.empty()) out += "\r\nAllow: " + r.allow;
    if (!r.retry_after.empty()) out += "\r\nRetry-After: " + r.retry_after;
    if (request_id != 0)
        out += "\r\nX-Nautilus-Request-Id: " + std::to_string(request_id);
    out += "\r\nConnection: close\r\n\r\n";
    if (!head_only) out += r.body;
    return out;
}

// Parse the `n=K` parameter of a /logs query string.  Returns false on a
// malformed count; leaves `n` untouched when the parameter is absent.
bool parse_tail_count(std::string_view query, std::size_t& n)
{
    std::size_t pos = 0;
    while (pos <= query.size()) {
        std::size_t amp = query.find('&', pos);
        if (amp == std::string_view::npos) amp = query.size();
        const std::string_view param = query.substr(pos, amp - pos);
        if (param.substr(0, 2) == "n=") {
            const std::string_view value = param.substr(2);
            if (value.empty() || value.size() > 9) return false;
            std::size_t parsed = 0;
            for (const char c : value) {
                if (c < '0' || c > '9') return false;
                parsed = parsed * 10 + static_cast<std::size_t>(c - '0');
            }
            n = parsed;
        }
        pos = amp + 1;
    }
    return true;
}

// Locate a header's value in the request head (case-insensitive name match
// at line starts).  Returns nullopt when absent.
std::optional<std::string_view> header_value(std::string_view head, std::string_view name)
{
    std::size_t pos = 0;
    while (pos < head.size()) {
        std::size_t eol = head.find("\r\n", pos);
        if (eol == std::string_view::npos) eol = head.size();
        const std::string_view line = head.substr(pos, eol - pos);
        if (line.size() > name.size() + 1 && line[name.size()] == ':') {
            bool match = true;
            for (std::size_t i = 0; i < name.size(); ++i) {
                const auto lower = [](char c) {
                    return c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
                };
                if (lower(line[i]) != lower(name[i])) {
                    match = false;
                    break;
                }
            }
            if (match) {
                std::string_view value = line.substr(name.size() + 1);
                while (!value.empty() && (value.front() == ' ' || value.front() == '\t'))
                    value.remove_prefix(1);
                while (!value.empty() && (value.back() == ' ' || value.back() == '\t'))
                    value.remove_suffix(1);
                return value;
            }
        }
        pos = eol + 2;
    }
    return std::nullopt;
}

// Reentrant errno rendering.  glibc with _GNU_SOURCE gives the char*-
// returning strerror_r; POSIX gives the int-returning one.  Overload
// dispatch on the actual return type picks the right adapter, so this
// compiles against either without feature-test-macro gymnastics.
const char* strerror_adapt(int rc, const char* buf)
{
    return rc == 0 ? buf : "unknown error";
}
const char* strerror_adapt(const char* msg, const char* /*buf*/)
{
    return msg != nullptr ? msg : "unknown error";
}

std::string errno_message(int err)
{
    char buf[256] = "unknown error";
    return strerror_adapt(::strerror_r(err, buf, sizeof buf), buf);
}

void send_all(int fd, std::string_view data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n =
            ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR) continue;
            return;  // client went away; nothing useful to do
        }
        sent += static_cast<std::size_t>(n);
    }
}

}  // namespace

ObsHttpServer::ObsHttpServer(HttpServerConfig config,
                             std::shared_ptr<MetricsRegistry> metrics,
                             std::shared_ptr<ProgressTracker> progress,
                             std::shared_ptr<LineageTracker> lineage)
    : config_(std::move(config)),
      metrics_(std::move(metrics)),
      progress_(std::move(progress)),
      lineage_(std::move(lineage))
{
}

ObsHttpServer::~ObsHttpServer()
{
    stop();
}

void ObsHttpServer::start()
{
    if (running_.load(std::memory_order_acquire)) return;

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error("ObsHttpServer: socket() failed");

    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        throw std::runtime_error("ObsHttpServer: bad bind address '" +
                                 config_.bind_address + "'");
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
        const int err = errno;
        ::close(listen_fd_);
        listen_fd_ = -1;
        throw std::runtime_error("ObsHttpServer: cannot bind " + config_.bind_address +
                                 ":" + std::to_string(config_.port) + " (" +
                                 errno_message(err) + ")");
    }
    if (::listen(listen_fd_, 16) != 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        throw std::runtime_error("ObsHttpServer: listen() failed");
    }

    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
        port_ = ntohs(bound.sin_port);

    stopping_.store(false, std::memory_order_release);
    running_.store(true, std::memory_order_release);
    started_ = std::chrono::steady_clock::now();
    thread_ = std::thread{[this] { accept_loop(); }};
}

void ObsHttpServer::stop()
{
    if (!running_.exchange(false, std::memory_order_acq_rel)) {
        if (thread_.joinable()) thread_.join();
        return;
    }
    stopping_.store(true, std::memory_order_release);
    // Unblock accept(): shutdown makes it return on Linux; close follows
    // after the join so the fd cannot be reused while the thread runs.
    ::shutdown(listen_fd_, SHUT_RDWR);
    if (thread_.joinable()) thread_.join();
    ::close(listen_fd_);
    listen_fd_ = -1;
}

void ObsHttpServer::accept_loop()
{
    for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR) continue;
            if (stopping_.load(std::memory_order_acquire)) return;
            if (errno == ECONNABORTED) continue;
            return;  // listening socket is gone; nothing left to serve
        }
        handle_connection(fd);
        ::close(fd);
    }
}

double ObsHttpServer::uptime_seconds() const
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - started_)
        .count();
}

std::string ObsHttpServer::body_for(std::string_view path) const
{
    if (path == "/metrics") {
        // Server self-state is refreshed into the registry at scrape time,
        // so it appears in the exposition without a background updater.
        if (metrics_ != nullptr) {
            metrics_->gauge("http.requests_served")
                .set(static_cast<double>(requests_served()));
            metrics_->gauge("process.uptime_seconds").set(uptime_seconds());
        }
        std::string body =
            metrics_ != nullptr ? to_prometheus(metrics_->snapshot()) : std::string{};
        if (progress_ != nullptr) append_progress_exposition(body, progress_->snapshot());
        if (lineage_ != nullptr) append_lineage_exposition(body, lineage_->counters());
        return body;
    }
    if (path == "/status") {
        std::string body =
            progress_ != nullptr ? to_json(progress_->snapshot()) : std::string{"{}"};
        // Splice uptime into the snapshot object, keeping it one flat map.
        std::string uptime;
        if (body.size() > 2) uptime += ',';
        uptime += "\"uptime_seconds\":";
        append_json_double(uptime, uptime_seconds());
        body.insert(body.size() - 1, uptime);
        return body + "\n";
    }
    if (path == "/lineage")
        return lineage_ != nullptr ? to_json(lineage_->counters()) + "\n" : "{}\n";
    if (path == "/logs")
        return logger_ != nullptr ? logger_->tail_json(100) + "\n" : std::string{};
    if (path == "/healthz") return "ok\n";
    if (path == "/") {
        std::string index =
            "nautilus observability endpoint\n"
            "  /metrics  Prometheus text exposition\n"
            "  /status   JSON run progress\n"
            "  /lineage  JSON lineage counters\n"
            "  /healthz  liveness probe\n";
        if (logger_ != nullptr)
            index += "  /logs     JSON tail of the server log (?n=K)\n";
        if (jobs_ != nullptr)
            index += "  /jobs     search jobs (POST spec, GET list, GET/DELETE /jobs/<id>)\n";
        return index;
    }
    return {};
}

HttpResponse ObsHttpServer::respond(std::string_view method, std::string_view target,
                                    std::string_view body, std::uint64_t request_id) const
{
    std::string_view path = target;
    std::string_view query;
    if (const std::size_t q = target.find('?'); q != std::string_view::npos) {
        path = target.substr(0, q);
        query = target.substr(q + 1);
    }

    // The job plane owns everything under /jobs, including its own method
    // routing (POST/GET/DELETE with per-path Allow sets).
    if (jobs_ != nullptr &&
        (path == "/jobs" || path.substr(0, 6) == "/jobs/"))
        return jobs_->handle_jobs(method, path, body, request_id);

    // Everything else is the read-only observability plane: GET/HEAD only,
    // and a 405 must name the methods that would have worked.
    if (method != "GET" && method != "HEAD")
        return {405, "text/plain; charset=utf-8",
                "method not allowed (this endpoint is read-only)\n", "GET, HEAD"};

    if (path == "/logs" && logger_ != nullptr) {
        std::size_t n = 100;
        if (!parse_tail_count(query, n))
            return {400, "text/plain; charset=utf-8",
                    "bad query: expected n=<decimal count>\n", {}};
        return {200, "application/json", logger_->tail_json(n) + "\n", {}};
    }

    const std::string content = body_for(path);
    if (content.empty() && path != "/metrics")
        return {404, "text/plain; charset=utf-8", "not found\n", {}};
    const char* content_type =
        path == "/status" || path == "/lineage" || path == "/logs"
            ? "application/json"
        : path == "/metrics" ? "text/plain; version=0.0.4; charset=utf-8"
                             : "text/plain; charset=utf-8";
    return {200, content_type, content, {}};
}

void ObsHttpServer::record_request(std::string_view method, std::string_view target,
                                   int status, std::size_t bytes, double seconds,
                                   std::uint64_t request_id)
{
    if (metrics_ != nullptr) {
        metrics_->counter("http.requests").add();
        const char* klass = status >= 500   ? "http.requests.5xx"
                            : status >= 400 ? "http.requests.4xx"
                            : status >= 300 ? "http.requests.3xx"
                                            : "http.requests.2xx";
        metrics_->counter(klass).add();
        metrics_->histogram("http.request_seconds", Histogram::seconds_buckets())
            .observe(seconds);
        metrics_->counter("http.response_bytes").add(bytes);
    }
    if (logger_ != nullptr && logger_->enabled(LogLevel::info)) {
        TraceEvent ev{"access"};
        ev.add("request_id", FieldValue{request_id})
            .add("method",
                 FieldValue{std::string{method.empty() ? std::string_view{"-"} : method}})
            .add("path",
                 FieldValue{std::string{target.empty() ? std::string_view{"-"} : target}})
            .add("status", status)
            .add("bytes", bytes)
            .add("micros", FieldValue{static_cast<std::uint64_t>(seconds * 1e6)});
        logger_->log(LogLevel::info, std::move(ev));
    }
}

void ObsHttpServer::handle_connection(int fd)
{
    const auto arrived = std::chrono::steady_clock::now();
    const std::uint64_t request_id =
        next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
    std::string_view method;  // empty until the request line parses
    std::string_view target;

    // Every answered request -- including protocol errors -- flows through
    // one epilogue: render with the request id, send, count, and feed the
    // self-metrics and access log.
    const auto finish = [&](const HttpResponse& r, bool head_only = false) {
        const std::string wire = render_response(r, head_only, request_id);
        send_all(fd, wire);
        requests_.fetch_add(1, std::memory_order_relaxed);
        const double seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - arrived)
                .count();
        record_request(method, target, r.status, wire.size(), seconds, request_id);
    };
    const auto error = [&](int status, std::string_view message) {
        finish({status, "text/plain; charset=utf-8", std::string{message}, {}});
    };

    timeval timeout{};
    timeout.tv_sec = 2;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);

    // Read until the end of the request head, then -- when a Content-Length
    // announces one -- until the full body has arrived.
    std::string request;
    std::size_t head_end = std::string::npos;
    std::size_t needed = kMaxRequestBytes;  // unknown until the head is parsed
    char buf[1024];
    while (request.size() < needed && request.size() <= kMaxRequestBytes) {
        if (head_end == std::string::npos) {
            head_end = request.find("\r\n\r\n");
            if (head_end != std::string::npos) {
                const auto cl =
                    header_value(std::string_view{request.data(), head_end},
                                 "Content-Length");
                if (!cl) break;  // no declared body; whatever arrived is all
                char* end = nullptr;
                const unsigned long long declared = std::strtoull(cl->data(), &end, 10);
                if (end != cl->data() + cl->size()) {
                    error(400, "bad Content-Length\n");
                    return;
                }
                needed = head_end + 4 + static_cast<std::size_t>(declared);
                if (needed > kMaxRequestBytes) break;  // answered 413 below
                if (request.size() >= needed) break;
            }
        }
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n <= 0) {
            if (n < 0 && errno == EINTR) continue;
            break;
        }
        request.append(buf, static_cast<std::size_t>(n));
    }
    if (head_end == std::string::npos) {
        if (request.size() > kMaxRequestBytes)
            error(413, "request head too large\n");
        return;  // malformed or timed out; nothing was answered
    }
    const std::size_t line_end = request.find("\r\n");

    // "METHOD SP request-target SP HTTP-version"
    const std::string_view line{request.data(), line_end};
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 = sp1 == std::string_view::npos
                                ? std::string_view::npos
                                : line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
        error(400, "bad request\n");
        return;
    }
    method = line.substr(0, sp1);
    target = line.substr(sp1 + 1, sp2 - sp1 - 1);

    const std::string_view head_view{request.data(), head_end};
    const bool have_length = header_value(head_view, "Content-Length").has_value();
    std::string_view body{request};
    body.remove_prefix(head_end + 4);
    if (!have_length && !body.empty()) {
        // A body arrived but no Content-Length announced it (RFC 9110
        // section 8.6): refuse rather than guess where the spec ends.
        error(411, "requests with a body must send Content-Length\n");
        return;
    }
    if (request.size() > kMaxRequestBytes || needed > kMaxRequestBytes) {
        error(413, "request body too large\n");
        return;
    }
    if (have_length && request.size() < needed) {
        error(400, "request body shorter than Content-Length\n");
        return;
    }
    if (have_length) body = body.substr(0, needed - head_end - 4);

    finish(respond(method, target, body, request_id), method == "HEAD");
}

}  // namespace nautilus::obs
