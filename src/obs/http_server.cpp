#include "obs/http_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "obs/export.hpp"

namespace nautilus::obs {

namespace {

constexpr std::size_t kMaxRequestBytes = 8192;

// `head_only` suppresses the payload but not the headers: a HEAD response
// must advertise the Content-Length the matching GET would carry
// (RFC 9110 section 9.3.2), so the header is always computed from the real
// body size.
std::string make_response(int status, const char* reason, std::string_view content_type,
                          std::string_view body, bool head_only = false)
{
    std::string out = "HTTP/1.1 " + std::to_string(status) + ' ' + reason + "\r\n";
    out += "Content-Type: ";
    out += content_type;
    out += "\r\nContent-Length: " + std::to_string(body.size());
    out += "\r\nConnection: close\r\n\r\n";
    if (!head_only) out += body;
    return out;
}

// Reentrant errno rendering.  glibc with _GNU_SOURCE gives the char*-
// returning strerror_r; POSIX gives the int-returning one.  Overload
// dispatch on the actual return type picks the right adapter, so this
// compiles against either without feature-test-macro gymnastics.
const char* strerror_adapt(int rc, const char* buf)
{
    return rc == 0 ? buf : "unknown error";
}
const char* strerror_adapt(const char* msg, const char* /*buf*/)
{
    return msg != nullptr ? msg : "unknown error";
}

std::string errno_message(int err)
{
    char buf[256] = "unknown error";
    return strerror_adapt(::strerror_r(err, buf, sizeof buf), buf);
}

void send_all(int fd, std::string_view data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n =
            ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR) continue;
            return;  // client went away; nothing useful to do
        }
        sent += static_cast<std::size_t>(n);
    }
}

}  // namespace

ObsHttpServer::ObsHttpServer(HttpServerConfig config,
                             std::shared_ptr<MetricsRegistry> metrics,
                             std::shared_ptr<ProgressTracker> progress,
                             std::shared_ptr<LineageTracker> lineage)
    : config_(std::move(config)),
      metrics_(std::move(metrics)),
      progress_(std::move(progress)),
      lineage_(std::move(lineage))
{
}

ObsHttpServer::~ObsHttpServer()
{
    stop();
}

void ObsHttpServer::start()
{
    if (running_.load(std::memory_order_acquire)) return;

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error("ObsHttpServer: socket() failed");

    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        throw std::runtime_error("ObsHttpServer: bad bind address '" +
                                 config_.bind_address + "'");
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
        const int err = errno;
        ::close(listen_fd_);
        listen_fd_ = -1;
        throw std::runtime_error("ObsHttpServer: cannot bind " + config_.bind_address +
                                 ":" + std::to_string(config_.port) + " (" +
                                 errno_message(err) + ")");
    }
    if (::listen(listen_fd_, 16) != 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        throw std::runtime_error("ObsHttpServer: listen() failed");
    }

    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
        port_ = ntohs(bound.sin_port);

    stopping_.store(false, std::memory_order_release);
    running_.store(true, std::memory_order_release);
    thread_ = std::thread{[this] { accept_loop(); }};
}

void ObsHttpServer::stop()
{
    if (!running_.exchange(false, std::memory_order_acq_rel)) {
        if (thread_.joinable()) thread_.join();
        return;
    }
    stopping_.store(true, std::memory_order_release);
    // Unblock accept(): shutdown makes it return on Linux; close follows
    // after the join so the fd cannot be reused while the thread runs.
    ::shutdown(listen_fd_, SHUT_RDWR);
    if (thread_.joinable()) thread_.join();
    ::close(listen_fd_);
    listen_fd_ = -1;
}

void ObsHttpServer::accept_loop()
{
    for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR) continue;
            if (stopping_.load(std::memory_order_acquire)) return;
            if (errno == ECONNABORTED) continue;
            return;  // listening socket is gone; nothing left to serve
        }
        handle_connection(fd);
        ::close(fd);
    }
}

std::string ObsHttpServer::body_for(std::string_view path) const
{
    if (path == "/metrics") {
        std::string body =
            metrics_ != nullptr ? to_prometheus(metrics_->snapshot()) : std::string{};
        if (progress_ != nullptr) append_progress_exposition(body, progress_->snapshot());
        if (lineage_ != nullptr) append_lineage_exposition(body, lineage_->counters());
        return body;
    }
    if (path == "/status")
        return progress_ != nullptr ? to_json(progress_->snapshot()) + "\n" : "{}\n";
    if (path == "/lineage")
        return lineage_ != nullptr ? to_json(lineage_->counters()) + "\n" : "{}\n";
    if (path == "/healthz") return "ok\n";
    if (path == "/")
        return "nautilus observability endpoint\n"
               "  /metrics  Prometheus text exposition\n"
               "  /status   JSON run progress\n"
               "  /lineage  JSON lineage counters\n"
               "  /healthz  liveness probe\n";
    return {};
}

void ObsHttpServer::handle_connection(int fd)
{
    timeval timeout{};
    timeout.tv_sec = 2;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);

    // Read until the end of the request head (GETs carry no body).
    std::string request;
    char buf[1024];
    while (request.size() < kMaxRequestBytes &&
           request.find("\r\n\r\n") == std::string::npos) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n <= 0) {
            if (n < 0 && errno == EINTR) continue;
            break;
        }
        request.append(buf, static_cast<std::size_t>(n));
    }
    const std::size_t line_end = request.find("\r\n");
    if (line_end == std::string::npos) return;  // malformed or timed out

    // "METHOD SP request-target SP HTTP-version"
    const std::string_view line{request.data(), line_end};
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 = sp1 == std::string_view::npos
                                ? std::string_view::npos
                                : line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
        send_all(fd, make_response(400, "Bad Request", "text/plain", "bad request\n"));
        return;
    }
    const std::string_view method = line.substr(0, sp1);
    std::string_view path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    if (const std::size_t query = path.find('?'); query != std::string_view::npos)
        path = path.substr(0, query);

    requests_.fetch_add(1, std::memory_order_relaxed);
    const bool head = method == "HEAD";
    if (method != "GET" && !head) {
        send_all(fd, make_response(405, "Method Not Allowed", "text/plain",
                                   "only GET is supported\n"));
        return;
    }

    const std::string body = body_for(path);
    if (body.empty() && path != "/metrics") {
        send_all(fd, make_response(404, "Not Found", "text/plain", "not found\n", head));
        return;
    }
    const std::string_view content_type =
        path == "/status" || path == "/lineage" ? "application/json"
        : path == "/metrics" ? "text/plain; version=0.0.4; charset=utf-8"
                             : "text/plain; charset=utf-8";
    send_all(fd, make_response(200, "OK", content_type, body, head));
}

}  // namespace nautilus::obs
