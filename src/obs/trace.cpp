#include "obs/trace.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>

#include "obs/format.hpp"

namespace nautilus::obs {

namespace {

void append_escaped(std::string& out, std::string_view s)
{
    out += '"';
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            }
            else {
                out += c;
            }
        }
    }
    out += '"';
}

// Shortest round-trip decimal; non-finite values become JSON null.  A plain
// integer rendering gets ".0" appended so the parser can tell doubles from
// integer fields.  The rendering is shared (obs/format.hpp) so the trace,
// /status JSON and Prometheus exposition agree bit-for-bit.
void append_double(std::string& out, double v)
{
    append_json_double(out, v);
}

void append_value(std::string& out, const FieldValue& value)
{
    switch (value.index()) {
    case 0: out += std::get<bool>(value) ? "true" : "false"; break;
    case 1: out += std::to_string(std::get<std::int64_t>(value)); break;
    case 2: out += std::to_string(std::get<std::uint64_t>(value)); break;
    case 3: append_double(out, std::get<double>(value)); break;
    case 4: append_escaped(out, std::get<std::string>(value)); break;
    case 5: {
        const auto& vec = std::get<std::vector<double>>(value);
        out += '[';
        for (std::size_t i = 0; i < vec.size(); ++i) {
            if (i > 0) out += ',';
            append_double(out, vec[i]);
        }
        out += ']';
        break;
    }
    }
}

// --- Minimal parser for the emitted subset --------------------------------

struct Parser {
    std::string_view in;
    std::size_t pos = 0;

    bool eof() const { return pos >= in.size(); }
    char peek() const { return in[pos]; }
    bool consume(char c)
    {
        if (eof() || in[pos] != c) return false;
        ++pos;
        return true;
    }
    void skip_ws()
    {
        while (!eof() && (in[pos] == ' ' || in[pos] == '\t')) ++pos;
    }

    bool parse_string(std::string& out)
    {
        if (!consume('"')) return false;
        out.clear();
        while (!eof()) {
            const char c = in[pos++];
            if (c == '"') return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (eof()) return false;
            const char esc = in[pos++];
            switch (esc) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'n': out += '\n'; break;
            case 't': out += '\t'; break;
            case 'r': out += '\r'; break;
            case 'u': {
                if (pos + 4 > in.size()) return false;
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = in[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
                    else return false;
                }
                if (code > 0xff) return false;  // writer only escapes control bytes
                out += static_cast<char>(code);
                break;
            }
            default: return false;
            }
        }
        return false;
    }

    // Numbers keep their emitted kind: a '.', exponent or out-of-range
    // mantissa means double; a leading '-' means int64; otherwise uint64.
    bool parse_number(FieldValue& out)
    {
        const std::size_t start = pos;
        if (!eof() && in[pos] == '-') ++pos;
        bool is_double = false;
        while (!eof() &&
               (std::isdigit(static_cast<unsigned char>(in[pos])) || in[pos] == '.' ||
                in[pos] == 'e' || in[pos] == 'E' || in[pos] == '+' || in[pos] == '-')) {
            if (in[pos] == '.' || in[pos] == 'e' || in[pos] == 'E') is_double = true;
            ++pos;
        }
        if (pos == start) return false;
        const std::string text{in.substr(start, pos - start)};
        errno = 0;
        if (is_double) {
            out = std::strtod(text.c_str(), nullptr);
            return errno == 0;
        }
        if (text[0] == '-') {
            out = static_cast<std::int64_t>(std::strtoll(text.c_str(), nullptr, 10));
            return errno == 0;
        }
        out = static_cast<std::uint64_t>(std::strtoull(text.c_str(), nullptr, 10));
        return errno == 0;
    }

    bool parse_value(FieldValue& out)
    {
        skip_ws();
        if (eof()) return false;
        if (peek() == '"') {
            std::string s;
            if (!parse_string(s)) return false;
            out = std::move(s);
            return true;
        }
        if (in.compare(pos, 4, "true") == 0) {
            pos += 4;
            out = true;
            return true;
        }
        if (in.compare(pos, 5, "false") == 0) {
            pos += 5;
            out = false;
            return true;
        }
        if (in.compare(pos, 4, "null") == 0) {
            pos += 4;
            out = std::numeric_limits<double>::quiet_NaN();
            return true;
        }
        if (peek() == '[') {
            ++pos;
            std::vector<double> arr;
            skip_ws();
            if (consume(']')) {
                out = std::move(arr);
                return true;
            }
            for (;;) {
                FieldValue elem;
                skip_ws();
                if (in.compare(pos, 4, "null") == 0) {
                    pos += 4;
                    arr.push_back(std::numeric_limits<double>::quiet_NaN());
                }
                else {
                    if (!parse_number(elem)) return false;
                    if (const auto* d = std::get_if<double>(&elem)) arr.push_back(*d);
                    else if (const auto* i = std::get_if<std::int64_t>(&elem))
                        arr.push_back(static_cast<double>(*i));
                    else arr.push_back(static_cast<double>(std::get<std::uint64_t>(elem)));
                }
                skip_ws();
                if (consume(']')) break;
                if (!consume(',')) return false;
            }
            out = std::move(arr);
            return true;
        }
        return parse_number(out);
    }
};

}  // namespace

const FieldValue* TraceEvent::find(std::string_view key) const
{
    for (const auto& [k, v] : fields)
        if (k == key) return &v;
    return nullptr;
}

std::optional<double> TraceEvent::number(std::string_view key) const
{
    const FieldValue* v = find(key);
    if (v == nullptr) return std::nullopt;
    if (const auto* d = std::get_if<double>(v)) return *d;
    if (const auto* i = std::get_if<std::int64_t>(v)) return static_cast<double>(*i);
    if (const auto* u = std::get_if<std::uint64_t>(v)) return static_cast<double>(*u);
    return std::nullopt;
}

std::optional<std::uint64_t> TraceEvent::unsigned_int(std::string_view key) const
{
    const FieldValue* v = find(key);
    if (v == nullptr) return std::nullopt;
    if (const auto* u = std::get_if<std::uint64_t>(v)) return *u;
    if (const auto* i = std::get_if<std::int64_t>(v); i != nullptr && *i >= 0)
        return static_cast<std::uint64_t>(*i);
    return std::nullopt;
}

std::optional<std::string> TraceEvent::string(std::string_view key) const
{
    const FieldValue* v = find(key);
    if (v == nullptr) return std::nullopt;
    if (const auto* s = std::get_if<std::string>(v)) return *s;
    return std::nullopt;
}

std::string to_jsonl(const TraceEvent& event)
{
    std::string out;
    out.reserve(64 + event.fields.size() * 16);
    out += "{\"type\":";
    append_escaped(out, event.type);
    out += ",\"t\":";
    append_double(out, event.t);
    for (const auto& [key, value] : event.fields) {
        out += ',';
        append_escaped(out, key);
        out += ':';
        append_value(out, value);
    }
    out += '}';
    return out;
}

std::optional<TraceEvent> parse_jsonl_line(std::string_view line)
{
    Parser p{line};
    p.skip_ws();
    if (!p.consume('{')) return std::nullopt;

    TraceEvent event{""};
    bool have_type = false;
    bool first = true;
    for (;;) {
        p.skip_ws();
        if (p.consume('}')) break;
        if (!first && !p.consume(',')) return std::nullopt;
        p.skip_ws();
        first = false;
        std::string key;
        if (!p.parse_string(key)) return std::nullopt;
        p.skip_ws();
        if (!p.consume(':')) return std::nullopt;
        FieldValue value;
        if (!p.parse_value(value)) return std::nullopt;
        if (key == "type") {
            const auto* s = std::get_if<std::string>(&value);
            if (s == nullptr) return std::nullopt;
            event.type = *s;
            have_type = true;
        }
        else if (key == "t") {
            const auto* d = std::get_if<double>(&value);
            if (d == nullptr) return std::nullopt;
            event.t = *d;
        }
        else {
            event.fields.emplace_back(std::move(key), std::move(value));
        }
    }
    p.skip_ws();
    if (!p.eof() || !have_type) return std::nullopt;
    return event;
}

JsonlFileSink::JsonlFileSink(const std::string& path) : out_(path, std::ios::trunc)
{
    if (!out_) throw std::runtime_error("JsonlFileSink: cannot open '" + path + "'");
}

JsonlFileSink::~JsonlFileSink()
{
    flush();
}

void JsonlFileSink::write(const TraceEvent& event)
{
    const std::string line = to_jsonl(event);
    std::lock_guard lock{mutex_};
    out_ << line << '\n';
}

void JsonlFileSink::flush()
{
    std::lock_guard lock{mutex_};
    out_.flush();
}

void MemorySink::write(const TraceEvent& event)
{
    std::lock_guard lock{mutex_};
    events_.push_back(event);
}

std::vector<TraceEvent> MemorySink::events() const
{
    std::lock_guard lock{mutex_};
    return events_;
}

std::size_t MemorySink::size() const
{
    std::lock_guard lock{mutex_};
    return events_.size();
}

std::vector<TraceEvent> MemorySink::events_of(std::string_view type) const
{
    std::lock_guard lock{mutex_};
    std::vector<TraceEvent> out;
    for (const auto& e : events_)
        if (e.type == type) out.push_back(e);
    return out;
}

namespace {
thread_local int g_span_depth = 0;
}

ScopedTimer::ScopedTimer(const Tracer& tracer, std::string_view name)
{
    if (!tracer.enabled()) return;
    tracer_ = &tracer;
    name_ = name;
    start_ = std::chrono::steady_clock::now();
    depth_ = ++g_span_depth;
}

ScopedTimer::~ScopedTimer()
{
    if (tracer_ == nullptr) return;
    --g_span_depth;
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
    TraceEvent event{"span"};
    event.add("name", FieldValue{std::move(name_)});
    event.add("seconds", FieldValue{seconds});
    event.add("depth", depth_);
    tracer_->emit(std::move(event));
}

}  // namespace nautilus::obs
