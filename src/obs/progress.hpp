#pragma once
// Live run-progress tracking: the shared state behind `/status`, the
// `--progress` heartbeat and the progress gauges on `/metrics`.
//
// A ProgressTracker is a process-lifetime accumulator the engines and the
// evaluation pipeline update as a run advances: the engine reports run
// lifecycle and progress units (generations for GA/NSGA-II, distinct
// evaluations for the budgeted engines), BatchEvaluator reports every
// evaluation wave.  All hot-path updates are relaxed atomics, so a scraper
// thread (ObsHttpServer, ProgressHeartbeat) can snapshot concurrently with
// a running search at any worker count.  Like the rest of obs::, it is off
// by default: Instrumentation carries a null shared_ptr and every site
// guards on it.
//
// Evaluation counters are cumulative over the process (they keep growing
// across the runs of a multi-run experiment), so for a single-run CLI
// invocation the final snapshot matches the trace's `run_end` totals
// exactly: `distinct_evals` equals summed wave fresh counts and
// `units_done` equals the generations the engine completed.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>

namespace nautilus::obs {

// Point-in-time copy of the tracker, with the derived rates used by every
// consumer (/status JSON, heartbeat line, Prometheus gauges).
struct ProgressSnapshot {
    std::string engine;            // empty until the first run starts
    bool running = false;
    std::uint64_t runs_started = 0;
    std::uint64_t runs_completed = 0;
    // Progress units: generations (GA, NSGA-II) or distinct evaluations
    // (random search, SA, HC).  On resumed runs units_at_start is nonzero
    // and pace/ETA are computed over the delta actually run here.
    std::uint64_t units_done = 0;
    std::uint64_t units_total = 0;
    std::uint64_t units_at_start = 0;
    bool have_best = false;
    double best = 0.0;             // best-so-far fitness value (scalar engines)
    // Evaluation pipeline accounting, cumulative across runs.
    std::uint64_t distinct_evals = 0;  // cache misses (the paper's cost)
    std::uint64_t eval_calls = 0;      // items through the pipeline incl. hits
    std::uint64_t cache_hits = 0;
    double eval_seconds = 0.0;         // summed wave wall-clock
    double elapsed_seconds = 0.0;      // since the tracker was created
    double run_elapsed_seconds = 0.0;  // since the current/last run started

    double cache_hit_rate() const
    {
        if (eval_calls == 0) return 0.0;
        return static_cast<double>(cache_hits) / static_cast<double>(eval_calls);
    }
    // Distinct evaluations per second of run wall-clock.
    double evals_per_second() const;
    // Projected seconds to finish the current run from the observed unit
    // pace; nullopt when not running or no pace is measurable yet.
    std::optional<double> eta_seconds() const;
};

// `{"engine":"ga","running":true,...}` -- one flat JSON object.  Non-finite
// doubles serialize as null; `best`/`eta_seconds` are null when absent.
std::string to_json(const ProgressSnapshot& snap);

// One human-readable status line (no trailing newline), shared by the
// `--progress` heartbeat and tests:
//   ga gen 12/80  best 123.456  evals 340 (74.6/s, 57.5% cached)  eta 17s
std::string format_progress_line(const ProgressSnapshot& snap);

class ProgressTracker {
public:
    ProgressTracker();

    // Engine lifecycle.  `units_total` is the run's planned extent in the
    // engine's own units; `units_at_start` is nonzero when resuming.
    void on_run_start(std::string_view engine, std::uint64_t units_total,
                      std::uint64_t units_at_start = 0);
    void on_units(std::uint64_t units_done);
    void on_best(double best);
    void on_run_end();

    // One BatchEvaluator wave: `items` genomes of which `fresh` were cache
    // misses, taking `seconds` of wall-clock.
    void on_wave(std::uint64_t items, std::uint64_t fresh, double seconds);

    ProgressSnapshot snapshot() const;

private:
    using Clock = std::chrono::steady_clock;

    mutable std::mutex mutex_;  // guards engine_ and run_start_ only
    std::string engine_;
    Clock::time_point created_;
    Clock::time_point run_start_;

    std::atomic<bool> running_{false};
    std::atomic<std::uint64_t> runs_started_{0};
    std::atomic<std::uint64_t> runs_completed_{0};
    std::atomic<std::uint64_t> units_done_{0};
    std::atomic<std::uint64_t> units_total_{0};
    std::atomic<std::uint64_t> units_at_start_{0};
    std::atomic<bool> have_best_{false};
    std::atomic<double> best_{0.0};
    std::atomic<std::uint64_t> distinct_{0};
    std::atomic<std::uint64_t> calls_{0};
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<double> eval_seconds_{0.0};
};

// Periodic one-line status to a stream (stderr by default): start() spawns
// a thread that writes format_progress_line() every `interval_seconds`;
// stop()/destruction wakes and joins it promptly.  Lines are only written
// once a run has started, so idle phases (dataset loading, ...) stay quiet.
class ProgressHeartbeat {
public:
    ProgressHeartbeat(std::shared_ptr<ProgressTracker> tracker, double interval_seconds,
                      std::ostream* out = nullptr);  // null = std::cerr
    ~ProgressHeartbeat();

    ProgressHeartbeat(const ProgressHeartbeat&) = delete;
    ProgressHeartbeat& operator=(const ProgressHeartbeat&) = delete;

    void stop();

private:
    void loop();

    std::shared_ptr<ProgressTracker> tracker_;
    double interval_seconds_;
    std::ostream* out_;
    std::mutex mutex_;
    std::condition_variable wake_;
    bool stopping_ = false;
    std::thread thread_;
};

}  // namespace nautilus::obs
