#include "obs/log.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

namespace nautilus::obs {

std::string_view log_level_name(LogLevel level)
{
    switch (level) {
        case LogLevel::debug: return "debug";
        case LogLevel::info: return "info";
        case LogLevel::warn: return "warn";
        case LogLevel::error: return "error";
    }
    return "info";
}

std::optional<LogLevel> log_level_from_name(std::string_view name)
{
    if (name == "debug") return LogLevel::debug;
    if (name == "info") return LogLevel::info;
    if (name == "warn") return LogLevel::warn;
    if (name == "error") return LogLevel::error;
    return std::nullopt;
}

Logger::Logger(LogConfig config)
    : config_(std::move(config)),
      slot_count_(std::max<std::size_t>(config_.ring_capacity, 1)),
      slots_(new Slot[slot_count_])
{
    if (!config_.path.empty()) {
        file_.open(config_.path, std::ios::out | std::ios::app);
        if (!file_) throw std::runtime_error("cannot open log file: " + config_.path);
        file_open_ = true;
    }
}

void Logger::log(LogLevel level, TraceEvent event)
{
    if (!enabled(level)) return;
    event.t = seconds_since_open();
    event.fields.insert(event.fields.begin(),
                        {std::string{"level"}, FieldValue{std::string{log_level_name(level)}}});
    const std::string line = to_jsonl(event);
    records_logged_.fetch_add(1, std::memory_order_relaxed);
    if (file_open_) {
        std::lock_guard<std::mutex> lock(file_mutex_);
        file_ << line << '\n';
        file_.flush();
    }
    publish(line);
}

void Logger::publish(const std::string& line)
{
    if (line.size() > kSlotPayload) {
        records_dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    const std::uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
    Slot& slot = slots_[ticket % slot_count_];
    // Seqlock write: mark the slot dirty (odd), publish the payload through
    // atomic byte stores, then release the even sequence that names this
    // ticket.  The release fence keeps the dirty mark visible before any
    // payload byte is.
    slot.seq.store(2 * ticket + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    for (std::size_t i = 0; i < line.size(); ++i)
        slot.bytes[i].store(line[i], std::memory_order_relaxed);
    slot.size.store(static_cast<std::uint32_t>(line.size()), std::memory_order_relaxed);
    slot.seq.store(2 * ticket + 2, std::memory_order_release);
}

std::string Logger::tail_json(std::size_t n) const
{
    std::vector<std::pair<std::uint64_t, std::string>> records;
    records.reserve(slot_count_);
    for (std::size_t i = 0; i < slot_count_; ++i) {
        const Slot& slot = slots_[i];
        const std::uint64_t s1 = slot.seq.load(std::memory_order_acquire);
        if (s1 == 0 || (s1 & 1u) != 0) continue;  // never written / mid-write
        const std::uint32_t size = slot.size.load(std::memory_order_relaxed);
        if (size > kSlotPayload) continue;
        std::string payload(size, '\0');
        for (std::uint32_t b = 0; b < size; ++b)
            payload[b] = slot.bytes[b].load(std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_acquire);
        if (slot.seq.load(std::memory_order_relaxed) != s1) continue;  // torn
        if (payload.empty() || payload.front() != '{' || payload.back() != '}') continue;
        records.emplace_back(s1 / 2 - 1, std::move(payload));
    }
    std::sort(records.begin(), records.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    if (records.size() > n) records.erase(records.begin(), records.end() - n);

    std::string out = "{\"logged\":";
    out += std::to_string(records_logged());
    out += ",\"dropped\":";
    out += std::to_string(records_dropped());
    out += ",\"records\":[";
    for (std::size_t i = 0; i < records.size(); ++i) {
        if (i != 0) out += ',';
        out += records[i].second;
    }
    out += "]}";
    return out;
}

}  // namespace nautilus::obs
