#include "obs/progress.hpp"

#include <cmath>
#include <cstdio>
#include <iostream>
#include <ostream>

#include "obs/format.hpp"

namespace nautilus::obs {

namespace {

// Relaxed add for atomic<double> (no fetch_add before C++20 on all stdlibs).
void atomic_add(std::atomic<double>& target, double delta)
{
    double old = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(old, old + delta, std::memory_order_relaxed)) {
    }
}

void append_json_string(std::string& out, std::string_view s)
{
    out += '"';
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            }
            else {
                out += c;
            }
        }
    }
    out += '"';
}

// Shared %.17g round-trip rendering (obs/format.hpp): /status doubles equal
// the corresponding trace fields bit-for-bit.
void append_json_number(std::string& out, double v)
{
    append_json_double(out, v);
}

}  // namespace

double ProgressSnapshot::evals_per_second() const
{
    const double t = run_elapsed_seconds > 0.0 ? run_elapsed_seconds : elapsed_seconds;
    if (t <= 0.0 || distinct_evals == 0) return 0.0;
    return static_cast<double>(distinct_evals) / t;
}

std::optional<double> ProgressSnapshot::eta_seconds() const
{
    if (!running || units_total == 0 || units_done >= units_total) return std::nullopt;
    const std::uint64_t done_here = units_done > units_at_start
                                        ? units_done - units_at_start
                                        : 0;
    if (done_here == 0 || run_elapsed_seconds <= 0.0) return std::nullopt;
    const double per_unit = run_elapsed_seconds / static_cast<double>(done_here);
    return per_unit * static_cast<double>(units_total - units_done);
}

std::string to_json(const ProgressSnapshot& snap)
{
    std::string out = "{\"engine\":";
    append_json_string(out, snap.engine);
    out += ",\"running\":";
    out += snap.running ? "true" : "false";
    const auto field_u64 = [&out](const char* key, std::uint64_t v) {
        out += ",\"";
        out += key;
        out += "\":";
        out += std::to_string(v);
    };
    field_u64("runs_started", snap.runs_started);
    field_u64("runs_completed", snap.runs_completed);
    // "generation" keeps the common-case reading; for budgeted engines the
    // unit is distinct evaluations (documented in DESIGN.md section 7).
    field_u64("generation", snap.units_done);
    field_u64("generations_total", snap.units_total);
    field_u64("generations_at_start", snap.units_at_start);
    out += ",\"best\":";
    if (snap.have_best) append_json_number(out, snap.best);
    else out += "null";
    field_u64("distinct_evals", snap.distinct_evals);
    field_u64("eval_calls", snap.eval_calls);
    field_u64("cache_hits", snap.cache_hits);
    out += ",\"cache_hit_rate\":";
    append_json_number(out, snap.cache_hit_rate());
    out += ",\"eval_seconds\":";
    append_json_number(out, snap.eval_seconds);
    out += ",\"elapsed_seconds\":";
    append_json_number(out, snap.elapsed_seconds);
    out += ",\"run_elapsed_seconds\":";
    append_json_number(out, snap.run_elapsed_seconds);
    out += ",\"evals_per_second\":";
    append_json_number(out, snap.evals_per_second());
    out += ",\"eta_seconds\":";
    if (const std::optional<double> eta = snap.eta_seconds()) append_json_number(out, *eta);
    else out += "null";
    out += '}';
    return out;
}

std::string format_progress_line(const ProgressSnapshot& snap)
{
    char buf[256];
    std::string line = snap.engine.empty() ? std::string{"-"} : snap.engine;
    std::snprintf(buf, sizeof buf, " gen %llu/%llu",
                  static_cast<unsigned long long>(snap.units_done),
                  static_cast<unsigned long long>(snap.units_total));
    line += buf;
    if (snap.have_best) {
        std::snprintf(buf, sizeof buf, "  best %.4f", snap.best);
        line += buf;
    }
    std::snprintf(buf, sizeof buf, "  evals %llu (%.1f/s, %.1f%% cached)",
                  static_cast<unsigned long long>(snap.distinct_evals),
                  snap.evals_per_second(), 100.0 * snap.cache_hit_rate());
    line += buf;
    if (const std::optional<double> eta = snap.eta_seconds()) {
        std::snprintf(buf, sizeof buf, "  eta %.0fs", *eta);
        line += buf;
    }
    else if (!snap.running && snap.runs_started > 0) {
        line += "  done";
    }
    return line;
}

ProgressTracker::ProgressTracker() : created_(Clock::now()), run_start_(created_) {}

void ProgressTracker::on_run_start(std::string_view engine, std::uint64_t units_total,
                                   std::uint64_t units_at_start)
{
    {
        std::lock_guard lock{mutex_};
        engine_.assign(engine);
        run_start_ = Clock::now();
    }
    units_total_.store(units_total, std::memory_order_relaxed);
    units_at_start_.store(units_at_start, std::memory_order_relaxed);
    units_done_.store(units_at_start, std::memory_order_relaxed);
    runs_started_.fetch_add(1, std::memory_order_relaxed);
    running_.store(true, std::memory_order_relaxed);
}

void ProgressTracker::on_units(std::uint64_t units_done)
{
    units_done_.store(units_done, std::memory_order_relaxed);
}

void ProgressTracker::on_best(double best)
{
    best_.store(best, std::memory_order_relaxed);
    have_best_.store(true, std::memory_order_relaxed);
}

void ProgressTracker::on_run_end()
{
    runs_completed_.fetch_add(1, std::memory_order_relaxed);
    running_.store(false, std::memory_order_relaxed);
}

void ProgressTracker::on_wave(std::uint64_t items, std::uint64_t fresh, double seconds)
{
    calls_.fetch_add(items, std::memory_order_relaxed);
    distinct_.fetch_add(fresh, std::memory_order_relaxed);
    hits_.fetch_add(items - fresh, std::memory_order_relaxed);
    atomic_add(eval_seconds_, seconds);
}

ProgressSnapshot ProgressTracker::snapshot() const
{
    ProgressSnapshot snap;
    Clock::time_point run_start;
    {
        std::lock_guard lock{mutex_};
        snap.engine = engine_;
        run_start = run_start_;
    }
    const Clock::time_point now = Clock::now();
    snap.elapsed_seconds = std::chrono::duration<double>(now - created_).count();
    snap.run_elapsed_seconds = std::chrono::duration<double>(now - run_start).count();
    snap.running = running_.load(std::memory_order_relaxed);
    snap.runs_started = runs_started_.load(std::memory_order_relaxed);
    snap.runs_completed = runs_completed_.load(std::memory_order_relaxed);
    snap.units_done = units_done_.load(std::memory_order_relaxed);
    snap.units_total = units_total_.load(std::memory_order_relaxed);
    snap.units_at_start = units_at_start_.load(std::memory_order_relaxed);
    snap.have_best = have_best_.load(std::memory_order_relaxed);
    snap.best = best_.load(std::memory_order_relaxed);
    snap.distinct_evals = distinct_.load(std::memory_order_relaxed);
    snap.eval_calls = calls_.load(std::memory_order_relaxed);
    snap.cache_hits = hits_.load(std::memory_order_relaxed);
    snap.eval_seconds = eval_seconds_.load(std::memory_order_relaxed);
    return snap;
}

ProgressHeartbeat::ProgressHeartbeat(std::shared_ptr<ProgressTracker> tracker,
                                     double interval_seconds, std::ostream* out)
    : tracker_(std::move(tracker)),
      interval_seconds_(interval_seconds > 0.0 ? interval_seconds : 5.0),
      out_(out != nullptr ? out : &std::cerr)
{
    if (tracker_ != nullptr) thread_ = std::thread{[this] { loop(); }};
}

ProgressHeartbeat::~ProgressHeartbeat()
{
    stop();
}

void ProgressHeartbeat::stop()
{
    {
        std::lock_guard lock{mutex_};
        if (stopping_) return;
        stopping_ = true;
    }
    wake_.notify_all();
    if (thread_.joinable()) thread_.join();
}

void ProgressHeartbeat::loop()
{
    std::unique_lock lock{mutex_};
    for (;;) {
        if (wake_.wait_for(lock, std::chrono::duration<double>(interval_seconds_),
                           [this] { return stopping_; }))
            return;
        lock.unlock();
        const ProgressSnapshot snap = tracker_->snapshot();
        if (snap.runs_started > 0)
            (*out_) << "[nautilus] " << format_progress_line(snap) << '\n' << std::flush;
        lock.lock();
    }
}

}  // namespace nautilus::obs
