#include "obs/export.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <optional>
#include <variant>

#include "obs/format.hpp"
#include "obs/lineage.hpp"

namespace nautilus::obs {

namespace {

bool valid_name_char(char c, bool first)
{
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':') return true;
    return !first && c >= '0' && c <= '9';
}

// Prometheus sample values: the shared %.17g round-trip rendering
// (obs/format.hpp), so a scraped gauge equals the trace/JSON value
// bit-for-bit.  Non-finite values keep their Prometheus spellings.
std::string format_value(double v)
{
    if (std::isnan(v)) return "NaN";
    if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
    std::string out;
    append_double_17g(out, v);
    return out;
}

void append_type_line(std::string& out, const std::string& name, const char* kind)
{
    out += "# TYPE ";
    out += name;
    out += ' ';
    out += kind;
    out += '\n';
}

bool ends_with(std::string_view s, std::string_view suffix)
{
    return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

void append_json_escaped(std::string& out, std::string_view s)
{
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            }
            else {
                out += c;
            }
        }
    }
}

// One Chrome trace-event object, sortable by timestamp.
struct ChromeEvent {
    double ts_us = 0.0;
    std::string json;
};

std::string format_us(double us)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.3f", std::max(us, 0.0));
    return buf;
}

// Serialize the scalar fields of a trace event as a Chrome `args` object.
std::string args_json(const TraceEvent& ev)
{
    std::string out = "{";
    bool first = true;
    for (const auto& [key, value] : ev.fields) {
        std::string rendered;
        if (const bool* b = std::get_if<bool>(&value)) rendered = *b ? "true" : "false";
        else if (const std::int64_t* i = std::get_if<std::int64_t>(&value))
            rendered = std::to_string(*i);
        else if (const std::uint64_t* u = std::get_if<std::uint64_t>(&value))
            rendered = std::to_string(*u);
        else if (const double* d = std::get_if<double>(&value))
            rendered = std::isfinite(*d) ? format_value(*d) : "null";
        else if (const std::string* s = std::get_if<std::string>(&value)) {
            rendered = "\"";
            append_json_escaped(rendered, *s);
            rendered += '"';
        }
        else {
            continue;  // double arrays stay in the JSONL source
        }
        if (!first) out += ',';
        first = false;
        out += '"';
        append_json_escaped(out, key);
        out += "\":";
        out += rendered;
    }
    out += '}';
    return out;
}

ChromeEvent complete_event(std::string_view name, double end_t, double seconds, int tid,
                           const std::string& args)
{
    const double dur_us = std::max(seconds, 0.0) * 1e6;
    const double ts_us = std::max(end_t * 1e6 - dur_us, 0.0);
    ChromeEvent ev;
    ev.ts_us = ts_us;
    ev.json = "{\"name\":\"";
    append_json_escaped(ev.json, name);
    ev.json += "\",\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(tid) +
               ",\"ts\":" + format_us(ts_us) + ",\"dur\":" + format_us(dur_us) +
               ",\"args\":" + args + '}';
    return ev;
}

ChromeEvent counter_event(std::string_view name, double t, double value)
{
    ChromeEvent ev;
    ev.ts_us = std::max(t * 1e6, 0.0);
    ev.json = "{\"name\":\"";
    append_json_escaped(ev.json, name);
    ev.json += "\",\"ph\":\"C\",\"pid\":1,\"tid\":1,\"ts\":" + format_us(ev.ts_us) +
               ",\"args\":{\"value\":" + format_value(value) + "}}";
    return ev;
}

ChromeEvent instant_event(std::string_view name, double t, const std::string& args)
{
    ChromeEvent ev;
    ev.ts_us = std::max(t * 1e6, 0.0);
    ev.json = "{\"name\":\"";
    append_json_escaped(ev.json, name);
    ev.json += "\",\"ph\":\"i\",\"s\":\"p\",\"pid\":1,\"tid\":1,\"ts\":" +
               format_us(ev.ts_us) + ",\"args\":" + args + '}';
    return ev;
}

}  // namespace

std::string sanitize_metric_name(std::string_view name)
{
    if (name.empty()) return "_";
    std::string out;
    out.reserve(name.size() + 1);
    if (!valid_name_char(name.front(), /*first=*/true)) out += '_';
    for (const char c : name) out += valid_name_char(c, /*first=*/false) ? c : '_';
    return out;
}

std::string to_prometheus(const MetricsSnapshot& snap, const PrometheusOptions& options)
{
    std::string out;
    for (const auto& [name, value] : snap.counters) {
        std::string full = options.prefix + sanitize_metric_name(name);
        if (!ends_with(full, "_total")) full += "_total";
        append_type_line(out, full, "counter");
        out += full;
        out += ' ';
        out += std::to_string(value);
        out += '\n';
    }
    for (const auto& [name, value] : snap.gauges) {
        const std::string full = options.prefix + sanitize_metric_name(name);
        append_type_line(out, full, "gauge");
        out += full;
        out += ' ';
        out += format_value(value);
        out += '\n';
    }
    for (const MetricsSnapshot::HistogramRow& h : snap.histograms) {
        const std::string full = options.prefix + sanitize_metric_name(h.name);
        append_type_line(out, full, "histogram");
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.counts.size(); ++i) {
            cumulative += h.counts[i];
            out += full;
            out += "_bucket{le=\"";
            out += i < h.bounds.size() ? format_value(h.bounds[i]) : "+Inf";
            out += "\"} ";
            out += std::to_string(cumulative);
            out += '\n';
        }
        out += full;
        out += "_sum ";
        out += format_value(h.sum);
        out += '\n';
        out += full;
        out += "_count ";
        out += std::to_string(h.count);
        out += '\n';
    }
    return out;
}

void append_progress_exposition(std::string& out, const ProgressSnapshot& snap,
                                const PrometheusOptions& options)
{
    const std::string p = options.prefix + "progress_";
    const auto gauge = [&out](const std::string& name, double value) {
        append_type_line(out, name, "gauge");
        out += name;
        out += ' ';
        out += format_value(value);
        out += '\n';
    };
    gauge(p + "running", snap.running ? 1.0 : 0.0);
    gauge(p + "runs_started", static_cast<double>(snap.runs_started));
    gauge(p + "runs_completed", static_cast<double>(snap.runs_completed));
    gauge(p + "generation", static_cast<double>(snap.units_done));
    gauge(p + "generations_total", static_cast<double>(snap.units_total));
    if (snap.have_best) gauge(p + "best", snap.best);
    gauge(p + "distinct_evals", static_cast<double>(snap.distinct_evals));
    gauge(p + "eval_calls", static_cast<double>(snap.eval_calls));
    gauge(p + "cache_hits", static_cast<double>(snap.cache_hits));
    gauge(p + "cache_hit_rate", snap.cache_hit_rate());
    gauge(p + "eval_seconds", snap.eval_seconds);
    gauge(p + "elapsed_seconds", snap.elapsed_seconds);
    gauge(p + "evals_per_second", snap.evals_per_second());
    if (const std::optional<double> eta = snap.eta_seconds())
        gauge(p + "eta_seconds", *eta);
}

void append_lineage_exposition(std::string& out, const LineageCounters& counters,
                               const PrometheusOptions& options)
{
    const std::string p = options.prefix + "lineage_";
    const auto gauge = [&out](const std::string& name, double value) {
        append_type_line(out, name, "gauge");
        out += name;
        out += ' ';
        out += format_value(value);
        out += '\n';
    };
    const auto u64 = [&gauge](const std::string& name, std::uint64_t value) {
        gauge(name, static_cast<double>(value));
    };
    u64(p + "runs", counters.runs);
    u64(p + "births", counters.births);
    u64(p + "roots", counters.roots);
    u64(p + "elites", counters.elites);
    u64(p + "mutation_births", counters.mutation_births);
    u64(p + "crossover_births", counters.crossover_births);
    u64(p + "survived", counters.survived);
    u64(p + "improved", counters.improved);
    u64(p + "genes_fresh", counters.genes_fresh);
    u64(p + "genes_inherited", counters.genes_inherited);
    u64(p + "genes_crossed", counters.genes_crossed);
    u64(p + "genes_uniform", counters.genes_uniform);
    u64(p + "genes_bias", counters.genes_bias);
    u64(p + "genes_target", counters.genes_target);
    u64(p + "genes_repair", counters.genes_repair);
    if (!counters.have_last) return;
    const LineageSummary& last = counters.last;
    u64(p + "last_births", last.births);
    u64(p + "last_survived", last.survived);
    u64(p + "last_improved", last.improved);
    u64(p + "last_offspring_uniform", last.offspring_uniform);
    u64(p + "last_offspring_bias", last.offspring_bias);
    u64(p + "last_offspring_target", last.offspring_target);
    u64(p + "last_survived_uniform", last.survived_uniform);
    u64(p + "last_survived_bias", last.survived_bias);
    u64(p + "last_survived_target", last.survived_target);
    u64(p + "last_improved_uniform", last.improved_uniform);
    u64(p + "last_improved_bias", last.improved_bias);
    u64(p + "last_improved_target", last.improved_target);
    if (!last.have_winner) return;
    u64(p + "winner_genes", last.winner_genes);
    u64(p + "winner_fresh", last.winner_fresh);
    u64(p + "winner_uniform", last.winner_uniform);
    u64(p + "winner_bias", last.winner_bias);
    u64(p + "winner_target", last.winner_target);
    u64(p + "winner_repair", last.winner_repair);
    u64(p + "winner_depth", last.winner_depth);
}

std::string chrome_trace_json(const std::vector<TraceEvent>& events)
{
    std::vector<ChromeEvent> out_events;
    out_events.reserve(events.size());
    for (const TraceEvent& ev : events) {
        if (ev.type == "span") {
            const std::string name = ev.string("name").value_or("span");
            const double seconds = ev.number("seconds").value_or(0.0);
            out_events.push_back(complete_event(name, ev.t, seconds, 1, args_json(ev)));
        }
        else if (ev.type == "eval_wave") {
            const double seconds = ev.number("seconds").value_or(0.0);
            out_events.push_back(
                complete_event("eval_wave", ev.t, seconds, 2, args_json(ev)));
        }
        else if (ev.type == "generation") {
            if (const std::optional<double> best = ev.number("best_so_far"))
                if (std::isfinite(*best))
                    out_events.push_back(counter_event("best_so_far", ev.t, *best));
            if (const std::optional<double> div = ev.number("diversity"))
                if (std::isfinite(*div))
                    out_events.push_back(counter_event("diversity", ev.t, *div));
            if (const std::optional<double> distinct = ev.number("distinct_total"))
                out_events.push_back(counter_event("distinct_evals", ev.t, *distinct));
            out_events.push_back(instant_event("generation", ev.t, args_json(ev)));
        }
        else {
            // run_start, run_end, breed, checkpoint, eval_fault, quarantine,
            // hint_estimate, ... all become annotated instants.
            out_events.push_back(instant_event(ev.type, ev.t, args_json(ev)));
        }
    }
    std::stable_sort(out_events.begin(), out_events.end(),
                     [](const ChromeEvent& a, const ChromeEvent& b) {
                         return a.ts_us < b.ts_us;
                     });
    std::string out = "[";
    for (std::size_t i = 0; i < out_events.size(); ++i) {
        if (i > 0) out += ",\n";
        out += out_events[i].json;
    }
    out += "]\n";
    return out;
}

}  // namespace nautilus::obs
