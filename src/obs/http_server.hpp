#pragma once
// Embedded observability HTTP endpoint: a dependency-free POSIX-socket
// HTTP/1.1 server exposing the live metrics registry and progress tracker
// while a search runs.
//
// Endpoints:
//   GET /metrics   Prometheus text exposition (v0.0.4) of the registry plus
//                  the progress and lineage gauges -- scrapeable by Prometheus
//   GET /status    JSON run progress (obs::ProgressSnapshot)
//   GET /lineage   JSON lineage counters (obs::LineageCounters)
//   GET /healthz   "ok" liveness probe
//   GET /          plain-text index of the above
//
// Design: one bounded accept thread handles connections serially -- scrape
// traffic is one collector every few seconds, not user traffic, so there is
// nothing to win by going multi-threaded and a lot of shutdown complexity
// to lose.  Each request is parsed with a receive timeout, answered with
// Connection: close, and the socket is torn down; stop() shuts the
// listening socket down and joins the thread.  Reads of the registry and
// tracker are the snapshot paths, which are safe concurrently with engine
// and worker-thread updates.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "obs/lineage.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"

namespace nautilus::obs {

struct HttpServerConfig {
    std::string bind_address = "127.0.0.1";
    std::uint16_t port = 0;  // 0 = pick an ephemeral port (see port())
};

class ObsHttpServer {
public:
    // Any source may be null; the matching endpoint then serves an
    // empty exposition / `{}`.
    ObsHttpServer(HttpServerConfig config, std::shared_ptr<MetricsRegistry> metrics,
                  std::shared_ptr<ProgressTracker> progress,
                  std::shared_ptr<LineageTracker> lineage = nullptr);
    ~ObsHttpServer();

    ObsHttpServer(const ObsHttpServer&) = delete;
    ObsHttpServer& operator=(const ObsHttpServer&) = delete;

    // Bind + listen + spawn the accept thread.  Throws std::runtime_error
    // when the address cannot be bound.
    void start();

    // Idempotent; joins the accept thread.
    void stop();

    bool running() const { return running_.load(std::memory_order_acquire); }
    // The bound port (resolved after start() when config.port was 0).
    std::uint16_t port() const { return port_; }
    std::uint64_t requests_served() const
    {
        return requests_.load(std::memory_order_relaxed);
    }

    // Exposed for tests: the response body for a given request path.
    std::string body_for(std::string_view path) const;

private:
    void accept_loop();
    void handle_connection(int fd);

    HttpServerConfig config_;
    std::shared_ptr<MetricsRegistry> metrics_;
    std::shared_ptr<ProgressTracker> progress_;
    std::shared_ptr<LineageTracker> lineage_;

    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::thread thread_;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};
    std::atomic<std::uint64_t> requests_{0};
};

}  // namespace nautilus::obs
