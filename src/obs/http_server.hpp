#pragma once
// Embedded observability HTTP endpoint: a dependency-free POSIX-socket
// HTTP/1.1 server exposing the live metrics registry and progress tracker
// while a search runs.
//
// Endpoints:
//   GET /metrics   Prometheus text exposition (v0.0.4) of the registry plus
//                  the progress and lineage gauges -- scrapeable by Prometheus
//   GET /status    JSON run progress (obs::ProgressSnapshot) + uptime_seconds
//   GET /lineage   JSON lineage counters (obs::LineageCounters)
//   GET /logs      JSON tail of the server log ring (?n=K records)
//   GET /healthz   "ok" liveness probe
//   GET /          plain-text index of the above
//
// Telemetry: every connection is assigned a monotonically increasing
// request id, echoed back as an `X-Nautilus-Request-Id` header and stamped
// on an "access" record in the attached Logger (method, path, status,
// bytes, micros).  POST /jobs forwards the id into the JobApi so the
// resulting job's trace and server-log records carry it -- one grep on the
// id joins the access log, the server log and the engine trace.  Request
// handling also feeds self-metrics into the registry: http.requests (total
// and by status class), an http.request_seconds histogram and
// http.response_bytes.
//
// With a JobApi attached (attach_jobs), the server is also the submission
// plane for the multi-tenant job scheduler (src/serve/):
//   POST   /jobs        submit a JSON search spec, get a job id
//   GET    /jobs        list jobs and pool state
//   GET    /jobs/<id>   job status: state, progress snapshot, final result
//   DELETE /jobs/<id>   cancel (checkpoint-backed for ga/nsga2)
//
// Method discipline (RFC 9110): the read-only observability endpoints
// answer non-GET/HEAD with 405 plus an `Allow: GET, HEAD` header; a request
// carrying a body without a Content-Length header gets 411; request heads
// and declared bodies past the size cap get 413.
//
// Design: one bounded accept thread handles connections serially -- scrape
// traffic is one collector every few seconds, not user traffic, so there is
// nothing to win by going multi-threaded and a lot of shutdown complexity
// to lose.  Each request is parsed with a receive timeout, answered with
// Connection: close, and the socket is torn down; stop() shuts the
// listening socket down and joins the thread.  Reads of the registry and
// tracker are the snapshot paths, which are safe concurrently with engine
// and worker-thread updates.  Job submissions hand off to the JobApi
// implementation, which runs jobs on its own threads -- the accept thread
// never blocks on a search.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>

#include "obs/lineage.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"

namespace nautilus::obs {

// One response from the routing layer.  The reason phrase is derived from
// the status code; `allow` (when set) is emitted as an Allow: header, as
// RFC 9110 requires of 405 responses, and `retry_after` (when set) as a
// Retry-After: header (503 backpressure).
struct HttpResponse {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
    std::string allow;
    std::string retry_after;
};

// The job-plane hook: requests under /jobs are delegated here.  Implemented
// by serve::JobScheduler; obs depends only on this interface, never on the
// scheduler, preserving the layering (core -> obs <- serve).
class JobApi {
public:
    virtual ~JobApi() = default;

    // `path` is the full request path ("/jobs" or "/jobs/<id>", query
    // string already stripped); `body` is the request body (POST specs);
    // `request_id` is the HTTP request id (0 = none), stamped into jobs
    // created by POST so their traces and log records correlate with the
    // access log.  Must be callable from any thread.
    virtual HttpResponse handle_jobs(std::string_view method, std::string_view path,
                                     std::string_view body,
                                     std::uint64_t request_id) = 0;
};

struct HttpServerConfig {
    std::string bind_address = "127.0.0.1";
    std::uint16_t port = 0;  // 0 = pick an ephemeral port (see port())
};

class ObsHttpServer {
public:
    // Any source may be null; the matching endpoint then serves an
    // empty exposition / `{}`.
    ObsHttpServer(HttpServerConfig config, std::shared_ptr<MetricsRegistry> metrics,
                  std::shared_ptr<ProgressTracker> progress,
                  std::shared_ptr<LineageTracker> lineage = nullptr);
    ~ObsHttpServer();

    ObsHttpServer(const ObsHttpServer&) = delete;
    ObsHttpServer& operator=(const ObsHttpServer&) = delete;

    // Attach the job-submission plane (call before start()).  Requests
    // under /jobs are delegated to `api`; without one they 404.
    void attach_jobs(std::shared_ptr<JobApi> api) { jobs_ = std::move(api); }

    // Attach the structured service log (call before start()).  Enables
    // `/logs` and per-request access records; without one `/logs` 404s and
    // requests are not logged (self-metrics still record).
    void attach_logger(std::shared_ptr<Logger> logger) { logger_ = std::move(logger); }

    // Bind + listen + spawn the accept thread.  Throws std::runtime_error
    // when the address cannot be bound.
    void start();

    // Idempotent; joins the accept thread.
    void stop();

    bool running() const { return running_.load(std::memory_order_acquire); }
    // The bound port (resolved after start() when config.port was 0).
    std::uint16_t port() const { return port_; }
    std::uint64_t requests_served() const
    {
        return requests_.load(std::memory_order_relaxed);
    }

    // Seconds since construction (reset by start()); the `/status`
    // uptime_seconds field and the nautilus_process_uptime_seconds gauge.
    double uptime_seconds() const;

    // Exposed for tests: the response body for a given request path.
    std::string body_for(std::string_view path) const;

    // Full routing for one request -- method discipline, /jobs delegation,
    // read-only endpoints -- without touching a socket.  Exposed so the job
    // lifecycle golden tests can drive the exact HTTP surface in-process.
    // `target` may carry a query string (`/logs?n=5`); `request_id` is
    // forwarded to the job plane (0 = unassigned, as in direct test calls).
    HttpResponse respond(std::string_view method, std::string_view target,
                         std::string_view body, std::uint64_t request_id = 0) const;

private:
    void accept_loop();
    void handle_connection(int fd);
    // Post-response bookkeeping: self-metrics + the "access" log record.
    void record_request(std::string_view method, std::string_view target, int status,
                        std::size_t bytes, double seconds, std::uint64_t request_id);

    HttpServerConfig config_;
    std::shared_ptr<MetricsRegistry> metrics_;
    std::shared_ptr<ProgressTracker> progress_;
    std::shared_ptr<LineageTracker> lineage_;
    std::shared_ptr<JobApi> jobs_;
    std::shared_ptr<Logger> logger_;

    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::thread thread_;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};
    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> next_request_id_{0};
    std::chrono::steady_clock::time_point started_ = std::chrono::steady_clock::now();
};

}  // namespace nautilus::obs
