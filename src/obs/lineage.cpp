#include "obs/lineage.hpp"

#include <algorithm>
#include <utility>

namespace nautilus::obs {

namespace {

constexpr char k_origin_codes[k_gene_origin_count] = {'f', 'a', 'x', 'u', 'b', 't', 'r'};
constexpr const char* k_origin_names[k_gene_origin_count] = {
    "fresh", "parent_a", "parent_b", "uniform", "bias", "target", "repair"};
constexpr const char* k_op_names[k_birth_op_count] = {
    "init", "resume", "elite", "mutation", "crossover"};

void append_json_uint(std::string& out, const char* key, std::uint64_t value)
{
    out += '"';
    out += key;
    out += "\":";
    out += std::to_string(value);
    out += ',';
}

// Flat summary fields shared by to_json(LineageCounters) below.  Emits a
// trailing comma; callers finish the object themselves.
void append_summary_json(std::string& out, const LineageSummary& s)
{
    append_json_uint(out, "births", s.births);
    append_json_uint(out, "births_at_start", s.births_at_start);
    append_json_uint(out, "roots", s.roots);
    append_json_uint(out, "elites", s.elites);
    append_json_uint(out, "mutation_births", s.mutation_births);
    append_json_uint(out, "crossover_births", s.crossover_births);
    append_json_uint(out, "survived", s.survived);
    append_json_uint(out, "improved", s.improved);
    append_json_uint(out, "genes_fresh", s.genes_fresh);
    append_json_uint(out, "genes_inherited", s.genes_inherited);
    append_json_uint(out, "genes_crossed", s.genes_crossed);
    append_json_uint(out, "genes_uniform", s.genes_uniform);
    append_json_uint(out, "genes_bias", s.genes_bias);
    append_json_uint(out, "genes_target", s.genes_target);
    append_json_uint(out, "genes_repair", s.genes_repair);
    append_json_uint(out, "offspring_uniform", s.offspring_uniform);
    append_json_uint(out, "offspring_bias", s.offspring_bias);
    append_json_uint(out, "offspring_target", s.offspring_target);
    append_json_uint(out, "survived_uniform", s.survived_uniform);
    append_json_uint(out, "survived_bias", s.survived_bias);
    append_json_uint(out, "survived_target", s.survived_target);
    append_json_uint(out, "improved_uniform", s.improved_uniform);
    append_json_uint(out, "improved_bias", s.improved_bias);
    append_json_uint(out, "improved_target", s.improved_target);
    if (s.have_winner) {
        append_json_uint(out, "winner", s.winner);
        append_json_uint(out, "winner_count", s.winner_count);
        append_json_uint(out, "winner_genes", s.winner_genes);
        append_json_uint(out, "winner_fresh", s.winner_fresh);
        append_json_uint(out, "winner_uniform", s.winner_uniform);
        append_json_uint(out, "winner_bias", s.winner_bias);
        append_json_uint(out, "winner_target", s.winner_target);
        append_json_uint(out, "winner_repair", s.winner_repair);
        append_json_uint(out, "winner_depth", s.winner_depth);
    }
}

}  // namespace

char gene_origin_code(GeneOrigin origin)
{
    const auto i = static_cast<std::size_t>(origin);
    return i < k_gene_origin_count ? k_origin_codes[i] : '?';
}

const char* gene_origin_name(GeneOrigin origin)
{
    const auto i = static_cast<std::size_t>(origin);
    return i < k_gene_origin_count ? k_origin_names[i] : "unknown";
}

bool gene_origin_from_code(char code, GeneOrigin& out)
{
    for (std::size_t i = 0; i < k_gene_origin_count; ++i) {
        if (k_origin_codes[i] == code) {
            out = static_cast<GeneOrigin>(i);
            return true;
        }
    }
    return false;
}

std::string origin_codes(std::span<const GeneOrigin> origins)
{
    if (origins.empty()) return "-";
    std::string out;
    out.reserve(origins.size());
    for (const GeneOrigin o : origins) out += gene_origin_code(o);
    return out;
}

bool origins_from_codes(std::string_view codes, std::vector<GeneOrigin>& out)
{
    out.clear();
    if (codes == "-") return true;
    out.reserve(codes.size());
    for (const char c : codes) {
        GeneOrigin o{};
        if (!gene_origin_from_code(c, o)) return false;
        out.push_back(o);
    }
    return true;
}

const char* birth_op_name(BirthOp op)
{
    const auto i = static_cast<std::size_t>(op);
    return i < k_birth_op_count ? k_op_names[i] : "unknown";
}

bool birth_op_from_name(std::string_view name, BirthOp& out)
{
    for (std::size_t i = 0; i < k_birth_op_count; ++i) {
        if (name == k_op_names[i]) {
            out = static_cast<BirthOp>(i);
            return true;
        }
    }
    return false;
}

LineageSummary summarize_lineage(std::span<const BirthRecord> records,
                                 std::span<const std::uint64_t> winners,
                                 std::uint64_t births_at_start)
{
    LineageSummary s;
    s.births = records.size();
    s.births_at_start = births_at_start;
    for (const BirthRecord& r : records) {
        switch (r.op) {
        case BirthOp::init:
        case BirthOp::resume: ++s.roots; break;
        case BirthOp::elite: ++s.elites; break;
        case BirthOp::mutation: ++s.mutation_births; break;
        case BirthOp::crossover: ++s.crossover_births; break;
        }
        if (r.survived) ++s.survived;
        if (r.improved) ++s.improved;
        bool has_uniform = false, has_bias = false, has_target = false;
        for (const GeneOrigin o : r.origins) {
            switch (o) {
            case GeneOrigin::fresh: ++s.genes_fresh; break;
            case GeneOrigin::parent_a: ++s.genes_inherited; break;
            case GeneOrigin::parent_b: ++s.genes_crossed; break;
            case GeneOrigin::uniform: ++s.genes_uniform; has_uniform = true; break;
            case GeneOrigin::bias: ++s.genes_bias; has_bias = true; break;
            case GeneOrigin::target: ++s.genes_target; has_target = true; break;
            case GeneOrigin::repair: ++s.genes_repair; break;
            }
        }
        if (has_uniform) {
            ++s.offspring_uniform;
            if (r.survived) ++s.survived_uniform;
            if (r.improved) ++s.improved_uniform;
        }
        if (has_bias) {
            ++s.offspring_bias;
            if (r.survived) ++s.survived_bias;
            if (r.improved) ++s.improved_bias;
        }
        if (has_target) {
            ++s.offspring_target;
            if (r.survived) ++s.survived_target;
            if (r.improved) ++s.improved_target;
        }
    }

    // Winner attribution: walk each winning gene back through parent links
    // until a terminal (non-inherited) origin class is reached.  Parent ids
    // are strictly smaller than child ids, so the walk always terminates.
    for (const std::uint64_t w : winners) {
        if (w >= records.size()) continue;
        if (!s.have_winner) {
            s.have_winner = true;
            s.winner = w;
        }
        ++s.winner_count;
        const BirthRecord& winner = records[w];
        // Elites carry no origin vector; attribute through their parent.
        const std::size_t genes =
            winner.origins.empty() && winner.parent_a != k_no_parent &&
                    winner.parent_a < records.size()
                ? records[winner.parent_a].origins.size()
                : winner.origins.size();
        for (std::size_t g = 0; g < genes; ++g) {
            const BirthRecord* r = &winner;
            std::uint64_t depth = 0;
            for (;;) {
                const GeneOrigin o =
                    g < r->origins.size() ? r->origins[g] : GeneOrigin::parent_a;
                std::uint64_t next = k_no_parent;
                if (o == GeneOrigin::parent_a) next = r->parent_a;
                else if (o == GeneOrigin::parent_b) next = r->parent_b;
                const bool walkable =
                    next != k_no_parent && next < records.size() && next < r->id;
                if (!walkable) {
                    ++s.winner_genes;
                    switch (o) {
                    case GeneOrigin::uniform: ++s.winner_uniform; break;
                    case GeneOrigin::bias: ++s.winner_bias; break;
                    case GeneOrigin::target: ++s.winner_target; break;
                    case GeneOrigin::repair: ++s.winner_repair; break;
                    default: ++s.winner_fresh; break;
                    }
                    break;
                }
                r = &records[next];
                ++depth;
            }
            s.winner_depth = std::max(s.winner_depth, depth);
        }
    }
    return s;
}

LineageRecorder::LineageRecorder(const Tracer* tracer,
                                 LineageTracker* tracker,
                                 std::string engine)
    : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr),
      tracker_(tracker),
      engine_(std::move(engine))
{
}

BirthRecord& LineageRecorder::mint(BirthOp op, std::uint64_t generation)
{
    BirthRecord& rec = records_.emplace_back();
    rec.id = next_id_++;
    rec.generation = generation;
    rec.op = op;
    return rec;
}

std::uint64_t LineageRecorder::on_root(std::uint64_t generation,
                                       BirthOp op,
                                       std::size_t genes)
{
    BirthRecord& rec = mint(op, generation);
    rec.origins.assign(genes, GeneOrigin::fresh);
    emit_birth(rec);
    return rec.id;
}

std::uint64_t LineageRecorder::on_elite(std::uint64_t parent, std::uint64_t generation)
{
    BirthRecord& rec = mint(BirthOp::elite, generation);
    rec.parent_a = parent;
    emit_birth(rec);
    const std::uint64_t id = rec.id;  // on_survived may touch records_
    on_survived(parent);
    return id;
}

std::uint64_t LineageRecorder::on_child(std::uint64_t parent_a,
                                        std::uint64_t parent_b,
                                        bool crossed,
                                        std::uint64_t generation,
                                        std::vector<GeneOrigin> origins)
{
    BirthRecord& rec = mint(crossed ? BirthOp::crossover : BirthOp::mutation, generation);
    rec.parent_a = parent_a;
    rec.parent_b = parent_b;
    rec.origins = std::move(origins);
    emit_birth(rec);
    return rec.id;
}

void LineageRecorder::on_survived(std::uint64_t id)
{
    if (id >= records_.size()) return;
    BirthRecord& rec = records_[id];
    if (rec.survived) return;
    rec.survived = true;
    if (tracker_ != nullptr) tracker_->on_survived();
}

void LineageRecorder::on_improved(std::uint64_t id)
{
    if (id >= records_.size()) return;
    last_improved_ = id;
    BirthRecord& rec = records_[id];
    if (rec.improved) return;
    rec.improved = true;
    if (tracker_ != nullptr) tracker_->on_improved();
}

const BirthRecord* LineageRecorder::record(std::uint64_t id) const
{
    return id < records_.size() ? &records_[id] : nullptr;
}

LineageState LineageRecorder::snapshot(const std::vector<std::uint64_t>& slot_ids) const
{
    LineageState state;
    state.next_id = next_id_;
    state.last_improved = last_improved_;
    state.slot_ids = slot_ids;
    state.records = records_;
    return state;
}

void LineageRecorder::restore(const LineageState& state)
{
    records_ = state.records;
    next_id_ = state.next_id;
    births_at_start_ = state.next_id;
    last_improved_ = state.last_improved;
}

void LineageRecorder::emit_birth(const BirthRecord& rec)
{
    if (tracker_ != nullptr) tracker_->on_birth(rec.op, rec.origins);
    if (tracer_ == nullptr) return;
    TraceEvent event{"birth"};
    event.add("id", FieldValue{rec.id});
    event.add("gen", FieldValue{rec.generation});
    event.add("op", birth_op_name(rec.op));
    if (rec.parent_a != k_no_parent) event.add("pa", FieldValue{rec.parent_a});
    if (rec.parent_b != k_no_parent) event.add("pb", FieldValue{rec.parent_b});
    event.add("origins", FieldValue{origin_codes(rec.origins)});
    tracer_->emit(std::move(event));
}

LineageSummary LineageRecorder::finish(std::span<const std::uint64_t> winners)
{
    for (const std::uint64_t w : winners) on_improved(w);
    const LineageSummary summary = summarize_lineage(records_, winners, births_at_start_);
    if (tracer_ != nullptr) {
        TraceEvent event{"lineage_summary"};
        event.add("engine", engine_.c_str());
        event.add("births", FieldValue{summary.births});
        event.add("births_at_start", FieldValue{summary.births_at_start});
        event.add("roots", FieldValue{summary.roots});
        event.add("elites", FieldValue{summary.elites});
        event.add("mutation_births", FieldValue{summary.mutation_births});
        event.add("crossover_births", FieldValue{summary.crossover_births});
        event.add("survived", FieldValue{summary.survived});
        event.add("improved", FieldValue{summary.improved});
        event.add("genes_fresh", FieldValue{summary.genes_fresh});
        event.add("genes_inherited", FieldValue{summary.genes_inherited});
        event.add("genes_crossed", FieldValue{summary.genes_crossed});
        event.add("genes_uniform", FieldValue{summary.genes_uniform});
        event.add("genes_bias", FieldValue{summary.genes_bias});
        event.add("genes_target", FieldValue{summary.genes_target});
        event.add("genes_repair", FieldValue{summary.genes_repair});
        event.add("offspring_uniform", FieldValue{summary.offspring_uniform});
        event.add("offspring_bias", FieldValue{summary.offspring_bias});
        event.add("offspring_target", FieldValue{summary.offspring_target});
        event.add("survived_uniform", FieldValue{summary.survived_uniform});
        event.add("survived_bias", FieldValue{summary.survived_bias});
        event.add("survived_target", FieldValue{summary.survived_target});
        event.add("improved_uniform", FieldValue{summary.improved_uniform});
        event.add("improved_bias", FieldValue{summary.improved_bias});
        event.add("improved_target", FieldValue{summary.improved_target});
        if (summary.have_winner) {
            event.add("winner", FieldValue{summary.winner});
            event.add("winner_count", FieldValue{summary.winner_count});
            event.add("winner_genes", FieldValue{summary.winner_genes});
            event.add("winner_fresh", FieldValue{summary.winner_fresh});
            event.add("winner_uniform", FieldValue{summary.winner_uniform});
            event.add("winner_bias", FieldValue{summary.winner_bias});
            event.add("winner_target", FieldValue{summary.winner_target});
            event.add("winner_repair", FieldValue{summary.winner_repair});
            event.add("winner_depth", FieldValue{summary.winner_depth});
        }
        tracer_->emit(std::move(event));
    }
    if (tracker_ != nullptr) tracker_->on_run_finish(engine_, summary);
    return summary;
}

std::string to_json(const LineageCounters& counters)
{
    std::string out;
    out.reserve(1024);
    out += '{';
    append_json_uint(out, "runs", counters.runs);
    append_json_uint(out, "births", counters.births);
    append_json_uint(out, "roots", counters.roots);
    append_json_uint(out, "elites", counters.elites);
    append_json_uint(out, "mutation_births", counters.mutation_births);
    append_json_uint(out, "crossover_births", counters.crossover_births);
    append_json_uint(out, "survived", counters.survived);
    append_json_uint(out, "improved", counters.improved);
    append_json_uint(out, "genes_fresh", counters.genes_fresh);
    append_json_uint(out, "genes_inherited", counters.genes_inherited);
    append_json_uint(out, "genes_crossed", counters.genes_crossed);
    append_json_uint(out, "genes_uniform", counters.genes_uniform);
    append_json_uint(out, "genes_bias", counters.genes_bias);
    append_json_uint(out, "genes_target", counters.genes_target);
    append_json_uint(out, "genes_repair", counters.genes_repair);
    out += "\"last_run\":";
    if (counters.have_last) {
        out += "{\"engine\":\"";
        out += counters.engine;  // engine names are fixed lowercase tokens
        out += "\",";
        append_summary_json(out, counters.last);
        out.back() = '}';  // replace the trailing comma
    }
    else {
        out += "null";
    }
    out += '}';
    return out;
}

void LineageTracker::on_birth(BirthOp op, std::span<const GeneOrigin> origins)
{
    births_.fetch_add(1, std::memory_order_relaxed);
    switch (op) {
    case BirthOp::init:
    case BirthOp::resume: roots_.fetch_add(1, std::memory_order_relaxed); break;
    case BirthOp::elite: elites_.fetch_add(1, std::memory_order_relaxed); break;
    case BirthOp::mutation: mutation_births_.fetch_add(1, std::memory_order_relaxed); break;
    case BirthOp::crossover:
        crossover_births_.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    std::uint64_t tally[k_gene_origin_count] = {};
    for (const GeneOrigin o : origins) {
        const auto i = static_cast<std::size_t>(o);
        if (i < k_gene_origin_count) ++tally[i];
    }
    for (std::size_t i = 0; i < k_gene_origin_count; ++i)
        if (tally[i] > 0) genes_[i].fetch_add(tally[i], std::memory_order_relaxed);
}

void LineageTracker::on_survived()
{
    survived_.fetch_add(1, std::memory_order_relaxed);
}

void LineageTracker::on_improved()
{
    improved_.fetch_add(1, std::memory_order_relaxed);
}

void LineageTracker::on_run_finish(const std::string& engine, const LineageSummary& summary)
{
    std::lock_guard lock{mutex_};
    ++runs_;
    engine_ = engine;
    last_ = summary;
    have_last_ = true;
}

LineageCounters LineageTracker::counters() const
{
    LineageCounters out;
    out.births = births_.load(std::memory_order_relaxed);
    out.roots = roots_.load(std::memory_order_relaxed);
    out.elites = elites_.load(std::memory_order_relaxed);
    out.mutation_births = mutation_births_.load(std::memory_order_relaxed);
    out.crossover_births = crossover_births_.load(std::memory_order_relaxed);
    out.survived = survived_.load(std::memory_order_relaxed);
    out.improved = improved_.load(std::memory_order_relaxed);
    out.genes_fresh = genes_[0].load(std::memory_order_relaxed);
    out.genes_inherited = genes_[1].load(std::memory_order_relaxed);
    out.genes_crossed = genes_[2].load(std::memory_order_relaxed);
    out.genes_uniform = genes_[3].load(std::memory_order_relaxed);
    out.genes_bias = genes_[4].load(std::memory_order_relaxed);
    out.genes_target = genes_[5].load(std::memory_order_relaxed);
    out.genes_repair = genes_[6].load(std::memory_order_relaxed);
    std::lock_guard lock{mutex_};
    out.runs = runs_;
    out.engine = engine_;
    out.last = last_;
    out.have_last = have_last_;
    return out;
}

}  // namespace nautilus::obs
