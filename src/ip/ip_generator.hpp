#pragma once
// The IP generator interface.
//
// A parameterized IP generator is a "software-driven active object" (paper
// section 1): it exposes a parameter space, produces a characterized design
// for any configuration, and -- the Nautilus addition -- ships author hints
// describing how parameters relate to each metric.

#include <memory>
#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "core/genome.hpp"
#include "core/hints.hpp"
#include "core/parameter.hpp"
#include "ip/metrics.hpp"

namespace nautilus::ip {

class IpGenerator {
public:
    virtual ~IpGenerator() = default;

    virtual std::string name() const = 0;
    virtual const ParameterSpace& space() const = 0;

    // Metrics this generator characterizes (composites included).
    virtual std::vector<Metric> metrics() const = 0;

    // Generate + virtually synthesize one configuration.  Must be
    // deterministic per genome.  Infeasible configurations return
    // MetricValues::infeasible_point().
    virtual MetricValues evaluate(const Genome& genome) const = 0;

    // Author hints for one metric, in metric orientation: bias > 0 means
    // "increasing this parameter increases the metric".  The base
    // implementation returns no hints (Nautilus then degenerates to the
    // baseline GA, paper section 3).
    virtual HintSet author_hints(Metric metric) const;

    // Adapter: evaluation function for a single metric, as consumed by the
    // search engines.  Missing metrics make the point infeasible.
    EvalFn metric_eval(Metric metric) const;
};

}  // namespace nautilus::ip
