#pragma once
// Metric identities and per-design metric values.
//
// An IP generator characterizes each design point with a set of metrics:
// hardware implementation metrics (area, frequency), IP-domain metrics
// (throughput, SNR, bisection bandwidth) and composite metrics
// (throughput-per-LUT, area-delay product) -- paper section 4.1.

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/fitness.hpp"

namespace nautilus::ip {

enum class Metric {
    area_luts,           // equivalent LUTs
    ffs,                 // flip-flops
    brams,               // block RAM primitives
    dsps,                // DSP blocks
    freq_mhz,            // maximum clock frequency
    period_ns,           // clock period (1000 / fmax)
    power_mw,            // total power (ASIC studies)
    area_mm2,            // silicon area (ASIC studies)
    throughput_msps,     // million samples per second (FFT)
    snr_db,              // fixed-point signal-to-noise ratio (FFT)
    bisection_gbps,      // peak network bisection bandwidth (NoC networks)
    area_delay_product,  // clock period x LUTs (Fig. 5)
    throughput_per_lut,  // MSPS / LUTs (Fig. 7)
    latency_ns,          // zero-load packet latency (NoC networks)
    saturation_injection,  // saturation rate, flits/cycle/endpoint (NoC)
};

inline constexpr std::size_t k_metric_count = 15;

const char* metric_name(Metric m);
const char* metric_unit(Metric m);

// The direction in which the metric usually improves (freq: maximize,
// area: minimize, ...).  Queries may override.
Direction metric_default_direction(Metric m);

// Parse by name; nullopt for unknown strings.
std::optional<Metric> metric_from_name(const std::string& name);

// Metric values for one evaluated design point.
class MetricValues {
public:
    bool feasible = true;

    void set(Metric m, double value);
    bool has(Metric m) const;
    // Throws std::out_of_range when absent.
    double get(Metric m) const;
    std::optional<double> try_get(Metric m) const;

    const std::vector<std::pair<Metric, double>>& items() const { return values_; }

    // Marks the point infeasible and clears values.
    static MetricValues infeasible_point();

private:
    std::vector<std::pair<Metric, double>> values_;
};

// Fill in composite metrics from their components when present:
//   area_delay_product  = period_ns * area_luts
//   throughput_per_lut  = throughput_msps / area_luts
//   period_ns           = 1000 / freq_mhz
void derive_composites(MetricValues& values);

}  // namespace nautilus::ip
