#include "ip/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "core/rng.hpp"

namespace nautilus::ip {

Dataset Dataset::enumerate(const IpGenerator& generator, std::size_t max_points)
{
    const auto total = generator.space().exact_cardinality();
    if (!total || *total > max_points)
        throw std::invalid_argument("Dataset::enumerate: space too large (" +
                                    std::to_string(generator.space().cardinality()) +
                                    " points)");
    Dataset ds;
    ds.entries_.reserve(*total);
    for (std::size_t rank = 0; rank < *total; ++rank) {
        Genome g = Genome::from_rank(generator.space(), rank);
        MetricValues v = generator.evaluate(g);
        ds.entries_.push_back({std::move(g), std::move(v)});
    }
    return ds;
}

Dataset Dataset::sample(const IpGenerator& generator, std::size_t count, std::uint64_t seed)
{
    const double cardinality = generator.space().cardinality();
    if (static_cast<double>(count) > cardinality)
        throw std::invalid_argument("Dataset::sample: count exceeds space cardinality");
    Dataset ds;
    ds.entries_.reserve(count);
    std::unordered_set<std::uint64_t> seen;
    Rng rng{seed};
    const std::size_t max_draws = count * 50 + 1000;
    for (std::size_t draw = 0; draw < max_draws && ds.entries_.size() < count; ++draw) {
        Genome g = Genome::random(generator.space(), rng);
        if (!seen.insert(g.key()).second) continue;
        MetricValues v = generator.evaluate(g);
        ds.entries_.push_back({std::move(g), std::move(v)});
    }
    if (ds.entries_.size() < count)
        throw std::runtime_error("Dataset::sample: could not draw enough distinct points");
    return ds;
}

std::size_t Dataset::feasible_count() const
{
    std::size_t n = 0;
    for (const auto& e : entries_)
        if (e.values.feasible) ++n;
    return n;
}

const DatasetEntry& Dataset::entry(std::size_t i) const
{
    if (i >= entries_.size()) throw std::out_of_range("Dataset::entry: index out of range");
    return entries_[i];
}

const std::vector<double>& Dataset::sorted_values(Metric metric) const
{
    for (const auto& [m, values] : sorted_cache_)
        if (m == metric) return values;
    std::vector<double> values;
    values.reserve(entries_.size());
    for (const auto& e : entries_) {
        if (!e.values.feasible) continue;
        const auto v = e.values.try_get(metric);
        if (v) values.push_back(*v);
    }
    if (values.empty())
        throw std::invalid_argument(std::string("Dataset: no feasible values for metric ") +
                                    metric_name(metric));
    std::sort(values.begin(), values.end());
    sorted_cache_.emplace_back(metric, std::move(values));
    return sorted_cache_.back().second;
}

double Dataset::best(Metric metric, Direction dir) const
{
    const auto& values = sorted_values(metric);
    return dir == Direction::maximize ? values.back() : values.front();
}

const DatasetEntry& Dataset::best_entry(Metric metric, Direction dir) const
{
    const DatasetEntry* best = nullptr;
    for (const auto& e : entries_) {
        if (!e.values.feasible) continue;
        const auto v = e.values.try_get(metric);
        if (!v) continue;
        if (best == nullptr || !no_worse(best->values.get(metric), *v, dir)) best = &e;
    }
    if (best == nullptr)
        throw std::invalid_argument("Dataset::best_entry: no feasible values");
    return *best;
}

double Dataset::percentile_threshold(Metric metric, Direction dir,
                                     double top_fraction) const
{
    if (top_fraction <= 0.0 || top_fraction > 1.0)
        throw std::invalid_argument("Dataset::percentile_threshold: fraction out of (0, 1]");
    const auto& values = sorted_values(metric);
    const std::size_t n = values.size();
    std::size_t k = static_cast<std::size_t>(std::ceil(top_fraction * static_cast<double>(n)));
    k = std::clamp<std::size_t>(k, 1, n);
    // k best values: largest k (maximize) or smallest k (minimize).
    return dir == Direction::maximize ? values[n - k] : values[k - 1];
}

double Dataset::quality_percent(Metric metric, Direction dir, double value) const
{
    const auto& values = sorted_values(metric);
    const auto n = static_cast<double>(values.size());
    if (dir == Direction::maximize) {
        // Points with metric <= value are tied-or-beaten.
        const auto it = std::upper_bound(values.begin(), values.end(), value);
        return 100.0 * static_cast<double>(it - values.begin()) / n;
    }
    const auto it = std::lower_bound(values.begin(), values.end(), value);
    return 100.0 * static_cast<double>(values.end() - it) / n;
}

double Dataset::hit_fraction(Metric metric, Direction dir, double value) const
{
    const auto& values = sorted_values(metric);
    const auto n = static_cast<double>(values.size());
    if (dir == Direction::maximize) {
        const auto it = std::lower_bound(values.begin(), values.end(), value);
        return static_cast<double>(values.end() - it) / n;
    }
    const auto it = std::upper_bound(values.begin(), values.end(), value);
    return static_cast<double>(it - values.begin()) / n;
}

EvalFn Dataset::lookup_eval(Metric metric, EvalFn fallback) const
{
    // Build the index once, shared by all copies of the returned closure.
    auto index = std::make_shared<std::unordered_map<Genome, Evaluation, GenomeHash>>();
    index->reserve(entries_.size());
    for (const auto& e : entries_) {
        Evaluation eval{false, 0.0};
        if (e.values.feasible) {
            const auto v = e.values.try_get(metric);
            if (v) eval = Evaluation{true, *v};
        }
        index->emplace(e.genome, eval);
    }
    return [index, fallback](const Genome& g) -> Evaluation {
        const auto it = index->find(g);
        if (it != index->end()) return it->second;
        if (fallback) return fallback(g);
        return Evaluation{false, 0.0};
    };
}

void Dataset::save_csv(std::ostream& out, const IpGenerator& generator) const
{
    const ParameterSpace& space = generator.space();
    const std::vector<Metric> metrics = generator.metrics();
    for (std::size_t i = 0; i < space.size(); ++i) out << space[i].name << ';';
    out << "feasible";
    for (Metric m : metrics) out << ';' << metric_name(m);
    out << '\n';
    out.precision(10);
    for (const auto& e : entries_) {
        for (std::size_t i = 0; i < space.size(); ++i) out << e.genome.gene(i) << ';';
        out << (e.values.feasible ? 1 : 0);
        for (Metric m : metrics) {
            out << ';';
            const auto v = e.values.try_get(m);
            if (v) out << *v;
        }
        out << '\n';
    }
}

Dataset Dataset::load_csv(std::istream& in, const IpGenerator& generator)
{
    const ParameterSpace& space = generator.space();
    const std::vector<Metric> metrics = generator.metrics();
    std::string line;
    if (!std::getline(in, line)) throw std::runtime_error("Dataset::load_csv: empty stream");

    Dataset ds;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        std::stringstream row{line};
        std::string cell;
        std::vector<std::uint32_t> genes(space.size());
        for (std::size_t i = 0; i < space.size(); ++i) {
            if (!std::getline(row, cell, ';'))
                throw std::runtime_error("Dataset::load_csv: truncated row");
            genes[i] = static_cast<std::uint32_t>(std::stoul(cell));
        }
        if (!std::getline(row, cell, ';'))
            throw std::runtime_error("Dataset::load_csv: missing feasible flag");
        MetricValues values;
        values.feasible = cell == "1";
        for (Metric m : metrics) {
            if (!std::getline(row, cell, ';')) break;
            if (!cell.empty()) values.set(m, std::stod(cell));
        }
        Genome g{std::move(genes)};
        if (!g.compatible_with(space))
            throw std::runtime_error("Dataset::load_csv: genome incompatible with space");
        ds.entries_.push_back({std::move(g), std::move(values)});
    }
    return ds;
}

}  // namespace nautilus::ip
