#include "ip/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <numeric>
#include <ostream>
#include <stdexcept>

#include "core/hint_estimator.hpp"

namespace nautilus::ip {

std::vector<ParameterEffect> main_effects(const Dataset& dataset,
                                          const IpGenerator& generator, Metric metric)
{
    const ParameterSpace& space = generator.space();
    if (dataset.empty()) throw std::invalid_argument("main_effects: empty dataset");

    std::vector<ParameterEffect> effects(space.size());
    for (std::size_t p = 0; p < space.size(); ++p) {
        const std::size_t card = space[p].domain.cardinality();
        effects[p].param = p;
        effects[p].mean_by_value.assign(card, 0.0);
        effects[p].count_by_value.assign(card, 0);
    }

    for (const auto& entry : dataset) {
        if (!entry.values.feasible) continue;
        const auto v = entry.values.try_get(metric);
        if (!v) continue;
        for (std::size_t p = 0; p < space.size(); ++p) {
            const std::uint32_t idx = entry.genome.gene(p);
            effects[p].mean_by_value[idx] += *v;
            ++effects[p].count_by_value[idx];
        }
    }

    for (std::size_t p = 0; p < space.size(); ++p) {
        ParameterEffect& e = effects[p];
        double lo = std::numeric_limits<double>::infinity();
        double hi = -lo;
        std::vector<double> xs;
        std::vector<double> ys;
        for (std::size_t i = 0; i < e.mean_by_value.size(); ++i) {
            if (e.count_by_value[i] == 0) continue;
            e.mean_by_value[i] /= static_cast<double>(e.count_by_value[i]);
            lo = std::min(lo, e.mean_by_value[i]);
            hi = std::max(hi, e.mean_by_value[i]);
            xs.push_back(static_cast<double>(i));
            ys.push_back(e.mean_by_value[i]);
        }
        if (xs.empty())
            throw std::invalid_argument("main_effects: no feasible values for metric");
        e.effect_range = hi - lo;
        if (generator.space()[p].domain.ordered() && xs.size() >= 2)
            e.trend = HintEstimator::rank_correlation(xs, ys);
    }
    return effects;
}

void print_sensitivity_report(std::ostream& out, const IpGenerator& generator,
                              Metric metric, const std::vector<ParameterEffect>& effects)
{
    const ParameterSpace& space = generator.space();
    std::vector<std::size_t> order(effects.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return effects[a].effect_range > effects[b].effect_range;
    });

    out << "  sensitivity of " << metric_name(metric) << " (" << metric_unit(metric)
        << "), parameters by descending main-effect range:\n";
    out << "  " << std::setw(18) << std::left << "parameter" << std::setw(14) << "effect"
        << std::setw(10) << "trend"
        << "mean by value\n";
    for (std::size_t rank : order) {
        const ParameterEffect& e = effects[rank];
        out << "  " << std::setw(18) << std::left << space[e.param].name;
        out << std::setw(14) << std::left << std::fixed << std::setprecision(2)
            << e.effect_range;
        out << std::setw(10) << std::left << std::setprecision(2) << e.trend;
        for (std::size_t i = 0; i < e.mean_by_value.size(); ++i) {
            if (e.count_by_value[i] == 0)
                out << " --";
            else
                out << ' ' << std::setprecision(0) << e.mean_by_value[i];
        }
        out << '\n';
    }
}

HintSet effects_to_hints(const IpGenerator& generator,
                         const std::vector<ParameterEffect>& effects)
{
    const ParameterSpace& space = generator.space();
    if (effects.size() != space.size())
        throw std::invalid_argument("effects_to_hints: effects/space size mismatch");
    HintSet hints = HintSet::none(space);

    double max_range = 0.0;
    for (const auto& e : effects) max_range = std::max(max_range, e.effect_range);
    if (max_range <= 0.0) return hints;

    for (std::size_t p = 0; p < space.size(); ++p) {
        const ParameterEffect& e = effects[p];
        ParamHints& h = hints.param(p);
        const double rel = e.effect_range / max_range;
        if (rel < 0.02) continue;  // negligible leverage
        h.importance = std::clamp(1.0 + 99.0 * std::sqrt(rel), 1.0, 100.0);
        h.importance_decay = 0.95;
        if (space[p].domain.ordered() && std::abs(e.trend) > 0.2)
            h.bias = std::clamp(e.trend, -1.0, 1.0);
    }
    return hints;
}

}  // namespace nautilus::ip
