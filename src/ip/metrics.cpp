#include "ip/metrics.hpp"

#include <array>
#include <stdexcept>

namespace nautilus::ip {

namespace {

struct MetricInfo {
    Metric metric;
    const char* name;
    const char* unit;
    Direction direction;
};

constexpr std::array<MetricInfo, k_metric_count> k_metric_table{{
    {Metric::area_luts, "area_luts", "LUTs", Direction::minimize},
    {Metric::ffs, "ffs", "FFs", Direction::minimize},
    {Metric::brams, "brams", "BRAMs", Direction::minimize},
    {Metric::dsps, "dsps", "DSPs", Direction::minimize},
    {Metric::freq_mhz, "freq_mhz", "MHz", Direction::maximize},
    {Metric::period_ns, "period_ns", "ns", Direction::minimize},
    {Metric::power_mw, "power_mw", "mW", Direction::minimize},
    {Metric::area_mm2, "area_mm2", "mm^2", Direction::minimize},
    {Metric::throughput_msps, "throughput_msps", "MSPS", Direction::maximize},
    {Metric::snr_db, "snr_db", "dB", Direction::maximize},
    {Metric::bisection_gbps, "bisection_gbps", "Gbps", Direction::maximize},
    {Metric::area_delay_product, "area_delay_product", "ns*LUTs", Direction::minimize},
    {Metric::throughput_per_lut, "throughput_per_lut", "MSPS/LUT", Direction::maximize},
    {Metric::latency_ns, "latency_ns", "ns", Direction::minimize},
    {Metric::saturation_injection, "saturation_injection", "flits/cyc/node",
     Direction::maximize},
}};

const MetricInfo& info(Metric m)
{
    for (const auto& row : k_metric_table)
        if (row.metric == m) return row;
    throw std::invalid_argument("unknown metric");
}

}  // namespace

const char* metric_name(Metric m)
{
    return info(m).name;
}

const char* metric_unit(Metric m)
{
    return info(m).unit;
}

Direction metric_default_direction(Metric m)
{
    return info(m).direction;
}

std::optional<Metric> metric_from_name(const std::string& name)
{
    for (const auto& row : k_metric_table)
        if (name == row.name) return row.metric;
    return std::nullopt;
}

void MetricValues::set(Metric m, double value)
{
    for (auto& [metric, v] : values_) {
        if (metric == m) {
            v = value;
            return;
        }
    }
    values_.emplace_back(m, value);
}

bool MetricValues::has(Metric m) const
{
    for (const auto& [metric, v] : values_)
        if (metric == m) return true;
    return false;
}

double MetricValues::get(Metric m) const
{
    for (const auto& [metric, v] : values_)
        if (metric == m) return v;
    throw std::out_of_range(std::string("MetricValues::get: missing metric ") +
                            metric_name(m));
}

std::optional<double> MetricValues::try_get(Metric m) const
{
    for (const auto& [metric, v] : values_)
        if (metric == m) return v;
    return std::nullopt;
}

MetricValues MetricValues::infeasible_point()
{
    MetricValues mv;
    mv.feasible = false;
    return mv;
}

void derive_composites(MetricValues& values)
{
    if (!values.feasible) return;
    if (!values.has(Metric::period_ns) && values.has(Metric::freq_mhz)) {
        const double f = values.get(Metric::freq_mhz);
        if (f > 0.0) values.set(Metric::period_ns, 1000.0 / f);
    }
    if (!values.has(Metric::area_delay_product) && values.has(Metric::period_ns) &&
        values.has(Metric::area_luts)) {
        values.set(Metric::area_delay_product,
                   values.get(Metric::period_ns) * values.get(Metric::area_luts));
    }
    if (!values.has(Metric::throughput_per_lut) && values.has(Metric::throughput_msps) &&
        values.has(Metric::area_luts)) {
        const double luts = values.get(Metric::area_luts);
        if (luts > 0.0)
            values.set(Metric::throughput_per_lut,
                       values.get(Metric::throughput_msps) / luts);
    }
}

}  // namespace nautilus::ip
