#pragma once
// Design-space sensitivity analysis.
//
// The paper suggests that, lacking an expert, "an IP user could try sweeping
// each IP parameter independently and then observe how the various metrics
// of interest respond to estimate approximate hint values" (section 3).
// This module implements that analysis over a characterized dataset: per-
// parameter main effects (mean metric per parameter value), the effect range
// each parameter commands, and a printable report.  It also converts the
// analysis into a HintSet -- a dataset-backed alternative to HintEstimator's
// sample-based estimation.

#include <iosfwd>

#include "core/hints.hpp"
#include "ip/dataset.hpp"

namespace nautilus::ip {

struct ParameterEffect {
    std::size_t param = 0;
    // Mean metric value over feasible entries, per parameter value index.
    std::vector<double> mean_by_value;
    // Feasible sample count per value index.
    std::vector<std::size_t> count_by_value;
    // max(mean) - min(mean): the leverage this parameter has on the metric.
    double effect_range = 0.0;
    // Sign of the trend from first to last value for ordered domains
    // (Spearman correlation of value index vs mean); 0 for unordered.
    double trend = 0.0;
};

// Main effect of every parameter of `generator` on `metric` over `dataset`.
std::vector<ParameterEffect> main_effects(const Dataset& dataset,
                                          const IpGenerator& generator, Metric metric);

// Human-readable sensitivity table (one row per parameter, sorted by
// descending effect range).
void print_sensitivity_report(std::ostream& out, const IpGenerator& generator,
                              Metric metric,
                              const std::vector<ParameterEffect>& effects);

// Derive hints from main effects: importance scales with relative effect
// range, bias with the trend (ordered domains only).  Confidence left at 0.
HintSet effects_to_hints(const IpGenerator& generator,
                         const std::vector<ParameterEffect>& effects);

}  // namespace nautilus::ip
