#include "ip/ip_generator.hpp"

namespace nautilus::ip {

HintSet IpGenerator::author_hints(Metric) const
{
    return HintSet::none(space());
}

EvalFn IpGenerator::metric_eval(Metric metric) const
{
    return [this, metric](const Genome& genome) -> Evaluation {
        const MetricValues values = evaluate(genome);
        if (!values.feasible) return Evaluation{false, 0.0};
        const auto v = values.try_get(metric);
        if (!v) return Evaluation{false, 0.0};
        return Evaluation{true, *v};
    };
}

}  // namespace nautilus::ip
