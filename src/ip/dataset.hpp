#pragma once
// Offline-characterized design-space datasets.
//
// The paper's methodology (section 4.1) characterizes a large slice of each
// IP's design space offline and then runs search experiments against the
// stored results.  Dataset mirrors that: enumerate (or sample) a generator,
// store the metric values, answer best/percentile queries, and serve as a
// lookup-table evaluator.  CSV round-tripping lets long characterizations be
// cached on disk.

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "ip/ip_generator.hpp"

namespace nautilus::ip {

struct DatasetEntry {
    Genome genome;
    MetricValues values;
};

class Dataset {
public:
    // Characterize the full space (throws if larger than `max_points`).
    static Dataset enumerate(const IpGenerator& generator,
                             std::size_t max_points = 2'000'000);

    // Characterize `count` distinct uniformly sampled points.
    static Dataset sample(const IpGenerator& generator, std::size_t count,
                          std::uint64_t seed);

    std::size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }
    std::size_t feasible_count() const;

    const DatasetEntry& entry(std::size_t i) const;
    auto begin() const { return entries_.begin(); }
    auto end() const { return entries_.end(); }

    // Best feasible value of `metric` in `dir` over the dataset.
    double best(Metric metric, Direction dir) const;
    // The entry achieving it.
    const DatasetEntry& best_entry(Metric metric, Direction dir) const;

    // Value v such that a design with metric-value at least as good as v is
    // in the best `top_fraction` of feasible points (e.g. 0.01 = "top 1%").
    double percentile_threshold(Metric metric, Direction dir, double top_fraction) const;

    // "Design solution score" of a value: the percentage of feasible dataset
    // points that the value ties or beats (100 = the best point; Fig. 3's
    // y-axis).
    double quality_percent(Metric metric, Direction dir, double value) const;

    // Fraction of feasible points at least as good as `value` (footnote 3's
    // random-sampling hit probability).
    double hit_fraction(Metric metric, Direction dir, double value) const;

    // Lookup-table evaluator: exact-match genome lookup.  Genomes absent
    // from the dataset fall back to `fallback` when provided, otherwise they
    // are reported infeasible.
    EvalFn lookup_eval(Metric metric, EvalFn fallback = nullptr) const;

    // CSV: header "param..;feasible;metric.." then one row per entry.
    void save_csv(std::ostream& out, const IpGenerator& generator) const;
    static Dataset load_csv(std::istream& in, const IpGenerator& generator);

private:
    std::vector<DatasetEntry> entries_;
    // metric -> sorted feasible values, built lazily per metric.
    mutable std::vector<std::pair<Metric, std::vector<double>>> sorted_cache_;

    const std::vector<double>& sorted_values(Metric metric) const;
};

}  // namespace nautilus::ip
