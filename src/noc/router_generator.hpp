#pragma once
// RouterGenerator: the "NoC" IP generator of the paper's evaluation.
//
// Wraps the VC-router model in the IpGenerator interface and ships author
// hints for the hardware metrics.  In the paper's methodology, the NoC hints
// are *estimated by a non-expert* from 80 synthesized samples; use
// HintEstimator for that workflow, or author_hints() for the packaged
// author knowledge.

#include "ip/ip_generator.hpp"
#include "noc/router_model.hpp"
#include "synth/synthesizer.hpp"

namespace nautilus::noc {

class RouterGenerator final : public ip::IpGenerator {
public:
    explicit RouterGenerator(synth::FpgaTech tech = synth::FpgaTech::virtex6_lx760t(),
                             int num_ports = 5);

    std::string name() const override { return "vc-router"; }
    const ParameterSpace& space() const override { return space_; }
    std::vector<ip::Metric> metrics() const override;
    ip::MetricValues evaluate(const Genome& genome) const override;
    HintSet author_hints(ip::Metric metric) const override;

    int num_ports() const { return num_ports_; }
    const synth::VirtualSynthesizer& synthesizer() const { return synth_; }

private:
    ParameterSpace space_;
    synth::VirtualSynthesizer synth_;
    int num_ports_;
};

}  // namespace nautilus::noc
