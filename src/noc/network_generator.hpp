#pragma once
// NetworkGenerator: IP generator over (topology x router) NoC configurations.
//
// The design space behind the paper's Fig. 2 motivation study: all
// functionally interchangeable 64-endpoint networks, spanning 2-3 orders of
// magnitude in area, power and performance.

#include "ip/ip_generator.hpp"
#include "noc/network_model.hpp"
#include "noc/traffic.hpp"

namespace nautilus::noc {

class NetworkGenerator final : public ip::IpGenerator {
public:
    explicit NetworkGenerator(int endpoints = 64,
                              synth::AsicTech tech = synth::AsicTech::commercial_65nm());

    std::string name() const override { return "connect-noc"; }
    const ParameterSpace& space() const override { return space_; }
    std::vector<ip::Metric> metrics() const override;
    ip::MetricValues evaluate(const Genome& genome) const override;
    HintSet author_hints(ip::Metric metric) const override;

    int endpoints() const { return endpoints_; }

    // Decode helper used by the Fig. 2 bench to label scatter points.
    NetworkConfig decode(const Genome& genome) const;

    // Measured uniform-traffic analysis of one topology family (computed
    // once per family from the explicit graph).
    const TrafficAnalysis& traffic(TopologyKind kind) const;

private:
    ParameterSpace space_;
    NetworkModel model_;
    int endpoints_;
    std::vector<TrafficAnalysis> traffic_;  // indexed by TopologyKind
};

// Gene index constants for the network space.
namespace network_gene {
inline constexpr std::size_t topology = 0;
inline constexpr std::size_t flit_width = 1;
inline constexpr std::size_t num_vcs = 2;
inline constexpr std::size_t buffer_depth = 3;
inline constexpr std::size_t pipeline_stages = 4;
inline constexpr std::size_t count = 5;
}  // namespace network_gene

ParameterSpace make_network_space();

}  // namespace nautilus::noc
