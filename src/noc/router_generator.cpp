#include "noc/router_generator.hpp"

namespace nautilus::noc {

using ip::Metric;

RouterGenerator::RouterGenerator(synth::FpgaTech tech, int num_ports)
    : space_(make_router_space()), synth_(std::move(tech)), num_ports_(num_ports)
{
}

std::vector<Metric> RouterGenerator::metrics() const
{
    return {Metric::area_luts, Metric::ffs,       Metric::freq_mhz,
            Metric::period_ns, Metric::area_delay_product};
}

ip::MetricValues RouterGenerator::evaluate(const Genome& genome) const
{
    const RouterConfig config = decode_router(space_, genome, num_ports_);
    const synth::SynthResult r = synth_.synthesize(router_descriptor(config));
    ip::MetricValues mv;
    mv.set(Metric::area_luts, r.luts);
    mv.set(Metric::ffs, r.ffs);
    mv.set(Metric::freq_mhz, r.fmax_mhz);
    mv.set(Metric::period_ns, r.period_ns);
    ip::derive_composites(mv);
    return mv;
}

HintSet RouterGenerator::author_hints(Metric metric) const
{
    HintSet hints = HintSet::none(space_);
    auto set = [&](std::size_t gene, double importance, std::optional<double> bias,
                   std::optional<double> decay = std::nullopt) {
        ParamHints& h = hints.param(gene);
        h.importance = importance;
        h.bias = bias;
        // Default decay mirrors the expert practice of focusing on dominant
        // parameters first, then broadening (paper section 3).
        h.importance_decay = decay.value_or(importance >= 50.0 ? 0.96 : 1.0);
    };

    switch (metric) {
    case Metric::freq_mhz:
        // Pipelining dominates; everything that deepens a stage hurts.
        set(router_gene::pipeline_stages, 90.0, +0.9);
        set(router_gene::num_vcs, 60.0, -0.5);
        set(router_gene::vc_alloc, 50.0, -0.6);
        set(router_gene::sw_alloc, 45.0, -0.5);
        set(router_gene::routing, 30.0, -0.4);
        set(router_gene::crossbar, 25.0, -0.4);
        set(router_gene::buffer_depth, 20.0, -0.2);
        set(router_gene::speculative, 20.0, -0.3);
        set(router_gene::flit_width, 15.0, -0.2);
        break;
    case Metric::area_luts:
        // Storage and datapath width dominate area.
        set(router_gene::flit_width, 95.0, +0.8);
        set(router_gene::buffer_depth, 80.0, +0.7);
        set(router_gene::num_vcs, 75.0, +0.7);
        set(router_gene::vc_alloc, 35.0, +0.4);
        set(router_gene::sw_alloc, 30.0, +0.3);
        set(router_gene::routing, 25.0, +0.3);
        set(router_gene::crossbar, 30.0, -0.5);  // tristate shrinks the crossbar
        set(router_gene::pipeline_stages, 15.0, +0.15);
        set(router_gene::speculative, 10.0, +0.1);
        break;
    case Metric::period_ns:
        // Inverse of frequency.
        hints = author_hints(Metric::freq_mhz).negated_bias();
        break;
    case Metric::area_delay_product: {
        // Merge of area (weight: area spans a wider relative range) and
        // period hints, both in metric orientation.
        const HintSet area = author_hints(Metric::area_luts);
        const HintSet period = author_hints(Metric::period_ns);
        const std::vector<WeightedHintSet> parts{{&area, 0.6}, {&period, 0.4}};
        hints = merge_hints(parts);
        break;
    }
    default:
        break;  // no hints for metrics this IP does not target
    }
    return hints;
}

}  // namespace nautilus::noc
