#include "noc/traffic.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace nautilus::noc {

namespace {

int digit(int value, int pos, int base = 4)
{
    for (int i = 0; i < pos; ++i) value /= base;
    return value % base;
}

int with_digit(int value, int pos, int new_digit, int base = 4)
{
    int scale = 1;
    for (int i = 0; i < pos; ++i) scale *= base;
    const int old = digit(value, pos, base);
    return value + (new_digit - old) * scale;
}

}  // namespace

TopologyGraph TopologyGraph::build(const TopologyInfo& info)
{
    TopologyGraph g;
    g.info_ = info;
    g.out_.resize(static_cast<std::size_t>(info.num_routers));

    auto add_channel = [&g](int src, int dst) {
        const std::size_t index = g.channels_.size();
        g.channels_.push_back({src, dst});
        g.out_[static_cast<std::size_t>(src)].emplace_back(dst, index);
    };

    const int r = info.num_routers;
    switch (info.kind) {
    case TopologyKind::ring:
    case TopologyKind::conc_ring:
        for (int i = 0; i < r; ++i) {
            add_channel(i, (i + 1) % r);
            add_channel((i + 1) % r, i);
        }
        break;
    case TopologyKind::double_ring:
    case TopologyKind::conc_double_ring:
        // Two parallel lanes per direction.
        for (int lane = 0; lane < 2; ++lane) {
            for (int i = 0; i < r; ++i) {
                add_channel(i, (i + 1) % r);
                add_channel((i + 1) % r, i);
            }
        }
        break;
    case TopologyKind::mesh:
    case TopologyKind::torus: {
        const int side = static_cast<int>(std::lround(std::sqrt(r)));
        const bool wrap = info.kind == TopologyKind::torus;
        auto id = [side](int x, int y) { return y * side + x; };
        for (int y = 0; y < side; ++y) {
            for (int x = 0; x < side; ++x) {
                if (x + 1 < side || wrap) {
                    add_channel(id(x, y), id((x + 1) % side, y));
                    add_channel(id((x + 1) % side, y), id(x, y));
                }
                if (y + 1 < side || wrap) {
                    add_channel(id(x, y), id(x, (y + 1) % side));
                    add_channel(id(x, (y + 1) % side), id(x, y));
                }
            }
        }
        break;
    }
    case TopologyKind::fat_tree: {
        // 4-ary n-tree: `levels` rows of endpoints/4 switches.  Switch
        // <l, w> (w has n-1 base-4 digits) links up to <l+1, w'> where w'
        // differs from w only in digit l.
        const int levels = static_cast<int>(std::lround(std::log2(info.endpoints) / 2.0));
        const int per_level = info.endpoints / 4;
        auto id = [per_level](int level, int w) { return level * per_level + w; };
        for (int level = 0; level + 1 < levels; ++level) {
            for (int w = 0; w < per_level; ++w) {
                for (int d = 0; d < 4; ++d) {
                    const int up = with_digit(w, level, d);
                    add_channel(id(level, w), id(level + 1, up));
                    add_channel(id(level + 1, up), id(level, w));
                }
            }
        }
        break;
    }
    case TopologyKind::butterfly: {
        // 4-ary n-fly: `stages` columns of endpoints/4 switches; the link
        // from stage s output port d rewrites row digit (stages-2-s) to d.
        const int stages = static_cast<int>(std::lround(std::log2(info.endpoints) / 2.0));
        const int per_stage = info.endpoints / 4;
        auto id = [per_stage](int stage, int w) { return stage * per_stage + w; };
        for (int stage = 0; stage + 1 < stages; ++stage) {
            const int pos = stages - 2 - stage;
            for (int w = 0; w < per_stage; ++w) {
                for (int d = 0; d < 4; ++d)
                    add_channel(id(stage, w), id(stage + 1, with_digit(w, pos, d)));
            }
        }
        break;
    }
    }
    return g;
}

int TopologyGraph::endpoint_router(int endpoint) const
{
    if (endpoint < 0 || endpoint >= info_.endpoints)
        throw std::out_of_range("TopologyGraph::endpoint_router: bad endpoint");
    switch (info_.kind) {
    case TopologyKind::fat_tree:
    case TopologyKind::butterfly:
        return endpoint / 4;  // leaf/first-stage switch row
    default:
        return endpoint / info_.concentration;
    }
}

std::size_t TopologyGraph::channel_index(int src, int dst, int lane) const
{
    int seen = 0;
    for (const auto& [to, index] : out_[static_cast<std::size_t>(src)]) {
        if (to == dst) {
            if (seen == lane) return index;
            ++seen;
        }
    }
    throw std::logic_error("TopologyGraph::channel_index: missing channel (routing bug)");
}

std::vector<std::size_t> TopologyGraph::route(int src_endpoint, int dst_endpoint) const
{
    const int src = endpoint_router(src_endpoint);
    const int dst = endpoint_router(dst_endpoint);
    std::vector<std::size_t> path;
    const int r = info_.num_routers;

    switch (info_.kind) {
    case TopologyKind::ring:
    case TopologyKind::conc_ring:
    case TopologyKind::double_ring:
    case TopologyKind::conc_double_ring: {
        if (src == dst) return path;
        const bool two_lanes = info_.kind == TopologyKind::double_ring ||
                               info_.kind == TopologyKind::conc_double_ring;
        const int lane = two_lanes ? src_endpoint % 2 : 0;
        const int forward = (dst - src + r) % r;
        const int step = forward <= r - forward ? 1 : -1;
        int at = src;
        while (at != dst) {
            const int next = (at + step + r) % r;
            path.push_back(channel_index(at, next, lane));
            at = next;
        }
        return path;
    }
    case TopologyKind::mesh:
    case TopologyKind::torus: {
        const int side = static_cast<int>(std::lround(std::sqrt(r)));
        const bool wrap = info_.kind == TopologyKind::torus;
        int x = src % side;
        int y = src / side;
        const int dx = dst % side;
        const int dy = dst / side;
        auto id = [side](int cx, int cy) { return cy * side + cx; };
        auto step_toward = [&](int from, int to) {
            if (!wrap) return to > from ? 1 : -1;
            const int fwd = (to - from + side) % side;
            return fwd <= side - fwd ? 1 : -1;
        };
        while (x != dx) {  // X first (dimension-order)
            const int nx = (x + step_toward(x, dx) + side) % side;
            path.push_back(channel_index(id(x, y), id(nx, y)));
            x = nx;
        }
        while (y != dy) {
            const int ny = (y + step_toward(y, dy) + side) % side;
            path.push_back(channel_index(id(x, y), id(x, ny)));
            y = ny;
        }
        return path;
    }
    case TopologyKind::fat_tree: {
        if (src == dst) return path;
        const int levels = static_cast<int>(std::lround(std::log2(info_.endpoints) / 2.0));
        const int per_level = info_.endpoints / 4;
        auto id = [per_level](int level, int w) { return level * per_level + w; };
        // Lowest common level: all leaf-id digits at positions >= common
        // must already agree between the two leaf switches.
        int common = 0;
        for (int i = 0; i < levels - 1; ++i)
            if (digit(src, i) != digit(dst, i)) common = i + 1;
        // Up phase: vary digit l, chosen from the destination endpoint's low
        // digits (spreads load deterministically).
        int w = src;
        for (int l = 0; l < common; ++l) {
            const int next = with_digit(w, l, digit(dst_endpoint, l));
            path.push_back(channel_index(id(l, w), id(l + 1, next)));
            w = next;
        }
        // Down phase: restore the destination's digits.
        for (int l = common; l-- > 0;) {
            const int next = with_digit(w, l, digit(dst, l));
            path.push_back(channel_index(id(l + 1, w), id(l, next)));
            w = next;
        }
        return path;
    }
    case TopologyKind::butterfly: {
        const int stages = static_cast<int>(std::lround(std::log2(info_.endpoints) / 2.0));
        const int per_stage = info_.endpoints / 4;
        auto id = [per_stage](int stage, int w) { return stage * per_stage + w; };
        // Destination-digit routing MSB-first; always traverses every stage.
        int w = src;
        for (int stage = 0; stage + 1 < stages; ++stage) {
            const int pos = stages - 2 - stage;
            const int next = with_digit(w, pos, digit(dst, pos));
            path.push_back(channel_index(id(stage, w), id(stage + 1, next)));
            w = next;
        }
        return path;
    }
    }
    return path;
}

TrafficAnalysis analyze_uniform_traffic(const TopologyGraph& graph)
{
    TrafficAnalysis out;
    out.channel_load.assign(graph.channels().size(), 0.0);
    const int n = graph.num_endpoints();
    double total_hops = 0.0;
    std::size_t pairs = 0;

    for (int s = 0; s < n; ++s) {
        for (int d = 0; d < n; ++d) {
            if (s == d) continue;
            const auto path = graph.route(s, d);
            total_hops += static_cast<double>(path.size());
            ++pairs;
            for (std::size_t link : path) out.channel_load[link] += 1.0;
        }
    }

    out.avg_hops = total_hops / static_cast<double>(pairs);
    // Each endpoint injects 1 flit/cycle spread over N-1 destinations.
    double max_count = 0.0;
    for (double& load : out.channel_load) {
        load /= static_cast<double>(n - 1);
        max_count = std::max(max_count, load);
    }
    out.max_channel_load = max_count;
    out.saturation_injection = max_count > 0.0 ? 1.0 / max_count : 1.0;
    return out;
}

double latency_at_load_cycles(const TrafficAnalysis& traffic, int router_pipeline,
                              int packet_bits, int flit_width, double injection)
{
    if (injection < 0.0)
        throw std::invalid_argument("latency_at_load_cycles: negative injection rate");
    const double base =
        zero_load_latency_cycles(traffic, router_pipeline, packet_bits, flit_width);
    if (injection == 0.0) return base;
    if (injection >= traffic.saturation_injection)
        return std::numeric_limits<double>::infinity();

    // Expected queueing delay = sum over channels of
    //   P(packet crosses channel) * W_channel,
    // with the M/D/1 wait W = rho / (2 (1 - rho)) at utilization
    // rho = injection * channel_load.  P(cross) = load / N, and the load
    // normalization gives N = sum(load) / avg_hops.
    double load_sum = 0.0;
    for (double load : traffic.channel_load) load_sum += load;
    if (load_sum <= 0.0 || traffic.avg_hops <= 0.0) return base;
    const double endpoints = load_sum / traffic.avg_hops;

    double queueing = 0.0;
    for (double load : traffic.channel_load) {
        const double rho = injection * load;
        if (rho <= 0.0) continue;
        queueing += (load / endpoints) * rho / (2.0 * (1.0 - rho));
    }
    return base + queueing;
}

std::vector<LoadLatencyPoint> load_latency_curve(const TrafficAnalysis& traffic,
                                                 int router_pipeline, int packet_bits,
                                                 int flit_width, int points)
{
    if (points < 2) throw std::invalid_argument("load_latency_curve: need >= 2 points");
    std::vector<LoadLatencyPoint> curve;
    curve.reserve(static_cast<std::size_t>(points));
    for (int i = 0; i < points; ++i) {
        // Stop just short of saturation, where the M/D/1 wait diverges.
        const double injection = traffic.saturation_injection * 0.98 *
                                 static_cast<double>(i) / static_cast<double>(points - 1);
        curve.push_back({injection, latency_at_load_cycles(traffic, router_pipeline,
                                                           packet_bits, flit_width,
                                                           injection)});
    }
    return curve;
}

double zero_load_latency_cycles(const TrafficAnalysis& traffic, int router_pipeline,
                                int packet_bits, int flit_width)
{
    if (router_pipeline < 1)
        throw std::invalid_argument("zero_load_latency_cycles: pipeline must be >= 1");
    if (packet_bits <= 0 || flit_width <= 0)
        throw std::invalid_argument("zero_load_latency_cycles: bad packet/flit size");
    const double serialization =
        std::ceil(static_cast<double>(packet_bits) / static_cast<double>(flit_width));
    // Each hop: router pipeline + one link cycle; plus source/destination
    // routers and serialization of the packet body.
    return (traffic.avg_hops + 1.0) * (router_pipeline + 1.0) + serialization;
}

}  // namespace nautilus::noc
