#pragma once
// Microarchitectural area/timing model of the virtual-channel router.
//
// Translates a RouterConfig into the resource and timing descriptors
// consumed by the virtual synthesizer.  First-order models follow standard
// VC-router structure (Peh & Dally style): per-VC input buffers, VC and
// switch allocators, crossbar, routing logic, and a 1-3 stage pipeline.
// Constants are calibrated so the full design space reproduces the range of
// the paper's Fig. 1 (~0.4k-25k LUTs, ~60-200 MHz on Virtex-6).

#include "noc/router_params.hpp"
#include "synth/synthesizer.hpp"

namespace nautilus::noc {

// Resource breakdown, useful for reporting and tests.
struct RouterAreaBreakdown {
    synth::Resources buffers;
    synth::Resources vc_allocator;
    synth::Resources sw_allocator;
    synth::Resources crossbar;
    synth::Resources routing;
    synth::Resources output_units;
    synth::Resources pipeline_regs;

    synth::Resources total() const;
};

RouterAreaBreakdown router_area(const RouterConfig& config);

// Logic depth of each pipeline stage under the configured pipelining and
// speculation arrangement.
std::vector<synth::TimingPath> router_paths(const RouterConfig& config);

// Full descriptor for the synthesizer.
synth::DesignDescriptor router_descriptor(const RouterConfig& config);

}  // namespace nautilus::noc
