#pragma once
// The virtual-channel router parameter space ("NoC" IP of the paper).
//
// Models the user-visible knobs of a state-of-the-art VC router in the style
// of the Stanford open-source NoC router (Becker 2012).  The paper's NoC
// dataset varies 9 parameters yielding ~30,000 design instances; this space
// matches that: 3*5*4*4*4*3*2*2*3 = 34,560 points.

#include <cstdint>
#include <string>

#include "core/genome.hpp"
#include "core/parameter.hpp"

namespace nautilus::noc {

// Allocator microarchitectures, ordered cheapest/fastest-clock first.  The
// ordering is itself an "auxiliary" author hint (paper section 3: "order
// different allocator options with respect to clock frequency or area").
enum class AllocatorKind : std::uint8_t {
    round_robin,      // simple RR arbiter tree
    separable_input,  // separable, input-first
    separable_output, // separable, output-first
    wavefront,        // wavefront allocator (best matching, biggest/slowest)
};

enum class CrossbarKind : std::uint8_t {
    mux,      // LUT mux tree: bigger, faster
    tristate, // shared-line style: smaller, slower
};

enum class RoutingKind : std::uint8_t {
    dor_xy,      // dimension-ordered
    west_first,  // partially adaptive (turn model)
    adaptive,    // fully adaptive (needs more VC state + deeper logic)
};

const char* allocator_name(AllocatorKind k);
const char* crossbar_name(CrossbarKind k);
const char* routing_name(RoutingKind k);

// A fully decoded router configuration.
struct RouterConfig {
    int num_ports = 5;           // fixed for the single-router study (mesh router)
    int num_vcs = 2;             // virtual channels per port
    int buffer_depth = 8;        // flits per VC
    int flit_width = 64;         // bits
    AllocatorKind vc_alloc = AllocatorKind::round_robin;
    AllocatorKind sw_alloc = AllocatorKind::round_robin;
    int pipeline_stages = 2;     // 1..3
    bool speculative = false;    // speculative switch allocation
    CrossbarKind crossbar = CrossbarKind::mux;
    RoutingKind routing = RoutingKind::dor_xy;

    // Stable key for deterministic synthesis noise.
    std::uint64_t config_key() const;

    std::string to_string() const;
};

// Index constants for the 9 genes of the router space.
namespace router_gene {
inline constexpr std::size_t num_vcs = 0;
inline constexpr std::size_t buffer_depth = 1;
inline constexpr std::size_t flit_width = 2;
inline constexpr std::size_t vc_alloc = 3;
inline constexpr std::size_t sw_alloc = 4;
inline constexpr std::size_t pipeline_stages = 5;
inline constexpr std::size_t speculative = 6;
inline constexpr std::size_t crossbar = 7;
inline constexpr std::size_t routing = 8;
inline constexpr std::size_t count = 9;
}  // namespace router_gene

// The 9-parameter space: vcs {1,2,4}, depth {2..32}, width {32..256},
// vc/sw allocator x4, pipeline {1..3}, speculation, crossbar x2, routing x3.
ParameterSpace make_router_space();

// Decode a genome of the router space; `num_ports` stays a fixed parameter
// of the study (5 for the paper's single-router dataset).
RouterConfig decode_router(const ParameterSpace& space, const Genome& genome,
                           int num_ports = 5);

}  // namespace nautilus::noc
