#pragma once
// Whole-network area / power / performance model (CONNECT study, Fig. 2).
//
// A network configuration is a topology family plus a router configuration
// (the router radix is dictated by the topology).  Characterization targets
// a 65 nm ASIC flow: total logic area from the per-router model, wiring area
// and power from the channel population, and peak bisection bandwidth from
// the bisection channel count, flit width and achieved clock.

#include "noc/router_model.hpp"
#include "noc/topology.hpp"
#include "synth/synthesizer.hpp"

namespace nautilus::noc {

struct NetworkConfig {
    TopologyInfo topology;
    RouterConfig router;  // num_ports is overwritten with the topology radix

    std::uint64_t config_key() const;
};

struct NetworkResult {
    double area_mm2 = 0.0;
    double power_mw = 0.0;
    double fmax_mhz = 0.0;
    double bisection_gbps = 0.0;  // peak bisection bandwidth
};

class NetworkModel {
public:
    explicit NetworkModel(synth::AsicTech tech = synth::AsicTech::commercial_65nm());

    NetworkResult evaluate(const NetworkConfig& config) const;

    const synth::AsicSynthesizer& synthesizer() const { return synth_; }

private:
    synth::AsicSynthesizer synth_;
};

}  // namespace nautilus::noc
