#include "noc/router_model.hpp"

#include <algorithm>
#include <cmath>

namespace nautilus::noc {

namespace {

double log2d(double x)
{
    return std::log2(std::max(x, 1.0));
}

// Area factor of an allocator microarchitecture (cheapest first).
double alloc_area_factor(AllocatorKind k)
{
    switch (k) {
    case AllocatorKind::round_robin: return 1.0;
    case AllocatorKind::separable_input: return 1.35;
    case AllocatorKind::separable_output: return 1.55;
    case AllocatorKind::wavefront: return 2.4;
    }
    return 1.0;
}

// Base logic levels of an allocator microarchitecture.
double alloc_level_base(AllocatorKind k)
{
    switch (k) {
    case AllocatorKind::round_robin: return 3.0;
    case AllocatorKind::separable_input: return 4.0;
    case AllocatorKind::separable_output: return 4.6;
    case AllocatorKind::wavefront: return 5.6;
    }
    return 3.0;
}

double routing_luts_per_port(RoutingKind k)
{
    switch (k) {
    case RoutingKind::dor_xy: return 25.0;
    case RoutingKind::west_first: return 45.0;
    case RoutingKind::adaptive: return 90.0;
    }
    return 25.0;
}

double routing_levels(RoutingKind k)
{
    switch (k) {
    case RoutingKind::dor_xy: return 1.0;
    case RoutingKind::west_first: return 2.0;
    case RoutingKind::adaptive: return 3.5;
    }
    return 1.0;
}

}  // namespace

synth::Resources RouterAreaBreakdown::total() const
{
    return buffers + vc_allocator + sw_allocator + crossbar + routing + output_units +
           pipeline_regs;
}

RouterAreaBreakdown router_area(const RouterConfig& c)
{
    const double p = c.num_ports;
    const double v = c.num_vcs;
    const double d = c.buffer_depth;
    const double w = c.flit_width;

    RouterAreaBreakdown a;

    // Input buffers: dual-ported LUT-RAM (2x bit cost) plus per-VC control
    // (credit counters, state machines, head/tail pointers).
    a.buffers.lutram_bits = p * v * d * w * 2.0;
    a.buffers.luts = p * v * (20.0 + 4.0 * log2d(d));
    a.buffers.ffs = p * v * (10.0 + 2.0 * log2d(d)) + p * v * 8.0;

    // VC allocator: PV x PV arbitration; adaptive routing widens the request
    // matrix (more candidate output VCs per packet).
    const double pv = p * v;
    const double adaptive_factor = c.routing == RoutingKind::adaptive ? 1.3 : 1.0;
    a.vc_allocator.luts =
        alloc_area_factor(c.vc_alloc) * (pv * pv * 1.1 + pv * 8.0) * adaptive_factor;
    a.vc_allocator.ffs = pv * 6.0;

    // Switch allocator: P x P with V-way input stage; speculation adds a
    // parallel non-speculative path.
    const double spec_factor = c.speculative ? 1.5 : 1.0;
    a.sw_allocator.luts =
        alloc_area_factor(c.sw_alloc) * (p * p * 3.0 + pv * 6.0) * spec_factor;
    a.sw_allocator.ffs = p * 4.0 + pv * 2.0;

    // Crossbar: per-output P:1 mux of W bits; the tristate variant trades
    // area for a slower shared-line structure.
    const double xbar_factor = c.crossbar == CrossbarKind::mux ? 1.0 : 0.45;
    a.crossbar.luts = p * w * (p - 1.0) * 0.35 * xbar_factor;

    a.routing.luts = p * routing_luts_per_port(c.routing);

    // Output units: credit tracking + output registers.
    a.output_units.luts = p * (w * 0.15 + v * 12.0);
    a.output_units.ffs = p * w;

    // Pipeline registers between stages.
    if (c.pipeline_stages > 1) {
        a.pipeline_regs.ffs = (c.pipeline_stages - 1) * p * w * 0.6;
        a.pipeline_regs.luts = (c.pipeline_stages - 1) * p * 6.0;
    }
    return a;
}

std::vector<synth::TimingPath> router_paths(const RouterConfig& c)
{
    const double p = c.num_ports;
    const double v = c.num_vcs;
    const double d = c.buffer_depth;
    const double w = c.flit_width;
    const double pv = p * v;

    // Logic levels of the four canonical router functions.
    const double bw_levels = 2.0 + 0.5 * log2d(d) + routing_levels(c.routing);
    double va_levels = alloc_level_base(c.vc_alloc) + 0.8 * log2d(pv);
    if (c.routing == RoutingKind::adaptive) va_levels += 0.8;
    double sa_levels = alloc_level_base(c.sw_alloc) + 0.8 * log2d(p);
    if (c.speculative) sa_levels += 1.2;
    const double st_levels = 1.2 * log2d(p) +
                             (c.crossbar == CrossbarKind::tristate ? 2.8 : 0.8) +
                             w / 256.0;

    // Per-stage register/control overhead.
    constexpr double stage_overhead = 2.0;

    std::vector<synth::TimingPath> paths;
    const double xbar_fanout = w / 8.0;
    auto add = [&paths](std::string name, double levels, double fanout) {
        paths.push_back({std::move(name), levels + stage_overhead, fanout});
    };

    switch (c.pipeline_stages) {
    case 1:
        // Everything in one cycle; synthesis retiming recovers part of the
        // stage-boundary overhead when the whole router is combinational.
        add("bw+va+sa+st", (bw_levels + va_levels + sa_levels + st_levels) * 0.565,
            xbar_fanout);
        break;
    case 2:
        if (c.speculative) {
            // Speculation overlaps VA and SA in the first stage.
            add("bw+va||sa", bw_levels + std::max(va_levels, sa_levels) + 1.0, pv);
            add("st", st_levels, xbar_fanout);
        }
        else {
            add("bw+va", bw_levels + va_levels, pv);
            add("sa+st", sa_levels + st_levels, xbar_fanout);
        }
        break;
    default:
        // 3 stages: {bw, va(||sa), sa, st} mapped onto separate cycles.
        add("bw", bw_levels, d);
        if (c.speculative) {
            add("va||sa", std::max(va_levels, sa_levels) + 1.0, pv);
        }
        else {
            add("va", va_levels, pv);
            add("sa", sa_levels, p);
        }
        add("st", st_levels, xbar_fanout);
        break;
    }
    return paths;
}

synth::DesignDescriptor router_descriptor(const RouterConfig& c)
{
    synth::DesignDescriptor d;
    d.name = c.to_string();
    d.config_key = c.config_key();
    d.resources = router_area(c).total();
    d.paths = router_paths(c);
    d.toggle_rate = 0.18;
    return d;
}

}  // namespace nautilus::noc
