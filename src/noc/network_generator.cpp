#include "noc/network_generator.hpp"

#include <stdexcept>

namespace nautilus::noc {

using ip::Metric;

ParameterSpace make_network_space()
{
    std::vector<std::string> families;
    for (int k = 0; k < k_topology_count; ++k)
        families.emplace_back(topology_name(static_cast<TopologyKind>(k)));

    ParameterSpace space;
    space.add("topology", ParamDomain::categorical(families, /*ordered=*/false),
              "network topology family");
    space.add("flit_width", ParamDomain::pow2(5, 9), "flit width in bits");
    space.add("num_vcs", ParamDomain::pow2(0, 2), "virtual channels per port");
    space.add("buffer_depth", ParamDomain::pow2(1, 4), "flit buffer depth per VC");
    space.add("pipeline_stages", ParamDomain::int_range(1, 3), "router pipeline depth");
    return space;
}

NetworkGenerator::NetworkGenerator(int endpoints, synth::AsicTech tech)
    : space_(make_network_space()), model_(std::move(tech)), endpoints_(endpoints)
{
    // Characterize every family's graph once (routing-derived hop counts and
    // channel loads are per-topology, independent of the router config).
    traffic_.reserve(k_topology_count);
    for (int k = 0; k < k_topology_count; ++k) {
        const TopologyGraph graph =
            TopologyGraph::build(make_topology(static_cast<TopologyKind>(k), endpoints_));
        traffic_.push_back(analyze_uniform_traffic(graph));
    }
}

const TrafficAnalysis& NetworkGenerator::traffic(TopologyKind kind) const
{
    return traffic_[static_cast<std::size_t>(kind)];
}

std::vector<Metric> NetworkGenerator::metrics() const
{
    return {Metric::area_mm2,       Metric::power_mw,
            Metric::freq_mhz,       Metric::bisection_gbps,
            Metric::latency_ns,     Metric::saturation_injection};
}

NetworkConfig NetworkGenerator::decode(const Genome& genome) const
{
    if (!genome.compatible_with(space_))
        throw std::invalid_argument("NetworkGenerator::decode: incompatible genome");
    NetworkConfig c;
    c.topology = make_topology(
        static_cast<TopologyKind>(genome.gene(network_gene::topology)), endpoints_);
    c.router.flit_width =
        static_cast<int>(genome.numeric_value(space_, network_gene::flit_width));
    c.router.num_vcs = static_cast<int>(genome.numeric_value(space_, network_gene::num_vcs));
    c.router.buffer_depth =
        static_cast<int>(genome.numeric_value(space_, network_gene::buffer_depth));
    c.router.pipeline_stages =
        static_cast<int>(genome.numeric_value(space_, network_gene::pipeline_stages));
    // Fixed micro-architecture for the network study.
    c.router.vc_alloc = AllocatorKind::separable_input;
    c.router.sw_alloc = AllocatorKind::separable_input;
    c.router.speculative = false;
    c.router.crossbar = CrossbarKind::mux;
    c.router.routing = RoutingKind::dor_xy;
    return c;
}

ip::MetricValues NetworkGenerator::evaluate(const Genome& genome) const
{
    const NetworkConfig config = decode(genome);
    const NetworkResult r = model_.evaluate(config);
    const TrafficAnalysis& t = traffic(config.topology.kind);
    ip::MetricValues mv;
    mv.set(Metric::area_mm2, r.area_mm2);
    mv.set(Metric::power_mw, r.power_mw);
    mv.set(Metric::freq_mhz, r.fmax_mhz);
    mv.set(Metric::bisection_gbps, r.bisection_gbps);
    // Zero-load latency of a 512-bit packet, in wall-clock ns at the
    // achieved frequency.
    const double cycles = zero_load_latency_cycles(t, config.router.pipeline_stages, 512,
                                                   config.router.flit_width);
    mv.set(Metric::latency_ns, cycles * 1000.0 / r.fmax_mhz);
    mv.set(Metric::saturation_injection, t.saturation_injection);
    return mv;
}

HintSet NetworkGenerator::author_hints(Metric metric) const
{
    HintSet hints = HintSet::none(space_);
    auto set = [&](std::size_t gene, double importance, std::optional<double> bias) {
        hints.param(gene).importance = importance;
        hints.param(gene).bias = bias;
    };
    switch (metric) {
    case Metric::bisection_gbps:
        // Topology family is decisive but unordered: importance only.
        set(network_gene::topology, 90.0, std::nullopt);
        set(network_gene::flit_width, 85.0, +0.9);
        set(network_gene::pipeline_stages, 35.0, +0.4);
        set(network_gene::num_vcs, 15.0, -0.1);
        break;
    case Metric::area_mm2:
        set(network_gene::flit_width, 90.0, +0.8);
        set(network_gene::topology, 70.0, std::nullopt);
        set(network_gene::buffer_depth, 55.0, +0.6);
        set(network_gene::num_vcs, 55.0, +0.6);
        set(network_gene::pipeline_stages, 10.0, +0.1);
        break;
    case Metric::power_mw:
        set(network_gene::flit_width, 85.0, +0.8);
        set(network_gene::topology, 70.0, std::nullopt);
        set(network_gene::num_vcs, 50.0, +0.5);
        set(network_gene::buffer_depth, 45.0, +0.5);
        set(network_gene::pipeline_stages, 30.0, +0.3);
        break;
    case Metric::latency_ns:
        // Serialization dominates: wider flits cut cycles faster than they
        // cost clock; hop count is a topology property.
        set(network_gene::topology, 80.0, std::nullopt);
        set(network_gene::flit_width, 70.0, -0.5);
        set(network_gene::pipeline_stages, 40.0, +0.3);
        break;
    case Metric::saturation_injection:
        set(network_gene::topology, 95.0, std::nullopt);
        break;
    default:
        break;
    }
    return hints;
}

}  // namespace nautilus::noc
