#include "noc/network_model.hpp"

#include "core/rng.hpp"

namespace nautilus::noc {

std::uint64_t NetworkConfig::config_key() const
{
    std::uint64_t h = router.config_key();
    h = hash_combine(h, static_cast<std::uint64_t>(topology.kind));
    h = hash_combine(h, static_cast<std::uint64_t>(topology.endpoints));
    return h;
}

NetworkModel::NetworkModel(synth::AsicTech tech) : synth_(std::move(tech)) {}

NetworkResult NetworkModel::evaluate(const NetworkConfig& config) const
{
    RouterConfig router = config.router;
    router.num_ports = config.topology.router_radix;

    // One router, replicated across the network.
    synth::DesignDescriptor d = router_descriptor(router);
    d.config_key = config.config_key();
    d.resources = d.resources.scaled(static_cast<double>(config.topology.num_routers));

    const double wire_bit_mm = static_cast<double>(config.topology.total_channels) *
                               static_cast<double>(router.flit_width) *
                               config.topology.avg_channel_mm;

    const synth::SynthResult r = synth_.synthesize(d, wire_bit_mm);

    NetworkResult out;
    out.area_mm2 = r.area_mm2;
    out.power_mw = r.power_mw;
    out.fmax_mhz = r.fmax_mhz;
    // Gbps = channels x bits x GHz.
    out.bisection_gbps = static_cast<double>(config.topology.bisection_channels) *
                         static_cast<double>(router.flit_width) * (r.fmax_mhz / 1000.0);
    return out;
}

}  // namespace nautilus::noc
