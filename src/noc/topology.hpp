#pragma once
// Network topology families (the CONNECT study of Fig. 2).
//
// Eight families matching the paper's legend: ring, double ring, their
// concentrated variants, mesh, torus, fat tree and butterfly.  For a given
// endpoint count each family determines the router count and radix, the
// channel population, and the bisection width that drives peak bandwidth.

#include <string>
#include <vector>

namespace nautilus::noc {

enum class TopologyKind {
    ring,
    double_ring,
    conc_ring,         // concentrated ring (4 endpoints per router)
    conc_double_ring,  // concentrated double ring
    mesh,
    torus,
    fat_tree,
    butterfly,
};

inline constexpr int k_topology_count = 8;

const char* topology_name(TopologyKind kind);

struct TopologyInfo {
    TopologyKind kind = TopologyKind::ring;
    int endpoints = 0;
    int concentration = 1;     // endpoints attached per router
    int num_routers = 0;
    int router_radix = 0;      // total ports (network + local)
    int total_channels = 0;    // unidirectional inter-router channels
    int bisection_channels = 0;  // unidirectional channels crossing the bisection
    double avg_channel_mm = 1.0; // physical length estimate for wiring cost
    double avg_hops = 1.0;       // average routing distance (reporting)
};

// Build the topology for `endpoints` endpoints.  Mesh/torus require a square
// endpoint count; fat tree and butterfly require a power of 4; rings accept
// any even count.  Throws std::invalid_argument otherwise.
TopologyInfo make_topology(TopologyKind kind, int endpoints);

// All eight families instantiated at `endpoints` (64 for the Fig. 2 study).
std::vector<TopologyInfo> all_topologies(int endpoints);

}  // namespace nautilus::noc
