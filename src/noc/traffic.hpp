#pragma once
// Topology graphs, deterministic routing and channel-load analysis.
//
// The paper's evaluation cost includes "simulations" next to synthesis.
// This module is the network-performance side of that: it *constructs* each
// topology family as an explicit graph, routes every source/destination
// endpoint pair with the family's canonical deterministic algorithm, and
// derives uniform-traffic channel loads.  From those come measured (not
// formula) average hop counts, zero-load latency, and the saturation
// injection rate (1 / max normalized channel load) -- the standard
// first-order network-performance analysis (Dally & Towles).

#include <cstdint>
#include <vector>

#include "noc/topology.hpp"

namespace nautilus::noc {

// One unidirectional channel between routers.
struct Channel {
    int src = 0;
    int dst = 0;
};

// An instantiated topology: routers, channels and endpoint attachment.
class TopologyGraph {
public:
    // Build the explicit graph for a topology family instance.
    static TopologyGraph build(const TopologyInfo& info);

    const TopologyInfo& info() const { return info_; }
    int num_routers() const { return info_.num_routers; }
    int num_endpoints() const { return info_.endpoints; }
    const std::vector<Channel>& channels() const { return channels_; }

    // Router an endpoint attaches to (injection and ejection point; for the
    // butterfly, injection row of the first stage / ejection row of the
    // last).
    int endpoint_router(int endpoint) const;

    // Deterministic route between endpoints, as a sequence of channel
    // indices into channels().  Empty when src and dst share a router (or
    // are equal).  Throws std::out_of_range on bad endpoints.
    std::vector<std::size_t> route(int src_endpoint, int dst_endpoint) const;

private:
    TopologyGraph() = default;

    // Index of the channel src->dst (selecting among parallel channels with
    // `lane`); throws std::logic_error if absent (a routing bug).
    std::size_t channel_index(int src, int dst, int lane = 0) const;

    TopologyInfo info_;
    std::vector<Channel> channels_;
    // channel lookup: per src router, list of (dst, index) pairs.
    std::vector<std::vector<std::pair<int, std::size_t>>> out_;
};

// Uniform-random-traffic analysis of a topology graph.
struct TrafficAnalysis {
    double avg_hops = 0.0;            // mean inter-router channels traversed
    double max_channel_load = 0.0;    // expected flits/cycle on the hottest
                                      // channel at injection rate 1 flit/
                                      // cycle/endpoint
    double saturation_injection = 0.0;  // flits/cycle/endpoint at saturation
                                        // = 1 / max_channel_load
    std::vector<double> channel_load;   // per channel, at injection rate 1
};

// Route all N*(N-1) endpoint pairs and accumulate channel loads.
TrafficAnalysis analyze_uniform_traffic(const TopologyGraph& graph);

// Zero-load packet latency in cycles: per-hop router pipeline plus link
// traversal, plus serialization of `packet_bits` over `flit_width` wires.
double zero_load_latency_cycles(const TrafficAnalysis& traffic, int router_pipeline,
                                int packet_bits, int flit_width);

// Average latency at a finite injection rate (flits/cycle/endpoint):
// zero-load latency plus per-hop M/D/1 queueing delay at each channel's
// utilization.  Diverges (returns +infinity) at or beyond saturation.
// `injection` must be non-negative.
double latency_at_load_cycles(const TrafficAnalysis& traffic, int router_pipeline,
                              int packet_bits, int flit_width, double injection);

// Latency-vs-offered-load curve on `points` evenly spaced injection rates in
// (0, saturation); the standard NoC characterization plot.
struct LoadLatencyPoint {
    double injection = 0.0;  // flits/cycle/endpoint
    double latency_cycles = 0.0;
};
std::vector<LoadLatencyPoint> load_latency_curve(const TrafficAnalysis& traffic,
                                                 int router_pipeline, int packet_bits,
                                                 int flit_width, int points = 12);

}  // namespace nautilus::noc
