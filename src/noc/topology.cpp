#include "noc/topology.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace nautilus::noc {

const char* topology_name(TopologyKind kind)
{
    switch (kind) {
    case TopologyKind::ring: return "ring";
    case TopologyKind::double_ring: return "double_ring";
    case TopologyKind::conc_ring: return "conc_ring";
    case TopologyKind::conc_double_ring: return "conc_double_ring";
    case TopologyKind::mesh: return "mesh";
    case TopologyKind::torus: return "torus";
    case TopologyKind::fat_tree: return "fat_tree";
    case TopologyKind::butterfly: return "butterfly";
    }
    return "?";
}

namespace {

constexpr double k_tile_pitch_mm = 0.9;  // endpoint tile pitch at 65 nm

bool is_square(int n)
{
    const int r = static_cast<int>(std::lround(std::sqrt(static_cast<double>(n))));
    return r * r == n;
}

bool is_power_of(int n, int base)
{
    while (n > 1) {
        if (n % base != 0) return false;
        n /= base;
    }
    return n == 1;
}

}  // namespace

TopologyInfo make_topology(TopologyKind kind, int endpoints)
{
    if (endpoints < 4) throw std::invalid_argument("make_topology: need >= 4 endpoints");
    TopologyInfo t;
    t.kind = kind;
    t.endpoints = endpoints;

    switch (kind) {
    case TopologyKind::ring: {
        if (endpoints % 2 != 0)
            throw std::invalid_argument("make_topology: ring needs an even endpoint count");
        t.concentration = 1;
        t.num_routers = endpoints;
        t.router_radix = 3;  // two ring ports + one local
        t.total_channels = 2 * t.num_routers;
        t.bisection_channels = 4;  // two links cut, both directions
        t.avg_channel_mm = k_tile_pitch_mm;
        t.avg_hops = endpoints / 4.0;
        break;
    }
    case TopologyKind::double_ring: {
        if (endpoints % 2 != 0)
            throw std::invalid_argument("make_topology: ring needs an even endpoint count");
        t.concentration = 1;
        t.num_routers = endpoints;
        t.router_radix = 5;  // two ports per ring + local
        t.total_channels = 4 * t.num_routers;
        t.bisection_channels = 8;
        t.avg_channel_mm = k_tile_pitch_mm;
        t.avg_hops = endpoints / 4.0;
        break;
    }
    case TopologyKind::conc_ring: {
        if (endpoints % 4 != 0)
            throw std::invalid_argument("make_topology: concentration requires multiple of 4");
        t.concentration = 4;
        t.num_routers = endpoints / 4;
        t.router_radix = 2 + 4;
        t.total_channels = 2 * t.num_routers;
        t.bisection_channels = 4;
        t.avg_channel_mm = 2.0 * k_tile_pitch_mm;  // routers are farther apart
        t.avg_hops = t.num_routers / 4.0;
        break;
    }
    case TopologyKind::conc_double_ring: {
        if (endpoints % 4 != 0)
            throw std::invalid_argument("make_topology: concentration requires multiple of 4");
        t.concentration = 4;
        t.num_routers = endpoints / 4;
        t.router_radix = 4 + 4;
        t.total_channels = 4 * t.num_routers;
        t.bisection_channels = 8;
        t.avg_channel_mm = 2.0 * k_tile_pitch_mm;
        t.avg_hops = t.num_routers / 4.0;
        break;
    }
    case TopologyKind::mesh: {
        if (!is_square(endpoints))
            throw std::invalid_argument("make_topology: mesh needs a square endpoint count");
        const int side = static_cast<int>(std::lround(std::sqrt(endpoints)));
        t.concentration = 1;
        t.num_routers = endpoints;
        t.router_radix = 5;
        t.total_channels = 2 * 2 * side * (side - 1);
        t.bisection_channels = 2 * side;
        t.avg_channel_mm = k_tile_pitch_mm;
        t.avg_hops = 2.0 * side / 3.0;
        break;
    }
    case TopologyKind::torus: {
        if (!is_square(endpoints))
            throw std::invalid_argument("make_topology: torus needs a square endpoint count");
        const int side = static_cast<int>(std::lround(std::sqrt(endpoints)));
        t.concentration = 1;
        t.num_routers = endpoints;
        t.router_radix = 5;
        t.total_channels = 2 * 2 * side * side;
        t.bisection_channels = 4 * side;
        t.avg_channel_mm = 2.0 * k_tile_pitch_mm;  // folded torus doubles link length
        t.avg_hops = side / 2.0;
        break;
    }
    case TopologyKind::fat_tree: {
        if (!is_power_of(endpoints, 4))
            throw std::invalid_argument("make_topology: fat tree needs a power-of-4 count");
        // 4-ary n-tree: n levels of endpoints/4 radix-8 switches.
        const int levels = static_cast<int>(std::lround(std::log2(endpoints) / 2.0));
        t.concentration = 4;
        t.num_routers = levels * endpoints / 4;
        t.router_radix = 8;
        t.total_channels = 2 * (levels - 1) * endpoints + 2 * endpoints;
        t.bisection_channels = 2 * endpoints;  // full bisection
        t.avg_channel_mm = 3.0 * k_tile_pitch_mm;  // long upper-level links
        t.avg_hops = 2.0 * levels * 0.75;
        break;
    }
    case TopologyKind::butterfly: {
        if (!is_power_of(endpoints, 4))
            throw std::invalid_argument("make_topology: butterfly needs a power-of-4 count");
        const int stages = static_cast<int>(std::lround(std::log2(endpoints) / 2.0));
        t.concentration = 4;
        t.num_routers = stages * endpoints / 4;
        t.router_radix = 8;  // 4 in + 4 out
        t.total_channels = (stages - 1) * endpoints + 2 * endpoints;
        t.bisection_channels = endpoints;  // unidirectional network
        t.avg_channel_mm = 2.5 * k_tile_pitch_mm;
        t.avg_hops = stages;
        break;
    }
    }
    return t;
}

std::vector<TopologyInfo> all_topologies(int endpoints)
{
    std::vector<TopologyInfo> out;
    out.reserve(k_topology_count);
    for (int k = 0; k < k_topology_count; ++k)
        out.push_back(make_topology(static_cast<TopologyKind>(k), endpoints));
    return out;
}

}  // namespace nautilus::noc
