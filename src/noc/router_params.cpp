#include "noc/router_params.hpp"

#include <sstream>
#include <stdexcept>

#include "core/rng.hpp"

namespace nautilus::noc {

const char* allocator_name(AllocatorKind k)
{
    switch (k) {
    case AllocatorKind::round_robin: return "round_robin";
    case AllocatorKind::separable_input: return "separable_input";
    case AllocatorKind::separable_output: return "separable_output";
    case AllocatorKind::wavefront: return "wavefront";
    }
    return "?";
}

const char* crossbar_name(CrossbarKind k)
{
    switch (k) {
    case CrossbarKind::mux: return "mux";
    case CrossbarKind::tristate: return "tristate";
    }
    return "?";
}

const char* routing_name(RoutingKind k)
{
    switch (k) {
    case RoutingKind::dor_xy: return "dor_xy";
    case RoutingKind::west_first: return "west_first";
    case RoutingKind::adaptive: return "adaptive";
    }
    return "?";
}

std::uint64_t RouterConfig::config_key() const
{
    std::uint64_t h = 0x6f63526f75746572ull;  // "ocRouter"
    h = hash_combine(h, static_cast<std::uint64_t>(num_ports));
    h = hash_combine(h, static_cast<std::uint64_t>(num_vcs));
    h = hash_combine(h, static_cast<std::uint64_t>(buffer_depth));
    h = hash_combine(h, static_cast<std::uint64_t>(flit_width));
    h = hash_combine(h, static_cast<std::uint64_t>(vc_alloc));
    h = hash_combine(h, static_cast<std::uint64_t>(sw_alloc));
    h = hash_combine(h, static_cast<std::uint64_t>(pipeline_stages));
    h = hash_combine(h, static_cast<std::uint64_t>(speculative));
    h = hash_combine(h, static_cast<std::uint64_t>(crossbar));
    h = hash_combine(h, static_cast<std::uint64_t>(routing));
    return h;
}

std::string RouterConfig::to_string() const
{
    std::ostringstream out;
    out << "router{ports=" << num_ports << " vcs=" << num_vcs << " depth=" << buffer_depth
        << " width=" << flit_width << " va=" << allocator_name(vc_alloc)
        << " sa=" << allocator_name(sw_alloc) << " pipe=" << pipeline_stages
        << " spec=" << (speculative ? "y" : "n") << " xbar=" << crossbar_name(crossbar)
        << " route=" << routing_name(routing) << "}";
    return out.str();
}

ParameterSpace make_router_space()
{
    const std::vector<std::string> allocators{"round_robin", "separable_input",
                                              "separable_output", "wavefront"};
    ParameterSpace space;
    space.add("num_vcs", ParamDomain::pow2(0, 2), "virtual channels per port");
    space.add("buffer_depth", ParamDomain::pow2(1, 5), "flit buffer depth per VC");
    space.add("flit_width", ParamDomain::pow2(5, 8), "flit width in bits");
    space.add("vc_alloc", ParamDomain::categorical(allocators, /*ordered=*/true),
              "VC allocator microarchitecture (ordered by area/delay)");
    space.add("sw_alloc", ParamDomain::categorical(allocators, /*ordered=*/true),
              "switch allocator microarchitecture (ordered by area/delay)");
    space.add("pipeline_stages", ParamDomain::int_range(1, 3), "router pipeline depth");
    space.add("speculative", ParamDomain::boolean(), "speculative switch allocation");
    space.add("crossbar", ParamDomain::categorical({"mux", "tristate"}, /*ordered=*/true),
              "crossbar implementation (ordered by delay)");
    space.add("routing",
              ParamDomain::categorical({"dor_xy", "west_first", "adaptive"},
                                       /*ordered=*/true),
              "routing function (ordered by logic complexity)");
    return space;
}

RouterConfig decode_router(const ParameterSpace& space, const Genome& genome, int num_ports)
{
    if (!genome.compatible_with(space) || space.size() != router_gene::count)
        throw std::invalid_argument("decode_router: genome/space mismatch");
    if (num_ports < 2) throw std::invalid_argument("decode_router: num_ports must be >= 2");
    RouterConfig c;
    c.num_ports = num_ports;
    c.num_vcs = static_cast<int>(genome.numeric_value(space, router_gene::num_vcs));
    c.buffer_depth =
        static_cast<int>(genome.numeric_value(space, router_gene::buffer_depth));
    c.flit_width = static_cast<int>(genome.numeric_value(space, router_gene::flit_width));
    c.vc_alloc = static_cast<AllocatorKind>(genome.gene(router_gene::vc_alloc));
    c.sw_alloc = static_cast<AllocatorKind>(genome.gene(router_gene::sw_alloc));
    c.pipeline_stages =
        static_cast<int>(genome.numeric_value(space, router_gene::pipeline_stages));
    c.speculative = genome.gene(router_gene::speculative) != 0;
    c.crossbar = static_cast<CrossbarKind>(genome.gene(router_gene::crossbar));
    c.routing = static_cast<RoutingKind>(genome.gene(router_gene::routing));
    return c;
}

}  // namespace nautilus::noc
