#pragma once
// Parallel batch evaluation of design points.
//
// The paper's cost model is explicitly parallel: each design point costs
// "minutes to hours" of CAD runtime, the characterization cluster ran "200+
// cores ... for about 2 weeks", and "the population size effectively caps
// the available parallelism during the evaluation phase" (section 2).
// BatchEvaluator is the in-process analogue of that cluster: a persistent
// thread pool that fans one generation's evaluations out across workers
// while all genetic randomness stays in the caller's breeding loop.
//
// Determinism contract: results are bit-for-bit independent of the worker
// count.  Only the evaluation of already-chosen genomes is parallelized;
// which genomes get evaluated, and in what logical order results are
// consumed, is decided single-threaded by the engine.  Combined with
// BasicCachingEvaluator's in-flight deduplication, distinct_evaluations()
// is identical to a serial run (see DESIGN.md, "Evaluation pipeline").

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/evaluator.hpp"
#include "core/genome.hpp"
#include "obs/obs.hpp"

namespace nautilus {

// Called after every batch with the genomes that were freshly evaluated in
// that batch (cache misses only, sorted by genome key so the order is
// thread-schedule independent) and the measured wall-clock seconds the
// batch took.  Used to drive a simulated synthesis cluster alongside the
// real pool (bench drivers feed synth::SynthesisCluster::run_batch).
using BatchObserver = std::function<void(std::span<const Genome> fresh, double wall_seconds)>;

class BatchEvaluator {
public:
    // `workers` is the total evaluation concurrency; the calling thread
    // participates, so `workers - 1` pool threads are spawned.  0 or 1 means
    // fully serial (no threads, no locking on the hot path).
    explicit BatchEvaluator(std::size_t workers = 1);
    ~BatchEvaluator();

    BatchEvaluator(const BatchEvaluator&) = delete;
    BatchEvaluator& operator=(const BatchEvaluator&) = delete;

    std::size_t workers() const { return workers_; }

    void set_observer(BatchObserver observer) { observer_ = std::move(observer); }

    // Attach tracing + metrics.  With a live tracer every evaluate() call
    // emits one "eval_wave" event (wave size, wall/busy seconds, fresh vs.
    // cached counts, in-flight dedup waits, cumulative accounting); with a
    // registry the eval.* counters/histograms are updated.  Handles are
    // resolved here, once, so the per-wave cost is a few relaxed atomics.
    void set_instrumentation(obs::Instrumentation inst);
    const obs::Instrumentation& instrumentation() const { return inst_; }

    // Evaluate genomes[i] into out[i] through the shared cache.  Duplicate
    // genomes within the batch are computed once (in-flight dedup).  Blocks
    // until the whole batch is done; exceptions from the evaluation function
    // are rethrown here after the batch drains.
    template <typename Value>
    void evaluate(BasicCachingEvaluator<Value>& evaluator, std::span<const Genome> genomes,
                  std::span<Value> out)
    {
        if (out.size() < genomes.size())
            throw std::invalid_argument("BatchEvaluator::evaluate: output span too small");
        const bool instrumented = inst_.tracing() || inst_.registry() != nullptr;
        const std::size_t waits_before = instrumented ? evaluator.inflight_waits() : 0;
        const auto start = std::chrono::steady_clock::now();
        std::vector<unsigned char> charged(genomes.size(), 0);
        std::atomic<std::uint64_t> busy_ns{0};
        run_batch(genomes.size(), [&](std::size_t i) {
            if (!instrumented) {
                bool fresh = false;
                out[i] = evaluator.evaluate(genomes[i], &fresh);
                charged[i] = fresh ? 1 : 0;
                return;
            }
            const auto item_start = std::chrono::steady_clock::now();
            bool fresh = false;
            out[i] = evaluator.evaluate(genomes[i], &fresh);
            charged[i] = fresh ? 1 : 0;
            busy_ns.fetch_add(static_cast<std::uint64_t>(
                                  std::chrono::duration_cast<std::chrono::nanoseconds>(
                                      std::chrono::steady_clock::now() - item_start)
                                      .count()),
                              std::memory_order_relaxed);
        });
        const double seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
        eval_seconds_ += seconds;
        if (obs::ProgressTracker* progress = inst_.progress_tracker()) {
            std::uint64_t fresh = 0;
            for (const unsigned char c : charged) fresh += c;
            progress->on_wave(genomes.size(), fresh, seconds);
        }
        if (instrumented) {
            WaveRecord wave;
            wave.size = genomes.size();
            for (const unsigned char c : charged) wave.fresh += c;
            wave.waits = evaluator.inflight_waits() - waits_before;
            wave.seconds = seconds;
            wave.busy_seconds = static_cast<double>(busy_ns.load()) * 1e-9;
            wave.distinct_total = evaluator.distinct_evaluations();
            wave.calls_total = evaluator.total_calls();
            record_wave(wave);
        }
        notify_observer(genomes, charged, seconds);
    }

    template <typename Value>
    std::vector<Value> evaluate(BasicCachingEvaluator<Value>& evaluator,
                                std::span<const Genome> genomes)
    {
        std::vector<Value> out(genomes.size());
        evaluate(evaluator, genomes, std::span<Value>{out});
        return out;
    }

    // Cumulative measured wall-clock spent inside evaluate() calls.
    double eval_seconds() const { return eval_seconds_; }
    void reset_timing() { eval_seconds_ = 0.0; }

private:
    struct Pool;  // persistent worker threads (absent when workers <= 1)

    // One evaluate() call's accounting, for the trace/metrics layer.
    struct WaveRecord {
        std::size_t size = 0;           // genomes in the wave
        std::size_t fresh = 0;          // cache misses charged to this wave
        std::size_t waits = 0;          // in-flight dedup waits in this wave
        double seconds = 0.0;           // wall-clock of the wave
        double busy_seconds = 0.0;      // summed per-item execution time
        std::size_t distinct_total = 0; // evaluator cumulative distinct
        std::size_t calls_total = 0;    // evaluator cumulative calls
    };

    // Run item(0..count-1) across the pool; the caller participates.  The
    // first exception thrown by any item is rethrown once all items finish.
    void run_batch(std::size_t count, const std::function<void(std::size_t)>& item);

    void notify_observer(std::span<const Genome> genomes,
                         const std::vector<unsigned char>& charged, double seconds);

    void record_wave(const WaveRecord& wave);

    std::size_t workers_;
    Pool* pool_ = nullptr;
    BatchObserver observer_;
    double eval_seconds_ = 0.0;

    obs::Instrumentation inst_;
    std::size_t wave_seq_ = 0;
    // Metric handles resolved once in set_instrumentation (null = no registry).
    obs::Counter* m_waves_ = nullptr;
    obs::Counter* m_items_ = nullptr;
    obs::Counter* m_fresh_ = nullptr;
    obs::Counter* m_hits_ = nullptr;
    obs::Counter* m_waits_ = nullptr;
    obs::Histogram* m_wave_seconds_ = nullptr;
};

}  // namespace nautilus
