#include "core/batch_evaluator.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

namespace nautilus {

// Persistent worker pool.  A batch is published as (item pointer, size,
// shared index dispenser); workers race to claim indices, so per-item work
// is distributed dynamically (good when evaluation costs vary widely, as
// synthesis runtimes do).
struct BatchEvaluator::Pool {
    explicit Pool(std::size_t threads)
    {
        workers.reserve(threads);
        for (std::size_t t = 0; t < threads; ++t)
            workers.emplace_back([this] { worker_loop(); });
    }

    ~Pool()
    {
        {
            std::lock_guard lock{mutex};
            stop = true;
        }
        work_ready.notify_all();
        for (auto& w : workers) w.join();
    }

    void run(std::size_t count, const std::function<void(std::size_t)>& item)
    {
        {
            std::lock_guard lock{mutex};
            batch_item = &item;
            batch_size = count;
            next.store(0, std::memory_order_relaxed);
            active = workers.size();
            error = nullptr;
            ++batch_id;
        }
        work_ready.notify_all();
        drain(item);  // the caller is a worker too
        std::unique_lock lock{mutex};
        batch_done.wait(lock, [this] { return active == 0; });
        batch_item = nullptr;
        if (error) std::rethrow_exception(error);
    }

private:
    void worker_loop()
    {
        std::size_t seen = 0;
        for (;;) {
            const std::function<void(std::size_t)>* item = nullptr;
            {
                std::unique_lock lock{mutex};
                work_ready.wait(lock, [&] { return stop || batch_id != seen; });
                if (stop) return;
                seen = batch_id;
                item = batch_item;
            }
            drain(*item);
            {
                std::lock_guard lock{mutex};
                if (--active == 0) batch_done.notify_all();
            }
        }
    }

    void drain(const std::function<void(std::size_t)>& item)
    {
        for (;;) {
            const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= batch_size) return;
            try {
                item(i);
            }
            catch (...) {
                std::lock_guard lock{mutex};
                if (!error) error = std::current_exception();
            }
        }
    }

    std::mutex mutex;
    std::condition_variable work_ready;
    std::condition_variable batch_done;
    std::vector<std::thread> workers;
    bool stop = false;
    std::size_t batch_id = 0;
    const std::function<void(std::size_t)>* batch_item = nullptr;
    std::size_t batch_size = 0;
    std::atomic<std::size_t> next{0};
    std::size_t active = 0;
    std::exception_ptr error;
};

BatchEvaluator::BatchEvaluator(std::size_t workers) : workers_(std::max<std::size_t>(workers, 1))
{
    if (workers_ > 1) pool_ = new Pool{workers_ - 1};
}

BatchEvaluator::~BatchEvaluator()
{
    delete pool_;
}

void BatchEvaluator::run_batch(std::size_t count,
                               const std::function<void(std::size_t)>& item)
{
    if (count == 0) return;
    if (pool_ == nullptr || count == 1) {
        // Match the pool's semantics exactly: finish every item, then
        // rethrow the first error.  Aborting mid-batch would leave the
        // shared cache in a different state than a parallel run, breaking
        // the worker-count-independence contract when evaluations throw.
        std::exception_ptr error;
        for (std::size_t i = 0; i < count; ++i) {
            try {
                item(i);
            }
            catch (...) {
                if (!error) error = std::current_exception();
            }
        }
        if (error) std::rethrow_exception(error);
        return;
    }
    pool_->run(count, item);
}

void BatchEvaluator::set_instrumentation(obs::Instrumentation inst)
{
    inst_ = std::move(inst);
    m_waves_ = m_items_ = m_fresh_ = m_hits_ = m_waits_ = nullptr;
    m_wave_seconds_ = nullptr;
    if (obs::MetricsRegistry* reg = inst_.registry()) {
        m_waves_ = &reg->counter("eval.waves");
        m_items_ = &reg->counter("eval.items");
        m_fresh_ = &reg->counter("eval.fresh");
        m_hits_ = &reg->counter("eval.cache_hits");
        m_waits_ = &reg->counter("eval.inflight_waits");
        m_wave_seconds_ =
            &reg->histogram("eval.wave_seconds", obs::Histogram::seconds_buckets());
        reg->gauge("eval.workers").set(static_cast<double>(workers_));
    }
}

void BatchEvaluator::record_wave(const WaveRecord& wave)
{
    ++wave_seq_;
    if (m_waves_ != nullptr) {
        m_waves_->add();
        m_items_->add(wave.size);
        m_fresh_->add(wave.fresh);
        m_hits_->add(wave.size - wave.fresh);
        m_waits_->add(wave.waits);
        m_wave_seconds_->observe(wave.seconds);
    }
    if (!inst_.tracing()) return;
    obs::TraceEvent event{"eval_wave"};
    event.add("wave", wave_seq_)
        .add("size", wave.size)
        .add("fresh", wave.fresh)
        .add("hits", wave.size - wave.fresh)
        .add("waits", wave.waits)
        .add("seconds", obs::FieldValue{wave.seconds})
        .add("busy_seconds", obs::FieldValue{wave.busy_seconds})
        .add("workers", workers_)
        .add("distinct_total", wave.distinct_total)
        .add("calls_total", wave.calls_total);
    inst_.tracer.emit(std::move(event));
}

void BatchEvaluator::notify_observer(std::span<const Genome> genomes,
                                     const std::vector<unsigned char>& charged,
                                     double seconds)
{
    if (!observer_) return;
    std::vector<Genome> fresh;
    for (std::size_t i = 0; i < genomes.size(); ++i)
        if (charged[i]) fresh.push_back(genomes[i]);
    // Which duplicate index "wins" the in-flight race varies with thread
    // scheduling; sorting by key makes the reported set order deterministic.
    std::sort(fresh.begin(), fresh.end(),
              [](const Genome& a, const Genome& b) { return a.key() < b.key(); });
    observer_(fresh, seconds);
}

}  // namespace nautilus
