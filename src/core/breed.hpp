#pragma once
// Data-oriented breeding core (DESIGN.md section 10).
//
// The GA breed loop historically paid three per-child costs that are
// invariant within a generation:
//  * rank selection re-sorted the population and rebuilt its weight table on
//    every parent pick (~2 sorts per child),
//  * mutate() recomputed the per-gene mutation probabilities per child even
//    though they only depend on the generation (importance decay),
//  * value_distribution() heap-allocated three vectors per mutated gene.
//
// This header hoists all of that into per-generation state with reusable
// scratch buffers:
//  * SelectionTable  -- per-generation selection state (rank order + weights,
//    roulette weights, tournament fitness copy); select() replicates
//    select_parent() draw for draw.
//  * GeneMatrix      -- the population as one contiguous row-major gene
//    matrix; each row is a genome view, so breeding touches one allocation
//    instead of one heap vector per child.
//  * BreedContext    -- per-run arena: hoisted gene mutation probabilities
//    (rebuilt per generation), a cross-generation memo of
//    value_distribution() results keyed (parameter, current value), and the
//    matrices/scratch the breed loop writes into.  Steady-state breeding
//    performs no per-child allocation.
//  * DiversityCounter -- incremental O(pop * genes) reformulation of the mean
//    pairwise normalized Hamming distance (was O(pop^2 * genes)).
//
// Determinism contract: breed() consumes the *identical* RNG draw sequence
// as the scalar reference path (breed_population_scalar, the pre-refactor
// loop preserved verbatim), so results are bit-for-bit identical.  What may
// consume RNG and in which order is part of the public contract -- see
// DESIGN.md section 10 before touching anything here.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/genome.hpp"
#include "core/hints.hpp"
#include "core/operators.hpp"
#include "core/parameter.hpp"
#include "core/rng.hpp"
#include "core/selection.hpp"

namespace nautilus {

// Per-generation selection state.  rebuild() hoists everything a parent pick
// needs that depends only on the population's fitness vector; select() then
// replicates select_parent()'s RNG draw sequence exactly (including the
// rank-selection n == 1 early return, which consumes no RNG).
class SelectionTable {
public:
    // Validates like select_parent (empty population, rank_pressure range)
    // and rebuilds the per-generation state.  Buffers are reused across
    // calls.
    void rebuild(std::span<const double> fitness, const SelectionConfig& config);

    // One parent pick; draw-for-draw identical to
    // select_parent(fitness, config, rng) on the rebuild() inputs.
    std::size_t select(Rng& rng) const;

private:
    SelectionConfig config_{};
    std::size_t n_ = 0;
    std::vector<std::size_t> order_;   // rank: population sorted best-first
    std::vector<double> weights_;      // rank / roulette pick weights
    std::vector<double> fitness_;      // tournament comparisons
    bool uniform_fallback_ = false;    // roulette: whole population infeasible
};

// The population as a contiguous row-major gene matrix.  Row r is the genome
// view of member r; the breeding and diversity paths operate on these views
// instead of per-member heap vectors.  (Row-major keeps one genome
// contiguous, which is what crossover/mutation walk; the diversity counter
// walks columns strided, which is cheap at paper-scale gene counts.)
class GeneMatrix {
public:
    void reset(std::size_t rows, std::size_t genes);
    void load(std::span<const Genome> population);

    std::size_t rows() const { return genes_ == 0 ? 0 : data_.size() / genes_; }
    std::size_t genes() const { return genes_; }

    std::span<std::uint32_t> row(std::size_t r)
    {
        return std::span<std::uint32_t>(data_).subspan(r * genes_, genes_);
    }
    std::span<const std::uint32_t> row(std::size_t r) const
    {
        return std::span<const std::uint32_t>(data_).subspan(r * genes_, genes_);
    }

private:
    std::size_t genes_ = 0;
    std::vector<std::uint32_t> data_;
};

// Crossover on genome views; identical RNG draws and gene movement as
// crossover() on Genome copies of the same parents.  `swapped`, when
// non-null, receives the shared exchanged-gene mask (see crossover()).
void crossover_views(std::span<std::uint32_t> a, std::span<std::uint32_t> b,
                     CrossoverKind kind, Rng& rng,
                     std::vector<std::uint8_t>* swapped = nullptr);

// Per-child provenance captured during one breed pass, in next-generation
// fill order.  Parents are *population indices* of the outgoing generation;
// the engine owns the mapping from slots to lineage birth ids.
struct ChildProvenance {
    std::uint32_t parent_a = 0;  // the parent the child started as a copy of
    std::uint32_t parent_b = 0;  // the crossover partner
    bool crossed = false;
    std::vector<obs::GeneOrigin> origins;  // one entry per gene
};

// Zero-RNG-impact birth log filled by breed()/breed_population_scalar() when
// requested.  Both paths produce identical logs at the same seed (part of
// the DESIGN.md section 10 bit-exactness contract, gated by tests).
struct BirthLog {
    std::vector<std::uint32_t> elites;      // population indices carried unchanged
    std::vector<ChildProvenance> children;  // elites.size() + children.size() == pop

    void clear()
    {
        elites.clear();
        children.clear();
    }
};

// Per-generation knobs of the GA breed phase (the determinism-relevant
// subset of GaConfig).
struct BreedConfig {
    SelectionConfig selection{};
    CrossoverKind crossover = CrossoverKind::single_point;
    double crossover_rate = 0.9;
    std::size_t elitism = 1;
    std::size_t population_size = 10;
};

// What one breed phase did; feeds the "breed" trace event.
struct BreedStats {
    std::size_t crossovers = 0;
    MutationStats mutation;
};

// Per-run breeding arena.  Construct once per run, call begin_generation()
// when the generation advances (rebuilds the hoisted gene mutation
// probabilities; the value-distribution memo survives, since
// value_distribution has no generation dependence), then breed() or mutate().
class BreedContext {
public:
    BreedContext(const ParameterSpace& space, const HintSet& hints, double mutation_rate);

    // Rebuild generation-dependent state (importance decay moves the per-gene
    // mutation probabilities).  Idempotent per generation.
    void begin_generation(std::size_t generation);
    std::size_t generation() const { return generation_; }

    // Hint-aware mutation with hoisted probabilities and memoized value
    // distributions; RNG draws identical to mutate(genome, ctx, rng) with a
    // MutationContext of the same space/hints/rate/generation.  `origins`
    // (optional, one slot per gene) gets each mutated gene's draw class.
    std::size_t mutate(std::span<std::uint32_t> genes, Rng& rng,
                       MutationStats* stats = nullptr,
                       obs::GeneOrigin* origins = nullptr);
    std::size_t mutate(Genome& genome, Rng& rng, MutationStats* stats = nullptr,
                       obs::GeneOrigin* origins = nullptr);

    // Breed the next generation in place (elites + select/crossover/mutate),
    // consuming the identical RNG sequence as breed_population_scalar().
    // `population` must have config.population_size members compatible with
    // the space; it is overwritten with the children.  `births` (optional)
    // is cleared and filled with per-child provenance at zero RNG cost.
    BreedStats breed(std::vector<Genome>& population, std::span<const double> fitness,
                     const BreedConfig& config, Rng& rng, bool with_stats,
                     BirthLog* births = nullptr);

    // The hoisted per-gene mutation probabilities of the current generation.
    std::span<const double> gene_probs() const { return probs_; }

    // The (memoized) mutation value distribution for `param` at `current`;
    // identical to value_distribution(space[param], hints[param], confidence,
    // current).  The reference is invalidated by the next distribution()
    // call for an unmemoized (large) domain.
    const std::vector<double>& distribution(std::size_t param, std::uint32_t current);

    // Memo accounting (for the engine bench and tests).
    std::uint64_t dist_memo_hits() const { return memo_hits_; }
    std::uint64_t dist_memo_misses() const { return memo_misses_; }

private:
    enum class DrawKind : std::uint8_t { uniform, bias, target };

    const ParameterSpace& space_;
    const HintSet& hints_;
    double mutation_rate_ = 0.1;
    std::size_t generation_ = 0;
    bool generation_valid_ = false;

    std::vector<double> probs_;            // hoisted per-gene mutation probabilities
    std::vector<std::size_t> card_;        // per-param domain cardinality
    std::vector<DrawKind> draw_kind_;      // per-param stats classification
    // memo_[i][current] caches value_distribution for small domains (empty
    // vector = not yet computed; computed distributions are never empty since
    // cardinality >= 2 there).  Large domains fall back to scratch_dist_.
    std::vector<std::vector<std::vector<double>>> memo_;
    std::vector<double> scratch_dist_;
    std::vector<double> scratch_dir_;
    std::vector<double> scratch_raw_;
    std::uint64_t memo_hits_ = 0;
    std::uint64_t memo_misses_ = 0;

    // Breeding arena.
    SelectionTable table_;
    GeneMatrix parents_;
    GeneMatrix children_;                  // population_size rows + 1 spare
    std::vector<std::size_t> elite_order_;
    std::vector<std::uint8_t> swap_mask_;  // crossover capture scratch
};

// The pre-refactor GA breed loop, preserved verbatim as the bit-exactness
// reference (GaConfig::scalar_breed routes here).  Overwrites `population`
// with the next generation and returns what it did.
BreedStats breed_population_scalar(std::vector<Genome>& population,
                                   std::span<const double> fitness,
                                   const BreedConfig& config, const ParameterSpace& space,
                                   const HintSet& hints, double mutation_rate,
                                   std::size_t generation, Rng& rng, bool with_stats,
                                   BirthLog* births = nullptr);

// Incremental mean pairwise normalized Hamming distance: feed each genome
// once (O(genes) per add via per-gene value counts), read value() at any
// point.  Integer-exact pair counting, so the result is deterministic and
// independent of insertion order.
class DiversityCounter {
public:
    // Forget all members; keep buffer capacity.
    void reset(std::size_t genes);

    void add(std::span<const std::uint32_t> genes);
    void add(const Genome& genome) { add(std::span<const std::uint32_t>(genome.genes())); }

    // 0 = all clones, 1 = every pair differs in every gene; 0 with < 2
    // members or no genes.
    double value() const;

    // One-shot convenience over a whole population (reuses buffers).
    double measure(std::span<const Genome> population);

private:
    std::size_t genes_ = 0;
    std::size_t members_ = 0;
    std::uint64_t same_pairs_ = 0;  // pairs agreeing on a gene, summed over genes
    std::vector<std::vector<std::uint32_t>> counts_;  // per gene: value -> count
};

}  // namespace nautilus
