#include "core/random_search.hpp"

#include <algorithm>
#include <atomic>
#include <optional>
#include <span>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "core/batch_evaluator.hpp"
#include "core/genome.hpp"

namespace nautilus {

void RandomSearchConfig::validate() const
{
    if (max_distinct_evals == 0)
        throw std::invalid_argument("RandomSearchConfig: max_distinct_evals must be >= 1");
    if (eval_workers == 0)
        throw std::invalid_argument("RandomSearchConfig: eval_workers must be >= 1");
    fault.validate();
}

RandomSearch::RandomSearch(const ParameterSpace& space, RandomSearchConfig config,
                           Direction direction, EvalFn eval)
    : space_(space), config_(config), direction_(direction), eval_(std::move(eval))
{
    if (space_.empty()) throw std::invalid_argument("RandomSearch: empty parameter space");
    if (!eval_) throw std::invalid_argument("RandomSearch: null evaluation function");
    config_.validate();
}

Curve RandomSearch::run(std::uint64_t seed) const
{
    Rng rng{seed};
    FaultTolerantEvaluator<Evaluation> guard{eval_, config_.fault, config_.fault_penalty};
    guard.set_instrumentation(config_.obs);
    // Persistent store tier below the memo cache (see GaEngine::run_impl).
    EvalStore* store = config_.store.get();
    const std::uint64_t store_ns = config_.store_namespace;
    std::atomic<std::size_t> store_hits{0};
    std::atomic<std::size_t> store_misses{0};
    CachingEvaluator evaluator{[&](const Genome& g) -> Evaluation {
        if (store != nullptr) {
            if (const std::optional<StoredResult> cached = store->lookup(store_ns, g)) {
                if (const std::optional<Evaluation> e = stored_to_evaluation(*cached)) {
                    store_hits.fetch_add(1, std::memory_order_relaxed);
                    return *e;
                }
            }
        }
        EvalOutcome outcome;
        const Evaluation e = guard.evaluate(g, &outcome);
        if (store != nullptr) {
            store_misses.fetch_add(1, std::memory_order_relaxed);
            if (!outcome.penalized) store->insert(store_ns, g, stored_from_evaluation(e));
        }
        return e;
    }};
    BatchEvaluator batch_eval{config_.eval_workers};
    batch_eval.set_instrumentation(config_.obs);
    const obs::Tracer& tracer = config_.obs.tracer;
    if (obs::MetricsRegistry* reg = config_.obs.registry()) reg->counter("random.runs").add();
    obs::ProgressTracker* progress = config_.obs.progress_tracker();
    if (progress != nullptr) progress->on_run_start("random", config_.max_distinct_evals);
    if (tracer.enabled()) {
        obs::TraceEvent ev{"run_start"};
        ev.add("engine", "random")
            .add("seed", static_cast<std::size_t>(seed))
            .add("budget", config_.max_distinct_evals)
            .add("workers", config_.eval_workers);
        for (const auto& [key, value] : config_.obs.run_tags) ev.add(key, value);
        tracer.emit(std::move(ev));
    }
    obs::ScopedTimer run_span{tracer, "random.run"};
    Curve curve{direction_};
    double best = worst_value(direction_);
    bool have_best = false;

    // Draws are issued in waves sized by the remaining distinct budget, so a
    // wave can never overshoot it and the draw sequence matches the serial
    // one exactly (each wave's size depends only on earlier waves' results).
    // Bound total draws so tiny spaces (where every point is soon cached)
    // terminate even if the distinct budget exceeds the space size.
    const std::size_t max_draws = config_.max_distinct_evals * 50;
    std::size_t draws = 0;
    std::size_t distinct = 0;  // tracks evaluator state in draw order
    std::unordered_set<Genome, GenomeHash> seen;
    std::vector<Genome> wave;
    std::vector<Evaluation> evals;
    while (draws < max_draws && distinct < config_.max_distinct_evals) {
        const std::size_t chunk =
            std::min(config_.max_distinct_evals - distinct, max_draws - draws);
        wave.clear();
        for (std::size_t i = 0; i < chunk; ++i) wave.push_back(Genome::random(space_, rng));
        draws += chunk;
        evals.assign(chunk, Evaluation{});
        batch_eval.evaluate(evaluator, wave, std::span<Evaluation>{evals});
        for (std::size_t i = 0; i < chunk; ++i) {
            if (!seen.insert(wave[i]).second) continue;  // revisit, free
            ++distinct;
            if (!evals[i].feasible) continue;
            if (!have_best || no_worse(evals[i].value, best, direction_)) {
                best = better_of(evals[i].value, best, direction_);
                have_best = true;
                curve.append(static_cast<double>(distinct), best);
            }
        }
        if (progress != nullptr) {
            progress->on_units(distinct);
            if (have_best) progress->on_best(best);
        }
    }
    if (progress != nullptr) progress->on_run_end();
    if (tracer.enabled()) {
        obs::TraceEvent ev{"run_end"};
        ev.add("engine", "random")
            .add("distinct_evals", evaluator.distinct_evaluations())
            .add("total_calls", evaluator.total_calls())
            .add("inflight_waits", evaluator.inflight_waits())
            .add("draws", draws)
            .add("feasible", obs::FieldValue{have_best})
            .add("best", obs::FieldValue{have_best ? best : 0.0})
            .add("eval_seconds", obs::FieldValue{batch_eval.eval_seconds()})
            .add("attempts", std::size_t{guard.counters().attempts})
            .add("retries", std::size_t{guard.counters().retries})
            .add("quarantined", std::size_t{guard.counters().quarantined});
        if (store != nullptr)
            ev.add("store_hits", store_hits.load(std::memory_order_relaxed))
                .add("store_misses", store_misses.load(std::memory_order_relaxed));
        tracer.emit(std::move(ev));
    }
    return curve;
}

MultiRunCurve RandomSearch::run_many(std::size_t count) const
{
    if (count == 0) throw std::invalid_argument("RandomSearch::run_many: count must be >= 1");
    MultiRunCurve multi{direction_};
    Rng seeder{config_.seed};
    for (std::size_t i = 0; i < count; ++i) {
        Curve c = run(seeder.next_u64());
        if (!c.empty()) multi.add_run(std::move(c));
    }
    return multi;
}

double RandomSearch::expected_draws(double hit_probability)
{
    if (hit_probability <= 0.0 || hit_probability > 1.0)
        throw std::invalid_argument("RandomSearch::expected_draws: probability out of (0, 1]");
    return 1.0 / hit_probability;
}

}  // namespace nautilus
