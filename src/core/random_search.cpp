#include "core/random_search.hpp"

#include <stdexcept>

#include "core/genome.hpp"

namespace nautilus {

RandomSearch::RandomSearch(const ParameterSpace& space, RandomSearchConfig config,
                           Direction direction, EvalFn eval)
    : space_(space), config_(config), direction_(direction), eval_(std::move(eval))
{
    if (space_.empty()) throw std::invalid_argument("RandomSearch: empty parameter space");
    if (!eval_) throw std::invalid_argument("RandomSearch: null evaluation function");
    if (config_.max_distinct_evals == 0)
        throw std::invalid_argument("RandomSearch: max_distinct_evals must be >= 1");
}

Curve RandomSearch::run(std::uint64_t seed) const
{
    Rng rng{seed};
    CachingEvaluator evaluator{eval_};
    Curve curve{direction_};
    double best = worst_value(direction_);
    bool have_best = false;

    // Bound total draws so tiny spaces (where every point is soon cached)
    // terminate even if the distinct budget exceeds the space size.
    const std::size_t max_draws = config_.max_distinct_evals * 50;
    for (std::size_t draw = 0;
         draw < max_draws && evaluator.distinct_evaluations() < config_.max_distinct_evals;
         ++draw) {
        const Genome g = Genome::random(space_, rng);
        const std::size_t before = evaluator.distinct_evaluations();
        const Evaluation e = evaluator.evaluate(g);
        if (evaluator.distinct_evaluations() == before) continue;  // revisit, free
        if (!e.feasible) continue;
        if (!have_best || no_worse(e.value, best, direction_)) {
            best = better_of(e.value, best, direction_);
            have_best = true;
            curve.append(static_cast<double>(evaluator.distinct_evaluations()), best);
        }
    }
    return curve;
}

MultiRunCurve RandomSearch::run_many(std::size_t count) const
{
    if (count == 0) throw std::invalid_argument("RandomSearch::run_many: count must be >= 1");
    MultiRunCurve multi{direction_};
    Rng seeder{config_.seed};
    for (std::size_t i = 0; i < count; ++i) {
        Curve c = run(seeder.next_u64());
        if (!c.empty()) multi.add_run(std::move(c));
    }
    return multi;
}

double RandomSearch::expected_draws(double hit_probability)
{
    if (hit_probability <= 0.0 || hit_probability > 1.0)
        throw std::invalid_argument("RandomSearch::expected_draws: probability out of (0, 1]");
    return 1.0 / hit_probability;
}

}  // namespace nautilus
