#include "core/nautilus.hpp"

#include <stdexcept>

namespace nautilus {

namespace {
constexpr double k_weak_confidence = 0.45;
constexpr double k_strong_confidence = 0.8;
}  // namespace

const char* guidance_name(GuidanceLevel level)
{
    switch (level) {
    case GuidanceLevel::none: return "baseline";
    case GuidanceLevel::weak: return "weakly guided";
    case GuidanceLevel::strong: return "strongly guided";
    case GuidanceLevel::custom: return "custom";
    }
    return "?";
}

double guidance_confidence(GuidanceLevel level, double fallback)
{
    switch (level) {
    case GuidanceLevel::none: return 0.0;
    case GuidanceLevel::weak: return k_weak_confidence;
    case GuidanceLevel::strong: return k_strong_confidence;
    case GuidanceLevel::custom: return fallback;
    }
    throw std::logic_error("guidance_confidence: unknown level");
}

HintSet apply_guidance(const HintSet& author_hints, Direction direction, GuidanceLevel level)
{
    HintSet hints = direction == Direction::minimize ? author_hints.negated_bias()
                                                     : author_hints;
    hints.set_confidence(guidance_confidence(level, author_hints.confidence()));
    return hints;
}

NautilusEngine::NautilusEngine(const ParameterSpace& space, GaConfig config,
                               Direction direction, EvalFn eval, const HintSet& author_hints,
                               GuidanceLevel level)
    : engine_(space, config, direction, std::move(eval),
              apply_guidance(author_hints, direction, level)),
      level_(level)
{
}

}  // namespace nautilus
