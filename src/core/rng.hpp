#pragma once
// Deterministic, splittable pseudo-random number generation.
//
// All stochastic behavior in the library (GA operators, sampling, synthesis
// noise) flows from this generator so that experiments are reproducible
// bit-for-bit from a single seed.  The core generator is xoshiro256**
// (public domain, Blackman & Vigna), seeded through splitmix64.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace nautilus {

// splitmix64 step: advances `state` and returns the next 64-bit output.
// Also used standalone as a high-quality integer hash/mixer.
std::uint64_t splitmix64(std::uint64_t& state);

// Stateless mix of a single 64-bit value (splitmix64 finalizer).
std::uint64_t mix64(std::uint64_t value);

// Combine a running hash with one more 64-bit value.
std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value);

// xoshiro256** generator with convenience distributions.
class Rng {
public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    // UniformRandomBitGenerator interface (usable with <random> adaptors).
    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }
    result_type operator()() { return next_u64(); }

    std::uint64_t next_u64();

    // Uniform double in [0, 1).
    double uniform();

    // Uniform double in [lo, hi).
    double uniform(double lo, double hi);

    // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    // Uniform index in [0, n). Requires n > 0.
    std::size_t index(std::size_t n);

    // True with probability p (clamped to [0, 1]).
    bool bernoulli(double p);

    // Standard normal via Box-Muller.
    double normal();
    double normal(double mean, double stddev);

    // Sample an index proportionally to non-negative `weights`.
    // Requires at least one strictly positive weight.
    std::size_t weighted_index(std::span<const double> weights);

    // Derive an independent child generator (for parallel or nested use).
    Rng split();

    // Raw 256-bit generator state, for checkpoint/resume.  restore() resumes
    // the stream bit-for-bit where state() captured it.
    std::array<std::uint64_t, 4> state() const { return state_; }
    void restore(const std::array<std::uint64_t, 4>& state) { state_ = state; }

    // In-place Fisher-Yates shuffle.
    template <typename T>
    void shuffle(std::vector<T>& items)
    {
        for (std::size_t i = items.size(); i > 1; --i) {
            std::size_t j = index(i);
            std::swap(items[i - 1], items[j]);
        }
    }

private:
    std::array<std::uint64_t, 4> state_;
};

}  // namespace nautilus
