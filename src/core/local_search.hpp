#pragma once
// Local-search comparators: simulated annealing and stochastic hill
// climbing.
//
// The paper positions GAs within a family of stochastic methods (simulated
// annealing has "long been used in physical design automation", section 5).
// These engines share the GA's genome representation, evaluation/cost
// accounting and -- optionally -- the Nautilus hint machinery: the neighbor
// proposal distribution reuses the same hint-aware mutation operator, so
// "guided SA" is a meaningful ablation of guided-GA's population mechanics.

#include <cstdint>
#include <memory>

#include "core/eval_store.hpp"
#include "core/evaluator.hpp"
#include "core/fault.hpp"
#include "core/fitness.hpp"
#include "core/hints.hpp"
#include "core/operators.hpp"
#include "core/run_stats.hpp"
#include "obs/obs.hpp"

namespace nautilus {

struct AnnealingConfig {
    std::size_t max_distinct_evals = 800;  // same budget axis as the GA benches
    double initial_temperature = 0.0;      // 0 = auto-calibrate from first samples
    double cooling = 0.97;                 // geometric cooling per accepted batch
    std::size_t steps_per_temperature = 10;
    double mutation_rate = 0.4;            // per-gene proposal probability
    std::uint64_t seed = 11;
    // Threads for batched evaluations (temperature probes); the accept/
    // reject walk itself is inherently sequential.  Results are identical
    // for any worker count.
    std::size_t eval_workers = 1;
    // Tracing + metrics (off by default); does not affect the walk.
    obs::Instrumentation obs;
    // Fault tolerance (DESIGN.md section 8); shared semantics with GaConfig.
    FaultPolicy fault;
    Evaluation fault_penalty{false, 0.0};

    // Cross-run persistent evaluation store; same placement and determinism
    // contract as GaConfig::store.
    std::shared_ptr<EvalStore> store;
    std::uint64_t store_namespace = 0;

    void validate() const;
};

class SimulatedAnnealing {
public:
    SimulatedAnnealing(const ParameterSpace& space, AnnealingConfig config,
                       Direction direction, EvalFn eval, HintSet hints);

    // One annealing run; the curve tracks best-so-far vs distinct evals.
    Curve run(std::uint64_t seed) const;
    MultiRunCurve run_many(std::size_t count) const;

private:
    const ParameterSpace& space_;
    AnnealingConfig config_;
    Direction direction_;
    EvalFn eval_;
    HintSet hints_;
};

struct HillClimbConfig {
    std::size_t max_distinct_evals = 800;
    // Restart from a random point after this many consecutive non-improving
    // proposals (escapes local optima the greedy walk cannot).
    std::size_t patience = 40;
    double mutation_rate = 0.3;
    std::uint64_t seed = 13;
    // Threads for the shared evaluation pipeline; the greedy walk evaluates
    // one candidate at a time, so this mainly standardizes accounting.
    std::size_t eval_workers = 1;
    // Tracing + metrics (off by default); does not affect the walk.
    obs::Instrumentation obs;
    // Fault tolerance (DESIGN.md section 8); shared semantics with GaConfig.
    FaultPolicy fault;
    Evaluation fault_penalty{false, 0.0};

    // Cross-run persistent evaluation store; same placement and determinism
    // contract as GaConfig::store.
    std::shared_ptr<EvalStore> store;
    std::uint64_t store_namespace = 0;

    void validate() const;
};

class HillClimber {
public:
    HillClimber(const ParameterSpace& space, HillClimbConfig config, Direction direction,
                EvalFn eval, HintSet hints);

    Curve run(std::uint64_t seed) const;
    MultiRunCurve run_many(std::size_t count) const;

private:
    const ParameterSpace& space_;
    HillClimbConfig config_;
    Direction direction_;
    EvalFn eval_;
    HintSet hints_;
};

}  // namespace nautilus
