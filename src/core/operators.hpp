#pragma once
// Genetic operators: hint-aware mutation and crossover.
//
// The baseline behavior (HintSet::none) matches a PyEvolve-style integer GA:
// each gene mutates independently with probability `mutation_rate` to a
// uniformly random different value; crossover is single-point.
//
// Hints modify the two stochastic choices of mutation:
//  * *which* gene mutates  -- importance (+ decay) skews per-gene mutation
//    probability while preserving the expected number of mutations;
//  * *what value* it takes -- bias tilts the step direction, target
//    concentrates values near a region, step_scale controls step size.
// Every modification is blended with the uniform baseline through the
// confidence knob c:  guided = (1-c) * uniform + c * directed.

#include <cstddef>
#include <utility>
#include <vector>

#include "core/genome.hpp"
#include "core/hints.hpp"
#include "core/parameter.hpp"
#include "core/rng.hpp"
#include "obs/lineage.hpp"

namespace nautilus {

// Tally of what the hint machinery actually did during mutation, classified
// by the value distribution each gene draw used: bias-directed,
// target-directed, or plain uniform (no hint, unordered domain, or
// confidence 0).  Engines aggregate one of these per generation and emit it
// in the "breed" trace event, making hint behavior auditable per run.
struct MutationStats {
    std::uint64_t genomes = 0;        // mutate() calls
    std::uint64_t genes_mutated = 0;  // genes actually changed
    std::uint64_t bias_draws = 0;
    std::uint64_t target_draws = 0;
    std::uint64_t uniform_draws = 0;

    void reset() { *this = MutationStats{}; }
};

// Everything mutation needs to know; cheap to construct per generation.
struct MutationContext {
    const ParameterSpace* space = nullptr;
    const HintSet* hints = nullptr;  // already direction-folded
    double mutation_rate = 0.1;      // baseline per-gene probability
    std::size_t generation = 0;      // for importance decay
    MutationStats* stats = nullptr;  // optional draw-outcome tally
    // Optional per-gene origin capture (one slot per gene): each mutated
    // gene's slot is overwritten with the draw class that set its value.
    // Pure observation — never consumes RNG draws (DESIGN.md §11).
    obs::GeneOrigin* origins = nullptr;
};

// Per-gene mutation probabilities for this generation.  With no hints every
// entry equals mutation_rate; with importance hints the probabilities are
// skewed by (blended) normalized effective importance, preserving the mean
// so the overall mutation pressure matches the baseline.  Capped at 0.95.
std::vector<double> gene_mutation_probabilities(const MutationContext& ctx);

// Probability distribution over the value indices a mutating gene may take,
// given its current value.  The current index always gets probability 0 (a
// mutation must change the gene); for single-value domains the result is
// all-zero.  Exposed for direct property testing.
std::vector<double> value_distribution(const ParamDomain& domain, const ParamHints& hints,
                                       double confidence, std::uint32_t current);

// Allocation-free variant for the breeding hot path (core/breed.hpp): the
// distribution is written into `w` (resized to the domain cardinality) and
// `dir`/`raw` serve as scratch for the directed kernels.  Output is
// bit-identical to value_distribution.
void value_distribution_into(std::vector<double>& w, std::vector<double>& dir,
                             std::vector<double>& raw, const ParamDomain& domain,
                             const ParamHints& hints, double confidence,
                             std::uint32_t current);

// Mutate `genome` in place; returns the number of genes changed.
std::size_t mutate(Genome& genome, const MutationContext& ctx, Rng& rng);

enum class CrossoverKind { single_point, two_point, uniform };

const char* crossover_name(CrossoverKind kind);

// Produce two children from two parents.  Parents must have equal, nonzero
// size.  single_point/two_point exchange contiguous gene runs; uniform picks
// each gene from either parent with probability 1/2.  When `swapped` is
// non-null it is resized to the gene count and entry i is set to 1 iff gene
// i was exchanged (the mask is shared by both children); capturing it draws
// nothing from the RNG.
std::pair<Genome, Genome> crossover(const Genome& a, const Genome& b, CrossoverKind kind,
                                    Rng& rng,
                                    std::vector<std::uint8_t>* swapped = nullptr);

// Force `genome` back into `space`: truncate or zero-extend to the space's
// parameter count and clamp every out-of-domain gene index to its domain's
// last value.  Used when seeding populations from external sources (files,
// checkpoints of a since-grown space).  Returns the number of genes changed;
// afterwards genome.compatible_with(space) always holds.  When `origins` is
// non-null it is resized to the space's parameter count and every changed
// gene's slot is overwritten with GeneOrigin::repair (untouched slots keep
// their prior classification; slots added by extension are repair too).
std::size_t repair(Genome& genome, const ParameterSpace& space,
                   std::vector<obs::GeneOrigin>* origins = nullptr);

}  // namespace nautilus
