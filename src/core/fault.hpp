#pragma once
// Fault-tolerant evaluation: retry, watchdog timeout, quarantine.
//
// The paper's evaluations are full synthesis/place-and-route jobs -- hours of
// CAD runtime on a cluster where crashed tools, license hiccups and hung jobs
// are routine.  The seed pipeline treated every evaluation as infallible: one
// throwing evaluation aborted the whole query.  FaultTolerantEvaluator wraps
// the raw evaluation function *below* the memoization cache, so every cache
// miss passes through exactly one guarded call that
//   1. retries failed/timed-out attempts per RetryPolicy (exponential backoff
//      with deterministic, seeded jitter -- no global RNG, so results stay
//      bit-for-bit independent of thread scheduling and worker count);
//   2. bounds each attempt with a wall-clock watchdog (the attempt runs on a
//      helper thread; on timeout the result is abandoned, not awaited);
//   3. quarantines a design point whose attempts are exhausted and serves a
//      configurable penalty value instead, so a long search degrades
//      gracefully rather than aborting at generation 79 of 80.
//
// Accounting invariant (validated by `trace_inspect --check`): every guarded
// call makes >= 1 attempt, so
//     attempts == guarded calls (== cache misses) + retries.
// Outcomes (ok / failed / timed_out, attempt counts, penalty flag) are kept
// per design point and surfaced through trace events and eval.* counters.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/genome.hpp"
#include "core/rng.hpp"
#include "obs/obs.hpp"

namespace nautilus {

enum class EvalStatus { ok, failed, timed_out };

const char* eval_status_name(EvalStatus status);

// What happened to one design point's evaluation, after retries.
struct EvalOutcome {
    EvalStatus status = EvalStatus::ok;
    std::size_t attempts = 0;  // underlying evaluation-function invocations
    bool penalized = false;    // value served is the quarantine penalty
    std::string error;         // what() of the last failure, empty when ok
};

// Retry/backoff/timeout knobs for one evaluation pipeline.
struct RetryPolicy {
    std::size_t max_attempts = 1;    // 1 = no retries
    double backoff_ms = 0.0;         // sleep before attempt 2 (0 = immediate)
    double backoff_multiplier = 2.0; // exponential growth per further attempt
    double jitter = 0.0;             // +/- fraction of the backoff, seeded
    std::uint64_t jitter_seed = 0x6a177e5;
    double timeout_seconds = 0.0;    // per-attempt watchdog (0 = unlimited)

    void validate() const;  // throws std::invalid_argument on bad settings

    // Milliseconds to sleep before attempt `attempt` (2-based) of `key`.
    // Deterministic in (policy, key, attempt): the jitter is hashed, not
    // drawn from a shared RNG, so concurrent evaluations cannot perturb each
    // other's schedules.
    double backoff_before(std::size_t attempt, std::uint64_t key) const;
};

// Fault policy threaded through engine configs.  With `tolerate_failures`
// off (the default) the guard only counts attempts and retries: an
// evaluation that still fails after max_attempts rethrows to the caller,
// preserving the historical contract.  With it on, exhausted design points
// are quarantined and answered with `penalty` instead.
struct FaultPolicy {
    RetryPolicy retry;
    bool tolerate_failures = false;

    void validate() const { retry.validate(); }
};

// Cumulative guard accounting (monotone within a run; checkpointable).
struct FaultCounters {
    std::uint64_t attempts = 0;     // evaluation-function invocations
    std::uint64_t retries = 0;      // attempts beyond the first per call
    std::uint64_t failures = 0;     // attempts that threw
    std::uint64_t timeouts = 0;     // attempts killed by the watchdog
    std::uint64_t quarantined = 0;  // design points moved to quarantine
    std::uint64_t penalties = 0;    // penalty values served

    bool operator==(const FaultCounters&) const = default;
};

// Wraps a raw evaluation function with retry + timeout + quarantine.  Sits
// *below* BasicCachingEvaluator: the cache calls the guard on every miss, so
// penalties are memoized like ordinary results and repeated requests for a
// quarantined point are free cache hits.  Thread-safe: concurrent guarded
// calls (one per distinct in-flight genome, by the cache's dedup contract)
// only share atomics and a small mutex-protected outcome map.
template <typename Value>
class FaultTolerantEvaluator {
public:
    using Fn = std::function<Value(const Genome&)>;

    FaultTolerantEvaluator(Fn fn, FaultPolicy policy, Value penalty)
        : fn_(std::move(fn)), policy_(policy), penalty_(std::move(penalty))
    {
        if (!fn_)
            throw std::invalid_argument("FaultTolerantEvaluator: null evaluation function");
        policy_.validate();
    }

    FaultTolerantEvaluator(const FaultTolerantEvaluator&) = delete;
    FaultTolerantEvaluator& operator=(const FaultTolerantEvaluator&) = delete;

    const FaultPolicy& policy() const { return policy_; }

    // Attach tracing + metrics; failed attempts emit "eval_fault" events and
    // quarantines emit "quarantine" events.  Handles resolved once.
    void set_instrumentation(obs::Instrumentation inst)
    {
        inst_ = std::move(inst);
        m_attempts_ = m_retries_ = m_failures_ = m_timeouts_ = nullptr;
        m_quarantined_ = m_penalties_ = nullptr;
        if (obs::MetricsRegistry* reg = inst_.registry()) {
            m_attempts_ = &reg->counter("eval.attempts");
            m_retries_ = &reg->counter("eval.retries");
            m_failures_ = &reg->counter("eval.failures");
            m_timeouts_ = &reg->counter("eval.timeouts");
            m_quarantined_ = &reg->counter("eval.quarantined");
            m_penalties_ = &reg->counter("eval.penalties");
        }
    }

    // Evaluate with retries.  Never throws when tolerate_failures is on
    // (exhausted points are quarantined and answered with the penalty);
    // rethrows the last attempt's error otherwise.  `out`, when non-null,
    // receives the outcome of this call.
    Value evaluate(const Genome& genome, EvalOutcome* out = nullptr)
    {
        const std::uint64_t key = genome.key();
        EvalOutcome outcome;
        std::exception_ptr last_error;
        for (std::size_t attempt = 1; attempt <= policy_.retry.max_attempts; ++attempt) {
            if (attempt > 1) {
                bump(counters_.retries, m_retries_);
                const double ms = policy_.retry.backoff_before(attempt, key);
                if (ms > 0.0)
                    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>{ms});
            }
            bump(counters_.attempts, m_attempts_);
            outcome.attempts = attempt;
            AttemptResult result = run_attempt(genome);
            if (result.status == EvalStatus::ok) {
                outcome.status = EvalStatus::ok;
                outcome.error.clear();
                record(key, outcome, out);
                return std::move(*result.value);
            }
            outcome.status = result.status;
            outcome.error = std::move(result.error);
            last_error = result.exception;
            if (result.status == EvalStatus::timed_out)
                bump(counters_.timeouts, m_timeouts_);
            else
                bump(counters_.failures, m_failures_);
            if (inst_.tracing()) {
                obs::TraceEvent ev{"eval_fault"};
                ev.add("key", std::size_t{key})
                    .add("attempt", attempt)
                    .add("status", eval_status_name(result.status))
                    .add("error", outcome.error.c_str());
                inst_.tracer.emit(std::move(ev));
            }
        }
        // Attempts exhausted.
        if (!policy_.tolerate_failures) {
            record(key, outcome, out);
            if (last_error) std::rethrow_exception(last_error);
            throw std::runtime_error("FaultTolerantEvaluator: evaluation timed out (" +
                                     outcome.error + ")");
        }
        outcome.penalized = true;
        bump(counters_.quarantined, m_quarantined_);
        bump(counters_.penalties, m_penalties_);
        {
            std::lock_guard lock{mutex_};
            quarantine_.push_back(key);
        }
        if (inst_.tracing()) {
            obs::TraceEvent ev{"quarantine"};
            ev.add("key", std::size_t{key})
                .add("attempts", outcome.attempts)
                .add("status", eval_status_name(outcome.status));
            inst_.tracer.emit(std::move(ev));
        }
        record(key, outcome, out);
        return penalty_;
    }

    // Outcome of the guarded call for a design point, if one happened.
    std::optional<EvalOutcome> outcome_for(const Genome& genome) const
    {
        std::lock_guard lock{mutex_};
        const auto it = outcomes_.find(genome.key());
        if (it == outcomes_.end()) return std::nullopt;
        return it->second;
    }

    FaultCounters counters() const
    {
        FaultCounters c;
        c.attempts = counters_.attempts.load(std::memory_order_relaxed);
        c.retries = counters_.retries.load(std::memory_order_relaxed);
        c.failures = counters_.failures.load(std::memory_order_relaxed);
        c.timeouts = counters_.timeouts.load(std::memory_order_relaxed);
        c.quarantined = counters_.quarantined.load(std::memory_order_relaxed);
        c.penalties = counters_.penalties.load(std::memory_order_relaxed);
        return c;
    }

    // Keys of quarantined design points, in quarantine order.
    std::vector<std::uint64_t> quarantined_keys() const
    {
        std::lock_guard lock{mutex_};
        return quarantine_;
    }

    // Restore checkpointed state (quarantine list + counters).  Must not
    // race with evaluate().
    void restore(std::span<const std::uint64_t> quarantine, const FaultCounters& counters)
    {
        std::lock_guard lock{mutex_};
        quarantine_.assign(quarantine.begin(), quarantine.end());
        counters_.attempts.store(counters.attempts, std::memory_order_relaxed);
        counters_.retries.store(counters.retries, std::memory_order_relaxed);
        counters_.failures.store(counters.failures, std::memory_order_relaxed);
        counters_.timeouts.store(counters.timeouts, std::memory_order_relaxed);
        counters_.quarantined.store(counters.quarantined, std::memory_order_relaxed);
        counters_.penalties.store(counters.penalties, std::memory_order_relaxed);
    }

private:
    struct AttemptResult {
        EvalStatus status = EvalStatus::ok;
        std::optional<Value> value;
        std::string error;
        std::exception_ptr exception;
    };

    // One attempt, in-thread when no timeout is configured, otherwise on a
    // watchdog-supervised helper thread.  A timed-out helper is abandoned
    // (detached); it owns its state via shared_ptr, finishes its evaluation
    // eventually, and its late result is simply discarded.
    AttemptResult run_attempt(const Genome& genome)
    {
        AttemptResult out;
        if (policy_.retry.timeout_seconds <= 0.0) {
            try {
                out.value = fn_(genome);
            }
            catch (const std::exception& e) {
                out.status = EvalStatus::failed;
                out.error = e.what();
                out.exception = std::current_exception();
            }
            catch (...) {
                out.status = EvalStatus::failed;
                out.error = "unknown exception";
                out.exception = std::current_exception();
            }
            return out;
        }

        struct Shared {
            std::mutex m;
            std::condition_variable cv;
            bool done = false;
            std::optional<Value> value;
            std::string error;
            std::exception_ptr exception;
        };
        auto shared = std::make_shared<Shared>();
        std::thread worker{[shared, genome, fn = fn_] {
            std::optional<Value> value;
            std::string error;
            std::exception_ptr exception;
            try {
                value = fn(genome);
            }
            catch (const std::exception& e) {
                error = e.what();
                exception = std::current_exception();
            }
            catch (...) {
                error = "unknown exception";
                exception = std::current_exception();
            }
            std::lock_guard lock{shared->m};
            shared->value = std::move(value);
            shared->error = std::move(error);
            shared->exception = exception;
            shared->done = true;
            shared->cv.notify_all();
        }};

        std::unique_lock lock{shared->m};
        const bool finished = shared->cv.wait_for(
            lock, std::chrono::duration<double>{policy_.retry.timeout_seconds},
            [&] { return shared->done; });
        if (!finished) {
            lock.unlock();
            worker.detach();  // abandoned; late result is discarded with `shared`
            out.status = EvalStatus::timed_out;
            out.error = "watchdog timeout after " +
                        std::to_string(policy_.retry.timeout_seconds) + " s";
            return out;
        }
        if (shared->exception) {
            out.status = EvalStatus::failed;
            out.error = shared->error;
            out.exception = shared->exception;
        }
        else {
            out.value = std::move(shared->value);
        }
        lock.unlock();
        worker.join();
        return out;
    }

    void record(std::uint64_t key, const EvalOutcome& outcome, EvalOutcome* out)
    {
        if (out != nullptr) *out = outcome;
        std::lock_guard lock{mutex_};
        outcomes_[key] = outcome;
    }

    static void bump(std::atomic<std::uint64_t>& counter, obs::Counter* metric)
    {
        counter.fetch_add(1, std::memory_order_relaxed);
        if (metric != nullptr) metric->add();
    }

    struct AtomicCounters {
        std::atomic<std::uint64_t> attempts{0};
        std::atomic<std::uint64_t> retries{0};
        std::atomic<std::uint64_t> failures{0};
        std::atomic<std::uint64_t> timeouts{0};
        std::atomic<std::uint64_t> quarantined{0};
        std::atomic<std::uint64_t> penalties{0};
    };

    Fn fn_;
    FaultPolicy policy_;
    Value penalty_;
    AtomicCounters counters_;
    mutable std::mutex mutex_;
    std::vector<std::uint64_t> quarantine_;
    std::unordered_map<std::uint64_t, EvalOutcome> outcomes_;

    obs::Instrumentation inst_;
    obs::Counter* m_attempts_ = nullptr;
    obs::Counter* m_retries_ = nullptr;
    obs::Counter* m_failures_ = nullptr;
    obs::Counter* m_timeouts_ = nullptr;
    obs::Counter* m_quarantined_ = nullptr;
    obs::Counter* m_penalties_ = nullptr;
};

}  // namespace nautilus
