#include "core/operators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nautilus {

namespace {

constexpr double k_max_gene_rate = 0.95;
constexpr double k_min_rate_factor = 0.12;  // floor on hint-suppressed gene rates

void check_context(const MutationContext& ctx)
{
    if (ctx.space == nullptr || ctx.hints == nullptr)
        throw std::invalid_argument("MutationContext: null space or hints");
    if (ctx.hints->size() != ctx.space->size())
        throw std::invalid_argument("MutationContext: hints/space size mismatch");
    if (ctx.mutation_rate < 0.0 || ctx.mutation_rate > 1.0)
        throw std::invalid_argument("MutationContext: mutation_rate out of [0, 1]");
}

// Geometric step-length weights away from `current`, with the mass of each
// side set by the bias.  `reach` controls the decay of long steps.
void add_bias_weights(std::vector<double>& w, std::vector<double>& raw, std::size_t n,
                      std::uint32_t current, double bias, double reach)
{
    const double p_up = (1.0 + bias) / 2.0;
    const double p_down = 1.0 - p_up;
    const double decay = std::clamp(1.0 - 1.0 / std::max(reach, 1.0), 0.05, 0.95);

    double up_total = 0.0;
    double down_total = 0.0;
    raw.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        if (i == current) continue;
        const double dist = std::abs(static_cast<double>(i) - static_cast<double>(current));
        const double g = std::pow(decay, dist - 1.0);
        raw[i] = g;
        if (i > current)
            up_total += g;
        else
            down_total += g;
    }
    // Normalize each side to its target mass.  If a side is empty (current at
    // a domain edge) its mass flows to the other side so the distribution
    // still sums to 1.
    double up_mass = p_up;
    double down_mass = p_down;
    if (up_total == 0.0) {
        down_mass += up_mass;
        up_mass = 0.0;
    }
    if (down_total == 0.0) {
        up_mass += down_mass;
        down_mass = 0.0;
        if (up_total == 0.0) return;  // single-value domain
    }
    for (std::size_t i = 0; i < n; ++i) {
        if (i == current || raw[i] == 0.0) continue;
        if (i > current)
            w[i] += up_mass * raw[i] / up_total;
        else
            w[i] += down_mass * raw[i] / down_total;
    }
}

// Laplace-kernel weights centered on the target index.
void add_target_weights(std::vector<double>& w, std::vector<double>& raw, std::size_t n,
                        std::uint32_t current, std::size_t target_index, double spread)
{
    double total = 0.0;
    raw.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        if (i == current) continue;
        const double dist =
            std::abs(static_cast<double>(i) - static_cast<double>(target_index));
        raw[i] = std::exp(-dist / spread);
        total += raw[i];
    }
    if (total == 0.0) return;
    for (std::size_t i = 0; i < n; ++i) w[i] += raw[i] / total;
}

}  // namespace

std::vector<double> gene_mutation_probabilities(const MutationContext& ctx)
{
    check_context(ctx);
    const std::size_t n = ctx.space->size();
    std::vector<double> probs(n, ctx.mutation_rate);
    if (n == 0) return probs;

    const double c = ctx.hints->confidence();
    if (c == 0.0) return probs;

    double total_importance = 0.0;
    std::vector<double> imp(n);
    for (std::size_t i = 0; i < n; ++i) {
        imp[i] = ctx.hints->effective_importance(i, ctx.generation);
        total_importance += imp[i];
    }
    if (total_importance <= 0.0) return probs;

    for (std::size_t i = 0; i < n; ++i) {
        // Normalized importance with mean 1 preserves the expected number of
        // mutations per genome; confidence blends toward it.  A floor keeps
        // "unimportant" genes mutating occasionally so hint errors cannot
        // freeze part of the space (paper footnote 1).
        const double skew = imp[i] * static_cast<double>(n) / total_importance;
        const double blended = std::max((1.0 - c) + c * skew, k_min_rate_factor);
        probs[i] = std::clamp(ctx.mutation_rate * blended, 0.0, k_max_gene_rate);
    }
    return probs;
}

void value_distribution_into(std::vector<double>& w, std::vector<double>& dir,
                             std::vector<double>& raw, const ParamDomain& domain,
                             const ParamHints& hints, double confidence,
                             std::uint32_t current)
{
    const std::size_t n = domain.cardinality();
    if (current >= n)
        throw std::invalid_argument("value_distribution: current index out of range");
    w.assign(n, 0.0);
    if (n <= 1) return;  // nothing to mutate to

    // Baseline: uniform over all values except the current one.
    const double uniform_mass = 1.0 / static_cast<double>(n - 1);

    const bool directed =
        confidence > 0.0 && domain.ordered() && (hints.bias || hints.target);
    if (!directed) {
        for (std::size_t i = 0; i < n; ++i)
            if (i != current) w[i] = uniform_mass;
        return;
    }

    // Directed component.
    dir.assign(n, 0.0);
    const double span = static_cast<double>(n);
    const double step_scale = hints.step_scale.value_or(0.5);
    if (hints.target) {
        const std::size_t target_index = domain.nearest_index(*hints.target);
        const double spread = std::max(1.0, span * step_scale / 3.0);
        add_target_weights(dir, raw, n, current, target_index, spread);
    }
    else {
        const double reach = std::max(1.0, span * step_scale);
        add_bias_weights(dir, raw, n, current, *hints.bias, reach);
    }

    double dir_total = 0.0;
    for (double v : dir) dir_total += v;
    if (dir_total <= 0.0) {
        for (std::size_t i = 0; i < n; ++i)
            if (i != current) w[i] = uniform_mass;
        return;
    }

    for (std::size_t i = 0; i < n; ++i) {
        if (i == current) continue;
        w[i] = (1.0 - confidence) * uniform_mass + confidence * dir[i] / dir_total;
    }
}

std::vector<double> value_distribution(const ParamDomain& domain, const ParamHints& hints,
                                       double confidence, std::uint32_t current)
{
    std::vector<double> w;
    std::vector<double> dir;
    std::vector<double> raw;
    value_distribution_into(w, dir, raw, domain, hints, confidence, current);
    return w;
}

std::size_t mutate(Genome& genome, const MutationContext& ctx, Rng& rng)
{
    check_context(ctx);
    if (!genome.compatible_with(*ctx.space))
        throw std::invalid_argument("mutate: genome incompatible with space");

    const std::vector<double> probs = gene_mutation_probabilities(ctx);
    std::size_t changed = 0;
    if (ctx.stats != nullptr) ++ctx.stats->genomes;
    for (std::size_t i = 0; i < genome.size(); ++i) {
        if (!rng.bernoulli(probs[i])) continue;
        const ParamDomain& domain = ctx.space->at(i).domain;
        if (domain.cardinality() <= 1) continue;
        const ParamHints& hints = ctx.hints->param(i);
        const std::vector<double> dist =
            value_distribution(domain, hints, ctx.hints->confidence(), genome.gene(i));
        const std::size_t pick = rng.weighted_index(dist);
        genome.set_gene(i, static_cast<std::uint32_t>(pick));
        ++changed;
        if (ctx.stats != nullptr || ctx.origins != nullptr) {
            // Mirror value_distribution's choice of distribution.
            const bool directed = ctx.hints->confidence() > 0.0 && domain.ordered() &&
                                  (hints.bias || hints.target);
            if (ctx.stats != nullptr) {
                ++ctx.stats->genes_mutated;
                if (!directed) ++ctx.stats->uniform_draws;
                else if (hints.bias) ++ctx.stats->bias_draws;
                else ++ctx.stats->target_draws;
            }
            if (ctx.origins != nullptr)
                ctx.origins[i] = !directed     ? obs::GeneOrigin::uniform
                                 : hints.bias ? obs::GeneOrigin::bias
                                              : obs::GeneOrigin::target;
        }
    }
    return changed;
}

const char* crossover_name(CrossoverKind kind)
{
    switch (kind) {
    case CrossoverKind::single_point: return "single_point";
    case CrossoverKind::two_point: return "two_point";
    case CrossoverKind::uniform: return "uniform";
    }
    return "?";
}

std::pair<Genome, Genome> crossover(const Genome& a, const Genome& b, CrossoverKind kind,
                                    Rng& rng, std::vector<std::uint8_t>* swapped)
{
    if (a.size() != b.size() || a.empty())
        throw std::invalid_argument("crossover: parents must have equal nonzero size");
    const std::size_t n = a.size();
    Genome child_a = a;
    Genome child_b = b;
    if (swapped != nullptr) swapped->assign(n, 0);

    auto swap_range = [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            const std::uint32_t tmp = child_a.gene(i);
            child_a.set_gene(i, child_b.gene(i));
            child_b.set_gene(i, tmp);
            if (swapped != nullptr) (*swapped)[i] = 1;
        }
    };

    switch (kind) {
    case CrossoverKind::single_point: {
        // Cut in [1, n-1] so both children mix genes (no-op for n == 1).
        if (n > 1) swap_range(1 + rng.index(n - 1), n);
        break;
    }
    case CrossoverKind::two_point: {
        // First cut in [1, n-1], second in [1, n]: swap_range is half-open,
        // so the second cut must reach n for the last gene to be
        // exchangeable (q = n swaps the tail [p, n) including gene n-1).
        if (n > 1) {
            std::size_t p = 1 + rng.index(n - 1);
            std::size_t q = 1 + rng.index(n);
            if (p > q) std::swap(p, q);
            swap_range(p, q);
        }
        break;
    }
    case CrossoverKind::uniform: {
        for (std::size_t i = 0; i < n; ++i)
            if (rng.bernoulli(0.5)) swap_range(i, i + 1);
        break;
    }
    }
    return {std::move(child_a), std::move(child_b)};
}

std::size_t repair(Genome& genome, const ParameterSpace& space,
                   std::vector<obs::GeneOrigin>* origins)
{
    std::size_t changed = 0;
    std::vector<std::uint32_t> genes = genome.genes();
    if (origins != nullptr && origins->size() != space.size())
        origins->resize(space.size(), obs::GeneOrigin::fresh);
    if (genes.size() != space.size()) {
        changed += genes.size() > space.size() ? genes.size() - space.size()
                                               : space.size() - genes.size();
        if (origins != nullptr)
            for (std::size_t i = genes.size(); i < space.size(); ++i)
                (*origins)[i] = obs::GeneOrigin::repair;
        genes.resize(space.size(), 0);
    }
    for (std::size_t i = 0; i < genes.size(); ++i) {
        // Compare in std::size_t: a cardinality above 2^32 must not be
        // truncated to a small (or zero) value, which used to clamp valid
        // genes to cardinality-1 underflowed to UINT32_MAX.
        const std::size_t cardinality = space[i].domain.cardinality();
        if (cardinality == 0)
            throw std::invalid_argument("repair: parameter '" + space[i].name +
                                        "' has an empty domain");
        if (genes[i] >= cardinality) {
            // genes[i] < 2^32 <= any cardinality that overflows uint32, so
            // this branch only runs when cardinality - 1 fits.
            genes[i] = static_cast<std::uint32_t>(cardinality - 1);
            ++changed;
            if (origins != nullptr) (*origins)[i] = obs::GeneOrigin::repair;
        }
    }
    if (changed > 0) genome = Genome{std::move(genes)};
    return changed;
}

}  // namespace nautilus
