#pragma once
// Run-state checkpointing for the search engines.
//
// Long queries are cluster-scale workloads (the paper's characterization runs
// took "200+ cores ... about 2 weeks"); losing 79 generations of GA state to
// a killed process is not acceptable at that scale.  A checkpoint captures
// *everything* the engine loop depends on -- generation index, population,
// RNG stream, memoization cache with its accounting counters, quarantine
// state and best-so-far bookkeeping -- so a resumed run is bit-for-bit
// identical to an uninterrupted one at any worker count.
//
// File format: versioned line-oriented text ("nautilus-checkpoint <version>
// <engine>" header, one section per state group, "end" trailer).  Doubles
// are stored as their IEEE-754 bit patterns (hex u64), never as decimal, so
// values round-trip exactly.  Files are written to "<path>.tmp" and renamed
// into place, so a crash mid-write never corrupts the previous checkpoint.
// Loaders validate the header, version and trailer and throw
// std::runtime_error on any mismatch; engines additionally compare
// `config_hash` (a fingerprint of the space shape and the
// determinism-relevant config fields) before resuming.

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/fault.hpp"
#include "core/ga.hpp"
#include "core/run_stats.hpp"
#include "obs/lineage.hpp"

namespace nautilus {

// Version 2 added the optional GA lineage section (PR 8); older files are
// rejected rather than silently resumed without their birth records.
inline constexpr std::uint32_t k_checkpoint_version = 2;

// Single-objective GA run state, captured at "about to evaluate generation
// `generation`".
struct GaCheckpoint {
    std::uint64_t config_hash = 0;
    std::uint64_t seed = 0;
    std::size_t generation = 0;  // next generation to evaluate
    std::array<std::uint64_t, 4> rng_state{};
    std::vector<Genome> population;

    // Engine bookkeeping through generation - 1.
    std::vector<GenerationStats> history;
    std::vector<CurvePoint> curve;
    bool have_best = false;
    Genome best_genome;
    Evaluation best_eval;
    double best_so_far = 0.0;
    std::size_t stall = 0;

    // Evaluator state.
    std::vector<std::pair<Genome, Evaluation>> cache;
    std::size_t distinct = 0;
    std::size_t calls = 0;
    std::vector<std::uint64_t> quarantine;
    FaultCounters fault;

    // Lineage recorder state (present only when the interrupted run was
    // recording; a resume without it falls back to op=resume roots).
    bool have_lineage = false;
    obs::LineageState lineage;
};

// NSGA-II run state, captured at the top of the generation loop.
struct Nsga2Checkpoint {
    using MultiValue = std::optional<std::vector<double>>;

    std::uint64_t config_hash = 0;
    std::uint64_t seed = 0;
    std::size_t generation = 0;
    std::size_t objectives = 0;
    std::array<std::uint64_t, 4> rng_state{};

    std::vector<Genome> population;
    std::vector<std::vector<double>> population_values;
    std::vector<Genome> archive;
    std::vector<std::vector<double>> archive_values;

    std::vector<std::pair<Genome, MultiValue>> cache;
    std::size_t distinct = 0;
    std::size_t calls = 0;
    std::vector<std::uint64_t> quarantine;
    FaultCounters fault;
};

// Atomically write `cp` to `path` (via "<path>.tmp" + rename).  Throws
// std::runtime_error when the file cannot be written.
void save_checkpoint(const std::string& path, const GaCheckpoint& cp);
void save_checkpoint(const std::string& path, const Nsga2Checkpoint& cp);

// Engine tag of a checkpoint file ("ga" or "nsga2"); validates the header.
std::string checkpoint_engine(const std::string& path);

// Parse a checkpoint.  Throws std::runtime_error on missing file, version
// mismatch, wrong engine tag or malformed content.
GaCheckpoint load_ga_checkpoint(const std::string& path);
Nsga2Checkpoint load_nsga2_checkpoint(const std::string& path);

}  // namespace nautilus
