#pragma once
// IP author hints (the paper's central contribution, section 3).
//
// A HintSet captures what an IP author knows about how one metric responds to
// the IP's parameters.  Hints are *advisory*: every hint is blended with the
// baseline uniform behavior through the `confidence` knob, so the guided GA
// remains stochastic and can always reach any point of the space (paper
// footnote 1).
//
// Hint classes:
//  * importance (1..100)       -- which genes are worth mutating
//  * importance_decay (0..1)   -- importance differences fade per generation
//  * bias (-1..1)              -- monotone correlation of parameter vs metric
//  * target (domain value)     -- good solutions cluster near this value
//  * confidence (0..1)         -- global trust in the hints
//  * auxiliary: step_scale     -- preferred mutation step size ("stepping")
//    and domain `ordered` flags (declared on ParamDomain) that give
//    categorical values a meaningful order.
//
// Bias and target are mutually exclusive per parameter and require an ordered
// domain.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/parameter.hpp"

namespace nautilus {

// Author knowledge about one parameter with respect to one metric.
struct ParamHints {
    // How strongly this parameter affects the metric (1 = negligible,
    // 100 = dominant).  Skews gene selection for mutation.
    double importance = 1.0;

    // Per-generation retention of the importance *difference* from 1.
    // 1.0 = importance never decays; 0.9 = the excess importance shrinks by
    // 10% every generation, shifting search from coarse to fine.
    double importance_decay = 1.0;

    // Correlation between the parameter value and the metric: +1 means
    // increasing the parameter increases the metric.  Mutually exclusive
    // with `target`.
    std::optional<double> bias;

    // Good solutions cluster around this value (in the domain's natural
    // units).  Mutually exclusive with `bias`.
    std::optional<double> target;

    // Auxiliary "stepping" hint: preferred mutation step as a fraction of the
    // domain span (0 = tiny local steps, 1 = jumps across the whole range).
    // Unset uses the engine default.
    std::optional<double> step_scale;

    bool has_any() const
    {
        return importance != 1.0 || importance_decay != 1.0 || bias.has_value() ||
               target.has_value() || step_scale.has_value();
    }
};

// All hints for one (metric, IP) pair plus the global confidence knob.
class HintSet {
public:
    HintSet() = default;
    HintSet(std::vector<ParamHints> params, double confidence);

    // No guidance: behaves exactly like the baseline GA.
    static HintSet none(const ParameterSpace& space);

    // Throws std::invalid_argument when any hint value is out of range, the
    // vector length mismatches the space, bias/target are both set, or a
    // bias/target hint is attached to an unordered categorical domain.
    void validate(const ParameterSpace& space) const;

    std::size_t size() const { return params_.size(); }
    const ParamHints& param(std::size_t i) const;
    ParamHints& param(std::size_t i);

    double confidence() const { return confidence_; }
    void set_confidence(double c);

    // True when no hint deviates from defaults or confidence is zero, i.e.
    // the guided GA degenerates to the baseline.
    bool is_baseline() const;

    // Copy with every bias negated; used when the query *minimizes* a metric
    // whose hints were authored as "effect on the metric".
    HintSet negated_bias() const;

    // Effective importance of parameter `i` at generation `gen`:
    //   1 + (importance - 1) * decay^gen
    double effective_importance(std::size_t i, std::size_t gen) const;

    // All parameters' effective importances at generation `gen` -- the
    // post-decay weights the mutation operator actually uses, emitted per
    // generation by the tracing layer so decay schedules are auditable.
    std::vector<double> effective_importances(std::size_t gen) const;

    const std::vector<ParamHints>& params() const { return params_; }

    // Order-sensitive 64-bit digest of the *entire* hint body: confidence
    // plus every parameter's importance, decay schedule, bias, target and
    // step_scale (optionals hashed with presence tags).  Feeds the engines'
    // config fingerprints so a checkpoint written under different hints is
    // rejected on resume -- hashing only confidence() let hint-body changes
    // slip through and silently diverge.
    std::uint64_t fingerprint() const;

private:
    std::vector<ParamHints> params_;
    double confidence_ = 0.0;
};

// One component of a composite-metric hint merge.
struct WeightedHintSet {
    const HintSet* hints = nullptr;
    // Direction fold already applied by the caller: bias here means "effect
    // on the composite objective when the parameter increases".
    double weight = 1.0;
};

// Merge hints for composite metrics (e.g. throughput-per-LUT merges the
// throughput hints with negated-LUT hints).  Importance and bias combine as
// weighted means; decay takes the minimum (fastest decay wins); a target
// survives only if no other component disagrees about that parameter;
// confidence is the weighted mean.
HintSet merge_hints(std::span<const WeightedHintSet> components);

}  // namespace nautilus
