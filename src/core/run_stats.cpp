#include "core/run_stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nautilus {

void Curve::append(double evals, double best)
{
    if (!points_.empty()) {
        if (evals < points_.back().evals)
            throw std::invalid_argument("Curve::append: evaluation count decreased");
        if (!no_worse(best, points_.back().best, dir_))
            throw std::invalid_argument("Curve::append: best-so-far regressed");
        if (evals == points_.back().evals) {
            points_.back().best = best;  // same x: keep the newer (better) value
            return;
        }
    }
    points_.push_back({evals, best});
}

double Curve::final_evals() const
{
    if (points_.empty()) throw std::logic_error("Curve::final_evals: empty curve");
    return points_.back().evals;
}

double Curve::final_best() const
{
    if (points_.empty()) throw std::logic_error("Curve::final_best: empty curve");
    return points_.back().best;
}

std::optional<double> Curve::value_at(double evals) const
{
    if (points_.empty() || evals < points_.front().evals) return std::nullopt;
    // Last point with point.evals <= evals.
    auto it = std::upper_bound(points_.begin(), points_.end(), evals,
                               [](double e, const CurvePoint& p) { return e < p.evals; });
    return std::prev(it)->best;
}

std::optional<double> Curve::evals_to_reach(double threshold) const
{
    for (const CurvePoint& p : points_)
        if (no_worse(p.best, threshold, dir_)) return p.evals;
    return std::nullopt;
}

void MultiRunCurve::add_run(Curve curve)
{
    if (curve.direction() != dir_)
        throw std::invalid_argument("MultiRunCurve::add_run: direction mismatch");
    if (curve.empty()) throw std::invalid_argument("MultiRunCurve::add_run: empty curve");
    runs_.push_back(std::move(curve));
}

const Curve& MultiRunCurve::run(std::size_t i) const
{
    if (i >= runs_.size()) throw std::out_of_range("MultiRunCurve::run: index out of range");
    return runs_[i];
}

std::vector<CurvePoint> MultiRunCurve::mean_curve(const std::vector<double>& grid) const
{
    std::vector<CurvePoint> out;
    out.reserve(grid.size());
    for (double g : grid) {
        double sum = 0.0;
        std::size_t count = 0;
        for (const Curve& run : runs_) {
            const auto v = run.value_at(g);
            if (v) {
                sum += *v;
                ++count;
            }
        }
        if (count > 0) out.push_back({g, sum / static_cast<double>(count)});
    }
    return out;
}

std::vector<double> MultiRunCurve::default_grid(std::size_t points) const
{
    if (runs_.empty() || points < 2) return {};
    double max_evals = 0.0;
    for (const Curve& run : runs_) max_evals = std::max(max_evals, run.final_evals());
    std::vector<double> grid(points);
    for (std::size_t i = 0; i < points; ++i)
        grid[i] = max_evals * static_cast<double>(i) / static_cast<double>(points - 1);
    return grid;
}

MultiRunCurve::Convergence MultiRunCurve::evals_to_reach(double threshold) const
{
    Convergence c;
    c.runs = runs_.size();
    double sum = 0.0;
    for (const Curve& run : runs_) {
        const auto e = run.evals_to_reach(threshold);
        if (e) {
            sum += *e;
            ++c.reached;
        }
    }
    c.mean_evals = c.reached > 0 ? sum / static_cast<double>(c.reached) : 0.0;
    return c;
}

std::optional<double> MultiRunCurve::mean_curve_crossing(double threshold,
                                                         std::size_t grid_points) const
{
    const std::vector<CurvePoint> mean = mean_curve(default_grid(grid_points));
    for (const CurvePoint& p : mean)
        if (no_worse(p.best, threshold, dir_)) return p.evals;
    return std::nullopt;
}

double MultiRunCurve::mean_final_best() const
{
    if (runs_.empty()) throw std::logic_error("MultiRunCurve::mean_final_best: no runs");
    double sum = 0.0;
    for (const Curve& run : runs_) sum += run.final_best();
    return sum / static_cast<double>(runs_.size());
}

double MultiRunCurve::best_final_best() const
{
    if (runs_.empty()) throw std::logic_error("MultiRunCurve::best_final_best: no runs");
    double best = worst_value(dir_);
    for (const Curve& run : runs_) best = better_of(best, run.final_best(), dir_);
    return best;
}

std::optional<double> speedup_at_threshold(const MultiRunCurve& baseline,
                                           const MultiRunCurve& guided, double threshold)
{
    const auto b = baseline.evals_to_reach(threshold);
    const auto g = guided.evals_to_reach(threshold);
    if (b.reached * 2 < b.runs || g.reached * 2 < g.runs) return std::nullopt;
    if (g.mean_evals <= 0.0) return std::nullopt;
    return b.mean_evals / g.mean_evals;
}

}  // namespace nautilus
