#pragma once
// Design-point evaluation with distinct-evaluation accounting.
//
// In the paper, the cost of a design-space query is the number of *distinct*
// design points that must be synthesized/simulated; when the GA revisits a
// previously synthesized configuration the result is free (section 4.2,
// Fig. 4 caption).  CachingEvaluator implements exactly this accounting: it
// memoizes results by genome and charges only cache misses.

#include <cstddef>
#include <functional>
#include <unordered_map>

#include "core/fitness.hpp"
#include "core/genome.hpp"

namespace nautilus {

// Raw evaluation of a design point; typically runs the virtual synthesis
// model or looks up an offline dataset.  Must be deterministic per genome.
using EvalFn = std::function<Evaluation(const Genome&)>;

class CachingEvaluator {
public:
    explicit CachingEvaluator(EvalFn fn);

    // Returns the memoized evaluation, computing (and charging) on miss.
    Evaluation evaluate(const Genome& genome);

    // Number of cache misses == synthesis jobs the paper counts.
    std::size_t distinct_evaluations() const { return distinct_; }

    // All evaluate() calls including cache hits.
    std::size_t total_calls() const { return calls_; }

    // Forget everything (fresh query on the same IP).
    void clear();

private:
    EvalFn fn_;
    std::unordered_map<Genome, Evaluation, GenomeHash> cache_;
    std::size_t distinct_ = 0;
    std::size_t calls_ = 0;
};

}  // namespace nautilus
