#pragma once
// Design-point evaluation with distinct-evaluation accounting.
//
// In the paper, the cost of a design-space query is the number of *distinct*
// design points that must be synthesized/simulated; when the GA revisits a
// previously synthesized configuration the result is free (section 4.2,
// Fig. 4 caption).  CachingEvaluator implements exactly this accounting: it
// memoizes results by genome and charges only cache misses.
//
// The evaluator is thread-safe with in-flight deduplication: concurrent
// requests for the same unevaluated genome produce exactly one call to the
// underlying evaluation function and exactly one charged distinct
// evaluation; the losers block until the winner publishes the result.  This
// is the contract the BatchEvaluator thread pool relies on to keep parallel
// runs' distinct_evaluations() identical to serial runs (DESIGN.md,
// "Evaluation pipeline").

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/fitness.hpp"
#include "core/genome.hpp"

namespace nautilus {

// Raw evaluation of a design point; typically runs the virtual synthesis
// model or looks up an offline dataset.  Must be deterministic per genome.
using EvalFn = std::function<Evaluation(const Genome&)>;

// Memoizing, thread-safe evaluator over an arbitrary result type.  The
// single-objective engines use CachingEvaluator (= Evaluation results); the
// NSGA-II engine instantiates it with optional objective vectors.
template <typename Value>
class BasicCachingEvaluator {
public:
    using Fn = std::function<Value(const Genome&)>;

    explicit BasicCachingEvaluator(Fn fn) : fn_(std::move(fn))
    {
        if (!fn_)
            throw std::invalid_argument("CachingEvaluator: null evaluation function");
    }

    BasicCachingEvaluator(const BasicCachingEvaluator&) = delete;
    BasicCachingEvaluator& operator=(const BasicCachingEvaluator&) = delete;

    // Returns the memoized evaluation, computing (and charging) on miss.
    // Safe to call from several threads; a genome in flight on another
    // thread is awaited, not recomputed.  If `charged` is non-null it
    // reports whether *this* call performed the underlying evaluation.
    Value evaluate(const Genome& genome, bool* charged = nullptr)
    {
        if (charged) *charged = false;
        std::unique_lock lock{mutex_};
        ++calls_;
        bool counted_wait = false;
        for (;;) {
            auto it = cache_.find(genome);
            if (it == cache_.end()) break;  // miss: this thread computes
            if (it->second) return *it->second;
            // In flight on another thread.  Wait; the slot is erased if that
            // thread's evaluation throws, in which case we retry the miss.
            if (!counted_wait) {
                ++inflight_waits_;
                counted_wait = true;
            }
            ready_.wait(lock);
        }
        cache_.emplace(genome, std::nullopt);
        ++distinct_;
        if (charged) *charged = true;
        lock.unlock();
        Value result;
        try {
            result = fn_(genome);
        }
        catch (...) {
            lock.lock();
            cache_.erase(genome);
            --distinct_;
            if (charged) *charged = false;
            ready_.notify_all();
            throw;
        }
        lock.lock();
        cache_[genome] = result;
        ready_.notify_all();
        return result;
    }

    // Number of cache misses == synthesis jobs the paper counts.
    std::size_t distinct_evaluations() const
    {
        std::lock_guard lock{mutex_};
        return distinct_;
    }

    // All evaluate() calls including cache hits.
    std::size_t total_calls() const
    {
        std::lock_guard lock{mutex_};
        return calls_;
    }

    // Calls that blocked on an in-flight evaluation of the same genome on
    // another thread (each call counted once, however often it re-waits).
    std::size_t inflight_waits() const
    {
        std::lock_guard lock{mutex_};
        return inflight_waits_;
    }

    // Forget everything (fresh query on the same IP).  Must not race with
    // in-flight evaluate() calls.
    void clear()
    {
        std::lock_guard lock{mutex_};
        cache_.clear();
        distinct_ = 0;
        calls_ = 0;
        inflight_waits_ = 0;
    }

    // Checkpointable view of the cache: published entries plus the
    // accounting counters.  Entries are sorted by genome key so snapshots
    // serialize identically regardless of hash-map iteration order.
    struct Snapshot {
        std::vector<std::pair<Genome, Value>> entries;
        std::size_t distinct = 0;
        std::size_t calls = 0;
    };

    // Must not race with in-flight evaluate() calls (engines snapshot
    // between evaluation waves; in-flight slots would be lost).
    Snapshot snapshot() const
    {
        std::lock_guard lock{mutex_};
        Snapshot snap;
        snap.entries.reserve(cache_.size());
        for (const auto& [genome, value] : cache_)
            if (value) snap.entries.emplace_back(genome, *value);
        std::sort(snap.entries.begin(), snap.entries.end(),
                  [](const auto& a, const auto& b) { return a.first.key() < b.first.key(); });
        snap.distinct = distinct_;
        snap.calls = calls_;
        return snap;
    }

    // Replace the cache with a checkpointed snapshot.  The restored distinct
    // and call counters make a resumed run's accounting bit-for-bit equal to
    // an uninterrupted one.  Must not race with evaluate().
    void restore(const Snapshot& snap)
    {
        std::lock_guard lock{mutex_};
        cache_.clear();
        for (const auto& [genome, value] : snap.entries) cache_[genome] = value;
        distinct_ = snap.distinct;
        calls_ = snap.calls;
        inflight_waits_ = 0;
    }

private:
    Fn fn_;
    mutable std::mutex mutex_;
    std::condition_variable ready_;
    // nullopt marks an in-flight evaluation (claimed but not yet published).
    std::unordered_map<Genome, std::optional<Value>, GenomeHash> cache_;
    std::size_t distinct_ = 0;
    std::size_t calls_ = 0;
    std::size_t inflight_waits_ = 0;
};

using CachingEvaluator = BasicCachingEvaluator<Evaluation>;

}  // namespace nautilus
