#include "core/checkpoint.hpp"

#include <bit>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/atomic_file.hpp"

namespace nautilus {

namespace {

std::uint64_t double_bits(double d)
{
    return std::bit_cast<std::uint64_t>(d);
}

double bits_double(std::uint64_t b)
{
    return std::bit_cast<double>(b);
}

void write_genome(std::ostream& out, const Genome& g)
{
    out << g.size();
    for (std::uint32_t gene : g.genes()) out << ' ' << gene;
}

void write_values(std::ostream& out, const std::vector<double>& values)
{
    out << values.size();
    for (double v : values) out << ' ' << double_bits(v);
}

void write_fault(std::ostream& out, const FaultCounters& f)
{
    out << "fault " << f.attempts << ' ' << f.retries << ' ' << f.failures << ' '
        << f.timeouts << ' ' << f.quarantined << ' ' << f.penalties << '\n';
}

void write_quarantine(std::ostream& out, const std::vector<std::uint64_t>& q)
{
    out << "quarantine " << q.size();
    for (std::uint64_t key : q) out << ' ' << key;
    out << '\n';
}

// Token-stream reader with keyword checking; throws std::runtime_error with
// the offending path and token on any mismatch.
class Reader {
public:
    Reader(std::istream& in, std::string path) : in_(in), path_(std::move(path)) {}

    void expect(const char* keyword)
    {
        std::string token;
        if (!(in_ >> token) || token != keyword)
            fail(std::string{"expected '"} + keyword + "', got '" + token + "'");
    }

    std::uint64_t u64()
    {
        std::uint64_t v = 0;
        if (!(in_ >> v)) fail("expected integer");
        return v;
    }

    std::size_t size()
    {
        return static_cast<std::size_t>(u64());
    }

    std::uint32_t u32()
    {
        return static_cast<std::uint32_t>(u64());
    }

    double dbl() { return bits_double(u64()); }

    bool boolean() { return u64() != 0; }

    Genome genome()
    {
        const std::size_t n = size();
        std::vector<std::uint32_t> genes;
        genes.reserve(n);
        for (std::size_t i = 0; i < n; ++i) genes.push_back(u32());
        return Genome{std::move(genes)};
    }

    std::vector<double> values()
    {
        const std::size_t n = size();
        std::vector<double> out;
        out.reserve(n);
        for (std::size_t i = 0; i < n; ++i) out.push_back(dbl());
        return out;
    }

    std::vector<std::uint64_t> quarantine()
    {
        expect("quarantine");
        const std::size_t n = size();
        std::vector<std::uint64_t> keys;
        keys.reserve(n);
        for (std::size_t i = 0; i < n; ++i) keys.push_back(u64());
        return keys;
    }

    std::vector<obs::GeneOrigin> origins()
    {
        std::string codes;
        if (!(in_ >> codes)) fail("expected origin codes");
        std::vector<obs::GeneOrigin> out;
        if (!obs::origins_from_codes(codes, out)) fail("bad origin codes '" + codes + "'");
        return out;
    }

    FaultCounters fault()
    {
        expect("fault");
        FaultCounters f;
        f.attempts = u64();
        f.retries = u64();
        f.failures = u64();
        f.timeouts = u64();
        f.quarantined = u64();
        f.penalties = u64();
        return f;
    }

    [[noreturn]] void fail(const std::string& what) const
    {
        throw std::runtime_error("checkpoint " + path_ + ": " + what);
    }

private:
    std::istream& in_;
    std::string path_;
};

void commit(const std::string& path, const std::string& content)
{
    // Full durability discipline (tmp + fsync + rename + directory fsync);
    // the bare rename used previously could surface a zero-length or torn
    // checkpoint after a crash because the payload was never fsync'd.
    atomic_write_file(path, content);
}

}  // namespace

void save_checkpoint(const std::string& path, const GaCheckpoint& cp)
{
    std::ostringstream out;
    out << "nautilus-checkpoint " << k_checkpoint_version << " ga\n";
    out << "config " << cp.config_hash << ' ' << cp.seed << ' ' << cp.generation << '\n';
    out << "rng " << cp.rng_state[0] << ' ' << cp.rng_state[1] << ' ' << cp.rng_state[2]
        << ' ' << cp.rng_state[3] << '\n';
    out << "best " << (cp.have_best ? 1 : 0) << ' ' << (cp.best_eval.feasible ? 1 : 0)
        << ' ' << double_bits(cp.best_eval.value) << ' ' << double_bits(cp.best_so_far)
        << ' ' << cp.stall << ' ';
    write_genome(out, cp.best_genome);
    out << '\n';
    out << "history " << cp.history.size() << '\n';
    for (const GenerationStats& s : cp.history) {
        out << s.generation << ' ' << double_bits(s.best) << ' ' << double_bits(s.mean)
            << ' ' << double_bits(s.worst) << ' ' << s.feasible << ' '
            << double_bits(s.best_so_far) << ' ' << s.distinct_evals << '\n';
    }
    out << "curve " << cp.curve.size() << '\n';
    for (const CurvePoint& p : cp.curve)
        out << double_bits(p.evals) << ' ' << double_bits(p.best) << '\n';
    out << "population " << cp.population.size() << '\n';
    for (const Genome& g : cp.population) {
        write_genome(out, g);
        out << '\n';
    }
    out << "cache " << cp.cache.size() << '\n';
    for (const auto& [genome, eval] : cp.cache) {
        write_genome(out, genome);
        out << ' ' << (eval.feasible ? 1 : 0) << ' ' << double_bits(eval.value) << '\n';
    }
    out << "counters " << cp.distinct << ' ' << cp.calls << '\n';
    write_quarantine(out, cp.quarantine);
    write_fault(out, cp.fault);
    out << "lineage " << (cp.have_lineage ? 1 : 0) << '\n';
    if (cp.have_lineage) {
        out << "slots " << cp.lineage.slot_ids.size();
        for (std::uint64_t id : cp.lineage.slot_ids) out << ' ' << id;
        out << '\n';
        out << "births " << cp.lineage.next_id << ' ' << cp.lineage.last_improved << ' '
            << cp.lineage.records.size() << '\n';
        for (const obs::BirthRecord& rec : cp.lineage.records) {
            out << rec.id << ' ' << rec.parent_a << ' ' << rec.parent_b << ' '
                << rec.generation << ' '
                << static_cast<unsigned>(static_cast<std::uint8_t>(rec.op)) << ' '
                << (rec.survived ? 1 : 0) << ' ' << (rec.improved ? 1 : 0) << ' '
                << obs::origin_codes(rec.origins) << '\n';
        }
    }
    out << "end\n";
    commit(path, out.str());
}

void save_checkpoint(const std::string& path, const Nsga2Checkpoint& cp)
{
    std::ostringstream out;
    out << "nautilus-checkpoint " << k_checkpoint_version << " nsga2\n";
    out << "config " << cp.config_hash << ' ' << cp.seed << ' ' << cp.generation << ' '
        << cp.objectives << '\n';
    out << "rng " << cp.rng_state[0] << ' ' << cp.rng_state[1] << ' ' << cp.rng_state[2]
        << ' ' << cp.rng_state[3] << '\n';
    out << "population " << cp.population.size() << '\n';
    for (std::size_t i = 0; i < cp.population.size(); ++i) {
        write_genome(out, cp.population[i]);
        out << ' ';
        write_values(out, cp.population_values[i]);
        out << '\n';
    }
    out << "archive " << cp.archive.size() << '\n';
    for (std::size_t i = 0; i < cp.archive.size(); ++i) {
        write_genome(out, cp.archive[i]);
        out << ' ';
        write_values(out, cp.archive_values[i]);
        out << '\n';
    }
    out << "cache " << cp.cache.size() << '\n';
    for (const auto& [genome, value] : cp.cache) {
        write_genome(out, genome);
        out << ' ' << (value.has_value() ? 1 : 0);
        if (value.has_value()) {
            out << ' ';
            write_values(out, *value);
        }
        out << '\n';
    }
    out << "counters " << cp.distinct << ' ' << cp.calls << '\n';
    write_quarantine(out, cp.quarantine);
    write_fault(out, cp.fault);
    out << "end\n";
    commit(path, out.str());
}

std::string checkpoint_engine(const std::string& path)
{
    std::ifstream in{path};
    if (!in) throw std::runtime_error("checkpoint " + path + ": cannot open");
    Reader r{in, path};
    r.expect("nautilus-checkpoint");
    const std::uint64_t version = r.u64();
    if (version != k_checkpoint_version)
        r.fail("unsupported version " + std::to_string(version) + " (this build reads " +
               std::to_string(k_checkpoint_version) + ")");
    std::string engine;
    if (!(in >> engine) || (engine != "ga" && engine != "nsga2"))
        r.fail("unknown engine tag '" + engine + "'");
    return engine;
}

GaCheckpoint load_ga_checkpoint(const std::string& path)
{
    std::ifstream in{path};
    if (!in) throw std::runtime_error("checkpoint " + path + ": cannot open");
    Reader r{in, path};
    r.expect("nautilus-checkpoint");
    if (const std::uint64_t version = r.u64(); version != k_checkpoint_version)
        r.fail("unsupported version " + std::to_string(version));
    r.expect("ga");

    GaCheckpoint cp;
    r.expect("config");
    cp.config_hash = r.u64();
    cp.seed = r.u64();
    cp.generation = r.size();
    r.expect("rng");
    for (auto& word : cp.rng_state) word = r.u64();
    r.expect("best");
    cp.have_best = r.boolean();
    cp.best_eval.feasible = r.boolean();
    cp.best_eval.value = r.dbl();
    cp.best_so_far = r.dbl();
    cp.stall = r.size();
    cp.best_genome = r.genome();
    r.expect("history");
    cp.history.resize(r.size());
    for (GenerationStats& s : cp.history) {
        s.generation = r.size();
        s.best = r.dbl();
        s.mean = r.dbl();
        s.worst = r.dbl();
        s.feasible = r.size();
        s.best_so_far = r.dbl();
        s.distinct_evals = r.size();
    }
    r.expect("curve");
    cp.curve.resize(r.size());
    for (CurvePoint& p : cp.curve) {
        p.evals = r.dbl();
        p.best = r.dbl();
    }
    r.expect("population");
    cp.population.resize(r.size());
    for (Genome& g : cp.population) g = r.genome();
    r.expect("cache");
    cp.cache.resize(r.size());
    for (auto& [genome, eval] : cp.cache) {
        genome = r.genome();
        eval.feasible = r.boolean();
        eval.value = r.dbl();
    }
    r.expect("counters");
    cp.distinct = r.size();
    cp.calls = r.size();
    cp.quarantine = r.quarantine();
    cp.fault = r.fault();
    r.expect("lineage");
    cp.have_lineage = r.boolean();
    if (cp.have_lineage) {
        r.expect("slots");
        cp.lineage.slot_ids.resize(r.size());
        for (std::uint64_t& id : cp.lineage.slot_ids) id = r.u64();
        r.expect("births");
        cp.lineage.next_id = r.u64();
        cp.lineage.last_improved = r.u64();
        cp.lineage.records.resize(r.size());
        for (obs::BirthRecord& rec : cp.lineage.records) {
            rec.id = r.u64();
            rec.parent_a = r.u64();
            rec.parent_b = r.u64();
            rec.generation = r.u64();
            const std::uint64_t op = r.u64();
            if (op >= obs::k_birth_op_count) r.fail("bad birth op");
            rec.op = static_cast<obs::BirthOp>(op);
            rec.survived = r.boolean();
            rec.improved = r.boolean();
            rec.origins = r.origins();
        }
    }
    r.expect("end");
    return cp;
}

Nsga2Checkpoint load_nsga2_checkpoint(const std::string& path)
{
    std::ifstream in{path};
    if (!in) throw std::runtime_error("checkpoint " + path + ": cannot open");
    Reader r{in, path};
    r.expect("nautilus-checkpoint");
    if (const std::uint64_t version = r.u64(); version != k_checkpoint_version)
        r.fail("unsupported version " + std::to_string(version));
    r.expect("nsga2");

    Nsga2Checkpoint cp;
    r.expect("config");
    cp.config_hash = r.u64();
    cp.seed = r.u64();
    cp.generation = r.size();
    cp.objectives = r.size();
    r.expect("rng");
    for (auto& word : cp.rng_state) word = r.u64();
    r.expect("population");
    const std::size_t pop = r.size();
    cp.population.resize(pop);
    cp.population_values.resize(pop);
    for (std::size_t i = 0; i < pop; ++i) {
        cp.population[i] = r.genome();
        cp.population_values[i] = r.values();
    }
    r.expect("archive");
    const std::size_t arch = r.size();
    cp.archive.resize(arch);
    cp.archive_values.resize(arch);
    for (std::size_t i = 0; i < arch; ++i) {
        cp.archive[i] = r.genome();
        cp.archive_values[i] = r.values();
    }
    r.expect("cache");
    cp.cache.resize(r.size());
    for (auto& [genome, value] : cp.cache) {
        genome = r.genome();
        if (r.boolean()) value = r.values();
        else value = std::nullopt;
    }
    r.expect("counters");
    cp.distinct = r.size();
    cp.calls = r.size();
    cp.quarantine = r.quarantine();
    cp.fault = r.fault();
    r.expect("end");
    return cp;
}

}  // namespace nautilus
