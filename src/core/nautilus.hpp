#pragma once
// NautilusEngine: author-guided GA with named guidance levels.
//
// The paper compares "weakly guided" and "strongly guided" Nautilus variants
// that differ *only* in the confidence hint (Fig. 4 footnote 2).  This header
// provides those presets and a thin wrapper that folds query direction into
// the author's metric-relative hints.

#include <cstdint>

#include "core/ga.hpp"

namespace nautilus {

enum class GuidanceLevel {
    none,    // baseline GA: hints ignored entirely
    weak,    // low confidence: gentle skew, mostly stochastic
    strong,  // high confidence: directed search, still never deterministic
    custom,  // use the HintSet's own confidence
};

const char* guidance_name(GuidanceLevel level);

// Confidence value used for a preset level (custom returns `fallback`).
double guidance_confidence(GuidanceLevel level, double fallback);

// Prepare an author HintSet for a query:
//  * bias hints are authored as "effect on the metric when the parameter
//    increases"; for a minimizing query the effective bias flips sign;
//  * the confidence is overridden by the guidance level (except custom).
HintSet apply_guidance(const HintSet& author_hints, Direction direction, GuidanceLevel level);

// Convenience constructor for a guided engine.  Equivalent to GaEngine with
// apply_guidance()-processed hints.
class NautilusEngine {
public:
    NautilusEngine(const ParameterSpace& space, GaConfig config, Direction direction,
                   EvalFn eval, const HintSet& author_hints,
                   GuidanceLevel level = GuidanceLevel::strong);

    const GaEngine& engine() const { return engine_; }
    GuidanceLevel level() const { return level_; }

    RunResult run() const { return engine_.run(); }
    RunResult run(std::uint64_t seed) const { return engine_.run(seed); }
    MultiRunCurve run_many(std::size_t count) const { return engine_.run_many(count); }

private:
    GaEngine engine_;
    GuidanceLevel level_;
};

}  // namespace nautilus
