#include "core/fitness.hpp"

namespace nautilus {

double direction_sign(Direction dir)
{
    return dir == Direction::maximize ? 1.0 : -1.0;
}

const char* direction_name(Direction dir)
{
    return dir == Direction::maximize ? "maximize" : "minimize";
}

bool no_worse(double a, double b, Direction dir)
{
    return dir == Direction::maximize ? a >= b : a <= b;
}

double better_of(double a, double b, Direction dir)
{
    return no_worse(a, b, dir) ? a : b;
}

double worst_value(Direction dir)
{
    return dir == Direction::maximize ? -std::numeric_limits<double>::infinity()
                                      : std::numeric_limits<double>::infinity();
}

}  // namespace nautilus
