#include "core/breed.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

namespace nautilus {

namespace {

// Mirrors selection.cpp's k_roulette_floor; the table must reproduce the
// per-call roulette weights bit for bit.
constexpr double k_roulette_floor = 0.45;

// Domains up to this cardinality get a per-(param, current) distribution
// memo; larger domains fall back to a reusable scratch buffer (the memo
// would cost O(cardinality^2) doubles per parameter).
constexpr std::size_t k_dist_memo_max_cardinality = 256;

}  // namespace

// --- SelectionTable --------------------------------------------------------

void SelectionTable::rebuild(std::span<const double> fitness, const SelectionConfig& config)
{
    if (fitness.empty()) throw std::invalid_argument("select_parent: empty population");
    if (config.rank_pressure < 1.0 || config.rank_pressure > 2.0)
        throw std::invalid_argument("select_parent: rank_pressure out of [1, 2]");
    config_ = config;
    n_ = fitness.size();
    uniform_fallback_ = false;

    switch (config_.kind) {
    case SelectionKind::rank: {
        if (n_ == 1) break;  // select() returns 0 without consuming RNG
        rank_order_into(order_, fitness);
        // Linear ranking: best rank r=0 gets weight `pressure`, worst gets
        // 2 - pressure, interpolating linearly (same arithmetic as
        // selection.cpp's select_rank).
        const double pressure = config_.rank_pressure;
        weights_.resize(n_);
        for (std::size_t r = 0; r < n_; ++r) {
            const double frac = static_cast<double>(r) / static_cast<double>(n_ - 1);
            weights_[r] = pressure + ((2.0 - pressure) - pressure) * frac;
        }
        break;
    }
    case SelectionKind::tournament:
        fitness_.assign(fitness.begin(), fitness.end());
        break;
    case SelectionKind::roulette: {
        double lo = std::numeric_limits<double>::infinity();
        double hi = -std::numeric_limits<double>::infinity();
        for (double f : fitness) {
            if (!std::isfinite(f)) continue;
            lo = std::min(lo, f);
            hi = std::max(hi, f);
        }
        if (!std::isfinite(lo)) {
            uniform_fallback_ = true;  // entire population infeasible
            break;
        }
        const double span = hi - lo;
        const double floor_weight = span > 0.0 ? span * k_roulette_floor : 1.0;
        weights_.assign(n_, 0.0);
        for (std::size_t i = 0; i < n_; ++i)
            if (std::isfinite(fitness[i])) weights_[i] = (fitness[i] - lo) + floor_weight;
        break;
    }
    }
}

std::size_t SelectionTable::select(Rng& rng) const
{
    if (n_ == 0) throw std::logic_error("SelectionTable::select before rebuild");
    switch (config_.kind) {
    case SelectionKind::rank: {
        if (n_ == 1) return 0;
        const std::size_t pick = rng.weighted_index(weights_);
        return order_[pick];
    }
    case SelectionKind::tournament: {
        std::size_t best = rng.index(n_);
        for (std::size_t i = 1; i < std::max<std::size_t>(config_.tournament_size, 1); ++i) {
            const std::size_t challenger = rng.index(n_);
            if (fitness_[challenger] > fitness_[best]) best = challenger;
        }
        return best;
    }
    case SelectionKind::roulette:
        if (uniform_fallback_) return rng.index(n_);
        return rng.weighted_index(weights_);
    }
    throw std::logic_error("select_parent: unknown selection kind");
}

// --- GeneMatrix ------------------------------------------------------------

void GeneMatrix::reset(std::size_t rows, std::size_t genes)
{
    genes_ = genes;
    data_.assign(rows * genes, 0);
}

void GeneMatrix::load(std::span<const Genome> population)
{
    const std::size_t genes = population.empty() ? 0 : population.front().size();
    reset(population.size(), genes);
    for (std::size_t r = 0; r < population.size(); ++r) {
        const std::vector<std::uint32_t>& src = population[r].genes();
        if (src.size() != genes)
            throw std::invalid_argument("GeneMatrix::load: ragged population");
        std::copy(src.begin(), src.end(), row(r).begin());
    }
}

// --- crossover on views ----------------------------------------------------

void crossover_views(std::span<std::uint32_t> a, std::span<std::uint32_t> b,
                     CrossoverKind kind, Rng& rng, std::vector<std::uint8_t>* swapped)
{
    if (a.size() != b.size() || a.empty())
        throw std::invalid_argument("crossover: parents must have equal nonzero size");
    const std::size_t n = a.size();
    if (swapped != nullptr) swapped->assign(n, 0);

    auto swap_range = [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            std::swap(a[i], b[i]);
            if (swapped != nullptr) (*swapped)[i] = 1;
        }
    };

    switch (kind) {
    case CrossoverKind::single_point: {
        if (n > 1) swap_range(1 + rng.index(n - 1), n);
        break;
    }
    case CrossoverKind::two_point: {
        if (n > 1) {
            std::size_t p = 1 + rng.index(n - 1);
            std::size_t q = 1 + rng.index(n);
            if (p > q) std::swap(p, q);
            swap_range(p, q);
        }
        break;
    }
    case CrossoverKind::uniform: {
        for (std::size_t i = 0; i < n; ++i)
            if (rng.bernoulli(0.5)) swap_range(i, i + 1);
        break;
    }
    }
}

// --- BreedContext ----------------------------------------------------------

BreedContext::BreedContext(const ParameterSpace& space, const HintSet& hints,
                           double mutation_rate)
    : space_(space), hints_(hints), mutation_rate_(mutation_rate)
{
    if (hints_.size() != space_.size())
        throw std::invalid_argument("MutationContext: hints/space size mismatch");
    if (mutation_rate_ < 0.0 || mutation_rate_ > 1.0)
        throw std::invalid_argument("MutationContext: mutation_rate out of [0, 1]");

    const std::size_t n = space_.size();
    card_.resize(n);
    draw_kind_.resize(n);
    memo_.resize(n);
    const double confidence = hints_.confidence();
    for (std::size_t i = 0; i < n; ++i) {
        card_[i] = space_[i].domain.cardinality();
        const ParamHints& h = hints_.param(i);
        // Mirror value_distribution's choice of distribution for the stats
        // classification (generation-independent).
        const bool directed =
            confidence > 0.0 && space_[i].domain.ordered() && (h.bias || h.target);
        draw_kind_[i] = !directed      ? DrawKind::uniform
                        : h.bias       ? DrawKind::bias
                                       : DrawKind::target;
        if (card_[i] >= 2 && card_[i] <= k_dist_memo_max_cardinality)
            memo_[i].resize(card_[i]);
    }
    begin_generation(0);
}

void BreedContext::begin_generation(std::size_t generation)
{
    if (generation_valid_ && generation == generation_) return;
    generation_ = generation;
    generation_valid_ = true;
    MutationContext ctx;
    ctx.space = &space_;
    ctx.hints = &hints_;
    ctx.mutation_rate = mutation_rate_;
    ctx.generation = generation;
    probs_ = gene_mutation_probabilities(ctx);
}

const std::vector<double>& BreedContext::distribution(std::size_t param, std::uint32_t current)
{
    if (param >= card_.size())
        throw std::out_of_range("BreedContext::distribution: parameter out of range");
    if (current >= card_[param])
        throw std::invalid_argument("value_distribution: current index out of range");
    const ParamDomain& domain = space_[param].domain;
    const ParamHints& h = hints_.param(param);
    if (!memo_[param].empty()) {
        std::vector<double>& slot = memo_[param][current];
        if (!slot.empty()) {
            ++memo_hits_;
            return slot;
        }
        ++memo_misses_;
        value_distribution_into(slot, scratch_dir_, scratch_raw_, domain, h,
                                hints_.confidence(), current);
        return slot;
    }
    ++memo_misses_;
    value_distribution_into(scratch_dist_, scratch_dir_, scratch_raw_, domain, h,
                            hints_.confidence(), current);
    return scratch_dist_;
}

std::size_t BreedContext::mutate(std::span<std::uint32_t> genes, Rng& rng,
                                 MutationStats* stats, obs::GeneOrigin* origins)
{
    if (genes.size() != space_.size())
        throw std::invalid_argument("mutate: genome incompatible with space");
    std::size_t changed = 0;
    if (stats != nullptr) ++stats->genomes;
    for (std::size_t i = 0; i < genes.size(); ++i) {
        if (!rng.bernoulli(probs_[i])) continue;
        if (card_[i] <= 1) continue;
        const std::vector<double>& dist = distribution(i, genes[i]);
        const std::size_t pick = rng.weighted_index(dist);
        genes[i] = static_cast<std::uint32_t>(pick);
        ++changed;
        if (stats != nullptr) {
            ++stats->genes_mutated;
            switch (draw_kind_[i]) {
            case DrawKind::uniform: ++stats->uniform_draws; break;
            case DrawKind::bias: ++stats->bias_draws; break;
            case DrawKind::target: ++stats->target_draws; break;
            }
        }
        if (origins != nullptr) {
            switch (draw_kind_[i]) {
            case DrawKind::uniform: origins[i] = obs::GeneOrigin::uniform; break;
            case DrawKind::bias: origins[i] = obs::GeneOrigin::bias; break;
            case DrawKind::target: origins[i] = obs::GeneOrigin::target; break;
            }
        }
    }
    return changed;
}

std::size_t BreedContext::mutate(Genome& genome, Rng& rng, MutationStats* stats,
                                 obs::GeneOrigin* origins)
{
    return mutate(genome.genes_mut(), rng, stats, origins);
}

BreedStats BreedContext::breed(std::vector<Genome>& population,
                               std::span<const double> fitness, const BreedConfig& config,
                               Rng& rng, bool with_stats, BirthLog* births)
{
    if (population.size() != config.population_size)
        throw std::invalid_argument("BreedContext::breed: population size mismatch");
    if (config.elitism >= config.population_size)
        throw std::invalid_argument("BreedContext::breed: elitism >= population_size");

    BreedStats stats;
    MutationStats* ms = with_stats ? &stats.mutation : nullptr;
    const std::size_t pop = config.population_size;
    const std::size_t genes = space_.size();
    if (births != nullptr) births->clear();

    table_.rebuild(fitness, config.selection);
    parents_.load(population);
    // One spare row past the population receives the odd-man-out second
    // child when the population fills mid-pair (the scalar path constructs
    // and discards it; the draw sequence ends before its mutation, so the
    // spare is written but never mutated or kept -- and gets no birth log
    // entry).
    children_.reset(pop + 1, genes);

    // Elitism: carry the best `elitism` members unchanged.
    rank_order_into(elite_order_, fitness);
    std::size_t filled = 0;
    for (std::size_t e = 0; e < config.elitism; ++e, ++filled) {
        const auto src = parents_.row(elite_order_[e]);
        std::copy(src.begin(), src.end(), children_.row(filled).begin());
        if (births != nullptr)
            births->elites.push_back(static_cast<std::uint32_t>(elite_order_[e]));
    }

    while (filled < pop) {
        const std::size_t pa = table_.select(rng);
        const std::size_t pb = table_.select(rng);
        const bool keep_b = filled + 1 < pop;
        const std::span<std::uint32_t> a = children_.row(filled);
        const std::span<std::uint32_t> b = children_.row(keep_b ? filled + 1 : pop);
        {
            const auto pa_row = parents_.row(pa);
            const auto pb_row = parents_.row(pb);
            std::copy(pa_row.begin(), pa_row.end(), a.begin());
            std::copy(pb_row.begin(), pb_row.end(), b.begin());
        }
        bool crossed = false;
        if (rng.bernoulli(config.crossover_rate)) {
            crossover_views(a, b, config.crossover, rng,
                            births != nullptr ? &swap_mask_ : nullptr);
            ++stats.crossovers;
            crossed = true;
        }
        else if (births != nullptr) {
            swap_mask_.assign(genes, 0);
        }
        obs::GeneOrigin* origins_a = nullptr;
        obs::GeneOrigin* origins_b = nullptr;
        if (births != nullptr) {
            // Both entries are pushed before mutation so the vector cannot
            // reallocate between taking the two origin pointers.
            ChildProvenance prov;
            prov.parent_a = static_cast<std::uint32_t>(pa);
            prov.parent_b = static_cast<std::uint32_t>(pb);
            prov.crossed = crossed;
            prov.origins.resize(genes);
            for (std::size_t i = 0; i < genes; ++i)
                prov.origins[i] = swap_mask_[i] != 0 ? obs::GeneOrigin::parent_b
                                                     : obs::GeneOrigin::parent_a;
            const std::size_t ia = births->children.size();
            births->children.push_back(prov);
            if (keep_b) {
                // Child B starts as a copy of pb; the same swapped genes came
                // from its crossover partner pa.
                std::swap(prov.parent_a, prov.parent_b);
                births->children.push_back(std::move(prov));
                origins_b = births->children.back().origins.data();
            }
            origins_a = births->children[ia].origins.data();
        }
        mutate(a, rng, ms, origins_a);
        ++filled;
        if (filled < pop) {
            mutate(b, rng, ms, origins_b);
            ++filled;
        }
    }

    for (std::size_t i = 0; i < pop; ++i) {
        const auto src = children_.row(i);
        const std::span<std::uint32_t> dst = population[i].genes_mut();
        std::copy(src.begin(), src.end(), dst.begin());
    }
    return stats;
}

// --- Scalar reference path -------------------------------------------------

BreedStats breed_population_scalar(std::vector<Genome>& population,
                                   std::span<const double> fitness,
                                   const BreedConfig& config, const ParameterSpace& space,
                                   const HintSet& hints, double mutation_rate,
                                   std::size_t generation, Rng& rng, bool with_stats,
                                   BirthLog* births)
{
    BreedStats stats;
    std::vector<Genome> next;
    next.reserve(config.population_size);
    if (births != nullptr) births->clear();

    // Elitism: carry the best `elitism` members unchanged.
    const std::vector<std::size_t> order = rank_order(fitness);
    for (std::size_t e = 0; e < config.elitism; ++e) {
        next.push_back(population[order[e]]);
        if (births != nullptr)
            births->elites.push_back(static_cast<std::uint32_t>(order[e]));
    }

    MutationContext ctx;
    ctx.space = &space;
    ctx.hints = &hints;
    ctx.mutation_rate = mutation_rate;
    ctx.generation = generation;
    if (with_stats) ctx.stats = &stats.mutation;

    std::vector<std::uint8_t> swap_mask;
    while (next.size() < config.population_size) {
        const std::size_t pa = select_parent(fitness, config.selection, rng);
        const std::size_t pb = select_parent(fitness, config.selection, rng);
        Genome child_a = population[pa];
        Genome child_b = population[pb];
        const std::size_t genes = child_a.size();
        bool crossed = false;
        if (rng.bernoulli(config.crossover_rate)) {
            auto [xa, xb] = crossover(child_a, child_b, config.crossover, rng,
                                      births != nullptr ? &swap_mask : nullptr);
            child_a = std::move(xa);
            child_b = std::move(xb);
            ++stats.crossovers;
            crossed = true;
        }
        else if (births != nullptr) {
            swap_mask.assign(genes, 0);
        }
        std::size_t ia = 0;
        const bool keep_b = next.size() + 1 < config.population_size;
        if (births != nullptr) {
            ChildProvenance prov;
            prov.parent_a = static_cast<std::uint32_t>(pa);
            prov.parent_b = static_cast<std::uint32_t>(pb);
            prov.crossed = crossed;
            prov.origins.resize(genes);
            for (std::size_t i = 0; i < genes; ++i)
                prov.origins[i] = swap_mask[i] != 0 ? obs::GeneOrigin::parent_b
                                                    : obs::GeneOrigin::parent_a;
            ia = births->children.size();
            births->children.push_back(prov);
            if (keep_b) {
                std::swap(prov.parent_a, prov.parent_b);
                births->children.push_back(std::move(prov));
            }
        }
        ctx.origins =
            births != nullptr ? births->children[ia].origins.data() : nullptr;
        mutate(child_a, ctx, rng);
        next.push_back(std::move(child_a));
        if (next.size() < config.population_size) {
            ctx.origins =
                births != nullptr ? births->children[ia + 1].origins.data() : nullptr;
            mutate(child_b, ctx, rng);
            next.push_back(std::move(child_b));
        }
    }
    ctx.origins = nullptr;
    population = std::move(next);
    return stats;
}

// --- DiversityCounter ------------------------------------------------------

void DiversityCounter::reset(std::size_t genes)
{
    genes_ = genes;
    members_ = 0;
    same_pairs_ = 0;
    if (counts_.size() < genes) counts_.resize(genes);
    for (std::size_t g = 0; g < genes; ++g)
        counts_[g].assign(counts_[g].size(), 0);
}

void DiversityCounter::add(std::span<const std::uint32_t> genes)
{
    if (genes.size() != genes_)
        throw std::invalid_argument("DiversityCounter::add: gene count mismatch");
    for (std::size_t g = 0; g < genes_; ++g) {
        const std::uint32_t v = genes[g];
        std::vector<std::uint32_t>& c = counts_[g];
        if (v >= c.size()) c.resize(static_cast<std::size_t>(v) + 1, 0);
        // Every existing member holding value v forms one newly-agreeing pair
        // with this member at gene g.
        same_pairs_ += c[v]++;
    }
    ++members_;
}

double DiversityCounter::value() const
{
    if (members_ < 2 || genes_ == 0) return 0.0;
    const std::uint64_t m = members_;
    const std::uint64_t pairs = m * (m - 1) / 2;
    const std::uint64_t differing = pairs * genes_ - same_pairs_;
    return static_cast<double>(differing) / static_cast<double>(pairs * genes_);
}

double DiversityCounter::measure(std::span<const Genome> population)
{
    if (population.empty() || population.front().empty()) return 0.0;
    reset(population.front().size());
    for (const Genome& g : population) add(g);
    return value();
}

}  // namespace nautilus
