#pragma once
// Parameter domains and parameter spaces.
//
// An IP generator exposes a set of named parameters; each parameter draws its
// value from a finite domain.  Internally every domain is addressed by a
// *value index* in [0, cardinality).  Genomes store value indices, which makes
// genetic operators uniform across domain kinds; `numeric_value()` maps an
// index back to the natural (physical) value used by hints and models.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace nautilus {

enum class DomainKind {
    integer_range,  // lo, lo+step, ..., <= hi
    pow2_range,     // 2^lo_exp ... 2^hi_exp
    categorical,    // named values; may carry an author-declared ordering
    boolean_flag,   // false, true
};

// A finite, ordered set of values a parameter can take.
class ParamDomain {
public:
    static ParamDomain int_range(std::int64_t lo, std::int64_t hi, std::int64_t step = 1);
    static ParamDomain pow2(int lo_exp, int hi_exp);
    // `ordered` declares that the listed order is meaningful with respect to
    // typical metrics (an "auxiliary" Nautilus hint, paper section 3); bias
    // and target hints are only valid on ordered domains.
    static ParamDomain categorical(std::vector<std::string> names, bool ordered = false);
    static ParamDomain boolean();

    DomainKind kind() const { return kind_; }
    std::size_t cardinality() const;
    bool ordered() const { return ordered_; }

    // Natural numeric value of index `i` (2^k for pow2, lo+i*step for ranges,
    // 0/1 for booleans, the index itself for categoricals).
    double numeric_value(std::size_t i) const;

    // Display name of value `i` ("128", "true", "matrix", ...).
    std::string value_name(std::size_t i) const;

    // Index whose numeric value is closest to `v` (used by target hints).
    std::size_t nearest_index(double v) const;

    // Index of a categorical value by name, if present.
    std::optional<std::size_t> index_of(std::string_view name) const;

    bool operator==(const ParamDomain& other) const = default;

private:
    ParamDomain() = default;

    DomainKind kind_ = DomainKind::integer_range;
    bool ordered_ = true;
    std::int64_t lo_ = 0;
    std::int64_t hi_ = 0;
    std::int64_t step_ = 1;
    std::vector<std::string> names_;  // categorical only
};

struct Parameter {
    std::string name;
    ParamDomain domain;
    std::string description;
};

// An ordered collection of parameters; defines the design space shape.
class ParameterSpace {
public:
    // Returns the index of the added parameter. Throws on duplicate names.
    std::size_t add(Parameter param);
    std::size_t add(std::string name, ParamDomain domain, std::string description = "");

    std::size_t size() const { return params_.size(); }
    bool empty() const { return params_.empty(); }

    const Parameter& at(std::size_t i) const;
    const Parameter& operator[](std::size_t i) const { return at(i); }

    std::optional<std::size_t> index_of(std::string_view name) const;

    // Number of distinct configurations (product of cardinalities), as a
    // double because real IP spaces overflow 64 bits.
    double cardinality() const;

    // Total configurations if they fit in size_t; nullopt otherwise.
    std::optional<std::size_t> exact_cardinality() const;

    auto begin() const { return params_.begin(); }
    auto end() const { return params_.end(); }

private:
    std::vector<Parameter> params_;
};

}  // namespace nautilus
