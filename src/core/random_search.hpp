#pragma once
// Random-sampling baseline.
//
// The paper's footnote 3 contrasts the GA with naive random sampling ("it
// would take on average 11,921 synthesis runs to find a design meeting this
// goal").  RandomSearch draws uniform design points without guidance and
// tracks the same best-so-far-vs-distinct-evaluations curve, so it plugs into
// the same experiment harness.

#include <cstdint>
#include <memory>

#include "core/eval_store.hpp"
#include "core/evaluator.hpp"
#include "core/fault.hpp"
#include "core/fitness.hpp"
#include "core/parameter.hpp"
#include "core/run_stats.hpp"
#include "obs/obs.hpp"

namespace nautilus {

struct RandomSearchConfig {
    std::size_t max_distinct_evals = 800;
    std::uint64_t seed = 7;
    // Threads evaluating each wave of draws concurrently (1 = serial).  The
    // draw sequence and result curve are identical for any worker count.
    std::size_t eval_workers = 1;
    // Tracing + metrics (off by default); does not affect the draw sequence.
    obs::Instrumentation obs;
    // Fault tolerance (DESIGN.md section 8); shared semantics with GaConfig.
    FaultPolicy fault;
    Evaluation fault_penalty{false, 0.0};

    // Cross-run persistent evaluation store; same placement and determinism
    // contract as GaConfig::store.
    std::shared_ptr<EvalStore> store;
    std::uint64_t store_namespace = 0;

    void validate() const;  // throws std::invalid_argument on bad settings
};

class RandomSearch {
public:
    RandomSearch(const ParameterSpace& space, RandomSearchConfig config, Direction direction,
                 EvalFn eval);

    // One run: draw uniformly until the distinct-evaluation budget is spent.
    Curve run(std::uint64_t seed) const;

    MultiRunCurve run_many(std::size_t count) const;

    // Expected number of uniform draws (with replacement) until hitting a
    // subset of probability `hit_probability`: 1/p.  Used to report the
    // analytic footnote-3 style number.
    static double expected_draws(double hit_probability);

private:
    const ParameterSpace& space_;
    RandomSearchConfig config_;
    Direction direction_;
    EvalFn eval_;
};

}  // namespace nautilus
