#pragma once
// Convergence curves and multi-run aggregation.
//
// The paper's figures plot "best solution so far" against the cumulative
// number of distinct design points evaluated, averaged over 20-40 runs.  A
// Curve is one run's step function; MultiRunCurve resamples several runs onto
// a common evaluation grid and averages them, and answers "how many
// evaluations to reach quality X" queries (the paper's convergence numbers).

#include <cstddef>
#include <optional>
#include <vector>

#include "core/fitness.hpp"

namespace nautilus {

struct CurvePoint {
    double evals = 0.0;  // cumulative distinct evaluations
    double best = 0.0;   // best query-metric value so far (natural units)
};

// One run's best-so-far trajectory; a right-continuous step function of the
// evaluation count.  Points must be appended with non-decreasing `evals` and
// direction-monotone `best`.
class Curve {
public:
    explicit Curve(Direction dir) : dir_(dir) {}

    Direction direction() const { return dir_; }

    void append(double evals, double best);

    bool empty() const { return points_.empty(); }
    std::size_t size() const { return points_.size(); }
    const std::vector<CurvePoint>& points() const { return points_; }

    double final_evals() const;
    double final_best() const;

    // Best value achieved by the time `evals` evaluations were spent
    // (step interpolation); nullopt before the first point.
    std::optional<double> value_at(double evals) const;

    // Smallest evaluation count at which the curve reaches `threshold`
    // (direction-aware); nullopt if it never does.
    std::optional<double> evals_to_reach(double threshold) const;

private:
    Direction dir_;
    std::vector<CurvePoint> points_;
};

// Aggregates equally-configured runs.
class MultiRunCurve {
public:
    explicit MultiRunCurve(Direction dir) : dir_(dir) {}

    Direction direction() const { return dir_; }

    void add_run(Curve curve);

    std::size_t runs() const { return runs_.size(); }
    const Curve& run(std::size_t i) const;

    // Mean best-so-far across runs at each grid point.  Runs that have not
    // started yet at a grid point are skipped; runs that already ended hold
    // their final value.
    std::vector<CurvePoint> mean_curve(const std::vector<double>& grid) const;

    // Evenly spaced grid covering [0, max final_evals] with `points` points.
    std::vector<double> default_grid(std::size_t points = 50) const;

    // Mean evaluations needed to reach `threshold` over the runs that do
    // reach it; `reached` reports how many did.
    struct Convergence {
        double mean_evals = 0.0;
        std::size_t reached = 0;
        std::size_t runs = 0;
    };
    Convergence evals_to_reach(double threshold) const;

    // Evaluation count at which the *mean* best-so-far curve crosses
    // `threshold` -- what the paper's figures show.  Runs that never reach
    // the threshold keep dragging the mean, so this is robust to partial
    // convergence.  nullopt if the mean curve never crosses.
    std::optional<double> mean_curve_crossing(double threshold,
                                              std::size_t grid_points = 400) const;

    // Mean of the runs' final best values.
    double mean_final_best() const;
    // Best final value across runs.
    double best_final_best() const;

private:
    Direction dir_;
    std::vector<Curve> runs_;
};

// Ratio of evaluation costs "baseline / guided" to reach `threshold`; the
// paper's headline speedup numbers.  Returns nullopt when either side never
// reaches the threshold in a majority of runs.
std::optional<double> speedup_at_threshold(const MultiRunCurve& baseline,
                                           const MultiRunCurve& guided, double threshold);

}  // namespace nautilus
