#include "core/rng.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace nautilus {

std::uint64_t splitmix64(std::uint64_t& state)
{
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t value)
{
    std::uint64_t state = value;
    return splitmix64(state);
}

std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value)
{
    return mix64(seed ^ (value + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2)));
}

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed)
{
    // Seed the full 256-bit state through splitmix64 as recommended by the
    // xoshiro authors; guards against all-zero state.
    std::uint64_t s = seed;
    for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
    // Span in unsigned arithmetic: hi - lo overflows int64 (UB) for wide
    // ranges like [-2, INT64_MAX]; the uint64 difference is well-defined and
    // identical for every range where the signed form was valid.
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = (~std::uint64_t{0}) - (~std::uint64_t{0}) % span;
    std::uint64_t draw;
    do {
        draw = next_u64();
    } while (draw >= limit);
    // Add in unsigned arithmetic too: for wide ranges the offset exceeds
    // INT64_MAX, so `lo + int64(offset)` would overflow.  The final cast is
    // modular (well-defined) and lands back inside [lo, hi].
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + draw % span);
}

std::size_t Rng::index(std::size_t n)
{
    if (n == 0) throw std::invalid_argument("Rng::index: n == 0");
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

bool Rng::bernoulli(double p)
{
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
}

double Rng::normal()
{
    // Box-Muller; discards the second variate for simplicity.
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

std::size_t Rng::weighted_index(std::span<const double> weights)
{
    double total = 0.0;
    for (double w : weights) {
        if (w < 0.0) throw std::invalid_argument("Rng::weighted_index: negative weight");
        total += w;
    }
    if (total <= 0.0) throw std::invalid_argument("Rng::weighted_index: zero total weight");
    double draw = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        draw -= weights[i];
        if (draw < 0.0) return i;
    }
    return weights.size() - 1;  // guard against accumulated rounding
}

Rng Rng::split()
{
    return Rng{next_u64()};
}

}  // namespace nautilus
