#include "core/genome.hpp"

#include <stdexcept>

namespace nautilus {

Genome::Genome(std::vector<std::uint32_t> value_indices) : genes_(std::move(value_indices)) {}

Genome Genome::zeros(const ParameterSpace& space)
{
    return Genome{std::vector<std::uint32_t>(space.size(), 0)};
}

Genome Genome::random(const ParameterSpace& space, Rng& rng)
{
    std::vector<std::uint32_t> genes(space.size());
    for (std::size_t i = 0; i < space.size(); ++i)
        genes[i] = static_cast<std::uint32_t>(rng.index(space[i].domain.cardinality()));
    return Genome{std::move(genes)};
}

Genome Genome::from_rank(const ParameterSpace& space, std::size_t rank)
{
    const auto total = space.exact_cardinality();
    if (!total) throw std::invalid_argument("Genome::from_rank: space too large to enumerate");
    if (rank >= *total) throw std::out_of_range("Genome::from_rank: rank out of range");
    std::vector<std::uint32_t> genes(space.size());
    for (std::size_t i = space.size(); i-- > 0;) {
        const std::size_t card = space[i].domain.cardinality();
        genes[i] = static_cast<std::uint32_t>(rank % card);
        rank /= card;
    }
    return Genome{std::move(genes)};
}

std::size_t Genome::to_rank(const ParameterSpace& space) const
{
    if (!compatible_with(space))
        throw std::invalid_argument("Genome::to_rank: genome incompatible with space");
    std::size_t rank = 0;
    for (std::size_t i = 0; i < space.size(); ++i) {
        rank = rank * space[i].domain.cardinality() + genes_[i];
    }
    return rank;
}

std::uint32_t Genome::gene(std::size_t i) const
{
    if (i >= genes_.size()) throw std::out_of_range("Genome::gene: index out of range");
    return genes_[i];
}

void Genome::set_gene(std::size_t i, std::uint32_t value_index)
{
    if (i >= genes_.size()) throw std::out_of_range("Genome::set_gene: index out of range");
    genes_[i] = value_index;
}

double Genome::numeric_value(const ParameterSpace& space, std::size_t i) const
{
    return space[i].domain.numeric_value(gene(i));
}

std::string Genome::value_name(const ParameterSpace& space, std::size_t i) const
{
    return space[i].domain.value_name(gene(i));
}

bool Genome::compatible_with(const ParameterSpace& space) const
{
    if (genes_.size() != space.size()) return false;
    for (std::size_t i = 0; i < genes_.size(); ++i)
        if (genes_[i] >= space[i].domain.cardinality()) return false;
    return true;
}

std::uint64_t Genome::key() const
{
    std::uint64_t h = 0x6a09e667f3bcc908ull;
    for (std::uint32_t g : genes_) h = hash_combine(h, g);
    return hash_combine(h, genes_.size());
}

std::string Genome::to_string(const ParameterSpace& space) const
{
    if (!compatible_with(space)) return "<incompatible genome>";
    std::string out;
    for (std::size_t i = 0; i < genes_.size(); ++i) {
        if (i > 0) out += ' ';
        out += space[i].name;
        out += '=';
        out += value_name(space, i);
    }
    return out;
}

}  // namespace nautilus
