// Durable file commit helpers shared by the checkpoint writer and the
// persistent evaluation store.
//
// "Atomic write" here means the full POSIX discipline, not just rename:
//
//   1. write the payload to PATH.tmp
//   2. fsync(PATH.tmp)          -- payload is on disk before it becomes visible
//   3. rename(PATH.tmp, PATH)   -- readers see the old file or the new file
//   4. fsync(parent directory)  -- the rename itself survives a crash
//
// Skipping (2) lets a crash after (3) leave a zero-length or torn file behind
// the rename; skipping (4) lets the rename vanish entirely.  Both halves are
// required for the repo's crash-safety claims (DESIGN.md §8 and §9).

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace nautilus {

// Atomically replace `path` with `content` using the tmp+fsync+rename+dirsync
// discipline above.  Throws std::runtime_error (with errno text) on any
// failure; the tmp file is unlinked on the error paths that leave one behind.
// When `sync` is false the fsync steps are skipped (benchmarks only; the
// rename is still atomic against concurrent readers, just not crash-durable).
void atomic_write_file(const std::string& path, std::string_view content,
                       bool sync = true);

// Append `content` to `path` (creating it if absent) and optionally fsync the
// file.  Used by append-only store segments: an interrupted append can only
// leave a torn *tail*, which the store's loader truncates on recovery.
// Returns the file size after the append.  Throws std::runtime_error on I/O
// failure.
std::uint64_t append_file(const std::string& path, std::string_view content,
                          bool sync = true);

// fsync the directory containing `path` so directory-level operations
// (rename, create, unlink) performed on entries of that directory are
// durable.  Throws std::runtime_error on failure.
void fsync_parent_dir(const std::string& path);

}  // namespace nautilus
