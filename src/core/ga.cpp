#include "core/ga.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <limits>
#include <span>
#include <stdexcept>

#include "core/breed.hpp"
#include "core/checkpoint.hpp"

namespace nautilus {

void GaConfig::validate() const
{
    if (population_size < 2)
        throw std::invalid_argument("GaConfig: population_size must be >= 2");
    if (generations == 0) throw std::invalid_argument("GaConfig: generations must be >= 1");
    if (mutation_rate < 0.0 || mutation_rate > 1.0)
        throw std::invalid_argument("GaConfig: mutation_rate out of [0, 1]");
    if (crossover_rate < 0.0 || crossover_rate > 1.0)
        throw std::invalid_argument("GaConfig: crossover_rate out of [0, 1]");
    if (elitism >= population_size)
        throw std::invalid_argument("GaConfig: elitism must be < population_size");
    if (selection.rank_pressure < 1.0 || selection.rank_pressure > 2.0)
        throw std::invalid_argument("GaConfig: rank_pressure out of [1, 2]");
    if (selection.tournament_size == 0)
        throw std::invalid_argument("GaConfig: tournament_size must be >= 1");
    if (eval_workers == 0)
        throw std::invalid_argument("GaConfig: eval_workers must be >= 1");
    fault.validate();
    if (checkpoint_every == 0)
        throw std::invalid_argument("GaConfig: checkpoint_every must be >= 1");
    if (halt_at_generation != 0 && checkpoint_path.empty())
        throw std::invalid_argument("GaConfig: halt_at_generation requires checkpoint_path");
}

void GaEngine::seed_population(std::vector<Genome> seeds)
{
    for (const Genome& g : seeds)
        if (!g.compatible_with(space_))
            throw std::invalid_argument(
                "GaEngine::seed_population: genome incompatible with space");
    if (seeds.size() > config_.population_size) seeds.resize(config_.population_size);
    seeds_ = std::move(seeds);
}

GaEngine::GaEngine(const ParameterSpace& space, GaConfig config, Direction direction,
                   EvalFn eval, HintSet hints)
    : space_(space),
      config_(config),
      direction_(direction),
      eval_(std::move(eval)),
      hints_(std::move(hints))
{
    if (space_.empty()) throw std::invalid_argument("GaEngine: empty parameter space");
    if (!eval_) throw std::invalid_argument("GaEngine: null evaluation function");
    config_.validate();
    hints_.validate(space_);
}

RunResult GaEngine::run() const
{
    return run(config_.seed);
}

RunResult GaEngine::run(std::uint64_t seed) const
{
    return run_impl(seed, nullptr);
}

std::uint64_t GaEngine::config_fingerprint(std::uint64_t seed) const
{
    std::uint64_t h = 0x6e6175746975ull;  // "nautiu" tag
    h = hash_combine(h, space_.size());
    for (const Parameter& p : space_) h = hash_combine(h, p.domain.cardinality());
    h = hash_combine(h, config_.population_size);
    h = hash_combine(h, config_.generations);
    h = hash_combine(h, std::bit_cast<std::uint64_t>(config_.mutation_rate));
    h = hash_combine(h, std::bit_cast<std::uint64_t>(config_.crossover_rate));
    h = hash_combine(h, static_cast<std::uint64_t>(config_.crossover));
    h = hash_combine(h, static_cast<std::uint64_t>(config_.selection.kind));
    h = hash_combine(h, std::bit_cast<std::uint64_t>(config_.selection.rank_pressure));
    h = hash_combine(h, config_.selection.tournament_size);
    h = hash_combine(h, config_.elitism);
    h = hash_combine(h, config_.target_value
                            ? std::bit_cast<std::uint64_t>(*config_.target_value)
                            : 0x7a11);
    h = hash_combine(h, config_.stall_generations);
    h = hash_combine(h, config_.fault.retry.max_attempts);
    h = hash_combine(h, config_.fault.tolerate_failures ? 1 : 0);
    h = hash_combine(h, config_.fault_penalty.feasible ? 1 : 0);
    h = hash_combine(h, std::bit_cast<std::uint64_t>(config_.fault_penalty.value));
    h = hash_combine(h, static_cast<std::uint64_t>(direction_));
    h = hash_combine(h, hints_.fingerprint());
    for (const Genome& g : seeds_) h = hash_combine(h, g.key());
    return hash_combine(h, seed);
}

RunResult GaEngine::resume(const std::string& checkpoint_path) const
{
    const GaCheckpoint cp = load_ga_checkpoint(checkpoint_path);
    if (cp.config_hash != config_fingerprint(cp.seed))
        throw std::runtime_error(
            "GaEngine::resume: checkpoint " + checkpoint_path +
            " was written with a different space/config/hints/seed");
    return run_impl(cp.seed, &cp);
}

RunResult GaEngine::run_impl(std::uint64_t seed, const GaCheckpoint* restored) const
{
    Rng rng{seed};
    // The fault guard sits *below* the memoization cache: every cache miss is
    // one guarded call, so penalties are cached like ordinary results and
    // attempts == distinct evals + retries (DESIGN.md section 8).
    FaultTolerantEvaluator<Evaluation> guard{eval_, config_.fault, config_.fault_penalty};
    guard.set_instrumentation(config_.obs);
    // The persistent store (when attached) answers memo misses before the
    // fault guard runs, so warm runs skip the evaluator but still charge a
    // distinct evaluation in the memo layer -- results and determinism-gated
    // counters are identical cold vs warm.  Penalized outcomes are per-run
    // policy and are never written back.
    EvalStore* store = config_.store.get();
    const std::uint64_t store_ns = config_.store_namespace;
    std::atomic<std::size_t> store_hits{0};
    std::atomic<std::size_t> store_misses{0};
    CachingEvaluator evaluator{[&](const Genome& g) -> Evaluation {
        if (store != nullptr) {
            if (const std::optional<StoredResult> cached = store->lookup(store_ns, g)) {
                if (const std::optional<Evaluation> e = stored_to_evaluation(*cached)) {
                    store_hits.fetch_add(1, std::memory_order_relaxed);
                    return *e;
                }
            }
        }
        EvalOutcome outcome;
        const Evaluation e = guard.evaluate(g, &outcome);
        if (store != nullptr) {
            store_misses.fetch_add(1, std::memory_order_relaxed);
            if (!outcome.penalized) store->insert(store_ns, g, stored_from_evaluation(e));
        }
        return e;
    }};
    BatchEvaluator batch_eval{config_.eval_workers};
    batch_eval.set_observer(config_.eval_observer);
    batch_eval.set_instrumentation(config_.obs);
    const obs::Tracer& tracer = config_.obs.tracer;
    obs::Counter* m_generations = nullptr;
    obs::Counter* m_checkpoints = nullptr;
    if (obs::MetricsRegistry* reg = config_.obs.registry()) {
        reg->counter("ga.runs").add();
        m_generations = &reg->counter("ga.generations");
        if (!config_.checkpoint_path.empty())
            m_checkpoints = &reg->counter("checkpoint.writes");
    }

    const FitnessMapper mapper{direction_};
    RunResult result{direction_};
    result.history.reserve(config_.generations);
    double best_so_far = worst_value(direction_);
    bool have_best = false;
    std::size_t stall = 0;
    std::size_t start_gen = 0;
    std::vector<Genome> population;
    population.reserve(config_.population_size);

    if (restored != nullptr) {
        start_gen = restored->generation;
        rng.restore(restored->rng_state);
        population = restored->population;
        result.history = restored->history;
        for (const CurvePoint& p : restored->curve) result.curve.append(p.evals, p.best);
        have_best = restored->have_best;
        result.best_genome = restored->best_genome;
        result.best_eval = restored->best_eval;
        best_so_far = restored->best_so_far;
        stall = restored->stall;
        CachingEvaluator::Snapshot snap;
        snap.entries = restored->cache;
        snap.distinct = restored->distinct;
        snap.calls = restored->calls;
        evaluator.restore(snap);
        guard.restore(restored->quarantine, restored->fault);
    }
    else {
        for (const Genome& g : seeds_) population.push_back(g);
        while (population.size() < config_.population_size)
            population.push_back(Genome::random(space_, rng));
    }
    result.start_generation = start_gen;

    obs::ProgressTracker* progress = config_.obs.progress_tracker();
    if (progress != nullptr)
        progress->on_run_start("ga", config_.generations, start_gen);

    if (tracer.enabled()) {
        obs::TraceEvent ev{"run_start"};
        ev.add("engine", "ga")
            .add("seed", std::size_t{seed})
            .add("population", config_.population_size)
            .add("generations", config_.generations)
            .add("workers", config_.eval_workers)
            .add("mutation_rate", obs::FieldValue{config_.mutation_rate})
            .add("crossover_rate", obs::FieldValue{config_.crossover_rate})
            .add("confidence", obs::FieldValue{hints_.confidence()});
        if (restored != nullptr) {
            const FaultCounters fc = guard.counters();
            ev.add("resumed", obs::FieldValue{true})
                .add("start_generation", start_gen)
                .add("distinct_at_start", evaluator.distinct_evaluations())
                .add("attempts_at_start", std::size_t{fc.attempts})
                .add("retries_at_start", std::size_t{fc.retries});
        }
        for (const auto& [key, value] : config_.obs.run_tags) ev.add(key, value);
        tracer.emit(std::move(ev));
    }
    obs::ScopedTimer run_span{tracer, "ga.run"};

    // Lineage recording (DESIGN.md section 11): active whenever tracing is on
    // or a live tracker is attached.  Recording is pure observation -- it
    // consumes zero RNG draws, so the determinism contract is unchanged.
    std::optional<obs::LineageRecorder> lineage;
    std::vector<std::uint64_t> ids;      // birth id of each population slot
    std::vector<std::uint64_t> next_ids;
    if (tracer.enabled() || config_.obs.lineage_tracker() != nullptr) {
        lineage.emplace(&tracer, config_.obs.lineage_tracker(), "ga");
        if (restored != nullptr && restored->have_lineage &&
            restored->lineage.slot_ids.size() == population.size()) {
            lineage->restore(restored->lineage);
            ids = restored->lineage.slot_ids;
        }
        else {
            const obs::BirthOp root_op =
                restored != nullptr ? obs::BirthOp::resume : obs::BirthOp::init;
            ids.reserve(population.size());
            for (std::size_t i = 0; i < population.size(); ++i)
                ids.push_back(lineage->on_root(start_gen, root_op, space_.size()));
        }
    }

    // Capture the loop state as "about to evaluate generation `gen`" and
    // write it out atomically.
    const auto write_checkpoint = [&](std::size_t gen) {
        GaCheckpoint cp;
        cp.config_hash = config_fingerprint(seed);
        cp.seed = seed;
        cp.generation = gen;
        cp.rng_state = rng.state();
        cp.population = population;
        cp.history = result.history;
        cp.curve = result.curve.points();
        cp.have_best = have_best;
        cp.best_genome = result.best_genome;
        cp.best_eval = result.best_eval;
        cp.best_so_far = best_so_far;
        cp.stall = stall;
        CachingEvaluator::Snapshot snap = evaluator.snapshot();
        cp.cache = std::move(snap.entries);
        cp.distinct = snap.distinct;
        cp.calls = snap.calls;
        cp.quarantine = guard.quarantined_keys();
        cp.fault = guard.counters();
        if (lineage.has_value()) {
            cp.have_lineage = true;
            cp.lineage = lineage->snapshot(ids);
        }
        save_checkpoint(config_.checkpoint_path, cp);
        if (m_checkpoints != nullptr) m_checkpoints->add();
        if (tracer.enabled()) {
            obs::TraceEvent ev{"checkpoint"};
            ev.add("engine", "ga")
                .add("path", config_.checkpoint_path.c_str())
                .add("generation", gen)
                .add("cache", cp.cache.size())
                .add("quarantined", cp.quarantine.size());
            tracer.emit(std::move(ev));
        }
    };

    std::vector<Evaluation> evals(config_.population_size);
    std::vector<double> fitness(config_.population_size);

    // Per-run breeding arena (DESIGN.md section 10): hoisted selection
    // tables, per-generation gene mutation probabilities and memoized value
    // distributions.  The pre-refactor per-call path stays available behind
    // config_.scalar_breed; both consume the identical RNG sequence.
    BreedConfig breed_cfg;
    breed_cfg.selection = config_.selection;
    breed_cfg.crossover = config_.crossover;
    breed_cfg.crossover_rate = config_.crossover_rate;
    breed_cfg.elitism = config_.elitism;
    breed_cfg.population_size = config_.population_size;
    BreedContext breed_ctx{space_, hints_, config_.mutation_rate};
    DiversityCounter diversity;
    BirthLog birth_log;

    for (std::size_t gen = start_gen; gen < config_.generations; ++gen) {
        // A cancel token trips the same machinery as halt_at_generation:
        // checkpoint at the boundary, result.halted = true.  Both require at
        // least one generation of progress past the resume point so a
        // cancel/resubmit cycle always advances.
        const bool halt_here =
            (config_.halt_at_generation != 0 && gen == config_.halt_at_generation &&
             gen > start_gen) ||
            (config_.cancel != nullptr &&
             config_.cancel->load(std::memory_order_acquire) && gen > start_gen);
        if (!config_.checkpoint_path.empty() && gen > start_gen &&
            (gen % config_.checkpoint_every == 0 || halt_here))
            write_checkpoint(gen);
        if (halt_here) {
            result.halted = true;
            break;
        }
        // --- Evaluate (fans out across the worker pool) -------------------
        batch_eval.evaluate(evaluator, population, std::span<Evaluation>{evals});
        for (std::size_t i = 0; i < population.size(); ++i)
            fitness[i] = mapper.fitness(evals[i]);

        // --- Record statistics ------------------------------------------
        GenerationStats stats;
        stats.generation = gen;
        stats.distinct_evals = evaluator.distinct_evaluations();
        double gen_best = worst_value(direction_);
        double gen_worst = direction_ == Direction::maximize
                               ? std::numeric_limits<double>::infinity()
                               : -std::numeric_limits<double>::infinity();
        double sum = 0.0;
        std::size_t best_index = 0;
        for (std::size_t i = 0; i < population.size(); ++i) {
            if (!evals[i].feasible) continue;
            ++stats.feasible;
            sum += evals[i].value;
            if (no_worse(evals[i].value, gen_best, direction_)) {
                gen_best = evals[i].value;
                best_index = i;
            }
            if (!no_worse(evals[i].value, gen_worst, direction_)) gen_worst = evals[i].value;
        }
        bool improved = false;
        if (stats.feasible > 0) {
            stats.best = gen_best;
            stats.worst = gen_worst;
            stats.mean = sum / static_cast<double>(stats.feasible);
            if (!have_best || no_worse(gen_best, best_so_far, direction_)) {
                if (!have_best || !no_worse(best_so_far, gen_best, direction_)) {
                    result.best_genome = population[best_index];
                    result.best_eval = evals[best_index];
                    improved = true;
                }
                best_so_far = better_of(gen_best, best_so_far, direction_);
                have_best = true;
            }
        }
        if (improved && lineage.has_value()) lineage->on_improved(ids[best_index]);
        stats.best_so_far = best_so_far;
        result.history.push_back(stats);
        if (have_best)
            result.curve.append(static_cast<double>(stats.distinct_evals), best_so_far);
        if (m_generations != nullptr) m_generations->add();
        if (progress != nullptr) {
            progress->on_units(gen + 1);
            if (have_best) progress->on_best(best_so_far);
        }
        if (tracer.enabled()) {
            obs::TraceEvent ev{"generation"};
            ev.add("gen", gen)
                .add("best", obs::FieldValue{stats.best})
                .add("mean", obs::FieldValue{stats.mean})
                .add("worst", obs::FieldValue{stats.worst})
                .add("feasible", stats.feasible)
                .add("best_so_far", obs::FieldValue{stats.best_so_far})
                .add("distinct_total", stats.distinct_evals)
                .add("diversity", obs::FieldValue{diversity.measure(population)});
            tracer.emit(std::move(ev));
        }

        // --- Early termination ---------------------------------------------
        if (config_.target_value && have_best &&
            no_worse(best_so_far, *config_.target_value, direction_)) {
            result.hit_target = true;
            break;
        }
        stall = improved ? 0 : stall + 1;
        if (config_.stall_generations > 0 && stall >= config_.stall_generations) {
            result.stalled = true;
            break;
        }

        if (gen + 1 == config_.generations) break;

        // --- Breed the next generation -----------------------------------
        BreedStats breed_stats;
        BirthLog* births = lineage.has_value() ? &birth_log : nullptr;
        {
            obs::ScopedTimer breed_span{tracer, "ga.breed"};
            if (config_.scalar_breed) {
                breed_stats = breed_population_scalar(population, fitness, breed_cfg,
                                                      space_, hints_, config_.mutation_rate,
                                                      gen, rng, tracer.enabled(), births);
            }
            else {
                breed_ctx.begin_generation(gen);
                breed_stats = breed_ctx.breed(population, fitness, breed_cfg, rng,
                                              tracer.enabled(), births);
            }
        }
        if (births != nullptr) {
            // Remap population slots to the newborn generation's birth ids.
            next_ids.clear();
            for (const std::uint32_t e : births->elites)
                next_ids.push_back(lineage->on_elite(ids[e], gen));
            for (ChildProvenance& c : births->children)
                next_ids.push_back(lineage->on_child(ids[c.parent_a], ids[c.parent_b],
                                                     c.crossed, gen,
                                                     std::move(c.origins)));
            ids.swap(next_ids);
        }
        if (tracer.enabled()) {
            const MutationStats& mut_stats = breed_stats.mutation;
            obs::TraceEvent ev{"breed"};
            ev.add("gen", gen)
                .add("children", config_.population_size - config_.elitism)
                .add("elites", config_.elitism)
                .add("crossovers", breed_stats.crossovers)
                .add("genomes_mutated", std::size_t{mut_stats.genomes})
                .add("genes_mutated", std::size_t{mut_stats.genes_mutated})
                .add("bias_draws", std::size_t{mut_stats.bias_draws})
                .add("target_draws", std::size_t{mut_stats.target_draws})
                .add("uniform_draws", std::size_t{mut_stats.uniform_draws})
                .add("importance", obs::FieldValue{hints_.effective_importances(gen)});
            tracer.emit(std::move(ev));
        }
    }

    result.distinct_evals = evaluator.distinct_evaluations();
    result.total_eval_calls = evaluator.total_calls();
    result.eval_seconds = batch_eval.eval_seconds();
    result.eval_workers = batch_eval.workers();
    result.final_population = std::move(population);
    result.final_rng_state = rng.state();
    result.fault = guard.counters();
    result.store_hits = store_hits.load(std::memory_order_relaxed);
    result.store_misses = store_misses.load(std::memory_order_relaxed);
    if (lineage.has_value()) {
        std::vector<std::uint64_t> winners;
        if (lineage->last_improved() != obs::k_no_parent)
            winners.push_back(lineage->last_improved());
        lineage->finish(winners);
    }
    if (progress != nullptr) progress->on_run_end();
    if (tracer.enabled()) {
        obs::TraceEvent ev{"run_end"};
        ev.add("engine", "ga")
            .add("distinct_evals", result.distinct_evals)
            .add("total_calls", result.total_eval_calls)
            .add("inflight_waits", evaluator.inflight_waits())
            .add("generations", result.history.size())
            .add("feasible", obs::FieldValue{have_best})
            .add("best", obs::FieldValue{have_best ? best_so_far : 0.0})
            .add("hit_target", obs::FieldValue{result.hit_target})
            .add("stalled", obs::FieldValue{result.stalled})
            .add("halted", obs::FieldValue{result.halted})
            .add("eval_seconds", obs::FieldValue{result.eval_seconds})
            .add("attempts", std::size_t{result.fault.attempts})
            .add("retries", std::size_t{result.fault.retries})
            .add("eval_failures", std::size_t{result.fault.failures})
            .add("eval_timeouts", std::size_t{result.fault.timeouts})
            .add("quarantined", std::size_t{result.fault.quarantined})
            .add("penalties", std::size_t{result.fault.penalties});
        if (store != nullptr)
            ev.add("store_hits", result.store_hits)
                .add("store_misses", result.store_misses);
        tracer.emit(std::move(ev));
    }
    return result;
}

MultiRunCurve GaEngine::run_many(std::size_t count, EvalSummary* summary) const
{
    if (count == 0) throw std::invalid_argument("GaEngine::run_many: count must be >= 1");
    MultiRunCurve multi{direction_};
    Rng seeder{config_.seed};
    for (std::size_t i = 0; i < count; ++i) {
        const RunResult r = run(seeder.next_u64());
        if (summary != nullptr) summary->absorb(r);
        if (!r.curve.empty()) multi.add_run(r.curve);
    }
    return multi;
}

}  // namespace nautilus
