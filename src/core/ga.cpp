#include "core/ga.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <stdexcept>

namespace nautilus {

void GaConfig::validate() const
{
    if (population_size < 2)
        throw std::invalid_argument("GaConfig: population_size must be >= 2");
    if (generations == 0) throw std::invalid_argument("GaConfig: generations must be >= 1");
    if (mutation_rate < 0.0 || mutation_rate > 1.0)
        throw std::invalid_argument("GaConfig: mutation_rate out of [0, 1]");
    if (crossover_rate < 0.0 || crossover_rate > 1.0)
        throw std::invalid_argument("GaConfig: crossover_rate out of [0, 1]");
    if (elitism >= population_size)
        throw std::invalid_argument("GaConfig: elitism must be < population_size");
    if (selection.rank_pressure < 1.0 || selection.rank_pressure > 2.0)
        throw std::invalid_argument("GaConfig: rank_pressure out of [1, 2]");
    if (selection.tournament_size == 0)
        throw std::invalid_argument("GaConfig: tournament_size must be >= 1");
    if (eval_workers == 0)
        throw std::invalid_argument("GaConfig: eval_workers must be >= 1");
}

void GaEngine::seed_population(std::vector<Genome> seeds)
{
    for (const Genome& g : seeds)
        if (!g.compatible_with(space_))
            throw std::invalid_argument(
                "GaEngine::seed_population: genome incompatible with space");
    if (seeds.size() > config_.population_size) seeds.resize(config_.population_size);
    seeds_ = std::move(seeds);
}

GaEngine::GaEngine(const ParameterSpace& space, GaConfig config, Direction direction,
                   EvalFn eval, HintSet hints)
    : space_(space),
      config_(config),
      direction_(direction),
      eval_(std::move(eval)),
      hints_(std::move(hints))
{
    if (space_.empty()) throw std::invalid_argument("GaEngine: empty parameter space");
    if (!eval_) throw std::invalid_argument("GaEngine: null evaluation function");
    config_.validate();
    hints_.validate(space_);
}

RunResult GaEngine::run() const
{
    return run(config_.seed);
}

RunResult GaEngine::run(std::uint64_t seed) const
{
    Rng rng{seed};
    CachingEvaluator evaluator{eval_};
    BatchEvaluator batch_eval{config_.eval_workers};
    batch_eval.set_observer(config_.eval_observer);
    const FitnessMapper mapper{direction_};

    std::vector<Genome> population;
    population.reserve(config_.population_size);
    for (const Genome& seed : seeds_) population.push_back(seed);
    while (population.size() < config_.population_size)
        population.push_back(Genome::random(space_, rng));

    RunResult result{direction_};
    result.history.reserve(config_.generations);
    double best_so_far = worst_value(direction_);
    bool have_best = false;

    std::vector<Evaluation> evals(config_.population_size);
    std::vector<double> fitness(config_.population_size);
    std::size_t stall = 0;

    for (std::size_t gen = 0; gen < config_.generations; ++gen) {
        // --- Evaluate (fans out across the worker pool) -------------------
        batch_eval.evaluate(evaluator, population, std::span<Evaluation>{evals});
        for (std::size_t i = 0; i < population.size(); ++i)
            fitness[i] = mapper.fitness(evals[i]);

        // --- Record statistics ------------------------------------------
        GenerationStats stats;
        stats.generation = gen;
        stats.distinct_evals = evaluator.distinct_evaluations();
        double gen_best = worst_value(direction_);
        double gen_worst = direction_ == Direction::maximize
                               ? std::numeric_limits<double>::infinity()
                               : -std::numeric_limits<double>::infinity();
        double sum = 0.0;
        std::size_t best_index = 0;
        for (std::size_t i = 0; i < population.size(); ++i) {
            if (!evals[i].feasible) continue;
            ++stats.feasible;
            sum += evals[i].value;
            if (no_worse(evals[i].value, gen_best, direction_)) {
                gen_best = evals[i].value;
                best_index = i;
            }
            if (!no_worse(evals[i].value, gen_worst, direction_)) gen_worst = evals[i].value;
        }
        bool improved = false;
        if (stats.feasible > 0) {
            stats.best = gen_best;
            stats.worst = gen_worst;
            stats.mean = sum / static_cast<double>(stats.feasible);
            if (!have_best || no_worse(gen_best, best_so_far, direction_)) {
                if (!have_best || !no_worse(best_so_far, gen_best, direction_)) {
                    result.best_genome = population[best_index];
                    result.best_eval = evals[best_index];
                    improved = true;
                }
                best_so_far = better_of(gen_best, best_so_far, direction_);
                have_best = true;
            }
        }
        stats.best_so_far = best_so_far;
        result.history.push_back(stats);
        if (have_best)
            result.curve.append(static_cast<double>(stats.distinct_evals), best_so_far);

        // --- Early termination ---------------------------------------------
        if (config_.target_value && have_best &&
            no_worse(best_so_far, *config_.target_value, direction_)) {
            result.hit_target = true;
            break;
        }
        stall = improved ? 0 : stall + 1;
        if (config_.stall_generations > 0 && stall >= config_.stall_generations) {
            result.stalled = true;
            break;
        }

        if (gen + 1 == config_.generations) break;

        // --- Breed the next generation -----------------------------------
        std::vector<Genome> next;
        next.reserve(config_.population_size);

        // Elitism: carry the best `elitism` members unchanged.
        const std::vector<std::size_t> order = rank_order(fitness);
        for (std::size_t e = 0; e < config_.elitism; ++e) next.push_back(population[order[e]]);

        MutationContext ctx;
        ctx.space = &space_;
        ctx.hints = &hints_;
        ctx.mutation_rate = config_.mutation_rate;
        ctx.generation = gen;

        while (next.size() < config_.population_size) {
            const std::size_t pa = select_parent(fitness, config_.selection, rng);
            const std::size_t pb = select_parent(fitness, config_.selection, rng);
            Genome child_a = population[pa];
            Genome child_b = population[pb];
            if (rng.bernoulli(config_.crossover_rate)) {
                auto [xa, xb] = crossover(child_a, child_b, config_.crossover, rng);
                child_a = std::move(xa);
                child_b = std::move(xb);
            }
            mutate(child_a, ctx, rng);
            next.push_back(std::move(child_a));
            if (next.size() < config_.population_size) {
                mutate(child_b, ctx, rng);
                next.push_back(std::move(child_b));
            }
        }
        population = std::move(next);
    }

    result.distinct_evals = evaluator.distinct_evaluations();
    result.eval_seconds = batch_eval.eval_seconds();
    result.eval_workers = batch_eval.workers();
    return result;
}

MultiRunCurve GaEngine::run_many(std::size_t count) const
{
    if (count == 0) throw std::invalid_argument("GaEngine::run_many: count must be >= 1");
    MultiRunCurve multi{direction_};
    Rng seeder{config_.seed};
    for (std::size_t i = 0; i < count; ++i) {
        const RunResult r = run(seeder.next_u64());
        if (!r.curve.empty()) multi.add_run(r.curve);
    }
    return multi;
}

}  // namespace nautilus
