#pragma once
// Multi-objective utilities: dominance, Pareto fronts, hypervolume.
//
// The paper's related-work section contrasts Nautilus with active-learning
// methods that model the *entire* Pareto-optimal set; Nautilus instead
// answers one query at a time.  These utilities bridge the two views: they
// extract true fronts from characterized datasets (ground truth for
// evaluation) and score how well a set of query-driven search results covers
// that front (the weighted-sum sweep strategy of bench_pareto_front).

#include <cstddef>
#include <span>
#include <vector>

#include "core/fitness.hpp"

namespace nautilus {

// One candidate in objective space.  `values[i]` is objective i in natural
// units; `directions[i]` (shared, external) says which way is better.
struct ObjectivePoint {
    std::size_t tag = 0;           // caller-defined identity (dataset index, ...)
    std::vector<double> values;
};

// True if `a` dominates `b`: no worse in every objective, strictly better in
// at least one.  Both must have the same arity as `directions`.
bool dominates(const ObjectivePoint& a, const ObjectivePoint& b,
               std::span<const Direction> directions);

// Indices of the non-dominated members of `points`.  O(n^2) scan with an
// early-exit fast path; fine for the tens of thousands of points the paper's
// datasets hold.
std::vector<std::size_t> pareto_front(std::span<const ObjectivePoint> points,
                                      std::span<const Direction> directions);

// 2-D hypervolume (area dominated relative to `reference`, which must be
// dominated by every point).  Objectives are internally folded so that
// larger is better.  Throws unless exactly two objectives.
double hypervolume_2d(std::span<const ObjectivePoint> front,
                      std::span<const Direction> directions,
                      const ObjectivePoint& reference);

// Coverage of an approximation set versus a reference front in [0, 1]:
// the fraction of reference points that are dominated-or-matched by some
// approximation point.
double front_coverage(std::span<const ObjectivePoint> approximation,
                      std::span<const ObjectivePoint> reference,
                      std::span<const Direction> directions);

// Scalarize objectives into a single maximized fitness with non-negative
// weights (weighted-sum method).  Values are first normalized by the given
// per-objective scales (natural-unit magnitudes, must be positive) and
// direction-folded.
double weighted_sum(const ObjectivePoint& point, std::span<const Direction> directions,
                    std::span<const double> weights, std::span<const double> scales);

}  // namespace nautilus
