#include "core/pareto.hpp"

#include <algorithm>
#include <stdexcept>

namespace nautilus {

namespace {

void check_arity(const ObjectivePoint& p, std::span<const Direction> directions,
                 const char* where)
{
    if (p.values.size() != directions.size())
        throw std::invalid_argument(std::string(where) + ": objective arity mismatch");
}

}  // namespace

bool dominates(const ObjectivePoint& a, const ObjectivePoint& b,
               std::span<const Direction> directions)
{
    check_arity(a, directions, "dominates");
    check_arity(b, directions, "dominates");
    bool strictly_better = false;
    for (std::size_t i = 0; i < directions.size(); ++i) {
        if (!no_worse(a.values[i], b.values[i], directions[i])) return false;
        if (!no_worse(b.values[i], a.values[i], directions[i])) strictly_better = true;
    }
    return strictly_better;
}

std::vector<std::size_t> pareto_front(std::span<const ObjectivePoint> points,
                                      std::span<const Direction> directions)
{
    std::vector<std::size_t> front;
    for (std::size_t i = 0; i < points.size(); ++i) {
        bool dominated = false;
        for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
            if (i == j) continue;
            if (dominates(points[j], points[i], directions)) dominated = true;
            // Duplicate points: keep only the first occurrence.
            if (!dominated && j < i && points[j].values == points[i].values)
                dominated = true;
        }
        if (!dominated) front.push_back(i);
    }
    return front;
}

double hypervolume_2d(std::span<const ObjectivePoint> front,
                      std::span<const Direction> directions,
                      const ObjectivePoint& reference)
{
    if (directions.size() != 2)
        throw std::invalid_argument("hypervolume_2d: exactly two objectives required");
    check_arity(reference, directions, "hypervolume_2d");
    if (front.empty()) return 0.0;

    // Fold both objectives into maximize orientation relative to reference.
    struct Folded {
        double x;
        double y;
    };
    std::vector<Folded> pts;
    pts.reserve(front.size());
    for (const auto& p : front) {
        check_arity(p, directions, "hypervolume_2d");
        const double x =
            direction_sign(directions[0]) * (p.values[0] - reference.values[0]);
        const double y =
            direction_sign(directions[1]) * (p.values[1] - reference.values[1]);
        if (x < 0.0 || y < 0.0)
            throw std::invalid_argument(
                "hypervolume_2d: reference must be dominated by every front point");
        pts.push_back({x, y});
    }
    // Sweep by descending x; accumulate rectangles above the best-so-far y.
    std::sort(pts.begin(), pts.end(), [](const Folded& a, const Folded& b) {
        return a.x > b.x || (a.x == b.x && a.y > b.y);
    });
    double volume = 0.0;
    double prev_x = pts.front().x;
    double best_y = 0.0;
    // First rectangle spans from the largest x to the next distinct x.
    for (const Folded& p : pts) {
        if (p.x < prev_x) {
            // close the strip [p.x, prev_x] at height best_y
            volume += (prev_x - p.x) * best_y;
            prev_x = p.x;
        }
        best_y = std::max(best_y, p.y);
    }
    volume += prev_x * best_y;  // final strip down to the reference x
    return volume;
}

double front_coverage(std::span<const ObjectivePoint> approximation,
                      std::span<const ObjectivePoint> reference,
                      std::span<const Direction> directions)
{
    if (reference.empty()) throw std::invalid_argument("front_coverage: empty reference");
    std::size_t covered = 0;
    for (const auto& ref : reference) {
        for (const auto& approx : approximation) {
            const bool matches = approx.values == ref.values;
            if (matches || dominates(approx, ref, directions)) {
                ++covered;
                break;
            }
        }
    }
    return static_cast<double>(covered) / static_cast<double>(reference.size());
}

double weighted_sum(const ObjectivePoint& point, std::span<const Direction> directions,
                    std::span<const double> weights, std::span<const double> scales)
{
    check_arity(point, directions, "weighted_sum");
    if (weights.size() != directions.size() || scales.size() != directions.size())
        throw std::invalid_argument("weighted_sum: weights/scales arity mismatch");
    double total = 0.0;
    for (std::size_t i = 0; i < directions.size(); ++i) {
        if (weights[i] < 0.0) throw std::invalid_argument("weighted_sum: negative weight");
        if (scales[i] <= 0.0)
            throw std::invalid_argument("weighted_sum: non-positive scale");
        total += weights[i] * direction_sign(directions[i]) * point.values[i] / scales[i];
    }
    return total;
}

}  // namespace nautilus
