#pragma once
// Genome: the genetic representation of one design point.
//
// A genome stores, for each parameter of a ParameterSpace, the index of the
// chosen value within that parameter's domain.  This representation keeps the
// genetic operators domain-agnostic (mutation/crossover act on indices) while
// `numeric_value` / `value_name` recover physical values.

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/parameter.hpp"
#include "core/rng.hpp"

namespace nautilus {

class Genome {
public:
    Genome() = default;
    explicit Genome(std::vector<std::uint32_t> value_indices);

    // Genome with every gene set to value index 0 (each domain's first value).
    static Genome zeros(const ParameterSpace& space);

    // Uniformly random point in the space.
    static Genome random(const ParameterSpace& space, Rng& rng);

    // Decode the flattened ordinal `rank` in [0, space cardinality) into a
    // genome (mixed-radix decomposition; parameter 0 is the slowest digit).
    static Genome from_rank(const ParameterSpace& space, std::size_t rank);

    // Inverse of from_rank.
    std::size_t to_rank(const ParameterSpace& space) const;

    std::size_t size() const { return genes_.size(); }
    bool empty() const { return genes_.empty(); }

    std::uint32_t gene(std::size_t i) const;
    void set_gene(std::size_t i, std::uint32_t value_index);

    const std::vector<std::uint32_t>& genes() const { return genes_; }

    // Mutable view of the gene array for the data-oriented breeding hot path
    // (core/breed.hpp).  Callers must keep every index within its domain's
    // cardinality.
    std::span<std::uint32_t> genes_mut() { return std::span<std::uint32_t>(genes_); }

    // Physical value of gene `i` under `space`.
    double numeric_value(const ParameterSpace& space, std::size_t i) const;
    std::string value_name(const ParameterSpace& space, std::size_t i) const;

    // True if every gene index is within its domain's cardinality.
    bool compatible_with(const ParameterSpace& space) const;

    // Stable 64-bit key for caching.
    std::uint64_t key() const;

    // "vcs=4 depth=16 width=64 ..." rendering for logs and examples.
    std::string to_string(const ParameterSpace& space) const;

    bool operator==(const Genome& other) const = default;

private:
    std::vector<std::uint32_t> genes_;
};

struct GenomeHash {
    std::size_t operator()(const Genome& g) const { return static_cast<std::size_t>(g.key()); }
};

}  // namespace nautilus
