#pragma once
// Objective direction and fitness mapping.
//
// Evaluations carry the query metric in *natural units* (MHz, LUTs, MSPS/LUT,
// ...).  The GA internally maximizes a direction-folded fitness score; this
// header defines that fold plus the handling of infeasible design points
// (sparse design spaces, paper section 3 "auxiliary settings").

#include <limits>
#include <string>

namespace nautilus {

enum class Direction { maximize, minimize };

// +1 for maximize, -1 for minimize.
double direction_sign(Direction dir);

const char* direction_name(Direction dir);

// "a is at least as good as b" in direction `dir`.
bool no_worse(double a, double b, Direction dir);

// The better of the two values in direction `dir`.
double better_of(double a, double b, Direction dir);

// Worst representable value for a direction (used to seed best-so-far).
double worst_value(Direction dir);

// Result of evaluating one design point for one query.
struct Evaluation {
    bool feasible = true;
    double value = 0.0;  // query metric in natural units; meaningless if infeasible
};

// Folds evaluations into a maximized fitness score.
class FitnessMapper {
public:
    explicit FitnessMapper(Direction dir) : dir_(dir) {}

    Direction direction() const { return dir_; }

    // Infeasible points score below every feasible point.
    double fitness(const Evaluation& eval) const
    {
        if (!eval.feasible) return -std::numeric_limits<double>::infinity();
        return direction_sign(dir_) * eval.value;
    }

private:
    Direction dir_;
};

}  // namespace nautilus
