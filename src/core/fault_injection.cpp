#include "core/fault_injection.hpp"

#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "core/rng.hpp"

namespace nautilus {

void FaultInjectionConfig::validate() const
{
    const auto check_rate = [](double r, const char* name) {
        if (r < 0.0 || r > 1.0)
            throw std::invalid_argument(std::string{"FaultInjectionConfig: "} + name +
                                        " out of [0, 1]");
    };
    check_rate(fail_rate, "fail_rate");
    check_rate(hang_rate, "hang_rate");
    check_rate(flaky_value_rate, "flaky_value_rate");
    if (fail_rate + hang_rate + flaky_value_rate > 1.0)
        throw std::invalid_argument("FaultInjectionConfig: summed rates exceed 1");
    if (hang_seconds < 0.0)
        throw std::invalid_argument("FaultInjectionConfig: hang_seconds < 0");
}

// Tracks how many times each design point has been attempted, so transient
// faults can redraw per attempt.  Keyed by genome key; mutex-protected
// (contention is negligible next to evaluation cost).
struct FaultInjectingEvaluator::AttemptMap {
    std::mutex mutex;
    std::unordered_map<std::uint64_t, std::uint64_t> counts;

    std::uint64_t next_attempt(std::uint64_t key)
    {
        std::lock_guard lock{mutex};
        return ++counts[key];
    }

    void clear()
    {
        std::lock_guard lock{mutex};
        counts.clear();
    }
};

FaultInjectingEvaluator::FaultInjectingEvaluator(EvalFn inner, FaultInjectionConfig config)
    : inner_(std::move(inner)),
      config_(config),
      attempts_(std::make_shared<AttemptMap>())
{
    if (!inner_)
        throw std::invalid_argument("FaultInjectingEvaluator: null inner function");
    config_.validate();
}

EvalFn FaultInjectingEvaluator::as_eval_fn()
{
    return [this](const Genome& g) { return evaluate(g); };
}

Evaluation FaultInjectingEvaluator::evaluate(const Genome& genome)
{
    const std::uint64_t call = calls_.fetch_add(1, std::memory_order_relaxed) + 1;
    const std::uint64_t key = genome.key();
    const std::uint64_t attempt =
        config_.permanent ? 1 : attempts_->next_attempt(key);

    if (config_.fail_on_nth_call != 0 && call == config_.fail_on_nth_call) {
        failures_.fetch_add(1, std::memory_order_relaxed);
        throw InjectedFault{"injected fault: call #" + std::to_string(call)};
    }

    // One deterministic unit draw per (seed, design point, attempt).
    const std::uint64_t h = mix64(hash_combine(hash_combine(config_.seed, key), attempt));
    const double draw = static_cast<double>(h >> 11) * 0x1.0p-53;

    if (draw < config_.hang_rate) {
        hangs_.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::duration<double>{config_.hang_seconds});
        // A stalled-but-surviving job still answers; a watchdog shorter than
        // hang_seconds turns this into a timed_out attempt instead.
        return inner_(genome);
    }
    if (draw < config_.hang_rate + config_.fail_rate) {
        failures_.fetch_add(1, std::memory_order_relaxed);
        throw InjectedFault{"injected fault: design " + std::to_string(key) + " attempt " +
                            std::to_string(attempt)};
    }
    if (draw < config_.hang_rate + config_.fail_rate + config_.flaky_value_rate) {
        flaky_.fetch_add(1, std::memory_order_relaxed);
        Evaluation eval = inner_(genome);
        // Deterministic perturbation in [0.5, 1.5)x -- a tool run that
        // "succeeded" with a wrong number.
        const double factor =
            0.5 + static_cast<double>(mix64(h) >> 11) * 0x1.0p-53;
        eval.value *= factor;
        return eval;
    }
    return inner_(genome);
}

void FaultInjectingEvaluator::reset()
{
    calls_.store(0, std::memory_order_relaxed);
    failures_.store(0, std::memory_order_relaxed);
    hangs_.store(0, std::memory_order_relaxed);
    flaky_.store(0, std::memory_order_relaxed);
    attempts_->clear();
}

}  // namespace nautilus
