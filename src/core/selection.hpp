#pragma once
// Parent selection strategies.
//
// All strategies take the population's direction-folded fitness scores
// (higher is better; -inf marks infeasible points) and return the index of a
// selected parent.  Rank selection is the engine default (robust to fitness
// scaling, matching PyEvolve's default ranking behavior).

#include <cstddef>
#include <span>

#include "core/rng.hpp"

namespace nautilus {

enum class SelectionKind { rank, tournament, roulette };

const char* selection_name(SelectionKind kind);

struct SelectionConfig {
    SelectionKind kind = SelectionKind::rank;
    // Linear-ranking pressure in [1, 2]: expected copies of the best member.
    double rank_pressure = 1.8;
    std::size_t tournament_size = 2;
};

// Select one parent index.  `fitness` must be nonempty.
std::size_t select_parent(std::span<const double> fitness, const SelectionConfig& config,
                          Rng& rng);

// Indices of `fitness` sorted best-first (ties broken by lower index).
std::vector<std::size_t> rank_order(std::span<const double> fitness);

// Buffer-reusing variant for per-generation callers (core/breed.hpp).
void rank_order_into(std::vector<std::size_t>& order, std::span<const double> fitness);

}  // namespace nautilus
