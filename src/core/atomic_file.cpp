#include "core/atomic_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace nautilus {

namespace {

[[noreturn]] void fail(const std::string& path, const char* what)
{
    throw std::runtime_error("atomic_file " + path + ": " + what + ": " +
                             std::strerror(errno));
}

// Write the whole buffer, retrying on short writes and EINTR.
void write_all(int fd, const std::string& path, std::string_view content)
{
    const char* data = content.data();
    std::size_t left = content.size();
    while (left > 0) {
        const ssize_t n = ::write(fd, data, left);
        if (n < 0) {
            if (errno == EINTR) continue;
            fail(path, "write failed");
        }
        data += n;
        left -= static_cast<std::size_t>(n);
    }
}

std::string parent_dir(const std::string& path)
{
    const std::size_t slash = path.find_last_of('/');
    if (slash == std::string::npos) return ".";
    if (slash == 0) return "/";
    return path.substr(0, slash);
}

}  // namespace

void fsync_parent_dir(const std::string& path)
{
    const std::string dir = parent_dir(path);
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) fail(dir, "cannot open directory");
    if (::fsync(fd) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        fail(dir, "directory fsync failed");
    }
    ::close(fd);
}

void atomic_write_file(const std::string& path, std::string_view content, bool sync)
{
    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) fail(tmp, "cannot create");
    try {
        write_all(fd, tmp, content);
        if (sync && ::fsync(fd) != 0) fail(tmp, "fsync failed");
    }
    catch (...) {
        ::close(fd);
        ::unlink(tmp.c_str());
        throw;
    }
    if (::close(fd) != 0) {
        ::unlink(tmp.c_str());
        fail(tmp, "close failed");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        fail(path, "rename failed");
    }
    if (sync) fsync_parent_dir(path);
}

std::uint64_t append_file(const std::string& path, std::string_view content, bool sync)
{
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0) fail(path, "cannot open for append");
    try {
        write_all(fd, path, content);
        if (sync && ::fsync(fd) != 0) fail(path, "fsync failed");
    }
    catch (...) {
        ::close(fd);
        throw;
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        fail(path, "fstat failed");
    }
    if (::close(fd) != 0) fail(path, "close failed");
    return static_cast<std::uint64_t>(st.st_size);
}

}  // namespace nautilus
