#include "core/selection.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace nautilus {

const char* selection_name(SelectionKind kind)
{
    switch (kind) {
    case SelectionKind::rank: return "rank";
    case SelectionKind::tournament: return "tournament";
    case SelectionKind::roulette: return "roulette";
    }
    return "?";
}

std::vector<std::size_t> rank_order(std::span<const double> fitness)
{
    std::vector<std::size_t> order;
    rank_order_into(order, fitness);
    return order;
}

void rank_order_into(std::vector<std::size_t>& order, std::span<const double> fitness)
{
    order.resize(fitness.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) { return fitness[a] > fitness[b]; });
}

namespace {

// Weight floor of roulette selection relative to the population fitness
// span: higher values weaken selection pressure.  0.45 calibrates the
// engine's unguided convergence to PyEvolve-era baseline behavior.
constexpr double k_roulette_floor = 0.45;

std::size_t select_rank(std::span<const double> fitness, double pressure, Rng& rng)
{
    const std::size_t n = fitness.size();
    if (n == 1) return 0;
    const std::vector<std::size_t> order = rank_order(fitness);
    // Linear ranking: best rank r=0 gets weight `pressure`, worst gets
    // 2 - pressure, interpolating linearly.
    std::vector<double> weights(n);
    for (std::size_t r = 0; r < n; ++r) {
        const double frac = static_cast<double>(r) / static_cast<double>(n - 1);
        weights[r] = pressure + ((2.0 - pressure) - pressure) * frac;
    }
    const std::size_t pick = rng.weighted_index(weights);
    return order[pick];
}

std::size_t select_tournament(std::span<const double> fitness, std::size_t k, Rng& rng)
{
    const std::size_t n = fitness.size();
    std::size_t best = rng.index(n);
    for (std::size_t i = 1; i < std::max<std::size_t>(k, 1); ++i) {
        const std::size_t challenger = rng.index(n);
        if (fitness[challenger] > fitness[best]) best = challenger;
    }
    return best;
}

std::size_t select_roulette(std::span<const double> fitness, Rng& rng)
{
    // Shift scores so the worst finite score maps to a small positive weight;
    // -inf (infeasible) maps to zero.
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (double f : fitness) {
        if (!std::isfinite(f)) continue;
        lo = std::min(lo, f);
        hi = std::max(hi, f);
    }
    if (!std::isfinite(lo)) {
        // Entire population infeasible: fall back to uniform.
        return rng.index(fitness.size());
    }
    const double span = hi - lo;
    const double floor_weight = span > 0.0 ? span * k_roulette_floor : 1.0;
    std::vector<double> weights(fitness.size(), 0.0);
    for (std::size_t i = 0; i < fitness.size(); ++i)
        if (std::isfinite(fitness[i])) weights[i] = (fitness[i] - lo) + floor_weight;
    return rng.weighted_index(weights);
}

}  // namespace

std::size_t select_parent(std::span<const double> fitness, const SelectionConfig& config,
                          Rng& rng)
{
    if (fitness.empty()) throw std::invalid_argument("select_parent: empty population");
    if (config.rank_pressure < 1.0 || config.rank_pressure > 2.0)
        throw std::invalid_argument("select_parent: rank_pressure out of [1, 2]");
    switch (config.kind) {
    case SelectionKind::rank: return select_rank(fitness, config.rank_pressure, rng);
    case SelectionKind::tournament:
        return select_tournament(fitness, config.tournament_size, rng);
    case SelectionKind::roulette: return select_roulette(fitness, rng);
    }
    throw std::logic_error("select_parent: unknown selection kind");
}

}  // namespace nautilus
