#pragma once
// NSGA-II style multi-objective guided GA.
//
// The paper's related work contrasts Nautilus's query-at-a-time model with
// active-learning methods that map the whole Pareto-optimal set.  This
// engine covers the middle ground natively: a non-dominated-sorting GA
// (fast non-dominated sort + crowding distance, Deb et al. 2002) that
// shares Nautilus's genome representation, hint-aware mutation and
// distinct-evaluation cost accounting, so an IP author's hints accelerate
// frontier mapping the same way they accelerate single-metric queries.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/eval_store.hpp"
#include "core/fault.hpp"
#include "core/genome.hpp"
#include "core/hints.hpp"
#include "core/operators.hpp"
#include "core/pareto.hpp"
#include "obs/obs.hpp"

namespace nautilus {

struct Nsga2Checkpoint;  // core/checkpoint.hpp

// Multi-objective evaluation: objective values in natural units, or nullopt
// for infeasible configurations.  Must be deterministic per genome.
using MultiEvalFn = std::function<std::optional<std::vector<double>>(const Genome&)>;

struct MultiObjectiveConfig {
    std::size_t population_size = 24;
    std::size_t generations = 40;
    double mutation_rate = 0.1;
    double crossover_rate = 0.9;
    CrossoverKind crossover = CrossoverKind::single_point;
    std::uint64_t seed = 1;
    // Threads evaluating each brood/initialization wave concurrently
    // (1 = serial); results are identical for any worker count.
    std::size_t eval_workers = 1;
    // Tracing + metrics (off by default); does not affect search results.
    obs::Instrumentation obs;

    // Fault tolerance (DESIGN.md section 8).  The multi-objective penalty is
    // always "infeasible" (nullopt): a quarantined design simply never joins
    // the pool or the archive.
    FaultPolicy fault;

    // Cross-run persistent evaluation store (core/eval_store.hpp): consulted
    // below the memo cache, above the fault guard; same determinism contract
    // as GaConfig::store.  Records hold one value per objective (or
    // feasible=false for infeasible points).
    std::shared_ptr<EvalStore> store;
    std::uint64_t store_namespace = 0;

    // Cooperative cancellation; same semantics as GaConfig::cancel (halt at
    // a generation boundary with a checkpoint, excluded from the config
    // fingerprint).
    std::shared_ptr<const std::atomic<bool>> cancel;

    // Checkpoint/resume; same semantics as GaConfig (DESIGN.md section 8).
    std::string checkpoint_path;
    std::size_t checkpoint_every = 1;
    std::size_t halt_at_generation = 0;  // 0 = never halt

    void validate() const;
};

struct FrontPoint {
    Genome genome;
    std::vector<double> values;
};

struct MultiObjectiveResult {
    // Non-dominated set over everything evaluated during the run.
    std::vector<FrontPoint> front;
    std::size_t distinct_evals = 0;
    std::size_t total_eval_calls = 0;  // including cache hits
    double eval_seconds = 0.0;         // measured wall-clock spent evaluating
    std::size_t eval_workers = 1;
    bool halted = false;               // stopped by halt_at_generation
    std::size_t start_generation = 0;  // nonzero when resumed from a checkpoint
    FaultCounters fault;               // attempts == distinct evals + retries
    std::size_t store_hits = 0;        // memo misses answered by the store
    std::size_t store_misses = 0;      // memo misses paid fresh
};

class Nsga2Engine {
public:
    // `directions` gives the optimization sense per objective; `hints` uses
    // the usual conventions (bias > 0 favors upward moves) -- pass
    // HintSet::none for the unguided variant.
    Nsga2Engine(const ParameterSpace& space, MultiObjectiveConfig config,
                std::vector<Direction> directions, MultiEvalFn eval, HintSet hints);

    const MultiObjectiveConfig& config() const { return config_; }
    std::span<const Direction> directions() const { return directions_; }

    MultiObjectiveResult run(std::uint64_t seed) const;
    MultiObjectiveResult run() const { return run(config_.seed); }

    // Resume a checkpointed run; same contract as GaEngine::resume (config
    // fingerprint validated, result bit-for-bit equal to an uninterrupted
    // run at any eval_workers count).
    MultiObjectiveResult resume(const std::string& checkpoint_path) const;

    // Fingerprint of everything resume-determinism depends on.
    std::uint64_t config_fingerprint(std::uint64_t seed) const;

private:
    MultiObjectiveResult run_impl(std::uint64_t seed, const Nsga2Checkpoint* restored) const;

    const ParameterSpace& space_;
    MultiObjectiveConfig config_;
    std::vector<Direction> directions_;
    MultiEvalFn eval_;
    HintSet hints_;
};

// Fast non-dominated sort: partitions `points` into fronts (rank 0 = the
// Pareto front).  Exposed for testing.
std::vector<std::vector<std::size_t>> non_dominated_sort(
    std::span<const ObjectivePoint> points, std::span<const Direction> directions);

// Crowding distance of each member within one front (same index order as
// `front_indices`).  Boundary points get +infinity.  Exposed for testing.
std::vector<double> crowding_distance(std::span<const ObjectivePoint> points,
                                      std::span<const std::size_t> front_indices,
                                      std::span<const Direction> directions);

}  // namespace nautilus
