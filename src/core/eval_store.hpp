// Cross-run persistent evaluation store.
//
// Nautilus's cost model is *distinct evaluations*: a synthesis result, once
// computed, should never be paid for again — not by this run, not by the next
// one (paper §3, ROADMAP "Cross-run persistent evaluation store").  The store
// is a content-addressed map from (namespace, genome) to objective values,
// persisted on disk so warm runs answer repeat queries without touching the
// evaluator.
//
// Placement: the store sits *below* each engine's per-run memoization cache
// (`BasicCachingEvaluator`) and *above* the fault guard.  A store hit still
// charges one distinct evaluation in the memo layer, so every per-run counter
// the determinism contract gates on (distinct evals, total calls, cache hits,
// best) is bit-for-bit identical between cold and warm runs; only `attempts`
// (work actually sent to the evaluator) shrinks.  Penalized outcomes from the
// fault guard are never inserted — quarantine penalties are per-run policy,
// not ground truth, and must not poison a shared store.
//
// On-disk layout (directory):
//
//   MANIFEST            nautilus-eval-store 1 / ordered segment list
//   seg-000001.log      append-only records, one per line:
//                         rec <ns> <nGenes> <g...> <feasible> <nVals> <bits...> <crc>
//
// Doubles use the checkpoint code's IEEE-754 bit-exact encoding (u64 of
// std::bit_cast).  <crc> is FNV-1a 64 over the line text before it.  The
// MANIFEST is committed with the tmp+fsync+rename discipline
// (core/atomic_file.hpp); segment appends are fsync'd.  An interrupted append
// can only tear the *tail* record of the last segment; open() truncates that
// tail and carries on.  A corrupt record anywhere else is a hard error.
//
// Compaction rewrites live records into a fresh segment (dropping superseded
// duplicates), and the size budget (`max_bytes`) evicts oldest-inserted
// records first during compaction.
//
// Concurrency: single writer, concurrent readers.  lookup() takes a shared
// lock on the in-memory index only (no I/O), so BatchEvaluator workers read
// in parallel; insert()/flush()/compact() serialize on the writer side.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/fitness.hpp"
#include "core/genome.hpp"
#include "obs/metrics.hpp"

namespace nautilus {

// One persisted result.  `values` is the objective vector: one entry for
// single-objective engines, one per objective for NSGA-II.  An infeasible
// design point stores feasible=false (values preserved verbatim so the
// round-trip is bit-exact).
struct StoredResult {
    bool feasible = true;
    std::vector<double> values;

    bool operator==(const StoredResult&) const = default;
};

struct EvalStoreConfig {
    std::string path;                // store directory; created if absent
    std::uint64_t max_bytes = 0;     // live-record budget; 0 = unlimited
    std::size_t flush_every = 64;    // write-behind: pending inserts per flush
    std::uint64_t segment_bytes = 4ull << 20;  // roll segments past this size
    double compact_dead_ratio = 0.5;  // auto-compact when dead/disk exceeds
    bool sync = true;                 // fsync appends + commits (off = bench only)

    void validate() const;  // throws std::invalid_argument on nonsense
};

struct EvalStoreCounters {
    std::uint64_t hits = 0;         // lookups answered from the store
    std::uint64_t misses = 0;       // lookups that found nothing
    std::uint64_t writes = 0;       // records accepted by insert()
    std::uint64_t flushes = 0;      // write-behind batches appended to disk
    std::uint64_t compactions = 0;  // segment rewrites
    std::uint64_t evictions = 0;    // live records dropped by the size budget
    std::uint64_t torn_dropped = 0; // torn tail records truncated at open()
};

class EvalStore {
public:
    // Opens (creating if needed) the store directory and loads the index.
    // Throws std::runtime_error on I/O failure or mid-file corruption; a torn
    // tail record in the last segment is truncated, not an error.
    explicit EvalStore(EvalStoreConfig config);
    ~EvalStore();  // flushes pending writes (errors swallowed)

    EvalStore(const EvalStore&) = delete;
    EvalStore& operator=(const EvalStore&) = delete;

    // Stable 64-bit namespace key for a context string such as
    // "router/freq_mhz".  Results for different IPs/metrics live in different
    // namespaces of the same store directory.
    static std::uint64_t namespace_key(std::string_view context);

    // Read path: shared-lock index probe, no I/O.  Verifies the stored genome
    // gene-for-gene (64-bit keys can collide); a mismatch is a miss.
    std::optional<StoredResult> lookup(std::uint64_t ns, const Genome& genome) const;

    // Write path: updates the index immediately (visible to readers) and
    // queues the record for the next append batch.  Re-inserting an identical
    // record is a no-op; a different result for the same key supersedes.
    void insert(std::uint64_t ns, const Genome& genome, StoredResult result);

    // Append queued records to the active segment (fsync'd when configured).
    void flush();

    // Rewrite live records into a single fresh segment, dropping superseded
    // duplicates and evicting oldest-first past `max_bytes`.
    void compact();

    std::size_t records() const;     // live records in the index
    std::uint64_t live_bytes() const;  // encoded size of live records
    EvalStoreCounters counters() const;
    const std::string& path() const { return config_.path; }

    // Mirror hit/miss/write/compaction counters and record/byte gauges into a
    // MetricsRegistry (names under "store.") for /metrics and /status.
    void attach_metrics(const std::shared_ptr<obs::MetricsRegistry>& metrics);

private:
    struct Record {
        std::uint64_t ns = 0;
        std::vector<std::uint32_t> genes;
        StoredResult result;
        std::uint64_t seq = 0;    // insertion order; eviction drops lowest
        std::uint64_t bytes = 0;  // encoded line size including newline
    };

    std::string segment_path(const std::string& name) const;
    std::string manifest_path() const;
    void write_manifest_locked();
    void load_segment(const std::string& name, bool last);
    void apply_record(std::uint64_t key, Record record);
    void roll_segment_locked();
    void compact_locked();
    void maybe_compact_locked();
    void update_gauges();

    EvalStoreConfig config_;

    // Index state: shared lock for lookup, unique lock for mutation.
    mutable std::shared_mutex mutex_;
    std::unordered_map<std::uint64_t, Record> index_;
    std::vector<std::string> pending_;  // encoded lines not yet on disk
    std::uint64_t seq_ = 0;
    std::uint64_t live_bytes_ = 0;

    // Disk state: guarded by io_mutex_ (taken before mutex_ when both).
    std::mutex io_mutex_;
    std::vector<std::string> segments_;
    std::uint64_t segment_counter_ = 0;   // highest segment number in use
    std::uint64_t active_bytes_ = 0;      // size of the active (last) segment
    std::uint64_t disk_records_ = 0;      // records across all segments
    std::uint64_t disk_bytes_ = 0;        // bytes across all segments

    // Counters are atomics so the shared-lock read path can bump hits/misses.
    mutable std::atomic<std::uint64_t> hits_{0};
    mutable std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> writes_{0};
    std::atomic<std::uint64_t> flushes_{0};
    std::atomic<std::uint64_t> compactions_{0};
    std::atomic<std::uint64_t> evictions_{0};
    std::atomic<std::uint64_t> torn_dropped_{0};

    // Optional metrics mirror (registry kept alive by the shared_ptr).
    std::shared_ptr<obs::MetricsRegistry> metrics_;
    obs::Counter* m_hits_ = nullptr;
    obs::Counter* m_misses_ = nullptr;
    obs::Counter* m_writes_ = nullptr;
    obs::Counter* m_compactions_ = nullptr;
    obs::Counter* m_evictions_ = nullptr;
    obs::Gauge* m_records_ = nullptr;
    obs::Gauge* m_bytes_ = nullptr;
};

// Conversions between engine value types and StoredResult.
inline StoredResult stored_from_evaluation(const Evaluation& e)
{
    return StoredResult{e.feasible, {e.value}};
}

// nullopt on arity mismatch (wrong record shape for this engine): the caller
// treats that as a store miss and recomputes.
inline std::optional<Evaluation> stored_to_evaluation(const StoredResult& r)
{
    if (r.values.size() != 1) return std::nullopt;
    return Evaluation{r.feasible, r.values.front()};
}

}  // namespace nautilus
