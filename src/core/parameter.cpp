#include "core/parameter.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace nautilus {

ParamDomain ParamDomain::int_range(std::int64_t lo, std::int64_t hi, std::int64_t step)
{
    if (step <= 0) throw std::invalid_argument("ParamDomain::int_range: step must be positive");
    if (lo > hi) throw std::invalid_argument("ParamDomain::int_range: lo > hi");
    ParamDomain d;
    d.kind_ = DomainKind::integer_range;
    d.ordered_ = true;
    d.lo_ = lo;
    d.hi_ = hi;
    d.step_ = step;
    return d;
}

ParamDomain ParamDomain::pow2(int lo_exp, int hi_exp)
{
    if (lo_exp > hi_exp) throw std::invalid_argument("ParamDomain::pow2: lo_exp > hi_exp");
    if (lo_exp < 0 || hi_exp > 62)
        throw std::invalid_argument("ParamDomain::pow2: exponent out of [0, 62]");
    ParamDomain d;
    d.kind_ = DomainKind::pow2_range;
    d.ordered_ = true;
    d.lo_ = lo_exp;
    d.hi_ = hi_exp;
    d.step_ = 1;
    return d;
}

ParamDomain ParamDomain::categorical(std::vector<std::string> names, bool ordered)
{
    if (names.empty()) throw std::invalid_argument("ParamDomain::categorical: empty value set");
    for (std::size_t i = 0; i < names.size(); ++i)
        for (std::size_t j = i + 1; j < names.size(); ++j)
            if (names[i] == names[j])
                throw std::invalid_argument("ParamDomain::categorical: duplicate value name '" +
                                            names[i] + "'");
    ParamDomain d;
    d.kind_ = DomainKind::categorical;
    d.ordered_ = ordered;
    d.names_ = std::move(names);
    return d;
}

ParamDomain ParamDomain::boolean()
{
    ParamDomain d;
    d.kind_ = DomainKind::boolean_flag;
    d.ordered_ = true;
    d.lo_ = 0;
    d.hi_ = 1;
    return d;
}

std::size_t ParamDomain::cardinality() const
{
    switch (kind_) {
    case DomainKind::integer_range:
        return static_cast<std::size_t>((hi_ - lo_) / step_) + 1;
    case DomainKind::pow2_range:
        return static_cast<std::size_t>(hi_ - lo_) + 1;
    case DomainKind::categorical:
        return names_.size();
    case DomainKind::boolean_flag:
        return 2;
    }
    return 0;
}

double ParamDomain::numeric_value(std::size_t i) const
{
    if (i >= cardinality())
        throw std::out_of_range("ParamDomain::numeric_value: index out of range");
    switch (kind_) {
    case DomainKind::integer_range:
        return static_cast<double>(lo_ + static_cast<std::int64_t>(i) * step_);
    case DomainKind::pow2_range:
        return std::ldexp(1.0, static_cast<int>(lo_ + static_cast<std::int64_t>(i)));
    case DomainKind::categorical:
        return static_cast<double>(i);
    case DomainKind::boolean_flag:
        return static_cast<double>(i);
    }
    return 0.0;
}

std::string ParamDomain::value_name(std::size_t i) const
{
    if (i >= cardinality())
        throw std::out_of_range("ParamDomain::value_name: index out of range");
    switch (kind_) {
    case DomainKind::integer_range:
    case DomainKind::pow2_range:
        return std::to_string(static_cast<std::int64_t>(numeric_value(i)));
    case DomainKind::categorical:
        return names_[i];
    case DomainKind::boolean_flag:
        return i == 0 ? "false" : "true";
    }
    return {};
}

std::size_t ParamDomain::nearest_index(double v) const
{
    const std::size_t n = cardinality();
    std::size_t best = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
        const double dist = std::abs(numeric_value(i) - v);
        if (dist < best_dist) {
            best_dist = dist;
            best = i;
        }
    }
    return best;
}

std::optional<std::size_t> ParamDomain::index_of(std::string_view name) const
{
    const std::size_t n = cardinality();
    for (std::size_t i = 0; i < n; ++i)
        if (value_name(i) == name) return i;
    return std::nullopt;
}

std::size_t ParameterSpace::add(Parameter param)
{
    if (param.name.empty())
        throw std::invalid_argument("ParameterSpace::add: empty parameter name");
    if (index_of(param.name))
        throw std::invalid_argument("ParameterSpace::add: duplicate parameter '" + param.name +
                                    "'");
    params_.push_back(std::move(param));
    return params_.size() - 1;
}

std::size_t ParameterSpace::add(std::string name, ParamDomain domain, std::string description)
{
    return add(Parameter{std::move(name), std::move(domain), std::move(description)});
}

const Parameter& ParameterSpace::at(std::size_t i) const
{
    if (i >= params_.size()) throw std::out_of_range("ParameterSpace::at: index out of range");
    return params_[i];
}

std::optional<std::size_t> ParameterSpace::index_of(std::string_view name) const
{
    for (std::size_t i = 0; i < params_.size(); ++i)
        if (params_[i].name == name) return i;
    return std::nullopt;
}

double ParameterSpace::cardinality() const
{
    double total = params_.empty() ? 0.0 : 1.0;
    for (const auto& p : params_) total *= static_cast<double>(p.domain.cardinality());
    return total;
}

std::optional<std::size_t> ParameterSpace::exact_cardinality() const
{
    if (params_.empty()) return 0;
    std::size_t total = 1;
    for (const auto& p : params_) {
        const std::size_t card = p.domain.cardinality();
        if (total > std::numeric_limits<std::size_t>::max() / card) return std::nullopt;
        total *= card;
    }
    return total;
}

}  // namespace nautilus
