#include "core/evaluator.hpp"

namespace nautilus {

// The common single-objective instantiation, compiled once here.
template class BasicCachingEvaluator<Evaluation>;

}  // namespace nautilus
