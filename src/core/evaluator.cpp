#include "core/evaluator.hpp"

#include <stdexcept>

namespace nautilus {

CachingEvaluator::CachingEvaluator(EvalFn fn) : fn_(std::move(fn))
{
    if (!fn_) throw std::invalid_argument("CachingEvaluator: null evaluation function");
}

Evaluation CachingEvaluator::evaluate(const Genome& genome)
{
    ++calls_;
    auto it = cache_.find(genome);
    if (it != cache_.end()) return it->second;
    const Evaluation result = fn_(genome);
    cache_.emplace(genome, result);
    ++distinct_;
    return result;
}

void CachingEvaluator::clear()
{
    cache_.clear();
    distinct_ = 0;
    calls_ = 0;
}

}  // namespace nautilus
