#include "core/hints.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "core/rng.hpp"

namespace nautilus {

HintSet::HintSet(std::vector<ParamHints> params, double confidence)
    : params_(std::move(params))
{
    set_confidence(confidence);
}

HintSet HintSet::none(const ParameterSpace& space)
{
    return HintSet{std::vector<ParamHints>(space.size()), 0.0};
}

void HintSet::validate(const ParameterSpace& space) const
{
    if (params_.size() != space.size())
        throw std::invalid_argument("HintSet::validate: hint count (" +
                                    std::to_string(params_.size()) +
                                    ") != parameter count (" + std::to_string(space.size()) + ")");
    if (confidence_ < 0.0 || confidence_ > 1.0)
        throw std::invalid_argument("HintSet::validate: confidence out of [0, 1]");
    for (std::size_t i = 0; i < params_.size(); ++i) {
        const ParamHints& h = params_[i];
        const std::string where = " (parameter '" + space[i].name + "')";
        if (h.importance < 1.0 || h.importance > 100.0)
            throw std::invalid_argument("HintSet::validate: importance out of [1, 100]" + where);
        if (h.importance_decay < 0.0 || h.importance_decay > 1.0)
            throw std::invalid_argument("HintSet::validate: importance_decay out of [0, 1]" +
                                        where);
        if (h.bias && h.target)
            throw std::invalid_argument(
                "HintSet::validate: bias and target are mutually exclusive" + where);
        if (h.bias && (*h.bias < -1.0 || *h.bias > 1.0))
            throw std::invalid_argument("HintSet::validate: bias out of [-1, 1]" + where);
        if (h.step_scale && (*h.step_scale <= 0.0 || *h.step_scale > 1.0))
            throw std::invalid_argument("HintSet::validate: step_scale out of (0, 1]" + where);
        if ((h.bias || h.target) && !space[i].domain.ordered())
            throw std::invalid_argument(
                "HintSet::validate: bias/target hint on unordered categorical domain" + where);
        if (h.target) {
            const auto& d = space[i].domain;
            const double lo = d.numeric_value(0);
            const double hi = d.numeric_value(d.cardinality() - 1);
            if (*h.target < std::min(lo, hi) || *h.target > std::max(lo, hi))
                throw std::invalid_argument("HintSet::validate: target outside domain range" +
                                            where);
        }
    }
}

const ParamHints& HintSet::param(std::size_t i) const
{
    if (i >= params_.size()) throw std::out_of_range("HintSet::param: index out of range");
    return params_[i];
}

ParamHints& HintSet::param(std::size_t i)
{
    if (i >= params_.size()) throw std::out_of_range("HintSet::param: index out of range");
    return params_[i];
}

void HintSet::set_confidence(double c)
{
    if (c < 0.0 || c > 1.0)
        throw std::invalid_argument("HintSet::set_confidence: confidence out of [0, 1]");
    confidence_ = c;
}

bool HintSet::is_baseline() const
{
    if (confidence_ == 0.0) return true;
    return std::none_of(params_.begin(), params_.end(),
                        [](const ParamHints& h) { return h.has_any(); });
}

HintSet HintSet::negated_bias() const
{
    HintSet out = *this;
    for (ParamHints& h : out.params_)
        if (h.bias) h.bias = -*h.bias;
    return out;
}

double HintSet::effective_importance(std::size_t i, std::size_t gen) const
{
    const ParamHints& h = param(i);
    return 1.0 + (h.importance - 1.0) * std::pow(h.importance_decay, static_cast<double>(gen));
}

std::vector<double> HintSet::effective_importances(std::size_t gen) const
{
    std::vector<double> out(params_.size());
    for (std::size_t i = 0; i < params_.size(); ++i) out[i] = effective_importance(i, gen);
    return out;
}

std::uint64_t HintSet::fingerprint() const
{
    const auto hash_optional = [](std::uint64_t h, const std::optional<double>& v,
                                  std::uint64_t tag) {
        h = hash_combine(h, v.has_value() ? tag : 0);
        return hash_combine(h, v ? std::bit_cast<std::uint64_t>(*v) : 0);
    };
    std::uint64_t h = 0x68696e7473ull;  // "hints" tag
    h = hash_combine(h, params_.size());
    h = hash_combine(h, std::bit_cast<std::uint64_t>(confidence_));
    for (const ParamHints& p : params_) {
        h = hash_combine(h, std::bit_cast<std::uint64_t>(p.importance));
        h = hash_combine(h, std::bit_cast<std::uint64_t>(p.importance_decay));
        h = hash_optional(h, p.bias, 1);
        h = hash_optional(h, p.target, 2);
        h = hash_optional(h, p.step_scale, 3);
    }
    return h;
}

HintSet merge_hints(std::span<const WeightedHintSet> components)
{
    if (components.empty()) throw std::invalid_argument("merge_hints: no components");
    for (const auto& c : components) {
        if (c.hints == nullptr) throw std::invalid_argument("merge_hints: null component");
        if (c.weight <= 0.0) throw std::invalid_argument("merge_hints: non-positive weight");
        if (c.hints->size() != components.front().hints->size())
            throw std::invalid_argument("merge_hints: component size mismatch");
    }

    const std::size_t n = components.front().hints->size();
    double total_weight = 0.0;
    for (const auto& c : components) total_weight += c.weight;

    std::vector<ParamHints> merged(n);
    double confidence = 0.0;
    for (const auto& c : components) confidence += c.weight * c.hints->confidence();
    confidence /= total_weight;

    for (std::size_t i = 0; i < n; ++i) {
        ParamHints& out = merged[i];
        double importance = 0.0;
        double decay = 1.0;
        double bias_sum = 0.0;
        bool any_bias = false;
        std::optional<double> target;
        bool target_conflict = false;
        std::optional<double> step;

        for (const auto& c : components) {
            const ParamHints& h = c.hints->param(i);
            importance += c.weight * h.importance;
            decay = std::min(decay, h.importance_decay);
            if (h.bias) {
                bias_sum += c.weight * *h.bias;
                any_bias = true;
            }
            if (h.target) {
                if (target && *target != *h.target) target_conflict = true;
                target = h.target;
            }
            if (h.step_scale) step = step ? std::min(*step, *h.step_scale) : *h.step_scale;
        }

        out.importance = std::clamp(importance / total_weight, 1.0, 100.0);
        out.importance_decay = decay;
        out.step_scale = step;
        if (target && !target_conflict && !any_bias) {
            out.target = target;
        }
        else if (any_bias && !target) {
            out.bias = std::clamp(bias_sum / total_weight, -1.0, 1.0);
        }
        else if (any_bias && target) {
            // A bias and a target from different components disagree about
            // the mechanism; keep the (weaker) bias signal only.
            out.bias = std::clamp(bias_sum / total_weight, -1.0, 1.0);
        }
    }
    return HintSet{std::move(merged), confidence};
}

}  // namespace nautilus
