#include "core/nsga2.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "core/batch_evaluator.hpp"
#include "core/breed.hpp"
#include "core/checkpoint.hpp"
#include "core/evaluator.hpp"

namespace nautilus {

void MultiObjectiveConfig::validate() const
{
    if (population_size < 4)
        throw std::invalid_argument("MultiObjectiveConfig: population_size must be >= 4");
    if (generations == 0)
        throw std::invalid_argument("MultiObjectiveConfig: generations must be >= 1");
    if (mutation_rate < 0.0 || mutation_rate > 1.0)
        throw std::invalid_argument("MultiObjectiveConfig: mutation_rate out of [0, 1]");
    if (crossover_rate < 0.0 || crossover_rate > 1.0)
        throw std::invalid_argument("MultiObjectiveConfig: crossover_rate out of [0, 1]");
    if (eval_workers == 0)
        throw std::invalid_argument("MultiObjectiveConfig: eval_workers must be >= 1");
    fault.validate();
    if (checkpoint_every == 0)
        throw std::invalid_argument("MultiObjectiveConfig: checkpoint_every must be >= 1");
    if (halt_at_generation != 0 && checkpoint_path.empty())
        throw std::invalid_argument(
            "MultiObjectiveConfig: halt_at_generation requires checkpoint_path");
}

std::vector<std::vector<std::size_t>> non_dominated_sort(
    std::span<const ObjectivePoint> points, std::span<const Direction> directions)
{
    const std::size_t n = points.size();
    std::vector<std::vector<std::size_t>> dominated_by(n);  // i dominates these
    std::vector<std::size_t> domination_count(n, 0);
    std::vector<std::vector<std::size_t>> fronts;

    std::vector<std::size_t> current;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            if (i == j) continue;
            if (dominates(points[i], points[j], directions))
                dominated_by[i].push_back(j);
            else if (dominates(points[j], points[i], directions))
                ++domination_count[i];
        }
        if (domination_count[i] == 0) current.push_back(i);
    }

    while (!current.empty()) {
        fronts.push_back(current);
        std::vector<std::size_t> next;
        for (std::size_t i : current) {
            for (std::size_t j : dominated_by[i]) {
                if (--domination_count[j] == 0) next.push_back(j);
            }
        }
        current = std::move(next);
    }
    return fronts;
}

std::vector<double> crowding_distance(std::span<const ObjectivePoint> points,
                                      std::span<const std::size_t> front_indices,
                                      std::span<const Direction> directions)
{
    const std::size_t m = front_indices.size();
    std::vector<double> distance(m, 0.0);
    if (m <= 2) {
        std::fill(distance.begin(), distance.end(),
                  std::numeric_limits<double>::infinity());
        return distance;
    }

    std::vector<std::size_t> order(m);
    for (std::size_t obj = 0; obj < directions.size(); ++obj) {
        std::iota(order.begin(), order.end(), std::size_t{0});
        std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
            return points[front_indices[a]].values[obj] <
                   points[front_indices[b]].values[obj];
        });
        const double lo = points[front_indices[order.front()]].values[obj];
        const double hi = points[front_indices[order.back()]].values[obj];
        distance[order.front()] = std::numeric_limits<double>::infinity();
        distance[order.back()] = std::numeric_limits<double>::infinity();
        if (hi <= lo) continue;  // degenerate objective: no spread
        for (std::size_t k = 1; k + 1 < m; ++k) {
            const double gap = points[front_indices[order[k + 1]]].values[obj] -
                               points[front_indices[order[k - 1]]].values[obj];
            distance[order[k]] += gap / (hi - lo);
        }
    }
    return distance;
}

Nsga2Engine::Nsga2Engine(const ParameterSpace& space, MultiObjectiveConfig config,
                         std::vector<Direction> directions, MultiEvalFn eval,
                         HintSet hints)
    : space_(space),
      config_(config),
      directions_(std::move(directions)),
      eval_(std::move(eval)),
      hints_(std::move(hints))
{
    if (space_.empty()) throw std::invalid_argument("Nsga2Engine: empty parameter space");
    if (directions_.empty())
        throw std::invalid_argument("Nsga2Engine: need at least one objective");
    if (!eval_) throw std::invalid_argument("Nsga2Engine: null evaluation function");
    config_.validate();
    hints_.validate(space_);
}

MultiObjectiveResult Nsga2Engine::run(std::uint64_t seed) const
{
    return run_impl(seed, nullptr);
}

std::uint64_t Nsga2Engine::config_fingerprint(std::uint64_t seed) const
{
    std::uint64_t h = 0x6e736761ull;  // "nsga" tag
    h = hash_combine(h, space_.size());
    for (const Parameter& p : space_) h = hash_combine(h, p.domain.cardinality());
    h = hash_combine(h, config_.population_size);
    h = hash_combine(h, config_.generations);
    h = hash_combine(h, std::bit_cast<std::uint64_t>(config_.mutation_rate));
    h = hash_combine(h, std::bit_cast<std::uint64_t>(config_.crossover_rate));
    h = hash_combine(h, static_cast<std::uint64_t>(config_.crossover));
    h = hash_combine(h, config_.fault.retry.max_attempts);
    h = hash_combine(h, config_.fault.tolerate_failures ? 1 : 0);
    h = hash_combine(h, directions_.size());
    for (Direction d : directions_) h = hash_combine(h, static_cast<std::uint64_t>(d));
    h = hash_combine(h, hints_.fingerprint());
    return hash_combine(h, seed);
}

MultiObjectiveResult Nsga2Engine::resume(const std::string& checkpoint_path) const
{
    const Nsga2Checkpoint cp = load_nsga2_checkpoint(checkpoint_path);
    if (cp.config_hash != config_fingerprint(cp.seed))
        throw std::runtime_error(
            "Nsga2Engine::resume: checkpoint " + checkpoint_path +
            " was written with a different space/config/hints/seed");
    if (cp.objectives != directions_.size())
        throw std::runtime_error("Nsga2Engine::resume: objective count mismatch");
    return run_impl(cp.seed, &cp);
}

MultiObjectiveResult Nsga2Engine::run_impl(std::uint64_t seed,
                                           const Nsga2Checkpoint* restored) const
{
    Rng rng{seed};

    // Memoized evaluation with distinct counting (the paper's cost model),
    // fanned out across the worker pool one wave at a time.  The fault guard
    // sits below the cache (see core/fault.hpp); the multi-objective penalty
    // is nullopt, so quarantined designs are simply infeasible.
    using MultiValue = std::optional<std::vector<double>>;
    FaultTolerantEvaluator<MultiValue> guard{
        [this](const Genome& g) {
            MultiValue values = eval_(g);
            if (values && values->size() != directions_.size())
                throw std::runtime_error("Nsga2Engine: objective arity mismatch");
            return values;
        },
        config_.fault, MultiValue{}};
    guard.set_instrumentation(config_.obs);
    // Persistent store tier: answers memo misses before the fault guard (see
    // GaEngine::run_impl).  Feasible records must carry one value per
    // objective; anything else is treated as a miss and recomputed.
    EvalStore* store = config_.store.get();
    const std::uint64_t store_ns = config_.store_namespace;
    std::atomic<std::size_t> store_hits{0};
    std::atomic<std::size_t> store_misses{0};
    BasicCachingEvaluator<MultiValue> evaluator{[&](const Genome& g) -> MultiValue {
        if (store != nullptr) {
            if (std::optional<StoredResult> cached = store->lookup(store_ns, g)) {
                if (!cached->feasible && cached->values.empty()) {
                    store_hits.fetch_add(1, std::memory_order_relaxed);
                    return std::nullopt;
                }
                if (cached->feasible && cached->values.size() == directions_.size()) {
                    store_hits.fetch_add(1, std::memory_order_relaxed);
                    return MultiValue{std::move(cached->values)};
                }
            }
        }
        EvalOutcome outcome;
        MultiValue values = guard.evaluate(g, &outcome);
        if (store != nullptr) {
            store_misses.fetch_add(1, std::memory_order_relaxed);
            if (!outcome.penalized) {
                StoredResult record;
                record.feasible = values.has_value();
                if (values) record.values = *values;
                store->insert(store_ns, g, std::move(record));
            }
        }
        return values;
    }};
    BatchEvaluator batch_eval{config_.eval_workers};
    batch_eval.set_instrumentation(config_.obs);
    const obs::Tracer& tracer = config_.obs.tracer;
    obs::Counter* m_generations = nullptr;
    obs::Counter* m_checkpoints = nullptr;
    if (obs::MetricsRegistry* reg = config_.obs.registry()) {
        reg->counter("nsga2.runs").add();
        m_generations = &reg->counter("nsga2.generations");
        if (!config_.checkpoint_path.empty())
            m_checkpoints = &reg->counter("checkpoint.writes");
    }

    struct Member {
        Genome genome;
        std::vector<double> values;  // feasible members only join the pool
    };

    // Archive of every feasible point seen (for the final front).
    std::vector<Member> archive;
    std::vector<Member> population;
    std::size_t start_gen = 0;

    if (restored != nullptr) {
        start_gen = restored->generation;
        rng.restore(restored->rng_state);
        population.reserve(restored->population.size());
        for (std::size_t i = 0; i < restored->population.size(); ++i)
            population.push_back({restored->population[i], restored->population_values[i]});
        archive.reserve(restored->archive.size());
        for (std::size_t i = 0; i < restored->archive.size(); ++i)
            archive.push_back({restored->archive[i], restored->archive_values[i]});
        BasicCachingEvaluator<MultiValue>::Snapshot snap;
        snap.entries = restored->cache;
        snap.distinct = restored->distinct;
        snap.calls = restored->calls;
        evaluator.restore(snap);
        guard.restore(restored->quarantine, restored->fault);
    }

    obs::ProgressTracker* progress = config_.obs.progress_tracker();
    if (progress != nullptr)
        progress->on_run_start("nsga2", config_.generations, start_gen);

    if (tracer.enabled()) {
        obs::TraceEvent ev{"run_start"};
        ev.add("engine", "nsga2")
            .add("seed", static_cast<std::size_t>(seed))
            .add("population", config_.population_size)
            .add("generations", config_.generations)
            .add("objectives", directions_.size())
            .add("workers", config_.eval_workers)
            .add("confidence", obs::FieldValue{hints_.confidence()});
        if (restored != nullptr) {
            const FaultCounters fc = guard.counters();
            ev.add("resumed", obs::FieldValue{true})
                .add("start_generation", start_gen)
                .add("distinct_at_start", evaluator.distinct_evaluations())
                .add("attempts_at_start", std::size_t{fc.attempts})
                .add("retries_at_start", std::size_t{fc.retries});
        }
        for (const auto& [key, value] : config_.obs.run_tags) ev.add(key, value);
        tracer.emit(std::move(ev));
    }
    obs::ScopedTimer run_span{tracer, "nsga2.run"};

    // Lineage recording (DESIGN.md section 11): pure observation, zero RNG
    // draws.  The NSGA-II checkpoint does not persist lineage, so resumed
    // runs root the restored population and archive with op=resume.
    std::optional<obs::LineageRecorder> lineage;
    std::vector<std::uint64_t> pop_ids;      // birth id per population slot
    std::vector<std::uint64_t> archive_ids;  // birth id per archive entry
    std::vector<std::uint64_t> lineage_winners;
    if (tracer.enabled() || config_.obs.lineage_tracker() != nullptr) {
        lineage.emplace(&tracer, config_.obs.lineage_tracker(), "nsga2");
        if (restored != nullptr) {
            pop_ids.reserve(population.size());
            for (std::size_t i = 0; i < population.size(); ++i)
                pop_ids.push_back(
                    lineage->on_root(start_gen, obs::BirthOp::resume, space_.size()));
            archive_ids.reserve(archive.size());
            for (std::size_t i = 0; i < archive.size(); ++i)
                archive_ids.push_back(
                    lineage->on_root(start_gen, obs::BirthOp::resume, space_.size()));
        }
    }

    const auto finish = [&](MultiObjectiveResult result) {
        if (lineage.has_value()) lineage->finish(lineage_winners);
        if (progress != nullptr) progress->on_run_end();
        result.distinct_evals = evaluator.distinct_evaluations();
        result.total_eval_calls = evaluator.total_calls();
        result.eval_seconds = batch_eval.eval_seconds();
        result.eval_workers = batch_eval.workers();
        result.start_generation = start_gen;
        result.fault = guard.counters();
        result.store_hits = store_hits.load(std::memory_order_relaxed);
        result.store_misses = store_misses.load(std::memory_order_relaxed);
        if (tracer.enabled()) {
            obs::TraceEvent ev{"run_end"};
            ev.add("engine", "nsga2")
                .add("distinct_evals", result.distinct_evals)
                .add("total_calls", result.total_eval_calls)
                .add("inflight_waits", evaluator.inflight_waits())
                .add("front_size", result.front.size())
                .add("halted", obs::FieldValue{result.halted})
                .add("eval_seconds", obs::FieldValue{result.eval_seconds})
                .add("attempts", std::size_t{result.fault.attempts})
                .add("retries", std::size_t{result.fault.retries})
                .add("eval_failures", std::size_t{result.fault.failures})
                .add("eval_timeouts", std::size_t{result.fault.timeouts})
                .add("quarantined", std::size_t{result.fault.quarantined})
                .add("penalties", std::size_t{result.fault.penalties});
            if (store != nullptr)
                ev.add("store_hits", result.store_hits)
                    .add("store_misses", result.store_misses);
            tracer.emit(std::move(ev));
        }
        return result;
    };
    std::vector<MultiValue> wave_values;

    auto to_points = [&](const std::vector<Member>& pool) {
        std::vector<ObjectivePoint> pts;
        pts.reserve(pool.size());
        for (std::size_t i = 0; i < pool.size(); ++i) pts.push_back({i, pool[i].values});
        return pts;
    };

    // State captured at the top of the generation loop ("about to run
    // generation `gen`"), written atomically.
    const auto write_checkpoint = [&](std::size_t gen) {
        Nsga2Checkpoint cp;
        cp.config_hash = config_fingerprint(seed);
        cp.seed = seed;
        cp.generation = gen;
        cp.objectives = directions_.size();
        cp.rng_state = rng.state();
        for (const Member& m : population) {
            cp.population.push_back(m.genome);
            cp.population_values.push_back(m.values);
        }
        for (const Member& m : archive) {
            cp.archive.push_back(m.genome);
            cp.archive_values.push_back(m.values);
        }
        typename BasicCachingEvaluator<MultiValue>::Snapshot snap = evaluator.snapshot();
        cp.cache = std::move(snap.entries);
        cp.distinct = snap.distinct;
        cp.calls = snap.calls;
        cp.quarantine = guard.quarantined_keys();
        cp.fault = guard.counters();
        save_checkpoint(config_.checkpoint_path, cp);
        if (m_checkpoints != nullptr) m_checkpoints->add();
        if (tracer.enabled()) {
            obs::TraceEvent ev{"checkpoint"};
            ev.add("engine", "nsga2")
                .add("path", config_.checkpoint_path.c_str())
                .add("generation", gen)
                .add("cache", cp.cache.size())
                .add("quarantined", cp.quarantine.size());
            tracer.emit(std::move(ev));
        }
    };

    if (restored == nullptr) {
        // Initial population (feasible members only; bounded resampling).
        // Waves are sized by the remaining need so the draw sequence is
        // identical to a serial run while each wave evaluates concurrently.
        std::size_t draws = 0;
        const std::size_t draw_cap = config_.population_size * 50;
        std::vector<Genome> wave;
        while (population.size() < config_.population_size && draws < draw_cap) {
            const std::size_t chunk =
                std::min(config_.population_size - population.size(), draw_cap - draws);
            wave.clear();
            for (std::size_t i = 0; i < chunk; ++i)
                wave.push_back(Genome::random(space_, rng));
            draws += chunk;
            wave_values.assign(chunk, MultiValue{});
            batch_eval.evaluate(evaluator, wave, std::span<MultiValue>{wave_values});
            for (std::size_t i = 0; i < chunk; ++i) {
                if (!wave_values[i]) continue;
                population.push_back({wave[i], *wave_values[i]});
                if (lineage.has_value())
                    pop_ids.push_back(
                        lineage->on_root(0, obs::BirthOp::init, space_.size()));
            }
        }
        if (population.size() < 4) return finish({});
        for (const Member& m : population) archive.push_back(m);
        archive_ids = pop_ids;
    }

    // Per-run breeding arena: hoisted per-generation gene mutation
    // probabilities and memoized value distributions (core/breed.hpp); the
    // RNG draw sequence is identical to the per-call mutate() path.
    MutationStats mut_stats;
    MutationStats* mut_stats_ptr = tracer.enabled() ? &mut_stats : nullptr;
    BreedContext breed_ctx{space_, hints_, config_.mutation_rate};

    bool halted = false;
    for (std::size_t gen = start_gen; gen < config_.generations; ++gen) {
        const bool halt_here =
            (config_.halt_at_generation != 0 && gen == config_.halt_at_generation &&
             gen > start_gen) ||
            (config_.cancel != nullptr &&
             config_.cancel->load(std::memory_order_acquire) && gen > start_gen);
        if (!config_.checkpoint_path.empty() && gen > start_gen &&
            (gen % config_.checkpoint_every == 0 || halt_here))
            write_checkpoint(gen);
        if (halt_here) {
            halted = true;
            break;
        }
        breed_ctx.begin_generation(gen);

        // Rank the current pool.
        const auto points = to_points(population);
        const auto fronts = non_dominated_sort(points, directions_);
        std::vector<std::size_t> rank(population.size(), 0);
        std::vector<double> crowd(population.size(), 0.0);
        for (std::size_t f = 0; f < fronts.size(); ++f) {
            const auto dist = crowding_distance(points, fronts[f], directions_);
            for (std::size_t k = 0; k < fronts[f].size(); ++k) {
                rank[fronts[f][k]] = f;
                crowd[fronts[f][k]] = dist[k];
            }
        }

        // Binary tournament on (rank, crowding).  Returns the winner's
        // population index so breeding can record parentage.
        auto select = [&]() -> std::size_t {
            const std::size_t a = rng.index(population.size());
            const std::size_t b = rng.index(population.size());
            if (rank[a] != rank[b]) return rank[a] < rank[b] ? a : b;
            return crowd[a] >= crowd[b] ? a : b;
        };

        // Breed offspring (bounded attempts so sparse spaces terminate).
        // All randomness happens single-threaded while breeding a wave of
        // child pairs; only the evaluations fan out, so the run is
        // deterministic and independent of the worker count.
        std::vector<Member> offspring;
        std::vector<std::uint64_t> offspring_ids;
        offspring.reserve(config_.population_size);
        std::size_t attempts = 0;
        std::size_t born = 0;
        const std::size_t attempt_cap = config_.population_size * 50;
        std::vector<Genome> brood;
        std::vector<std::uint64_t> brood_ids;
        std::vector<std::uint8_t> swap_mask;
        std::vector<obs::GeneOrigin> origins_a;
        std::vector<obs::GeneOrigin> origins_b;
        while (offspring.size() < config_.population_size && attempts < attempt_cap) {
            const std::size_t need = config_.population_size - offspring.size();
            const std::size_t pairs = std::min((need + 1) / 2, attempt_cap - attempts);
            attempts += pairs;
            brood.clear();
            brood_ids.clear();
            for (std::size_t p = 0; p < pairs; ++p) {
                const std::size_t pa = select();
                const std::size_t pb = select();
                Genome child_a = population[pa].genome;
                Genome child_b = population[pb].genome;
                const bool crossed = rng.bernoulli(config_.crossover_rate);
                if (crossed) {
                    auto [xa, xb] =
                        crossover(child_a, child_b, config_.crossover, rng,
                                  lineage.has_value() ? &swap_mask : nullptr);
                    child_a = std::move(xa);
                    child_b = std::move(xb);
                }
                if (lineage.has_value()) {
                    const std::size_t genes = child_a.size();
                    origins_a.assign(genes, obs::GeneOrigin::parent_a);
                    origins_b.assign(genes, obs::GeneOrigin::parent_a);
                    if (crossed) {
                        for (std::size_t i = 0; i < genes; ++i) {
                            if (swap_mask[i] == 0) continue;
                            origins_a[i] = obs::GeneOrigin::parent_b;
                            origins_b[i] = obs::GeneOrigin::parent_b;
                        }
                    }
                    breed_ctx.mutate(child_a, rng, mut_stats_ptr, origins_a.data());
                    breed_ctx.mutate(child_b, rng, mut_stats_ptr, origins_b.data());
                    brood_ids.push_back(lineage->on_child(
                        pop_ids[pa], pop_ids[pb], crossed, gen,
                        std::vector<obs::GeneOrigin>{origins_a}));
                    brood_ids.push_back(lineage->on_child(
                        pop_ids[pb], pop_ids[pa], crossed, gen,
                        std::vector<obs::GeneOrigin>{origins_b}));
                }
                else {
                    breed_ctx.mutate(child_a, rng, mut_stats_ptr);
                    breed_ctx.mutate(child_b, rng, mut_stats_ptr);
                }
                brood.push_back(std::move(child_a));
                brood.push_back(std::move(child_b));
            }
            born += brood.size();
            wave_values.assign(brood.size(), MultiValue{});
            batch_eval.evaluate(evaluator, brood, std::span<MultiValue>{wave_values});
            for (std::size_t i = 0; i < brood.size(); ++i) {
                if (offspring.size() >= config_.population_size) break;
                if (wave_values[i]) {
                    offspring.push_back({brood[i], *wave_values[i]});
                    archive.push_back(offspring.back());
                    if (lineage.has_value()) {
                        offspring_ids.push_back(brood_ids[i]);
                        archive_ids.push_back(brood_ids[i]);
                    }
                }
            }
        }

        // Environmental selection over parents + offspring.
        std::vector<Member> pool = std::move(population);
        pool.insert(pool.end(), offspring.begin(), offspring.end());
        std::vector<std::uint64_t> pool_ids = std::move(pop_ids);
        pool_ids.insert(pool_ids.end(), offspring_ids.begin(), offspring_ids.end());
        const auto pool_points = to_points(pool);
        const auto pool_fronts = non_dominated_sort(pool_points, directions_);

        population.clear();
        pop_ids.clear();
        const auto keep = [&](std::size_t idx) {
            population.push_back(pool[idx]);
            if (lineage.has_value()) {
                pop_ids.push_back(pool_ids[idx]);
                lineage->on_survived(pool_ids[idx]);
            }
        };
        for (const auto& front : pool_fronts) {
            if (population.size() + front.size() <= config_.population_size) {
                for (std::size_t idx : front) keep(idx);
            }
            else {
                // Fill the remainder by descending crowding distance.
                const auto dist = crowding_distance(pool_points, front, directions_);
                std::vector<std::size_t> order(front.size());
                std::iota(order.begin(), order.end(), std::size_t{0});
                std::sort(order.begin(), order.end(),
                          [&](std::size_t a, std::size_t b) { return dist[a] > dist[b]; });
                for (std::size_t k : order) {
                    if (population.size() >= config_.population_size) break;
                    keep(front[k]);
                }
            }
            if (population.size() >= config_.population_size) break;
        }

        if (m_generations != nullptr) m_generations->add();
        if (progress != nullptr) progress->on_units(gen + 1);
        if (tracer.enabled()) {
            obs::TraceEvent ev{"generation"};
            ev.add("gen", gen)
                .add("engine", "nsga2")
                .add("born", born)
                .add("offspring", offspring.size())
                .add("archive", archive.size())
                .add("fronts", pool_fronts.size())
                .add("front0", pool_fronts.empty() ? std::size_t{0} : pool_fronts[0].size())
                .add("distinct_total", evaluator.distinct_evaluations())
                .add("genes_mutated", std::size_t{mut_stats.genes_mutated})
                .add("bias_draws", std::size_t{mut_stats.bias_draws})
                .add("target_draws", std::size_t{mut_stats.target_draws})
                .add("uniform_draws", std::size_t{mut_stats.uniform_draws})
                .add("importance", obs::FieldValue{hints_.effective_importances(gen)});
            tracer.emit(std::move(ev));
            mut_stats.reset();
        }
    }

    // Final front over the whole archive.
    std::vector<ObjectivePoint> archive_points;
    archive_points.reserve(archive.size());
    for (std::size_t i = 0; i < archive.size(); ++i)
        archive_points.push_back({i, archive[i].values});
    const auto front_idx = pareto_front(archive_points, directions_);

    MultiObjectiveResult result;
    result.halted = halted;
    result.front.reserve(front_idx.size());
    for (std::size_t idx : front_idx)
        result.front.push_back({archive[idx].genome, archive[idx].values});
    if (lineage.has_value())
        for (std::size_t idx : front_idx) lineage_winners.push_back(archive_ids[idx]);
    return finish(std::move(result));
}

}  // namespace nautilus
