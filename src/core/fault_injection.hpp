#pragma once
// Deterministic fault injection for evaluation functions.
//
// FaultInjectingEvaluator decorates an EvalFn with seeded chaos: a fraction
// of attempts throw (crashed CAD tool), stall (hung job -- exercised against
// the watchdog timeout), or return a perturbed value (flaky tool run).  It is
// both the workhorse of the fault-tolerance test harness and the CLI's
// `--chaos-*` mode.
//
// Determinism contract: whether attempt k on design point g misbehaves is a
// pure hash of (seed, g.key(), k) -- *not* of global call order -- so runs
// are bit-for-bit reproducible at any worker count and the retry ladder sees
// the same fault sequence every time.  The one exception is
// `fail_on_nth_call`, which trips on a global call counter and is meant for
// single-threaded regression tests ("the 7th evaluation throws").

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>

#include "core/evaluator.hpp"
#include "core/fitness.hpp"
#include "core/genome.hpp"

namespace nautilus {

// Thrown by injected failures so tests can tell them from genuine errors.
struct InjectedFault : std::runtime_error {
    using std::runtime_error::runtime_error;
};

struct FaultInjectionConfig {
    double fail_rate = 0.0;         // P(attempt throws InjectedFault)
    double hang_rate = 0.0;         // P(attempt stalls for hang_seconds first)
    double flaky_value_rate = 0.0;  // P(attempt returns a perturbed value)
    double hang_seconds = 0.05;     // stall length; set the watchdog below it
    std::uint64_t fail_on_nth_call = 0;  // 1-based global call index; 0 = off
    std::uint64_t seed = 0xc4a05;
    // false: faults are transient (a retry of the same design point redraws
    // with the attempt index, so retries usually recover).  true: the draw
    // ignores the attempt index, so an unlucky design point fails every
    // attempt -- the path that exercises quarantine.
    bool permanent = false;

    void validate() const;  // throws std::invalid_argument on bad settings
};

class FaultInjectingEvaluator {
public:
    FaultInjectingEvaluator(EvalFn inner, FaultInjectionConfig config);

    // Decorated evaluation function.  Captures `this`; the injector must
    // outlive every engine using the returned function.
    EvalFn as_eval_fn();

    // Evaluate one design point, possibly misbehaving first.
    Evaluation evaluate(const Genome& genome);

    const FaultInjectionConfig& config() const { return config_; }

    std::uint64_t calls() const { return calls_.load(std::memory_order_relaxed); }
    std::uint64_t injected_failures() const
    {
        return failures_.load(std::memory_order_relaxed);
    }
    std::uint64_t injected_hangs() const { return hangs_.load(std::memory_order_relaxed); }
    std::uint64_t injected_flaky() const { return flaky_.load(std::memory_order_relaxed); }

    // Forget per-design attempt history and counters (fresh run).
    void reset();

private:
    EvalFn inner_;
    FaultInjectionConfig config_;
    std::atomic<std::uint64_t> calls_{0};
    std::atomic<std::uint64_t> failures_{0};
    std::atomic<std::uint64_t> hangs_{0};
    std::atomic<std::uint64_t> flaky_{0};

    struct AttemptMap;  // per-genome attempt indices, mutex-protected
    std::shared_ptr<AttemptMap> attempts_;
};

}  // namespace nautilus
