#include "core/eval_store.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "core/atomic_file.hpp"
#include "core/rng.hpp"

namespace nautilus {

namespace {

constexpr std::string_view k_manifest_magic = "nautilus-eval-store";
constexpr std::uint64_t k_store_version = 1;

std::uint64_t fnv1a64(std::string_view text)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const unsigned char c : text) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

std::uint64_t double_bits(double d)
{
    return std::bit_cast<std::uint64_t>(d);
}

double bits_double(std::uint64_t b)
{
    return std::bit_cast<double>(b);
}

// "rec <ns> <nGenes> <g...> <feasible> <nVals> <bits...> <crc>\n"
std::string encode_record(std::uint64_t ns, const std::vector<std::uint32_t>& genes,
                          const StoredResult& result)
{
    std::ostringstream out;
    out << "rec " << ns << ' ' << genes.size();
    for (const std::uint32_t g : genes) out << ' ' << g;
    out << ' ' << (result.feasible ? 1 : 0) << ' ' << result.values.size();
    for (const double v : result.values) out << ' ' << double_bits(v);
    std::string line = out.str();
    line += ' ';
    line += std::to_string(fnv1a64(std::string_view{line}.substr(0, line.size() - 1)));
    line += '\n';
    return line;
}

// Whitespace tokenizer over one record line (the text before the crc field).
class LineReader {
public:
    explicit LineReader(std::string_view text) : text_(text) {}

    bool u64(std::uint64_t& out)
    {
        while (pos_ < text_.size() && text_[pos_] == ' ') ++pos_;
        const char* begin = text_.data() + pos_;
        const char* end = text_.data() + text_.size();
        const auto [next, ec] = std::from_chars(begin, end, out);
        if (ec != std::errc{} || next == begin) return false;
        pos_ = static_cast<std::size_t>(next - text_.data());
        return true;
    }

    bool exhausted()
    {
        while (pos_ < text_.size() && text_[pos_] == ' ') ++pos_;
        return pos_ == text_.size();
    }

private:
    std::string_view text_;
    std::size_t pos_ = 0;
};

// Decodes one line.  Returns false (without throwing) on any malformation so
// the loader can decide whether the damage is a recoverable torn tail.
bool decode_record(std::string_view line, std::uint64_t& ns,
                   std::vector<std::uint32_t>& genes, StoredResult& result)
{
    if (!line.starts_with("rec ")) return false;
    const std::size_t crc_sep = line.find_last_of(' ');
    if (crc_sep == std::string_view::npos || crc_sep + 1 >= line.size()) return false;
    std::uint64_t crc = 0;
    {
        const char* begin = line.data() + crc_sep + 1;
        const char* end = line.data() + line.size();
        const auto [next, ec] = std::from_chars(begin, end, crc);
        if (ec != std::errc{} || next != end) return false;
    }
    if (fnv1a64(line.substr(0, crc_sep)) != crc) return false;

    LineReader r{line.substr(4, crc_sep - 4)};
    std::uint64_t n_genes = 0;
    if (!r.u64(ns) || !r.u64(n_genes) || n_genes > (1u << 20)) return false;
    genes.clear();
    genes.reserve(n_genes);
    for (std::uint64_t i = 0; i < n_genes; ++i) {
        std::uint64_t g = 0;
        if (!r.u64(g) || g > std::numeric_limits<std::uint32_t>::max()) return false;
        genes.push_back(static_cast<std::uint32_t>(g));
    }
    std::uint64_t feasible = 0;
    std::uint64_t n_values = 0;
    if (!r.u64(feasible) || feasible > 1) return false;
    if (!r.u64(n_values) || n_values > (1u << 20)) return false;
    result.feasible = feasible != 0;
    result.values.clear();
    result.values.reserve(n_values);
    for (std::uint64_t i = 0; i < n_values; ++i) {
        std::uint64_t bits = 0;
        if (!r.u64(bits)) return false;
        result.values.push_back(bits_double(bits));
    }
    return r.exhausted();
}

std::string segment_name(std::uint64_t n)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "seg-%06llu.log", static_cast<unsigned long long>(n));
    return buf;
}

std::uint64_t file_size_or_zero(const std::string& path)
{
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0) return 0;
    return static_cast<std::uint64_t>(st.st_size);
}

}  // namespace

void EvalStoreConfig::validate() const
{
    if (path.empty()) throw std::invalid_argument("eval store: path must be set");
    if (flush_every == 0)
        throw std::invalid_argument("eval store: flush_every must be >= 1");
    if (segment_bytes == 0)
        throw std::invalid_argument("eval store: segment_bytes must be >= 1");
    if (compact_dead_ratio <= 0.0 || compact_dead_ratio > 1.0)
        throw std::invalid_argument("eval store: compact_dead_ratio must be in (0, 1]");
}

std::uint64_t EvalStore::namespace_key(std::string_view context)
{
    return mix64(fnv1a64(context));
}

std::string EvalStore::segment_path(const std::string& name) const
{
    return config_.path + "/" + name;
}

std::string EvalStore::manifest_path() const
{
    return config_.path + "/MANIFEST";
}

EvalStore::EvalStore(EvalStoreConfig config) : config_(std::move(config))
{
    config_.validate();
    std::error_code ec;
    std::filesystem::create_directories(config_.path, ec);
    if (ec)
        throw std::runtime_error("eval store " + config_.path +
                                 ": cannot create directory: " + ec.message());

    // Parse the manifest when present; a fresh directory starts empty.
    if (std::ifstream in{manifest_path()}; in) {
        std::string magic;
        std::uint64_t version = 0;
        std::size_t count = 0;
        if (!(in >> magic >> version) || magic != k_manifest_magic)
            throw std::runtime_error("eval store " + config_.path +
                                     ": bad manifest header");
        if (version != k_store_version)
            throw std::runtime_error("eval store " + config_.path +
                                     ": unsupported version " + std::to_string(version));
        std::string keyword;
        if (!(in >> keyword >> count) || keyword != "segments")
            throw std::runtime_error("eval store " + config_.path +
                                     ": bad manifest segment list");
        for (std::size_t i = 0; i < count; ++i) {
            std::string name;
            if (!(in >> name))
                throw std::runtime_error("eval store " + config_.path +
                                         ": truncated manifest");
            segments_.push_back(std::move(name));
        }
        if (!(in >> keyword) || keyword != "end")
            throw std::runtime_error("eval store " + config_.path +
                                     ": manifest missing end marker");
    }
    else {
        write_manifest_locked();
    }

    for (const std::string& name : segments_) {
        unsigned long long n = 0;
        if (std::sscanf(name.c_str(), "seg-%llu.log", &n) == 1)
            segment_counter_ = std::max(segment_counter_, static_cast<std::uint64_t>(n));
    }

    // Drop files a crash may have orphaned (segments rolled or compacted but
    // never committed to the manifest, and stale tmp files).
    for (const auto& entry : std::filesystem::directory_iterator{config_.path, ec}) {
        const std::string name = entry.path().filename().string();
        const bool is_segment = name.starts_with("seg-") && name.ends_with(".log");
        const bool is_tmp = name.ends_with(".tmp");
        const bool known =
            std::find(segments_.begin(), segments_.end(), name) != segments_.end();
        if (is_tmp || (is_segment && !known)) std::filesystem::remove(entry.path(), ec);
    }

    for (std::size_t i = 0; i < segments_.size(); ++i)
        load_segment(segments_[i], i + 1 == segments_.size());

    if (segments_.empty()) roll_segment_locked();
    active_bytes_ = file_size_or_zero(segment_path(segments_.back()));
    update_gauges();
}

EvalStore::~EvalStore()
{
    try {
        flush();
    }
    catch (...) {
        // Destructor must not throw; unflushed records cost a re-evaluation
        // next run, never correctness.
    }
}

void EvalStore::write_manifest_locked()
{
    std::ostringstream out;
    out << k_manifest_magic << ' ' << k_store_version << '\n';
    out << "segments " << segments_.size() << '\n';
    for (const std::string& name : segments_) out << name << '\n';
    out << "end\n";
    atomic_write_file(manifest_path(), out.str(), config_.sync);
}

void EvalStore::apply_record(std::uint64_t key, Record record)
{
    const auto it = index_.find(key);
    if (it != index_.end()) live_bytes_ -= it->second.bytes;
    live_bytes_ += record.bytes;
    index_[key] = std::move(record);
}

void EvalStore::load_segment(const std::string& name, bool last)
{
    const std::string path = segment_path(name);
    std::ifstream in{path, std::ios::binary};
    if (!in) return;  // rolled but never appended to; legitimately absent
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string content = buffer.str();
    in.close();

    std::size_t pos = 0;
    std::size_t valid_end = 0;
    while (pos < content.size()) {
        const std::size_t nl = content.find('\n', pos);
        const bool has_newline = nl != std::string::npos;
        const std::string_view line{content.data() + pos,
                                    (has_newline ? nl : content.size()) - pos};
        std::uint64_t ns = 0;
        Record record;
        const bool ok = has_newline && decode_record(line, ns, record.genes, record.result);
        const std::size_t next = has_newline ? nl + 1 : content.size();
        if (!ok) {
            // A bad final chunk of the final segment is a torn append from a
            // crash: truncate it away and keep the store usable.  Damage
            // anywhere else means real corruption — refuse to guess.
            if (last && next == content.size()) {
                if (::truncate(path.c_str(), static_cast<off_t>(valid_end)) != 0)
                    throw std::runtime_error("eval store " + path +
                                             ": cannot truncate torn tail: " +
                                             std::strerror(errno));
                if (config_.sync) fsync_parent_dir(path);
                torn_dropped_.fetch_add(1, std::memory_order_relaxed);
                break;
            }
            throw std::runtime_error("eval store " + path + ": corrupt record at byte " +
                                     std::to_string(pos));
        }
        record.ns = ns;
        record.seq = seq_++;
        record.bytes = line.size() + 1;
        const std::uint64_t key =
            hash_combine(ns, Genome{std::vector<std::uint32_t>{record.genes}}.key());
        apply_record(key, std::move(record));
        ++disk_records_;
        disk_bytes_ += line.size() + 1;
        valid_end = next;
        pos = next;
    }
}

std::optional<StoredResult> EvalStore::lookup(std::uint64_t ns, const Genome& genome) const
{
    const std::uint64_t key = hash_combine(ns, genome.key());
    {
        std::shared_lock lock{mutex_};
        const auto it = index_.find(key);
        if (it != index_.end() && it->second.ns == ns && it->second.genes == genome.genes()) {
            StoredResult result = it->second.result;
            lock.unlock();
            hits_.fetch_add(1, std::memory_order_relaxed);
            if (m_hits_ != nullptr) m_hits_->add();
            return result;
        }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (m_misses_ != nullptr) m_misses_->add();
    return std::nullopt;
}

void EvalStore::insert(std::uint64_t ns, const Genome& genome, StoredResult result)
{
    const std::uint64_t key = hash_combine(ns, genome.key());
    std::string line = encode_record(ns, genome.genes(), result);
    bool do_flush = false;
    {
        std::unique_lock lock{mutex_};
        const auto it = index_.find(key);
        if (it != index_.end() && it->second.ns == ns &&
            it->second.genes == genome.genes() && it->second.result == result)
            return;  // identical record already stored
        Record record;
        record.ns = ns;
        record.genes = genome.genes();
        record.result = std::move(result);
        record.seq = seq_++;
        record.bytes = line.size();
        apply_record(key, std::move(record));
        pending_.push_back(std::move(line));
        do_flush = pending_.size() >= config_.flush_every;
    }
    writes_.fetch_add(1, std::memory_order_relaxed);
    if (m_writes_ != nullptr) m_writes_->add();
    if (do_flush) flush();
}

void EvalStore::flush()
{
    std::lock_guard io{io_mutex_};
    std::vector<std::string> lines;
    {
        std::unique_lock lock{mutex_};
        lines.swap(pending_);
    }
    if (!lines.empty()) {
        if (active_bytes_ > config_.segment_bytes) roll_segment_locked();
        std::string buf;
        for (const std::string& line : lines) buf += line;
        active_bytes_ = append_file(segment_path(segments_.back()), buf, config_.sync);
        disk_records_ += lines.size();
        disk_bytes_ += buf.size();
        flushes_.fetch_add(1, std::memory_order_relaxed);
        maybe_compact_locked();
    }
    update_gauges();
}

void EvalStore::roll_segment_locked()
{
    segments_.push_back(segment_name(++segment_counter_));
    write_manifest_locked();
    active_bytes_ = 0;
}

void EvalStore::maybe_compact_locked()
{
    const std::size_t live = [&] {
        std::shared_lock lock{mutex_};
        return index_.size();
    }();
    const std::uint64_t dead = disk_records_ > live ? disk_records_ - live : 0;
    const bool too_many_dead =
        dead > 64 && static_cast<double>(dead) >
                         config_.compact_dead_ratio * static_cast<double>(disk_records_);
    const bool over_budget = config_.max_bytes > 0 && disk_bytes_ > config_.max_bytes;
    if (too_many_dead || over_budget) compact_locked();
}

void EvalStore::compact()
{
    std::lock_guard io{io_mutex_};
    {
        // Fold queued records in: the index already reflects them, and the
        // rewrite below persists index state wholesale.
        std::unique_lock lock{mutex_};
        pending_.clear();
    }
    compact_locked();
    update_gauges();
}

void EvalStore::compact_locked()
{
    // Snapshot live records oldest-first and apply the size budget.
    std::vector<std::pair<std::uint64_t, const Record*>> live;
    std::uint64_t evicted = 0;
    std::string buf;
    {
        std::unique_lock lock{mutex_};
        pending_.clear();
        live.reserve(index_.size());
        for (const auto& [key, record] : index_) live.emplace_back(key, &record);
        std::sort(live.begin(), live.end(), [](const auto& a, const auto& b) {
            return a.second->seq < b.second->seq;
        });
        std::size_t drop = 0;
        if (config_.max_bytes > 0) {
            std::uint64_t bytes = live_bytes_;
            while (drop < live.size() && bytes > config_.max_bytes)
                bytes -= live[drop++].second->bytes;
        }
        for (std::size_t i = drop; i < live.size(); ++i) {
            const Record& r = *live[i].second;
            buf += encode_record(r.ns, r.genes, r.result);
        }
        for (std::size_t i = 0; i < drop; ++i) {
            live_bytes_ -= live[i].second->bytes;
            index_.erase(live[i].first);
            ++evicted;
        }
    }

    // Commit the rewrite: new segment first, then the manifest flips to it
    // atomically, then the old segments go away.  A crash between steps
    // leaves either the old manifest (new segment is an orphan, cleaned at
    // next open) or the new one (old segments are orphans) — never a store
    // that fails to load.
    const std::vector<std::string> old_segments = segments_;
    const std::string fresh = segment_name(++segment_counter_);
    atomic_write_file(segment_path(fresh), buf, config_.sync);
    segments_ = {fresh};
    write_manifest_locked();
    std::error_code ec;
    for (const std::string& name : old_segments)
        std::filesystem::remove(segment_path(name), ec);
    if (config_.sync) fsync_parent_dir(manifest_path());

    active_bytes_ = buf.size();
    disk_bytes_ = buf.size();
    {
        std::shared_lock lock{mutex_};
        disk_records_ = index_.size();
    }
    compactions_.fetch_add(1, std::memory_order_relaxed);
    if (m_compactions_ != nullptr) m_compactions_->add();
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    if (m_evictions_ != nullptr && evicted > 0) m_evictions_->add(evicted);
}

std::size_t EvalStore::records() const
{
    std::shared_lock lock{mutex_};
    return index_.size();
}

std::uint64_t EvalStore::live_bytes() const
{
    std::shared_lock lock{mutex_};
    return live_bytes_;
}

EvalStoreCounters EvalStore::counters() const
{
    EvalStoreCounters c;
    c.hits = hits_.load(std::memory_order_relaxed);
    c.misses = misses_.load(std::memory_order_relaxed);
    c.writes = writes_.load(std::memory_order_relaxed);
    c.flushes = flushes_.load(std::memory_order_relaxed);
    c.compactions = compactions_.load(std::memory_order_relaxed);
    c.evictions = evictions_.load(std::memory_order_relaxed);
    c.torn_dropped = torn_dropped_.load(std::memory_order_relaxed);
    return c;
}

void EvalStore::attach_metrics(const std::shared_ptr<obs::MetricsRegistry>& metrics)
{
    if (!metrics) return;
    metrics_ = metrics;
    m_hits_ = &metrics_->counter("store.hits");
    m_misses_ = &metrics_->counter("store.misses");
    m_writes_ = &metrics_->counter("store.writes");
    m_compactions_ = &metrics_->counter("store.compactions");
    m_evictions_ = &metrics_->counter("store.evictions");
    m_records_ = &metrics_->gauge("store.records");
    m_bytes_ = &metrics_->gauge("store.bytes");
    update_gauges();
}

void EvalStore::update_gauges()
{
    if (m_records_ == nullptr) return;
    std::shared_lock lock{mutex_};
    m_records_->set(static_cast<double>(index_.size()));
    m_bytes_->set(static_cast<double>(live_bytes_));
}

}  // namespace nautilus
