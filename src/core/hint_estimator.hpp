#pragma once
// Non-expert hint estimation from a small sample of synthesized designs.
//
// The paper's NoC hints were produced "by synthesizing 80 designs (less than
// 0.3% of the design space) and observing trends", i.e. by a non-expert user
// rather than the IP author (section 4.1).  HintEstimator automates exactly
// that workflow: draw K random design points, evaluate them, and derive
// per-parameter importance and bias hints from rank correlations.

#include <cstddef>
#include <cstdint>

#include "core/evaluator.hpp"
#include "core/hints.hpp"
#include "core/parameter.hpp"
#include "obs/obs.hpp"

namespace nautilus {

struct HintEstimatorConfig {
    std::size_t samples = 80;  // the paper's budget
    std::uint64_t seed = 99;
    // Correlations with |r| below this floor are treated as noise: the
    // parameter gets no bias hint and minimum importance.
    double correlation_floor = 0.05;
    // When tracing is enabled, estimate() emits one "hint_estimate" event
    // with the per-parameter correlations and derived hints.
    obs::Tracer tracer;
};

class HintEstimator {
public:
    explicit HintEstimator(HintEstimatorConfig config = {});

    // Estimate hints for one metric.  `eval` must report the metric in
    // natural units; infeasible samples are discarded (and resampled).
    // The returned HintSet has confidence 0; the caller picks the guidance
    // level.  Biases describe the metric response ("increasing the parameter
    // increases the metric"), matching author-hint conventions.
    HintSet estimate(const ParameterSpace& space, const EvalFn& eval) const;

    // Spearman rank correlation between x and y (exposed for tests).
    static double rank_correlation(const std::vector<double>& x, const std::vector<double>& y);

private:
    HintEstimatorConfig config_;
};

}  // namespace nautilus
