#include "core/local_search.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/batch_evaluator.hpp"
#include "core/breed.hpp"

namespace nautilus {

namespace {

// Shared proposal move: mutate a copy of `current` with the hint-aware
// operator; guarantee at least one gene changes (a no-op proposal wastes a
// step without costing an evaluation, biasing budget accounting).  The
// BreedContext memoizes value distributions across proposals (local search
// never advances the generation, so the hoisted probabilities are static).
// `origins` (optional, one slot per gene) accumulates each changed gene's
// draw class across the bounded retry attempts; untouched genes stay
// parent_a.  Recording never consumes RNG draws (DESIGN.md §11).
Genome propose(const Genome& current, BreedContext& ctx, Rng& rng,
               obs::GeneOrigin* origins = nullptr)
{
    Genome next = current;
    if (origins != nullptr)
        std::fill_n(origins, next.size(), obs::GeneOrigin::parent_a);
    for (int attempt = 0; attempt < 16; ++attempt) {
        if (ctx.mutate(next, rng, nullptr, origins) > 0) return next;
    }
    // Degenerate space (all single-value domains): return unchanged.
    return next;
}

void check_engine_args(const ParameterSpace& space, const EvalFn& eval,
                       const HintSet& hints)
{
    if (space.empty()) throw std::invalid_argument("local search: empty parameter space");
    if (!eval) throw std::invalid_argument("local search: null evaluation function");
    hints.validate(space);
}

}  // namespace

void AnnealingConfig::validate() const
{
    if (max_distinct_evals == 0)
        throw std::invalid_argument("AnnealingConfig: max_distinct_evals must be >= 1");
    if (cooling <= 0.0 || cooling >= 1.0)
        throw std::invalid_argument("AnnealingConfig: cooling out of (0, 1)");
    if (steps_per_temperature == 0)
        throw std::invalid_argument("AnnealingConfig: steps_per_temperature must be >= 1");
    if (mutation_rate <= 0.0 || mutation_rate > 1.0)
        throw std::invalid_argument("AnnealingConfig: mutation_rate out of (0, 1]");
    if (initial_temperature < 0.0)
        throw std::invalid_argument("AnnealingConfig: negative initial temperature");
    if (eval_workers == 0)
        throw std::invalid_argument("AnnealingConfig: eval_workers must be >= 1");
    fault.validate();
}

SimulatedAnnealing::SimulatedAnnealing(const ParameterSpace& space, AnnealingConfig config,
                                       Direction direction, EvalFn eval, HintSet hints)
    : space_(space),
      config_(config),
      direction_(direction),
      eval_(std::move(eval)),
      hints_(std::move(hints))
{
    config_.validate();
    check_engine_args(space_, eval_, hints_);
}

Curve SimulatedAnnealing::run(std::uint64_t seed) const
{
    Rng rng{seed};
    FaultTolerantEvaluator<Evaluation> guard{eval_, config_.fault, config_.fault_penalty};
    guard.set_instrumentation(config_.obs);
    // Persistent store tier below the memo cache (see GaEngine::run_impl).
    EvalStore* store = config_.store.get();
    const std::uint64_t store_ns = config_.store_namespace;
    std::atomic<std::size_t> store_hits{0};
    std::atomic<std::size_t> store_misses{0};
    CachingEvaluator evaluator{[&](const Genome& g) -> Evaluation {
        if (store != nullptr) {
            if (const std::optional<StoredResult> cached = store->lookup(store_ns, g)) {
                if (const std::optional<Evaluation> e = stored_to_evaluation(*cached)) {
                    store_hits.fetch_add(1, std::memory_order_relaxed);
                    return *e;
                }
            }
        }
        EvalOutcome outcome;
        const Evaluation e = guard.evaluate(g, &outcome);
        if (store != nullptr) {
            store_misses.fetch_add(1, std::memory_order_relaxed);
            if (!outcome.penalized) store->insert(store_ns, g, stored_from_evaluation(e));
        }
        return e;
    }};
    BatchEvaluator batch_eval{config_.eval_workers};
    batch_eval.set_instrumentation(config_.obs);
    const obs::Tracer& tracer = config_.obs.tracer;
    if (obs::MetricsRegistry* reg = config_.obs.registry()) reg->counter("sa.runs").add();
    obs::ProgressTracker* progress = config_.obs.progress_tracker();
    if (progress != nullptr) progress->on_run_start("sa", config_.max_distinct_evals);
    if (tracer.enabled()) {
        obs::TraceEvent ev{"run_start"};
        ev.add("engine", "sa")
            .add("seed", static_cast<std::size_t>(seed))
            .add("budget", config_.max_distinct_evals)
            .add("workers", config_.eval_workers)
            .add("confidence", obs::FieldValue{hints_.confidence()});
        for (const auto& [key, value] : config_.obs.run_tags) ev.add(key, value);
        tracer.emit(std::move(ev));
    }
    obs::ScopedTimer run_span{tracer, "sa.run"};

    // Lineage recording (DESIGN.md section 11): every accepted chain step is
    // a survival, the best-so-far holder is the winner.
    std::optional<obs::LineageRecorder> lineage;
    std::uint64_t current_id = obs::k_no_parent;
    std::uint64_t best_id = obs::k_no_parent;
    std::vector<obs::GeneOrigin> prop_origins;
    if (tracer.enabled() || config_.obs.lineage_tracker() != nullptr) {
        lineage.emplace(&tracer, config_.obs.lineage_tracker(), "sa");
        prop_origins.resize(space_.size());
    }

    const auto emit_run_end = [&](bool feasible, double best_value) {
        if (lineage.has_value()) {
            std::vector<std::uint64_t> winners;
            if (feasible && best_id != obs::k_no_parent) winners.push_back(best_id);
            lineage->finish(winners);
        }
        if (progress != nullptr) {
            progress->on_units(evaluator.distinct_evaluations());
            if (feasible) progress->on_best(best_value);
            progress->on_run_end();
        }
        if (!tracer.enabled()) return;
        obs::TraceEvent ev{"run_end"};
        ev.add("engine", "sa")
            .add("distinct_evals", evaluator.distinct_evaluations())
            .add("total_calls", evaluator.total_calls())
            .add("inflight_waits", evaluator.inflight_waits())
            .add("feasible", obs::FieldValue{feasible})
            .add("best", obs::FieldValue{feasible ? best_value : 0.0})
            .add("eval_seconds", obs::FieldValue{batch_eval.eval_seconds()});
        if (store != nullptr)
            ev.add("store_hits", store_hits.load(std::memory_order_relaxed))
                .add("store_misses", store_misses.load(std::memory_order_relaxed));
        tracer.emit(std::move(ev));
    };
    const auto evaluate = [&](const Genome& g) {
        Evaluation out;
        batch_eval.evaluate(evaluator, std::span<const Genome>{&g, 1},
                            std::span<Evaluation>{&out, 1});
        return out;
    };
    const FitnessMapper mapper{direction_};
    Curve curve{direction_};

    BreedContext ctx{space_, hints_, config_.mutation_rate};

    // Start from a feasible random point (bounded retries).
    Genome current = Genome::random(space_, rng);
    if (lineage.has_value())
        current_id = lineage->on_root(0, obs::BirthOp::init, space_.size());
    Evaluation current_eval = evaluate(current);
    for (int tries = 0;
         !current_eval.feasible && tries < 200 &&
         evaluator.distinct_evaluations() < config_.max_distinct_evals;
         ++tries) {
        current = Genome::random(space_, rng);
        if (lineage.has_value())
            current_id = lineage->on_root(0, obs::BirthOp::init, space_.size());
        current_eval = evaluate(current);
    }
    if (!current_eval.feasible) {
        emit_run_end(false, 0.0);
        return curve;
    }
    if (lineage.has_value()) {
        lineage->on_improved(current_id);
        best_id = current_id;
    }

    double best = current_eval.value;
    curve.append(static_cast<double>(evaluator.distinct_evaluations()), best);

    // Auto temperature: a few probe moves estimate the cost scale.  The
    // probe chain is built single-threaded (mutation only consumes rng),
    // then evaluated as one concurrent batch; each probe adds at most one
    // distinct evaluation so the wave never overshoots the budget.
    double temperature = config_.initial_temperature;
    if (temperature == 0.0) {
        double spread = 0.0;
        const std::size_t remaining =
            config_.max_distinct_evals - evaluator.distinct_evaluations();
        std::vector<Genome> probes;
        Genome probe = current;
        std::uint64_t probe_id = current_id;
        for (std::size_t i = 0; i < std::min<std::size_t>(8, remaining); ++i) {
            probe = propose(probe, ctx, rng,
                            lineage.has_value() ? prop_origins.data() : nullptr);
            if (lineage.has_value())
                probe_id = lineage->on_child(probe_id, obs::k_no_parent, false, 0,
                                             prop_origins);
            probes.push_back(probe);
        }
        std::vector<Evaluation> probe_evals(probes.size());
        batch_eval.evaluate(evaluator, probes, std::span<Evaluation>{probe_evals});
        for (const Evaluation& e : probe_evals)
            if (e.feasible)
                spread = std::max(spread, std::abs(e.value - current_eval.value));
        temperature = spread > 0.0 ? spread : std::abs(best) * 0.1 + 1.0;
    }

    std::size_t step = 0;
    while (evaluator.distinct_evaluations() < config_.max_distinct_evals) {
        const Genome candidate = propose(
            current, ctx, rng, lineage.has_value() ? prop_origins.data() : nullptr);
        std::uint64_t cand_id = obs::k_no_parent;
        if (lineage.has_value())
            cand_id = lineage->on_child(current_id, obs::k_no_parent, false, step,
                                        prop_origins);
        const Evaluation cand_eval = evaluate(candidate);
        const double delta = mapper.fitness(cand_eval) - mapper.fitness(current_eval);
        const bool accept =
            delta >= 0.0 ||
            (std::isfinite(delta) && rng.bernoulli(std::exp(delta / temperature)));
        if (accept && cand_eval.feasible) {
            current = candidate;
            current_eval = cand_eval;
            if (lineage.has_value()) {
                lineage->on_survived(cand_id);
                current_id = cand_id;
            }
            if (no_worse(cand_eval.value, best, direction_)) {
                best = better_of(cand_eval.value, best, direction_);
                if (lineage.has_value()) {
                    lineage->on_improved(cand_id);
                    best_id = cand_id;
                }
                curve.append(static_cast<double>(evaluator.distinct_evaluations()), best);
            }
        }
        if (++step % config_.steps_per_temperature == 0)
            temperature = std::max(temperature * config_.cooling, 1e-12);
        if (progress != nullptr) {
            progress->on_units(evaluator.distinct_evaluations());
            progress->on_best(best);
        }
    }
    emit_run_end(true, best);
    return curve;
}

MultiRunCurve SimulatedAnnealing::run_many(std::size_t count) const
{
    if (count == 0)
        throw std::invalid_argument("SimulatedAnnealing::run_many: count must be >= 1");
    MultiRunCurve multi{direction_};
    Rng seeder{config_.seed};
    for (std::size_t i = 0; i < count; ++i) {
        Curve c = run(seeder.next_u64());
        if (!c.empty()) multi.add_run(std::move(c));
    }
    return multi;
}

void HillClimbConfig::validate() const
{
    if (max_distinct_evals == 0)
        throw std::invalid_argument("HillClimbConfig: max_distinct_evals must be >= 1");
    if (patience == 0) throw std::invalid_argument("HillClimbConfig: patience must be >= 1");
    if (mutation_rate <= 0.0 || mutation_rate > 1.0)
        throw std::invalid_argument("HillClimbConfig: mutation_rate out of (0, 1]");
    if (eval_workers == 0)
        throw std::invalid_argument("HillClimbConfig: eval_workers must be >= 1");
    fault.validate();
}

HillClimber::HillClimber(const ParameterSpace& space, HillClimbConfig config,
                         Direction direction, EvalFn eval, HintSet hints)
    : space_(space),
      config_(config),
      direction_(direction),
      eval_(std::move(eval)),
      hints_(std::move(hints))
{
    config_.validate();
    check_engine_args(space_, eval_, hints_);
}

Curve HillClimber::run(std::uint64_t seed) const
{
    Rng rng{seed};
    FaultTolerantEvaluator<Evaluation> guard{eval_, config_.fault, config_.fault_penalty};
    guard.set_instrumentation(config_.obs);
    // Persistent store tier below the memo cache (see GaEngine::run_impl).
    EvalStore* store = config_.store.get();
    const std::uint64_t store_ns = config_.store_namespace;
    std::atomic<std::size_t> store_hits{0};
    std::atomic<std::size_t> store_misses{0};
    CachingEvaluator evaluator{[&](const Genome& g) -> Evaluation {
        if (store != nullptr) {
            if (const std::optional<StoredResult> cached = store->lookup(store_ns, g)) {
                if (const std::optional<Evaluation> e = stored_to_evaluation(*cached)) {
                    store_hits.fetch_add(1, std::memory_order_relaxed);
                    return *e;
                }
            }
        }
        EvalOutcome outcome;
        const Evaluation e = guard.evaluate(g, &outcome);
        if (store != nullptr) {
            store_misses.fetch_add(1, std::memory_order_relaxed);
            if (!outcome.penalized) store->insert(store_ns, g, stored_from_evaluation(e));
        }
        return e;
    }};
    BatchEvaluator batch_eval{config_.eval_workers};
    batch_eval.set_instrumentation(config_.obs);
    const obs::Tracer& tracer = config_.obs.tracer;
    if (obs::MetricsRegistry* reg = config_.obs.registry()) reg->counter("hc.runs").add();
    obs::ProgressTracker* progress = config_.obs.progress_tracker();
    if (progress != nullptr) progress->on_run_start("hc", config_.max_distinct_evals);
    if (tracer.enabled()) {
        obs::TraceEvent ev{"run_start"};
        ev.add("engine", "hc")
            .add("seed", static_cast<std::size_t>(seed))
            .add("budget", config_.max_distinct_evals)
            .add("workers", config_.eval_workers)
            .add("confidence", obs::FieldValue{hints_.confidence()});
        for (const auto& [key, value] : config_.obs.run_tags) ev.add(key, value);
        tracer.emit(std::move(ev));
    }
    obs::ScopedTimer run_span{tracer, "hc.run"};

    // Lineage recording (DESIGN.md section 11): restarts mint new roots,
    // accepted candidates survive, the best-so-far holder is the winner.
    std::optional<obs::LineageRecorder> lineage;
    std::uint64_t current_id = obs::k_no_parent;
    std::uint64_t best_id = obs::k_no_parent;
    std::vector<obs::GeneOrigin> prop_origins;
    if (tracer.enabled() || config_.obs.lineage_tracker() != nullptr) {
        lineage.emplace(&tracer, config_.obs.lineage_tracker(), "hc");
        prop_origins.resize(space_.size());
    }

    const auto evaluate = [&](const Genome& g) {
        Evaluation out;
        batch_eval.evaluate(evaluator, std::span<const Genome>{&g, 1},
                            std::span<Evaluation>{&out, 1});
        return out;
    };
    Curve curve{direction_};

    BreedContext ctx{space_, hints_, config_.mutation_rate};

    double best = worst_value(direction_);
    bool have_best = false;

    Genome current = Genome::random(space_, rng);
    if (lineage.has_value())
        current_id = lineage->on_root(0, obs::BirthOp::init, space_.size());
    Evaluation current_eval = evaluate(current);
    std::size_t stale = 0;
    std::size_t step = 0;

    auto note = [&](const Evaluation& e, std::uint64_t id) {
        if (!e.feasible) return;
        if (!have_best || no_worse(e.value, best, direction_)) {
            best = better_of(e.value, best, direction_);
            have_best = true;
            if (lineage.has_value()) {
                lineage->on_improved(id);
                best_id = id;
            }
            curve.append(static_cast<double>(evaluator.distinct_evaluations()), best);
        }
    };
    note(current_eval, current_id);

    while (evaluator.distinct_evaluations() < config_.max_distinct_evals) {
        ++step;
        if (stale >= config_.patience || !current_eval.feasible) {
            current = Genome::random(space_, rng);
            if (lineage.has_value())
                current_id = lineage->on_root(step, obs::BirthOp::init, space_.size());
            current_eval = evaluate(current);
            note(current_eval, current_id);
            stale = 0;
            continue;
        }
        const Genome candidate = propose(
            current, ctx, rng, lineage.has_value() ? prop_origins.data() : nullptr);
        std::uint64_t cand_id = obs::k_no_parent;
        if (lineage.has_value())
            cand_id = lineage->on_child(current_id, obs::k_no_parent, false, step,
                                        prop_origins);
        const Evaluation cand_eval = evaluate(candidate);
        if (cand_eval.feasible &&
            no_worse(cand_eval.value, current_eval.value, direction_)) {
            const bool strictly =
                !no_worse(current_eval.value, cand_eval.value, direction_);
            current = candidate;
            current_eval = cand_eval;
            if (lineage.has_value()) {
                lineage->on_survived(cand_id);
                current_id = cand_id;
            }
            note(cand_eval, cand_id);
            stale = strictly ? 0 : stale + 1;
        }
        else {
            ++stale;
        }
        if (progress != nullptr) {
            progress->on_units(evaluator.distinct_evaluations());
            if (have_best) progress->on_best(best);
        }
    }
    if (lineage.has_value()) {
        std::vector<std::uint64_t> winners;
        if (have_best && best_id != obs::k_no_parent) winners.push_back(best_id);
        lineage->finish(winners);
    }
    if (progress != nullptr) {
        progress->on_units(evaluator.distinct_evaluations());
        progress->on_run_end();
    }
    if (tracer.enabled()) {
        obs::TraceEvent ev{"run_end"};
        ev.add("engine", "hc")
            .add("distinct_evals", evaluator.distinct_evaluations())
            .add("total_calls", evaluator.total_calls())
            .add("inflight_waits", evaluator.inflight_waits())
            .add("feasible", obs::FieldValue{have_best})
            .add("best", obs::FieldValue{have_best ? best : 0.0})
            .add("eval_seconds", obs::FieldValue{batch_eval.eval_seconds()});
        if (store != nullptr)
            ev.add("store_hits", store_hits.load(std::memory_order_relaxed))
                .add("store_misses", store_misses.load(std::memory_order_relaxed));
        tracer.emit(std::move(ev));
    }
    return curve;
}

MultiRunCurve HillClimber::run_many(std::size_t count) const
{
    if (count == 0)
        throw std::invalid_argument("HillClimber::run_many: count must be >= 1");
    MultiRunCurve multi{direction_};
    Rng seeder{config_.seed};
    for (std::size_t i = 0; i < count; ++i) {
        Curve c = run(seeder.next_u64());
        if (!c.empty()) multi.add_run(std::move(c));
    }
    return multi;
}

}  // namespace nautilus
