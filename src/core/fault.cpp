#include "core/fault.hpp"

#include <cmath>

namespace nautilus {

const char* eval_status_name(EvalStatus status)
{
    switch (status) {
        case EvalStatus::ok: return "ok";
        case EvalStatus::failed: return "failed";
        case EvalStatus::timed_out: return "timed_out";
    }
    return "?";
}

void RetryPolicy::validate() const
{
    if (max_attempts == 0)
        throw std::invalid_argument("RetryPolicy: max_attempts must be >= 1");
    if (backoff_ms < 0.0) throw std::invalid_argument("RetryPolicy: backoff_ms < 0");
    if (backoff_multiplier < 1.0)
        throw std::invalid_argument("RetryPolicy: backoff_multiplier must be >= 1");
    if (jitter < 0.0 || jitter > 1.0)
        throw std::invalid_argument("RetryPolicy: jitter out of [0, 1]");
    if (timeout_seconds < 0.0)
        throw std::invalid_argument("RetryPolicy: timeout_seconds < 0");
}

double RetryPolicy::backoff_before(std::size_t attempt, std::uint64_t key) const
{
    if (attempt < 2 || backoff_ms <= 0.0) return 0.0;
    const double base =
        backoff_ms * std::pow(backoff_multiplier, static_cast<double>(attempt - 2));
    if (jitter <= 0.0) return base;
    // Hash (seed, key, attempt) to a deterministic unit draw; no shared RNG,
    // so concurrent evaluations cannot perturb each other's schedules.
    const std::uint64_t h =
        mix64(hash_combine(hash_combine(jitter_seed, key), static_cast<std::uint64_t>(attempt)));
    const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
    return base * (1.0 + jitter * (2.0 * unit - 1.0));
}

}  // namespace nautilus
