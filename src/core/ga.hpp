#pragma once
// The genetic algorithm engine.
//
// One engine serves both roles in the paper: with HintSet::none it is the
// *baseline GA* (PyEvolve-style defaults: population 10, per-gene mutation
// rate 0.1, 80 generations); with author hints and nonzero confidence it is
// *Nautilus*.  The evaluation cost model (distinct synthesized designs) is
// delegated to CachingEvaluator.

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/batch_evaluator.hpp"
#include "core/eval_store.hpp"
#include "core/evaluator.hpp"
#include "core/fault.hpp"
#include "core/fitness.hpp"
#include "core/genome.hpp"
#include "core/hints.hpp"
#include "core/operators.hpp"
#include "core/run_stats.hpp"
#include "core/selection.hpp"

namespace nautilus {

struct GaCheckpoint;  // core/checkpoint.hpp

struct GaConfig {
    std::size_t population_size = 10;   // paper section 4.1
    std::size_t generations = 80;       // paper section 4.1
    double mutation_rate = 0.1;         // per-gene, paper section 4.1
    double crossover_rate = 0.9;
    CrossoverKind crossover = CrossoverKind::single_point;
    // Fitness-proportional selection matches the PyEvolve-era baseline the
    // paper modified; rank/tournament are stronger modern alternatives.
    SelectionConfig selection{SelectionKind::roulette, 1.8, 2};
    std::size_t elitism = 1;            // best members copied unchanged
    std::uint64_t seed = 1;

    // Route breeding through the pre-refactor per-call scalar path instead
    // of the data-oriented BreedContext (core/breed.hpp).  Both paths
    // consume the identical RNG sequence and produce bit-for-bit identical
    // results (CI gates this with trace_diff on identical seeds), so the
    // flag is deliberately excluded from config_fingerprint: a checkpoint
    // may resume under either path.  Kept as the reference implementation
    // during the transition; `nautilus_cli --scalar-breed` exposes it.
    bool scalar_breed = false;

    // Early termination.  The paper's usage scenario wants "a good design
    // point that is within some threshold of what the IP generator can
    // offer" -- once that is met, further synthesis jobs are waste.
    std::optional<double> target_value;  // stop when best-so-far reaches this
    // Stop after this many consecutive generations without best-so-far
    // improvement (0 = run all generations).
    std::size_t stall_generations = 0;

    // Threads evaluating each generation concurrently (1 = serial).  The
    // population size caps the useful parallelism (paper section 2); results
    // are bit-for-bit identical for any worker count.
    std::size_t eval_workers = 1;
    // Invoked after each generation's evaluation batch with the freshly
    // evaluated genomes and the measured wall-clock -- e.g. to drive a
    // simulated synth::SynthesisCluster alongside the real pool.
    BatchObserver eval_observer;
    // Tracing + metrics (both off by default; see src/obs/ and DESIGN.md
    // section 7).  Search results are identical with or without tracing.
    obs::Instrumentation obs;

    // Fault tolerance (DESIGN.md section 8).  With tolerate_failures on,
    // evaluations that still fail after the retry ladder are quarantined and
    // answered with `fault_penalty` (infeasible by default) instead of
    // aborting the run.
    FaultPolicy fault;
    Evaluation fault_penalty{false, 0.0};

    // Cross-run persistent evaluation store (core/eval_store.hpp).  When
    // set, the store is consulted below the per-run memoization cache and
    // above the fault guard: a hit skips the evaluator entirely but still
    // charges one distinct evaluation, so results and every determinism-
    // gated counter are bit-for-bit identical with or without the store.
    // Deliberately excluded from config_fingerprint: a checkpointed run may
    // resume with or without a store attached.
    std::shared_ptr<EvalStore> store;
    std::uint64_t store_namespace = 0;  // EvalStore::namespace_key(...)

    // Cooperative cancellation (the job server's DELETE /jobs/<id>).  When
    // set and observed true at a generation boundary, the run writes a
    // checkpoint (when checkpoint_path is set) and stops with
    // result.halted = true, exactly like halt_at_generation -- so a
    // cancelled job can be resubmitted and resumed bit-exactly.  Like the
    // store, deliberately excluded from config_fingerprint: a checkpoint may
    // resume with or without a token attached.
    std::shared_ptr<const std::atomic<bool>> cancel;

    // Checkpoint/resume.  When `checkpoint_path` is set, the full run state
    // is written there every `checkpoint_every` generations (atomically, via
    // a temp file).  `halt_at_generation` (when nonzero) writes a checkpoint
    // at that generation and stops the run with result.halted = true -- a
    // deterministic stand-in for "the process was killed", used by the
    // resume tests and `nautilus_cli --die-at-gen`.
    std::string checkpoint_path;
    std::size_t checkpoint_every = 1;
    std::size_t halt_at_generation = 0;  // 0 = never halt

    void validate() const;  // throws std::invalid_argument on bad settings
};

struct GenerationStats {
    std::size_t generation = 0;
    double best = 0.0;            // best fitness-feasible value this generation
    double mean = 0.0;            // mean over feasible members
    double worst = 0.0;
    std::size_t feasible = 0;     // feasible members this generation
    double best_so_far = 0.0;     // best value seen in the whole run
    std::size_t distinct_evals = 0;  // cumulative synthesis jobs
};

struct RunResult {
    std::vector<GenerationStats> history;
    Genome best_genome;
    Evaluation best_eval;
    std::size_t distinct_evals = 0;
    std::size_t total_eval_calls = 0;  // including cache hits
    Curve curve;  // best-so-far vs distinct evaluations
    bool hit_target = false;     // stopped because target_value was reached
    bool stalled = false;        // stopped by the stall_generations criterion
    bool halted = false;         // stopped by halt_at_generation (checkpointed)
    double eval_seconds = 0.0;   // measured wall-clock spent evaluating
    std::size_t eval_workers = 1;  // parallelism the run evaluated with
    std::size_t start_generation = 0;  // nonzero when resumed from a checkpoint

    // End-of-run engine state, for resume-determinism auditing: a resumed
    // run must reproduce these bit-for-bit.
    std::vector<Genome> final_population;
    std::array<std::uint64_t, 4> final_rng_state{};

    // Fault-tolerance accounting (attempts == distinct evals + retries;
    // with a store attached, attempts == distinct - store_hits + retries).
    FaultCounters fault;

    // Persistent-store accounting for this run (both 0 when no store is
    // attached): memo misses answered by the store vs. paid fresh.
    std::size_t store_hits = 0;
    std::size_t store_misses = 0;

    RunResult() : curve(Direction::maximize) {}
    explicit RunResult(Direction dir) : curve(dir) {}
};

// Aggregate evaluation-pipeline accounting over one or more runs, surfaced
// by run_many() and printed in end-of-run summaries (CLI, experiments).
struct EvalSummary {
    double eval_seconds = 0.0;
    std::size_t eval_workers = 1;
    std::size_t distinct_evals = 0;   // synthesis jobs (the paper's cost)
    std::size_t total_calls = 0;      // all evaluate() calls incl. cache hits
    std::size_t runs = 0;
    std::size_t store_hits = 0;       // memo misses answered by the store
    std::size_t store_misses = 0;     // memo misses paid fresh

    void absorb(const RunResult& r)
    {
        eval_seconds += r.eval_seconds;
        eval_workers = r.eval_workers;
        distinct_evals += r.distinct_evals;
        total_calls += r.total_eval_calls;
        store_hits += r.store_hits;
        store_misses += r.store_misses;
        ++runs;
    }

    // Fraction of memo misses the persistent store answered (0 when no
    // store was attached).
    double store_hit_rate() const
    {
        const std::size_t probes = store_hits + store_misses;
        return probes == 0 ? 0.0 : static_cast<double>(store_hits) / probes;
    }

    // Fraction of calls answered from the memoization cache.
    double cache_hit_rate() const
    {
        if (total_calls == 0) return 0.0;
        return 1.0 - static_cast<double>(distinct_evals) / static_cast<double>(total_calls);
    }
};

class GaEngine {
public:
    // `hints` must validate against `space`; pass HintSet::none(space) for
    // the baseline GA.  The engine owns no evaluator state between runs:
    // each run() creates a fresh cache, so costs are per-query as in the
    // paper.
    GaEngine(const ParameterSpace& space, GaConfig config, Direction direction, EvalFn eval,
             HintSet hints);

    const GaConfig& config() const { return config_; }
    Direction direction() const { return direction_; }
    const HintSet& hints() const { return hints_; }

    // Seed part of the initial population with known configurations (e.g.
    // the IP's shipped default, or the best points of a previous query).
    // At most population_size genomes are used; the rest stay random.
    // Throws if any genome is incompatible with the space.
    void seed_population(std::vector<Genome> seeds);
    const std::vector<Genome>& seeds() const { return seeds_; }

    // Run once with the config seed.
    RunResult run() const;

    // Run once with an explicit seed (overrides config.seed).
    RunResult run(std::uint64_t seed) const;

    // Resume a checkpointed run.  The engine must be constructed over the
    // same space/config/hints the checkpoint was written with (validated by
    // a config fingerprint; throws std::runtime_error on mismatch).  The
    // returned result -- history, curve, best genome, final population, RNG
    // state, distinct-eval counts -- is bit-for-bit identical to a run that
    // was never interrupted, at any eval_workers count.
    RunResult resume(const std::string& checkpoint_path) const;

    // Fingerprint of everything resume-determinism depends on: the space
    // shape, the determinism-relevant config fields, the hints and the run
    // seed.  Stored in checkpoints and compared on resume.
    std::uint64_t config_fingerprint(std::uint64_t seed) const;

    // `count` independent runs with seeds derived from config.seed, averaged
    // into a MultiRunCurve (the paper averages 20-40 runs per experiment).
    // When `summary` is non-null it receives the aggregate evaluation
    // accounting (wall-clock, distinct vs. total calls) across all runs.
    MultiRunCurve run_many(std::size_t count, EvalSummary* summary = nullptr) const;

private:
    RunResult run_impl(std::uint64_t seed, const GaCheckpoint* restored) const;

    const ParameterSpace& space_;
    GaConfig config_;
    Direction direction_;
    EvalFn eval_;
    HintSet hints_;
    std::vector<Genome> seeds_;
};

}  // namespace nautilus
