#include "core/hint_estimator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "core/genome.hpp"
#include "core/rng.hpp"

namespace nautilus {

HintEstimator::HintEstimator(HintEstimatorConfig config) : config_(config)
{
    if (config_.samples < 8)
        throw std::invalid_argument("HintEstimator: need at least 8 samples");
    if (config_.correlation_floor < 0.0 || config_.correlation_floor >= 1.0)
        throw std::invalid_argument("HintEstimator: correlation_floor out of [0, 1)");
}

namespace {

// Average ranks with ties sharing the mean rank.
std::vector<double> ranks_of(const std::vector<double>& x)
{
    const std::size_t n = x.size();
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) { return x[a] < x[b]; });
    std::vector<double> ranks(n, 0.0);
    std::size_t i = 0;
    while (i < n) {
        std::size_t j = i;
        while (j + 1 < n && x[order[j + 1]] == x[order[i]]) ++j;
        const double mean_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0;
        for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = mean_rank;
        i = j + 1;
    }
    return ranks;
}

double pearson(const std::vector<double>& x, const std::vector<double>& y)
{
    const std::size_t n = x.size();
    const double mx = std::accumulate(x.begin(), x.end(), 0.0) / static_cast<double>(n);
    const double my = std::accumulate(y.begin(), y.end(), 0.0) / static_cast<double>(n);
    double sxy = 0.0;
    double sxx = 0.0;
    double syy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double dx = x[i] - mx;
        const double dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0) return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

}  // namespace

double HintEstimator::rank_correlation(const std::vector<double>& x,
                                       const std::vector<double>& y)
{
    if (x.size() != y.size())
        throw std::invalid_argument("rank_correlation: length mismatch");
    if (x.size() < 2) return 0.0;
    return pearson(ranks_of(x), ranks_of(y));
}

HintSet HintEstimator::estimate(const ParameterSpace& space, const EvalFn& eval) const
{
    if (!eval) throw std::invalid_argument("HintEstimator::estimate: null eval");
    Rng rng{config_.seed};

    std::vector<Genome> samples;
    std::vector<double> values;
    samples.reserve(config_.samples);
    values.reserve(config_.samples);
    // Draw feasible samples; bound retries so sparse spaces terminate.
    const std::size_t max_draws = config_.samples * 20;
    for (std::size_t draw = 0; draw < max_draws && samples.size() < config_.samples; ++draw) {
        Genome g = Genome::random(space, rng);
        const Evaluation e = eval(g);
        if (!e.feasible) continue;
        samples.push_back(std::move(g));
        values.push_back(e.value);
    }
    if (samples.size() < 8)
        throw std::runtime_error("HintEstimator::estimate: too few feasible samples");

    HintSet hints = HintSet::none(space);
    std::vector<double> abs_corr(space.size(), 0.0);

    for (std::size_t p = 0; p < space.size(); ++p) {
        const bool ordered = space[p].domain.ordered();
        std::vector<double> xs(samples.size());
        for (std::size_t s = 0; s < samples.size(); ++s)
            xs[s] = static_cast<double>(samples[s].gene(p));

        if (ordered) {
            abs_corr[p] = rank_correlation(xs, values);
        }
        else {
            // Unordered categorical: strength from between-group variance
            // (correlation ratio eta), sign undefined.
            const std::size_t k = space[p].domain.cardinality();
            std::vector<double> group_sum(k, 0.0);
            std::vector<std::size_t> group_n(k, 0);
            double mean = 0.0;
            for (std::size_t s = 0; s < samples.size(); ++s) {
                group_sum[samples[s].gene(p)] += values[s];
                ++group_n[samples[s].gene(p)];
                mean += values[s];
            }
            mean /= static_cast<double>(samples.size());
            double ss_between = 0.0;
            double ss_total = 0.0;
            for (std::size_t g = 0; g < k; ++g) {
                if (group_n[g] == 0) continue;
                const double gm = group_sum[g] / static_cast<double>(group_n[g]);
                ss_between += static_cast<double>(group_n[g]) * (gm - mean) * (gm - mean);
            }
            for (double v : values) ss_total += (v - mean) * (v - mean);
            abs_corr[p] = ss_total > 0.0 ? std::sqrt(ss_between / ss_total) : 0.0;
        }
    }

    double max_abs = 0.0;
    for (std::size_t p = 0; p < space.size(); ++p)
        max_abs = std::max(max_abs, std::abs(abs_corr[p]));

    // Spurious correlations of K independent samples scale like 1/sqrt(K).
    // Half a standard error keeps weak-but-real trends (the kind a
    // non-expert would still act on) at the cost of occasionally trusting
    // noise -- which the GA's stochastic floor tolerates by design.
    const double noise_floor = std::max(
        config_.correlation_floor, 0.5 / std::sqrt(static_cast<double>(samples.size())));

    for (std::size_t p = 0; p < space.size(); ++p) {
        ParamHints& h = hints.param(p);
        const double corr = abs_corr[p];
        const double strength = std::abs(corr);
        if (strength < noise_floor || max_abs == 0.0) {
            h.importance = 1.0;
            continue;
        }
        // Importance 1..100 from relative correlation strength, square-root
        // compressed: a parameter whose effect is masked by a dominant one
        // in the global sample still matters locally.  Decay lets the search
        // broaden once the dominant parameters are settled (the estimate is
        // noisy, so never trust it forever).
        h.importance =
            std::clamp(1.0 + 99.0 * std::sqrt(strength / max_abs), 1.0, 100.0);
        h.importance_decay = 0.90;
        if (space[p].domain.ordered()) h.bias = std::clamp(corr, -1.0, 1.0);
    }

    if (config_.tracer.enabled()) {
        std::vector<double> importances(space.size());
        std::vector<double> biases(space.size());  // NaN = no bias hint
        for (std::size_t p = 0; p < space.size(); ++p) {
            importances[p] = hints.param(p).importance;
            biases[p] = hints.param(p).bias.value_or(
                std::numeric_limits<double>::quiet_NaN());
        }
        obs::TraceEvent ev{"hint_estimate"};
        ev.add("samples", samples.size())
            .add("requested", config_.samples)
            .add("noise_floor", obs::FieldValue{noise_floor})
            .add("correlation", obs::FieldValue{abs_corr})
            .add("importance", obs::FieldValue{std::move(importances)})
            .add("bias", obs::FieldValue{std::move(biases)});
        config_.tracer.emit(std::move(ev));
    }
    return hints;
}

}  // namespace nautilus
