#pragma once
// Constrained queries.
//
// The paper (section 2, fitness function) notes the fitness can "constrain
// the algorithm to only explore specific portions of the solution space
// (e.g., by assigning very low scores to solutions lying in regions of the
// design space that are not of interest or should be avoided)".  This header
// implements that mechanism for metric bounds: "maximize freq_mhz subject to
// area_luts <= 4000".
//
// Two enforcement modes:
//  * hard    -- violating points are reported infeasible (the GA's -inf
//               fitness), exactly the "very low scores" device;
//  * penalty -- the objective is degraded proportionally to the relative
//               violation, leaving a gradient back toward the feasible
//               region (useful when feasible points are rare).

#include <span>
#include <vector>

#include "core/evaluator.hpp"
#include "ip/dataset.hpp"
#include "ip/ip_generator.hpp"

namespace nautilus::exp {

struct Constraint {
    ip::Metric metric = ip::Metric::area_luts;
    enum class Bound { upper, lower } bound = Bound::upper;
    double limit = 0.0;

    // Relative violation in [0, inf): 0 when satisfied.
    double violation(double value) const;
    bool satisfied(double value) const { return violation(value) == 0.0; }
};

enum class ConstraintMode { hard, penalty };

// Evaluation function for `objective` under `constraints`.
// In penalty mode the returned value is worsened by
//   |objective| * penalty_weight * total_relative_violation
// in the direction that reduces fitness.
EvalFn constrained_eval(const ip::IpGenerator& generator, ip::Metric objective,
                        Direction direction, std::vector<Constraint> constraints,
                        ConstraintMode mode, double penalty_weight = 2.0);

// Fraction of `dataset` entries that satisfy every constraint (among
// feasible entries); gauges how hard the constrained query is.
double constraint_satisfaction_rate(const ip::Dataset& dataset,
                                    std::span<const Constraint> constraints);

}  // namespace nautilus::exp
