#include "exp/constraint.hpp"

#include <cmath>
#include <stdexcept>

namespace nautilus::exp {

double Constraint::violation(double value) const
{
    if (limit == 0.0) {
        // Degenerate normalization; treat as satisfied iff on the right side.
        const bool ok = bound == Bound::upper ? value <= 0.0 : value >= 0.0;
        return ok ? 0.0 : 1.0;
    }
    const double rel = (value - limit) / std::abs(limit);
    if (bound == Bound::upper) return rel > 0.0 ? rel : 0.0;
    return rel < 0.0 ? -rel : 0.0;
}

EvalFn constrained_eval(const ip::IpGenerator& generator, ip::Metric objective,
                        Direction direction, std::vector<Constraint> constraints,
                        ConstraintMode mode, double penalty_weight)
{
    if (penalty_weight < 0.0)
        throw std::invalid_argument("constrained_eval: negative penalty weight");
    return [&generator, objective, direction, constraints = std::move(constraints), mode,
            penalty_weight](const Genome& genome) -> Evaluation {
        const ip::MetricValues values = generator.evaluate(genome);
        if (!values.feasible) return {false, 0.0};
        const auto obj = values.try_get(objective);
        if (!obj) return {false, 0.0};

        double total_violation = 0.0;
        for (const Constraint& c : constraints) {
            const auto v = values.try_get(c.metric);
            if (!v) return {false, 0.0};  // unconstrained metric missing: reject
            total_violation += c.violation(*v);
        }
        if (total_violation == 0.0) return {true, *obj};
        if (mode == ConstraintMode::hard) return {false, 0.0};

        // Penalty: push the objective toward "worse" proportionally.
        const double magnitude = std::max(std::abs(*obj), 1e-9);
        const double penalty = magnitude * penalty_weight * total_violation;
        const double penalized =
            *obj - direction_sign(direction) * penalty;
        return {true, penalized};
    };
}

double constraint_satisfaction_rate(const ip::Dataset& dataset,
                                    std::span<const Constraint> constraints)
{
    std::size_t feasible = 0;
    std::size_t satisfied = 0;
    for (const auto& entry : dataset) {
        if (!entry.values.feasible) continue;
        ++feasible;
        bool ok = true;
        for (const Constraint& c : constraints) {
            const auto v = entry.values.try_get(c.metric);
            if (!v || !c.satisfied(*v)) {
                ok = false;
                break;
            }
        }
        if (ok) ++satisfied;
    }
    if (feasible == 0)
        throw std::invalid_argument("constraint_satisfaction_rate: no feasible entries");
    return static_cast<double>(satisfied) / static_cast<double>(feasible);
}

}  // namespace nautilus::exp
