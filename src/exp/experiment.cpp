#include "exp/experiment.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <stdexcept>

#include "ip/metrics.hpp"

namespace nautilus::exp {

Experiment::Experiment(const ip::IpGenerator& generator, Query query,
                       ExperimentConfig config)
    : generator_(generator), query_(std::move(query)), config_(config)
{
    config_.ga.validate();
    if (config_.runs == 0) throw std::invalid_argument("Experiment: runs must be >= 1");
}

void Experiment::use_dataset(const ip::Dataset& dataset)
{
    dataset_ = &dataset;
}

void Experiment::add_engine(EngineSpec spec)
{
    engines_.push_back(std::move(spec));
}

void Experiment::add_standard_engines()
{
    add_engine({"baseline", GuidanceLevel::none, std::nullopt, std::nullopt});
    add_engine({"nautilus-weak", GuidanceLevel::weak, std::nullopt, std::nullopt});
    add_engine({"nautilus-strong", GuidanceLevel::strong, std::nullopt, std::nullopt});
}

void Experiment::enable_random_search(std::size_t max_distinct_evals)
{
    random_budget_ = max_distinct_evals;
}

EvalFn Experiment::make_eval() const
{
    if (dataset_ != nullptr)
        return dataset_->lookup_eval(query_.metric, query_eval(generator_, query_));
    return query_eval(generator_, query_);
}

ExperimentResult Experiment::run() const
{
    if (engines_.empty()) throw std::logic_error("Experiment::run: no engines added");

    ExperimentResult result;
    result.query = query_;
    result.config = config_;

    const EvalFn eval = make_eval();
    const HintSet base_hints = query_hints(generator_, query_);

    for (const EngineSpec& spec : engines_) {
        HintSet hints = spec.hints_override.value_or(base_hints);
        double confidence = guidance_confidence(spec.level, hints.confidence());
        if (spec.confidence_override) confidence = *spec.confidence_override;
        hints.set_confidence(confidence);

        const GaEngine engine{generator_.space(), config_.ga, query_.direction, eval, hints};
        EvalSummary summary;
        MultiRunCurve curve = engine.run_many(config_.runs, &summary);
        result.engines.emplace_back(spec, std::move(curve), summary);
    }

    if (random_budget_) {
        RandomSearchConfig rc;
        rc.max_distinct_evals = *random_budget_;
        rc.seed = config_.ga.seed ^ 0x5eedull;
        // Random search shares the GA's evaluation pipeline settings so the
        // comparison (and any trace) covers both engines uniformly.
        rc.eval_workers = config_.ga.eval_workers;
        rc.obs = config_.ga.obs;
        rc.store = config_.ga.store;
        rc.store_namespace = config_.ga.store_namespace;
        const RandomSearch rs{generator_.space(), rc, query_.direction, eval};
        result.random_search = rs.run_many(config_.runs);
    }
    return result;
}

std::vector<double> ExperimentResult::shared_grid() const
{
    double max_evals = 0.0;
    for (const auto& e : engines) {
        for (std::size_t r = 0; r < e.curve.runs(); ++r)
            max_evals = std::max(max_evals, e.curve.run(r).final_evals());
    }
    if (random_search) {
        for (std::size_t r = 0; r < random_search->runs(); ++r)
            max_evals = std::max(max_evals, random_search->run(r).final_evals());
    }
    const std::size_t points = std::max<std::size_t>(config.grid_points, 2);
    std::vector<double> grid(points);
    for (std::size_t i = 0; i < points; ++i)
        grid[i] = max_evals * static_cast<double>(i + 1) / static_cast<double>(points);
    return grid;
}

std::vector<LabeledSeries> ExperimentResult::series() const
{
    const std::vector<double> grid = shared_grid();
    std::vector<LabeledSeries> out;
    out.reserve(engines.size() + 1);
    for (const auto& e : engines) out.push_back({e.spec.label, e.curve.mean_curve(grid)});
    if (random_search) out.push_back({"random", random_search->mean_curve(grid)});
    return out;
}

void ExperimentResult::print_convergence(std::ostream& out, double threshold,
                                         const std::string& threshold_label) const
{
    out << "  convergence to " << threshold_label << " (" << direction_name(query.direction)
        << " " << ip::metric_name(query.metric) << " to "
        << threshold << " " << ip::metric_unit(query.metric) << "):\n";

    std::optional<double> baseline_crossing;
    for (std::size_t i = 0; i < engines.size(); ++i) {
        const auto conv = engines[i].curve.evals_to_reach(threshold);
        const auto crossing = engines[i].curve.mean_curve_crossing(threshold);
        out << "    " << std::setw(18) << std::left << engines[i].spec.label;
        if (conv.reached == 0) {
            out << "never reached (0/" << conv.runs << " runs)\n";
            continue;
        }
        if (!crossing) {
            out << "mean curve never crosses; per-run mean " << std::fixed
                << std::setprecision(1) << conv.mean_evals << " designs, " << conv.reached
                << "/" << conv.runs << " runs reached\n";
            continue;
        }
        out << std::fixed << std::setprecision(1) << std::setw(8) << *crossing
            << " designs (mean curve crossing; per-run mean " << conv.mean_evals << ", "
            << conv.reached << "/" << conv.runs << " reached)";
        if (i == 0) {
            baseline_crossing = *crossing;
        }
        else if (baseline_crossing && *crossing > 0.0) {
            out << "  [" << std::setprecision(2) << *baseline_crossing / *crossing
                << "x fewer than baseline]";
        }
        out << '\n';
    }
    if (random_search) {
        const auto conv = random_search->evals_to_reach(threshold);
        out << "    " << std::setw(18) << std::left << "random";
        if (conv.reached * 2 < conv.runs)
            out << "reached in only " << conv.reached << "/" << conv.runs << " runs\n";
        else
            out << std::fixed << std::setprecision(1) << std::setw(8) << conv.mean_evals
                << " designs evaluated on average (" << conv.reached << "/" << conv.runs
                << " runs reached)\n";
    }
}

void ExperimentResult::print(std::ostream& out) const
{
    out << "== query: " << query.name << " (" << direction_name(query.direction) << " "
        << ip::metric_name(query.metric) << ", " << config.runs << " runs, pop "
        << config.ga.population_size << ", " << config.ga.generations << " generations)\n";
    const auto s = series();
    print_series_table(out, "# designs", std::string(ip::metric_name(query.metric)) + " [" +
                                              ip::metric_unit(query.metric) + "]",
                       shared_grid(), s);
    print_ascii_chart(out, query.name, s);
    for (const auto& e : engines) {
        out << "  " << std::setw(18) << std::left << e.spec.label << "final best (mean over runs): "
            << std::fixed << std::setprecision(3) << e.curve.mean_final_best() << " "
            << ip::metric_unit(query.metric) << '\n';
    }
    out << "  evaluation pipeline (" << config.ga.eval_workers << " worker"
        << (config.ga.eval_workers == 1 ? "" : "s") << "):\n";
    for (const auto& e : engines) {
        const EvalSummary& s = e.eval;
        out << "    " << std::setw(18) << std::left << e.spec.label << std::fixed
            << std::setprecision(3) << s.eval_seconds << " s eval wall-clock, "
            << s.distinct_evals << " distinct / " << s.total_calls << " calls ("
            << std::setprecision(1) << s.cache_hit_rate() * 100.0 << "% cache hits)\n";
    }
}

}  // namespace nautilus::exp
