#include "exp/series.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>

namespace nautilus::exp {

double series_value_at(const std::vector<CurvePoint>& points, double x)
{
    double value = std::numeric_limits<double>::quiet_NaN();
    for (const CurvePoint& p : points) {
        if (p.evals > x) break;
        value = p.best;
    }
    return value;
}

namespace {

std::string format_value(double v)
{
    if (std::isnan(v)) return "-";
    std::ostringstream out;
    const double mag = std::abs(v);
    if (mag != 0.0 && (mag >= 100000.0 || mag < 0.01))
        out << std::scientific << std::setprecision(3) << v;
    else if (mag >= 100.0)
        out << std::fixed << std::setprecision(1) << v;
    else
        out << std::fixed << std::setprecision(3) << v;
    return out.str();
}

double axis_transform(double v, bool log_scale)
{
    return log_scale ? std::log10(std::max(v, 1e-12)) : v;
}

}  // namespace

void print_series_table(std::ostream& out, const std::string& x_label,
                        const std::string& y_label, const std::vector<double>& grid,
                        const std::vector<LabeledSeries>& series)
{
    constexpr int col = 16;
    out << "  [" << y_label << "]\n";
    out << "  " << std::setw(col) << std::left << x_label;
    for (const auto& s : series) out << std::setw(col) << std::left << s.label;
    out << '\n';
    for (double x : grid) {
        out << "  " << std::setw(col) << std::left << format_value(x);
        for (const auto& s : series)
            out << std::setw(col) << std::left << format_value(series_value_at(s.points, x));
        out << '\n';
    }
}

void print_ascii_chart(std::ostream& out, const std::string& title,
                       const std::vector<LabeledSeries>& series, int width, int height)
{
    static constexpr char glyphs[] = {'B', 'N', 'S', 'R', 'o', 'x', '+', '#'};

    double x_max = 0.0;
    double y_min = std::numeric_limits<double>::infinity();
    double y_max = -std::numeric_limits<double>::infinity();
    for (const auto& s : series) {
        for (const auto& p : s.points) {
            x_max = std::max(x_max, p.evals);
            y_min = std::min(y_min, p.best);
            y_max = std::max(y_max, p.best);
        }
    }
    if (!(y_max > y_min)) {
        y_max = y_min + 1.0;
        y_min -= 1.0;
    }
    if (x_max <= 0.0) x_max = 1.0;

    std::vector<std::string> canvas(static_cast<std::size_t>(height),
                                    std::string(static_cast<std::size_t>(width), ' '));
    for (std::size_t si = 0; si < series.size(); ++si) {
        const char glyph = glyphs[si % sizeof(glyphs)];
        for (int cx = 0; cx < width; ++cx) {
            const double x = x_max * (cx + 0.5) / width;
            const double v = series_value_at(series[si].points, x);
            if (std::isnan(v)) continue;
            const double frac = (v - y_min) / (y_max - y_min);
            int cy = static_cast<int>(std::lround((1.0 - frac) * (height - 1)));
            cy = std::clamp(cy, 0, height - 1);
            canvas[static_cast<std::size_t>(cy)][static_cast<std::size_t>(cx)] = glyph;
        }
    }

    out << "  " << title << '\n';
    out << "  " << format_value(y_max) << '\n';
    for (const auto& row : canvas) out << "  |" << row << '\n';
    out << "  " << format_value(y_min) << " +" << std::string(width, '-') << "> "
        << format_value(x_max) << " evals\n";
    out << "  legend:";
    for (std::size_t si = 0; si < series.size(); ++si)
        out << "  [" << glyphs[si % sizeof(glyphs)] << "] " << series[si].label;
    out << '\n';
}

void print_scatter(std::ostream& out, const std::string& title, const std::string& x_label,
                   const std::string& y_label, const std::vector<ScatterGroup>& groups,
                   const ScatterOptions& options)
{
    double x_min = std::numeric_limits<double>::infinity();
    double x_max = -x_min;
    double y_min = x_min;
    double y_max = -x_min;
    for (const auto& g : groups) {
        for (const auto& [x, y] : g.points) {
            x_min = std::min(x_min, axis_transform(x, options.log_x));
            x_max = std::max(x_max, axis_transform(x, options.log_x));
            y_min = std::min(y_min, axis_transform(y, options.log_y));
            y_max = std::max(y_max, axis_transform(y, options.log_y));
        }
    }
    if (!(x_max > x_min)) x_max = x_min + 1.0;
    if (!(y_max > y_min)) y_max = y_min + 1.0;

    const int w = options.width;
    const int h = options.height;
    std::vector<std::string> canvas(static_cast<std::size_t>(h),
                                    std::string(static_cast<std::size_t>(w), ' '));
    for (const auto& g : groups) {
        for (const auto& [x, y] : g.points) {
            const double fx =
                (axis_transform(x, options.log_x) - x_min) / (x_max - x_min);
            const double fy =
                (axis_transform(y, options.log_y) - y_min) / (y_max - y_min);
            int cx = static_cast<int>(std::lround(fx * (w - 1)));
            int cy = static_cast<int>(std::lround((1.0 - fy) * (h - 1)));
            cx = std::clamp(cx, 0, w - 1);
            cy = std::clamp(cy, 0, h - 1);
            canvas[static_cast<std::size_t>(cy)][static_cast<std::size_t>(cx)] = g.glyph;
        }
    }

    auto axis_value = [](double v, bool log_scale) {
        return log_scale ? std::pow(10.0, v) : v;
    };
    out << "  " << title << '\n';
    out << "  y: " << y_label << (options.log_y ? " (log)" : "") << ", top "
        << format_value(axis_value(y_max, options.log_y)) << ", bottom "
        << format_value(axis_value(y_min, options.log_y)) << '\n';
    for (const auto& row : canvas) out << "  |" << row << '\n';
    out << "  +" << std::string(w, '-') << ">\n";
    out << "  x: " << x_label << (options.log_x ? " (log)" : "") << ", left "
        << format_value(axis_value(x_min, options.log_x)) << ", right "
        << format_value(axis_value(x_max, options.log_x)) << '\n';
    out << "  legend:";
    for (const auto& g : groups) out << "  [" << g.glyph << "] " << g.label;
    out << '\n';
}

}  // namespace nautilus::exp
