#pragma once
// Baseline-vs-Nautilus comparison experiments.
//
// One Experiment reproduces one of the paper's evaluation figures: it runs a
// query with several engine variants (baseline GA, weakly/strongly guided
// Nautilus, optionally random search), each averaged over many runs, and
// reports convergence curves, evaluations-to-threshold and speedup factors.

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/ga.hpp"
#include "core/nautilus.hpp"
#include "core/random_search.hpp"
#include "exp/query.hpp"
#include "exp/series.hpp"
#include "ip/dataset.hpp"

namespace nautilus::exp {

// One engine variant participating in a comparison.
struct EngineSpec {
    std::string label;
    GuidanceLevel level = GuidanceLevel::none;
    // Replace the generator's hints (e.g. estimator output).  Must be in
    // objective orientation like query_hints() results.
    std::optional<HintSet> hints_override;
    // Direct confidence override (for confidence-sweep ablations).
    std::optional<double> confidence_override;
};

struct ExperimentConfig {
    std::size_t runs = 40;  // paper averages 40 runs (Fig. 3 uses 20)
    GaConfig ga;            // paper defaults: pop 10, rate 0.1, 80 generations
    std::size_t grid_points = 40;  // resolution of the reported mean curves
};

struct EngineResult {
    EngineSpec spec;
    MultiRunCurve curve;
    EvalSummary eval;  // aggregate pipeline accounting over all runs

    EngineResult(EngineSpec s, MultiRunCurve c, EvalSummary e = {})
        : spec(std::move(s)), curve(std::move(c)), eval(e)
    {
    }
};

struct ExperimentResult {
    Query query;
    ExperimentConfig config;
    std::vector<EngineResult> engines;
    std::optional<MultiRunCurve> random_search;

    // Mean curves resampled onto a shared grid.
    std::vector<LabeledSeries> series() const;
    std::vector<double> shared_grid() const;

    // Convergence + speedup report at a quality threshold (natural units of
    // the query metric).  Engine 0 is treated as the baseline.
    void print_convergence(std::ostream& out, double threshold,
                           const std::string& threshold_label) const;

    // Full report: table + ASCII chart.
    void print(std::ostream& out) const;
};

class Experiment {
public:
    // Evaluations run against the generator's virtual synthesis.
    Experiment(const ip::IpGenerator& generator, Query query, ExperimentConfig config);

    // Evaluations served from an offline dataset (paper methodology); points
    // outside the dataset fall back to the generator.
    void use_dataset(const ip::Dataset& dataset);

    void add_engine(EngineSpec spec);
    // Convenience: baseline + weak + strong trio.
    void add_standard_engines();

    // Also run unguided random sampling with the same total budget.
    void enable_random_search(std::size_t max_distinct_evals);

    ExperimentResult run() const;

private:
    EvalFn make_eval() const;

    const ip::IpGenerator& generator_;
    Query query_;
    ExperimentConfig config_;
    std::vector<EngineSpec> engines_;
    const ip::Dataset* dataset_ = nullptr;
    std::optional<std::size_t> random_budget_;
};

}  // namespace nautilus::exp
