#include "exp/query.hpp"

#include <stdexcept>

namespace nautilus::exp {

Query Query::simple(std::string name, ip::Metric metric, Direction direction)
{
    Query q;
    q.name = std::move(name);
    q.metric = metric;
    q.direction = direction;
    return q;
}

HintSet query_hints(const ip::IpGenerator& generator, const Query& query)
{
    if (query.hint_components.empty()) {
        HintSet hints = generator.author_hints(query.metric);
        hints.validate(generator.space());
        if (query.direction == Direction::minimize) hints = hints.negated_bias();
        hints.set_confidence(0.0);
        return hints;
    }

    // Fold each component into objective orientation, then merge.
    std::vector<HintSet> folded;
    folded.reserve(query.hint_components.size());
    for (const auto& comp : query.hint_components) {
        HintSet h = generator.author_hints(comp.metric);
        h.validate(generator.space());
        if (comp.direction == Direction::minimize) h = h.negated_bias();
        folded.push_back(std::move(h));
    }
    std::vector<WeightedHintSet> weighted;
    weighted.reserve(folded.size());
    for (std::size_t i = 0; i < folded.size(); ++i)
        weighted.push_back({&folded[i], query.hint_components[i].weight});
    HintSet merged = merge_hints(weighted);
    merged.set_confidence(0.0);
    return merged;
}

EvalFn query_eval(const ip::IpGenerator& generator, const Query& query)
{
    return generator.metric_eval(query.metric);
}

}  // namespace nautilus::exp
