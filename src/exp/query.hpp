#pragma once
// Optimization queries against an IP generator.
//
// A query names the metric to optimize and its direction (e.g. "maximize
// freq_mhz", "minimize area_delay_product").  For composite metrics the
// query also lists the hint components so author hints of the constituent
// metrics can be merged (paper section 4.2: the area-delay query
// "incorporates hints related to the importance and bias of IP parameters
// that affect area").

#include <string>
#include <vector>

#include "core/hints.hpp"
#include "ip/ip_generator.hpp"

namespace nautilus::exp {

struct Query {
    std::string name;
    ip::Metric metric = ip::Metric::area_luts;
    Direction direction = Direction::minimize;

    // Hint sources.  Empty means "use author_hints(metric) directly".
    struct HintComponent {
        ip::Metric metric;
        Direction direction;  // how this component enters the objective
        double weight = 1.0;
    };
    std::vector<HintComponent> hint_components;

    static Query simple(std::string name, ip::Metric metric, Direction direction);
};

// The effective hints for a query, in *objective orientation*: bias > 0
// means "increasing this parameter improves the query objective".  Single-
// metric queries fold the author's metric-oriented bias by the query
// direction; composite queries fold and merge each component.  Confidence is
// left at 0 -- the caller applies a guidance level.
HintSet query_hints(const ip::IpGenerator& generator, const Query& query);

// Evaluation function for the query metric.
EvalFn query_eval(const ip::IpGenerator& generator, const Query& query);

}  // namespace nautilus::exp
