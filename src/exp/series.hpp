#pragma once
// Rendering of convergence series: aligned tables and ASCII charts.
//
// The bench binaries regenerate the paper's figures as text: a table of the
// mean best-so-far value sampled on a common evaluation grid (one column per
// engine), plus an ASCII chart for quick visual comparison of the curve
// shapes.

#include <iosfwd>
#include <string>
#include <vector>

#include "core/run_stats.hpp"

namespace nautilus::exp {

struct LabeledSeries {
    std::string label;
    std::vector<CurvePoint> points;
};

// Table: first column = x (evaluations), one column per series.  Series are
// step-interpolated onto the union grid of x values in `grid`.
void print_series_table(std::ostream& out, const std::string& x_label,
                        const std::string& y_label, const std::vector<double>& grid,
                        const std::vector<LabeledSeries>& series);

// ASCII chart (x = evaluations, y = metric), one glyph per series.
void print_ascii_chart(std::ostream& out, const std::string& title,
                       const std::vector<LabeledSeries>& series, int width = 72,
                       int height = 20);

// Scatter rendering for the motivation figures (Figs. 1-2): log or linear
// axes, one glyph per group.
struct ScatterGroup {
    std::string label;
    char glyph = '*';
    std::vector<std::pair<double, double>> points;  // (x, y)
};

struct ScatterOptions {
    bool log_x = false;
    bool log_y = false;
    int width = 72;
    int height = 24;
};

void print_scatter(std::ostream& out, const std::string& title, const std::string& x_label,
                   const std::string& y_label, const std::vector<ScatterGroup>& groups,
                   const ScatterOptions& options = {});

// Helper: value of a mean-curve at x by step interpolation (last point with
// point.evals <= x); NaN before the first point.
double series_value_at(const std::vector<CurvePoint>& points, double x);

}  // namespace nautilus::exp
