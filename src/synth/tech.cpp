#include "synth/tech.hpp"

namespace nautilus::synth {

FpgaTech FpgaTech::virtex6_lx760t()
{
    FpgaTech t;
    t.name = "xc6vlx760";
    return t;
}

AsicTech AsicTech::commercial_65nm()
{
    AsicTech t;
    t.name = "commercial-65nm";
    return t;
}

}  // namespace nautilus::synth
