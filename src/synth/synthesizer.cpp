#include "synth/synthesizer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/rng.hpp"

namespace nautilus::synth {

double noise_factor(std::uint64_t key, std::uint64_t salt, double amplitude)
{
    if (amplitude < 0.0 || amplitude >= 1.0)
        throw std::invalid_argument("noise_factor: amplitude out of [0, 1)");
    if (amplitude == 0.0) return 1.0;
    const std::uint64_t h = hash_combine(mix64(key), salt);
    // Map the hash to (-1, 1).
    const double u = (static_cast<double>(h >> 11) * 0x1.0p-53) * 2.0 - 1.0;
    return 1.0 + amplitude * u;
}

namespace {

constexpr std::uint64_t k_area_salt = 0xa5ea5a17ull;
constexpr std::uint64_t k_timing_salt = 0x7171e0ffull;

void check_descriptor(const DesignDescriptor& design)
{
    if (design.paths.empty())
        throw std::invalid_argument("synthesize: design has no timing paths");
    if (design.toggle_rate < 0.0 || design.toggle_rate > 1.0)
        throw std::invalid_argument("synthesize: toggle_rate out of [0, 1]");
    const Resources& r = design.resources;
    if (r.luts < 0 || r.ffs < 0 || r.lutram_bits < 0 || r.bram_bits < 0 || r.dsps < 0)
        throw std::invalid_argument("synthesize: negative resource count");
}

}  // namespace

VirtualSynthesizer::VirtualSynthesizer(FpgaTech tech, double area_noise, double timing_noise)
    : tech_(std::move(tech)), area_noise_(area_noise), timing_noise_(timing_noise)
{
}

SynthResult VirtualSynthesizer::synthesize(const DesignDescriptor& design) const
{
    check_descriptor(design);
    SynthResult out;
    const double an = noise_factor(design.config_key, k_area_salt, area_noise_);
    const double tn = noise_factor(design.config_key, k_timing_salt, timing_noise_);

    out.luts = std::ceil(design.resources.equivalent_luts(tech_) * an);
    out.ffs = std::ceil(design.resources.ffs * an);
    out.brams = design.resources.bram_blocks(tech_);
    out.dsps = design.resources.dsps;
    out.fmax_mhz = fmax_mhz(design.paths, tech_) * tn;
    out.fmax_mhz = std::min(out.fmax_mhz, tech_.max_freq_mhz);
    out.period_ns = 1000.0 / out.fmax_mhz;
    return out;
}

AsicSynthesizer::AsicSynthesizer(AsicTech tech, double area_noise, double timing_noise)
    : tech_(std::move(tech)), area_noise_(area_noise), timing_noise_(timing_noise)
{
}

SynthResult AsicSynthesizer::synthesize(const DesignDescriptor& design,
                                        double wire_bit_mm) const
{
    check_descriptor(design);
    if (wire_bit_mm < 0.0)
        throw std::invalid_argument("AsicSynthesizer: negative wire length");
    SynthResult out;
    const double an = noise_factor(design.config_key, k_area_salt, area_noise_);
    const double tn = noise_factor(design.config_key, k_timing_salt, timing_noise_);

    // Gate-level conversion: logic LUTs and memory bits become gates.
    const double logic_gates = design.resources.luts * tech_.gates_per_lut;
    const double ff_gates = design.resources.ffs * 6.0;
    const double mem_gates =
        (design.resources.lutram_bits + design.resources.bram_bits) * 1.2 +
        design.resources.dsps * 3000.0;
    const double gates = (logic_gates + ff_gates + mem_gates) * an;

    // Timing: logic levels map through the ASIC gate delay.  Reuse the FPGA
    // path depths with an ASIC-equivalent level delay (one LUT level is
    // roughly three gate levels).
    double worst_levels = 0.0;
    for (const TimingPath& p : design.paths)
        worst_levels = std::max(
            worst_levels,
            p.logic_levels * (1.0 + 0.08 * std::log2(std::max(p.fanout, 1.0))));
    const double period =
        0.15 + worst_levels * 3.0 * tech_.gate_delay_ns;  // 0.15 ns register overhead
    out.fmax_mhz = std::min(1000.0 / period * tn, tech_.max_freq_mhz);
    out.period_ns = 1000.0 / out.fmax_mhz;

    const double logic_area_um2 = gates * tech_.um2_per_gate;
    const double wire_area_um2 = wire_bit_mm * tech_.wire_um2_per_bit_mm;
    out.area_mm2 = (logic_area_um2 + wire_area_um2) / 1.0e6;

    const double kgates = gates / 1000.0;
    const double dynamic = kgates * tech_.mw_per_mhz_per_kgate * out.fmax_mhz *
                           (design.toggle_rate / 0.15);
    const double wire_power =
        wire_bit_mm * 0.02 * out.fmax_mhz / 1000.0;  // mW per bit-mm-GHz
    out.power_mw = dynamic + kgates * tech_.leakage_mw_per_kgate + wire_power;

    // FPGA-view fields stay useful for reporting.
    out.luts = design.resources.equivalent_luts(FpgaTech{});
    out.ffs = design.resources.ffs;
    return out;
}

}  // namespace nautilus::synth
