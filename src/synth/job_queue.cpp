#include "synth/job_queue.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

#include "core/rng.hpp"

namespace nautilus::synth {

double synthesis_minutes(double equivalent_luts, std::uint64_t config_key)
{
    if (equivalent_luts < 0.0)
        throw std::invalid_argument("synthesis_minutes: negative area");
    // Flow overhead (~3 min) + effort superlinear in size; a 25k-LUT router
    // lands around 2.5 hours, matching the "minutes to hours" range.
    const double base = 3.0 + 0.25 * std::pow(equivalent_luts / 100.0, 1.15);
    return base * noise_factor(config_key, 0x70bull, 0.25);
}

SynthesisCluster::SynthesisCluster(std::size_t workers) : workers_(workers)
{
    if (workers == 0) throw std::invalid_argument("SynthesisCluster: need >= 1 worker");
}

double SynthesisCluster::run_batch(std::span<const double> job_minutes)
{
    if (job_minutes.empty()) return 0.0;
    std::vector<double> jobs(job_minutes.begin(), job_minutes.end());
    for (double j : jobs)
        if (j < 0.0) throw std::invalid_argument("run_batch: negative job duration");
    std::sort(jobs.begin(), jobs.end(), std::greater<>());

    // LPT list scheduling onto the least-loaded worker.
    std::vector<double> load(workers_, 0.0);
    for (double j : jobs) {
        auto least = std::min_element(load.begin(), load.end());
        *least += j;
        busy_ += j;
    }
    const double makespan = *std::max_element(load.begin(), load.end());
    elapsed_ += makespan;
    return makespan;
}

double SynthesisCluster::utilization() const
{
    const double capacity = elapsed_ * static_cast<double>(workers_);
    return capacity > 0.0 ? busy_ / capacity : 0.0;
}

void SynthesisCluster::reset()
{
    elapsed_ = 0.0;
    busy_ = 0.0;
}

std::vector<double> replay_schedule(SynthesisCluster& cluster,
                                    std::span<const std::vector<double>> batch_jobs)
{
    std::vector<double> cumulative;
    cumulative.reserve(batch_jobs.size());
    for (const auto& batch : batch_jobs) {
        cluster.run_batch(batch);
        cumulative.push_back(cluster.elapsed_minutes());
    }
    return cumulative;
}

}  // namespace nautilus::synth
