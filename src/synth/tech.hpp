#pragma once
// Technology descriptors for the virtual synthesis back end.
//
// The paper characterized designs with Xilinx XST 14.7 on a Virtex-6 LX760T
// (FPGA experiments, Figs. 1 and 3-7) and a commercial 65 nm ASIC flow
// (Fig. 2).  We model both as parameter sets consumed by the virtual
// synthesizer; the constants are calibrated so absolute numbers land in the
// same ranges the paper's figures show, and relative trends (what the GA
// actually navigates) follow the usual first-order hardware models.

#include <string>

namespace nautilus::synth {

// FPGA device family model (Virtex-6-like defaults).
struct FpgaTech {
    std::string name;
    double lut_delay_ns = 0.45;        // LUT + local routing per logic level
    double routing_overhead = 1.35;    // global routing multiplier
    double ff_setup_ns = 0.6;          // clock-to-q + setup
    double max_freq_mhz = 450.0;       // clock-network ceiling
    double lutram_bits_per_lut = 32.0; // distributed-RAM density
    double bram_kbits = 36.0;          // block-RAM capacity
    double dsp_width = 18.0;           // native DSP multiplier width
    double luts_total = 474240.0;      // device capacity (LX760T)

    static FpgaTech virtex6_lx760t();
};

// ASIC node model (65 nm-like defaults).
struct AsicTech {
    std::string name;
    double gate_delay_ns = 0.045;       // FO4-equivalent per logic level
    double um2_per_gate = 1.44;         // NAND2-equivalent footprint
    double gates_per_lut = 8.0;         // FPGA LUT -> gate conversion
    double mw_per_mhz_per_kgate = 0.006;  // dynamic power density
    double leakage_mw_per_kgate = 0.02;
    double max_freq_mhz = 1500.0;
    double wire_um2_per_bit_mm = 280.0;  // channel wiring footprint

    static AsicTech commercial_65nm();
};

}  // namespace nautilus::synth
