#include "synth/timing.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nautilus::synth {

double path_delay_ns(const TimingPath& path, const FpgaTech& tech)
{
    if (path.logic_levels < 0.0)
        throw std::invalid_argument("path_delay_ns: negative logic levels");
    const double fanout_penalty = 1.0 + 0.08 * std::log2(std::max(path.fanout, 1.0));
    return tech.ff_setup_ns +
           path.logic_levels * tech.lut_delay_ns * tech.routing_overhead * fanout_penalty;
}

double critical_path_ns(std::span<const TimingPath> paths, const FpgaTech& tech)
{
    if (paths.empty()) throw std::invalid_argument("critical_path_ns: no paths");
    double worst = 0.0;
    for (const TimingPath& p : paths) worst = std::max(worst, path_delay_ns(p, tech));
    return worst;
}

double fmax_mhz(std::span<const TimingPath> paths, const FpgaTech& tech)
{
    const double period = critical_path_ns(paths, tech);
    return std::min(1000.0 / period, tech.max_freq_mhz);
}

}  // namespace nautilus::synth
