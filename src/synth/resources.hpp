#pragma once
// Resource descriptors: what an IP model hands to the virtual synthesizer.
//
// IP microarchitecture models (noc/, fft/) express their implementation cost
// as raw resource counts; the synthesizer maps memory bits onto LUT-RAM or
// block RAM and applies technology factors and noise.

#include "synth/tech.hpp"

namespace nautilus::synth {

struct Resources {
    double luts = 0.0;         // logic LUTs
    double ffs = 0.0;          // flip-flops
    double lutram_bits = 0.0;  // shallow memories (mapped to distributed RAM)
    double bram_bits = 0.0;    // deep memories (mapped to block RAM)
    double dsps = 0.0;         // hard multiplier blocks

    Resources& operator+=(const Resources& other);
    friend Resources operator+(Resources a, const Resources& b)
    {
        a += b;
        return a;
    }

    // Multiply every count (replicating a block n times).
    Resources scaled(double factor) const;

    // Logic LUTs plus LUT-RAM mapped into LUTs for the given technology;
    // the "Area (LUTs)" axis of the paper's figures.
    double equivalent_luts(const FpgaTech& tech) const;

    // Block-RAM primitives consumed.
    double bram_blocks(const FpgaTech& tech) const;

    bool operator==(const Resources&) const = default;
};

}  // namespace nautilus::synth
