#pragma once
// Simulated synthesis cluster: turns "number of designs evaluated" into
// wall-clock EDA time.
//
// The paper's cost argument is temporal: each design point costs "minutes to
// hours" of CAD runtime, the characterization cluster ran "200+ cores ...
// for about 2 weeks", and "the population size effectively caps the
// available parallelism during the evaluation phase" (section 2).  This
// module models exactly that: a W-worker cluster executing batches of
// synthesis jobs (one batch = the new designs of one GA generation) with a
// list scheduler, accumulating simulated makespan.

#include <cstdint>
#include <span>
#include <vector>

#include "synth/synthesizer.hpp"

namespace nautilus::synth {

// XST-like runtime estimate for synthesizing one design, in minutes:
// a fixed flow overhead plus effort that grows with design size, with
// deterministic per-design variation.
double synthesis_minutes(double equivalent_luts, std::uint64_t config_key);

class SynthesisCluster {
public:
    explicit SynthesisCluster(std::size_t workers);

    std::size_t workers() const { return workers_; }

    // Execute one batch of jobs that all become ready simultaneously (the
    // GA's evaluation phase).  Longest-processing-time list scheduling;
    // returns the batch makespan in minutes and advances the clock.
    double run_batch(std::span<const double> job_minutes);

    // Simulated wall-clock spent so far (sum of batch makespans).
    double elapsed_minutes() const { return elapsed_; }
    // Total core-minutes of useful work executed.
    double busy_minutes() const { return busy_; }
    // Utilization in [0, 1]: busy / (elapsed * workers).
    double utilization() const;

    void reset();

private:
    std::size_t workers_;
    double elapsed_ = 0.0;
    double busy_ = 0.0;
};

// Replay of a search run as cluster batches: `batch_jobs[g]` holds the
// durations of the distinct evaluations issued in generation g.  Returns the
// simulated wall-clock (minutes) after each batch, cumulative.
std::vector<double> replay_schedule(SynthesisCluster& cluster,
                                    std::span<const std::vector<double>> batch_jobs);

}  // namespace nautilus::synth
