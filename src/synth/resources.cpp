#include "synth/resources.hpp"

#include <cmath>
#include <stdexcept>

namespace nautilus::synth {

Resources& Resources::operator+=(const Resources& other)
{
    luts += other.luts;
    ffs += other.ffs;
    lutram_bits += other.lutram_bits;
    bram_bits += other.bram_bits;
    dsps += other.dsps;
    return *this;
}

Resources Resources::scaled(double factor) const
{
    if (factor < 0.0) throw std::invalid_argument("Resources::scaled: negative factor");
    Resources r = *this;
    r.luts *= factor;
    r.ffs *= factor;
    r.lutram_bits *= factor;
    r.bram_bits *= factor;
    r.dsps *= factor;
    return r;
}

double Resources::equivalent_luts(const FpgaTech& tech) const
{
    return luts + std::ceil(lutram_bits / tech.lutram_bits_per_lut);
}

double Resources::bram_blocks(const FpgaTech& tech) const
{
    return std::ceil(bram_bits / (tech.bram_kbits * 1024.0));
}

}  // namespace nautilus::synth
