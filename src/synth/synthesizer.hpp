#pragma once
// The virtual synthesizer: resource/timing descriptors -> synthesis results.
//
// Stands in for the EDA runs the paper performed offline (XST 14.7 on a
// 200+ core cluster for ~2 weeks).  Results are deterministic per design:
// the pseudo-random implementation variation (placement/routing luck) is a
// pure hash of the design's configuration key, so a design costs the same
// whether it is "synthesized" live or looked up from a prebuilt dataset.

#include <cstdint>
#include <string>
#include <vector>

#include "synth/resources.hpp"
#include "synth/tech.hpp"
#include "synth/timing.hpp"

namespace nautilus::synth {

// Everything a synthesis job needs to know about one design.
struct DesignDescriptor {
    std::string name;
    std::uint64_t config_key = 0;  // seeds the deterministic noise
    Resources resources;
    std::vector<TimingPath> paths;
    double toggle_rate = 0.15;  // average switching activity (power model)
};

struct SynthResult {
    // FPGA view
    double luts = 0.0;  // equivalent LUTs (logic + LUT-RAM)
    double ffs = 0.0;
    double brams = 0.0;
    double dsps = 0.0;
    // Timing
    double fmax_mhz = 0.0;
    double period_ns = 0.0;
    // ASIC view (zero unless produced by AsicSynthesizer)
    double area_mm2 = 0.0;
    double power_mw = 0.0;
};

// Deterministic multiplicative noise factor in [1-amplitude, 1+amplitude]
// derived from (key, salt).
double noise_factor(std::uint64_t key, std::uint64_t salt, double amplitude);

// FPGA synthesis.
class VirtualSynthesizer {
public:
    explicit VirtualSynthesizer(FpgaTech tech, double area_noise = 0.03,
                                double timing_noise = 0.05);

    const FpgaTech& tech() const { return tech_; }

    SynthResult synthesize(const DesignDescriptor& design) const;

private:
    FpgaTech tech_;
    double area_noise_;
    double timing_noise_;
};

// ASIC synthesis: maps the same descriptors through gate-level conversion
// and adds area/power estimates (used for the Fig. 2 CONNECT study).
class AsicSynthesizer {
public:
    explicit AsicSynthesizer(AsicTech tech, double area_noise = 0.03,
                             double timing_noise = 0.05);

    const AsicTech& tech() const { return tech_; }

    // `wire_bit_mm` is the total channel wiring (bits x millimeters) outside
    // the logic blocks; it contributes area and dynamic power.
    SynthResult synthesize(const DesignDescriptor& design, double wire_bit_mm = 0.0) const;

private:
    AsicTech tech_;
    double area_noise_;
    double timing_noise_;
};

}  // namespace nautilus::synth
