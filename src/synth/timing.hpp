#pragma once
// Static timing model: logic depth + fanout -> path delay -> fmax.

#include <span>
#include <string>
#include <vector>

#include "synth/tech.hpp"

namespace nautilus::synth {

// One register-to-register path, described by its logic depth.
struct TimingPath {
    std::string name;
    double logic_levels = 1.0;  // LUT levels between registers
    double fanout = 4.0;        // representative net fanout along the path
};

// Delay of one path: logic levels x (LUT + routing), with a logarithmic
// fanout penalty, plus register overhead.
double path_delay_ns(const TimingPath& path, const FpgaTech& tech);

// Slowest path; throws on an empty set.
double critical_path_ns(std::span<const TimingPath> paths, const FpgaTech& tech);

// Clock frequency implied by the critical path, capped by the technology.
double fmax_mhz(std::span<const TimingPath> paths, const FpgaTech& tech);

}  // namespace nautilus::synth
