#pragma once
// Fixed-point arithmetic primitives for the FFT datapath model.
//
// Values are signed two's-complement with a configurable total width; the
// binary point sits so that representable magnitudes are < 1 at width w
// (Q1.(w-1) format), matching how streaming FFT datapaths normalize data.
// Saturation and round-to-nearest model real RTL behavior, which is what
// makes the SNR metric respond to data/twiddle width and scaling mode.

#include <complex>
#include <cstdint>

namespace nautilus::fft {

// Signed saturation bounds for a `width`-bit word (2 <= width <= 32).
std::int64_t fixed_max(int width);
std::int64_t fixed_min(int width);

// Clamp into the representable range; counts as "overflow" when clamped.
std::int64_t saturate(std::int64_t value, int width, bool* overflowed = nullptr);

// Quantize a real number in Q1.(width-1): round-to-nearest, then saturate.
std::int64_t quantize(double value, int width);

// Back to floating point.
double to_double(std::int64_t value, int width);

// Fixed-point complex sample.
struct CFix {
    std::int64_t re = 0;
    std::int64_t im = 0;
};

// (a * b) >> shift with round-to-nearest (add half before the shift).
std::int64_t mul_round(std::int64_t a, std::int64_t b, int shift);

// Complex multiply of a data sample by a twiddle factor.
//   data:    Q1.(data_width-1)
//   twiddle: Q1.(twiddle_width-1)
// The result is renormalized to data format and saturated.
CFix cmul(const CFix& a, const CFix& w, int data_width, int twiddle_width,
          bool* overflowed = nullptr);

// Saturating complex add/sub in data format.
CFix cadd(const CFix& a, const CFix& b, int data_width, bool* overflowed = nullptr);
CFix csub(const CFix& a, const CFix& b, int data_width, bool* overflowed = nullptr);

// Arithmetic right shift by one with rounding (per-stage scaling step).
CFix cshift_down(const CFix& a);

// Quantize a double-precision complex value into data format.
CFix cquantize(const std::complex<double>& value, int width);
std::complex<double> cfix_to_complex(const CFix& value, int width);

}  // namespace nautilus::fft
