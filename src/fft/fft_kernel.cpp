#include "fft/fft_kernel.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "core/rng.hpp"

namespace nautilus::fft {

const char* scaling_name(ScalingMode mode)
{
    switch (mode) {
    case ScalingMode::none: return "none";
    case ScalingMode::per_stage: return "per_stage";
    case ScalingMode::block_fp: return "block_fp";
    }
    return "?";
}

namespace {

bool is_pow2(std::size_t n)
{
    return n >= 2 && (n & (n - 1)) == 0;
}

// Bit-reversal permutation shared by both kernels.
template <typename T>
void bit_reverse(std::vector<T>& data)
{
    const std::size_t n = data.size();
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1) j ^= bit;
        j ^= bit;
        if (i < j) std::swap(data[i], data[j]);
    }
}

}  // namespace

void fft_reference(std::vector<std::complex<double>>& data)
{
    const std::size_t n = data.size();
    if (!is_pow2(n)) throw std::invalid_argument("fft_reference: size must be a power of 2");
    bit_reverse(data);
    for (std::size_t len = 2; len <= n; len <<= 1) {
        const double angle = -2.0 * std::numbers::pi / static_cast<double>(len);
        const std::complex<double> wn{std::cos(angle), std::sin(angle)};
        for (std::size_t block = 0; block < n; block += len) {
            std::complex<double> w{1.0, 0.0};
            for (std::size_t k = 0; k < len / 2; ++k) {
                const std::complex<double> u = data[block + k];
                const std::complex<double> t = w * data[block + k + len / 2];
                data[block + k] = u + t;
                data[block + k + len / 2] = u - t;
                w *= wn;
            }
        }
    }
}

FixedFftResult fft_fixed(const FixedFftConfig& config,
                         const std::vector<std::complex<double>>& input)
{
    const std::size_t n = input.size();
    if (!is_pow2(n)) throw std::invalid_argument("fft_fixed: size must be a power of 2");
    if (static_cast<std::size_t>(config.n) != n)
        throw std::invalid_argument("fft_fixed: config.n mismatches input size");
    const int dw = config.data_width;
    const int tw = config.twiddle_width;

    std::vector<CFix> data(n);
    for (std::size_t i = 0; i < n; ++i) data[i] = cquantize(input[i], dw);
    bit_reverse(data);

    FixedFftResult result;
    bool overflowed = false;

    const std::int64_t block_fp_limit = fixed_max(dw) / 2;

    for (std::size_t len = 2; len <= n; len <<= 1) {
        // Block floating point: pre-shift the whole block when any value is
        // large enough that the coming butterfly could overflow.
        if (config.scaling == ScalingMode::block_fp) {
            std::int64_t peak = 0;
            for (const CFix& v : data) {
                peak = std::max(peak, std::abs(v.re));
                peak = std::max(peak, std::abs(v.im));
            }
            if (peak > block_fp_limit) {
                for (CFix& v : data) v = cshift_down(v);
                ++result.total_shifts;
            }
        }

        const double angle = -2.0 * std::numbers::pi / static_cast<double>(len);
        for (std::size_t block = 0; block < n; block += len) {
            for (std::size_t k = 0; k < len / 2; ++k) {
                // Twiddle quantized from the ROM value (models a tw-bit ROM).
                const double a = angle * static_cast<double>(k);
                const CFix w = {quantize(std::cos(a), tw), quantize(std::sin(a), tw)};

                const CFix u = data[block + k];
                const CFix t = cmul(data[block + k + len / 2], w, dw, tw, &overflowed);
                CFix hi = cadd(u, t, dw, &overflowed);
                CFix lo = csub(u, t, dw, &overflowed);
                if (config.scaling == ScalingMode::per_stage) {
                    hi = cshift_down(hi);
                    lo = cshift_down(lo);
                }
                data[block + k] = hi;
                data[block + k + len / 2] = lo;
                if (overflowed) {
                    ++result.overflow_count;
                    overflowed = false;
                }
            }
        }
        if (config.scaling == ScalingMode::per_stage) ++result.total_shifts;
    }

    // Denormalize: undo the scaling shifts so output compares directly with
    // the unscaled reference.
    const double comp = std::ldexp(1.0, result.total_shifts);
    result.output.resize(n);
    for (std::size_t i = 0; i < n; ++i) result.output[i] = cfix_to_complex(data[i], dw) * comp;
    return result;
}

double measure_snr_db(const FixedFftConfig& config, std::uint64_t seed, int trials)
{
    if (trials < 1) throw std::invalid_argument("measure_snr_db: trials must be >= 1");
    Rng rng{seed};
    double signal = 0.0;
    double noise = 0.0;
    for (int t = 0; t < trials; ++t) {
        std::vector<std::complex<double>> input(static_cast<std::size_t>(config.n));
        for (auto& v : input) v = {rng.uniform(-0.5, 0.5), rng.uniform(-0.5, 0.5)};

        std::vector<std::complex<double>> ref = input;
        fft_reference(ref);
        const FixedFftResult fixed = fft_fixed(config, input);

        for (std::size_t i = 0; i < ref.size(); ++i) {
            signal += std::norm(ref[i]);
            noise += std::norm(ref[i] - fixed.output[i]);
        }
    }
    if (noise <= 0.0) return 200.0;  // bit-exact within measurement; report a ceiling
    return 10.0 * std::log10(signal / noise);
}

}  // namespace nautilus::fft
