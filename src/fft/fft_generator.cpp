#include "fft/fft_generator.hpp"

#include "core/rng.hpp"

namespace nautilus::fft {

using ip::Metric;

FftGenerator::FftGenerator(synth::FpgaTech tech, bool measure_snr)
    : space_(make_fft_space()), synth_(std::move(tech)), measure_snr_(measure_snr)
{
}

std::vector<Metric> FftGenerator::metrics() const
{
    std::vector<Metric> m{Metric::area_luts, Metric::ffs,
                          Metric::brams,     Metric::dsps,
                          Metric::freq_mhz,  Metric::throughput_msps,
                          Metric::throughput_per_lut};
    if (measure_snr_) m.push_back(Metric::snr_db);
    return m;
}

double FftGenerator::snr_for(const FftConfig& config) const
{
    std::uint64_t key = 0x534e52ull;  // "SNR"
    key = hash_combine(key, static_cast<std::uint64_t>(config.log2n));
    key = hash_combine(key, static_cast<std::uint64_t>(config.data_width));
    key = hash_combine(key, static_cast<std::uint64_t>(config.twiddle_width));
    key = hash_combine(key, static_cast<std::uint64_t>(config.scaling));
    const auto it = snr_cache_.find(key);
    if (it != snr_cache_.end()) return it->second;

    FixedFftConfig fc;
    fc.n = config.n();
    fc.data_width = config.data_width;
    fc.twiddle_width = config.twiddle_width;
    fc.scaling = config.scaling;
    const double snr = measure_snr_db(fc, /*seed=*/key, /*trials=*/1);
    snr_cache_.emplace(key, snr);
    return snr;
}

ip::MetricValues FftGenerator::evaluate(const Genome& genome) const
{
    const FftConfig config = decode_fft(space_, genome);
    if (!config.feasible()) return ip::MetricValues::infeasible_point();

    const synth::SynthResult r = synth_.synthesize(fft_descriptor(config, synth_.tech()));
    ip::MetricValues mv;
    mv.set(Metric::area_luts, r.luts);
    mv.set(Metric::ffs, r.ffs);
    mv.set(Metric::brams, r.brams);
    mv.set(Metric::dsps, r.dsps);
    mv.set(Metric::freq_mhz, r.fmax_mhz);
    mv.set(Metric::throughput_msps, fft_throughput_msps(config, r.fmax_mhz));
    if (measure_snr_) mv.set(Metric::snr_db, snr_for(config));
    ip::derive_composites(mv);
    return mv;
}

HintSet FftGenerator::author_hints(Metric metric) const
{
    HintSet hints = HintSet::none(space_);
    auto set = [&](std::size_t gene, double importance, std::optional<double> bias,
                   std::optional<double> target = std::nullopt) {
        ParamHints& h = hints.param(gene);
        h.importance = importance;
        h.bias = bias;
        h.target = target;
        // Expert hints use the decay hint: focus on dominant parameters
        // first, then broaden for fine-tuning (paper section 3).
        if (importance >= 50.0) h.importance_decay = 0.96;
    };

    switch (metric) {
    case Metric::area_luts:
        // Expert knowledge: size and parallelism dominate LUT count; narrow
        // datapaths shrink every adder.
        set(fft_gene::log2n, 85.0, +0.6);
        set(fft_gene::streaming_width, 90.0, +0.8);
        set(fft_gene::data_width, 70.0, +0.7);
        set(fft_gene::twiddle_width, 30.0, +0.3);
        set(fft_gene::radix, 25.0, +0.2);
        set(fft_gene::scaling, 15.0, +0.2);
        break;
    case Metric::freq_mhz:
        set(fft_gene::data_width, 80.0, -0.7);
        set(fft_gene::twiddle_width, 45.0, -0.4);
        set(fft_gene::radix, 40.0, -0.4);
        set(fft_gene::scaling, 20.0, -0.2);
        set(fft_gene::log2n, 15.0, -0.1);
        break;
    case Metric::throughput_msps:
        // Streaming width sets samples/cycle; clock effects are secondary.
        set(fft_gene::streaming_width, 95.0, +0.9);
        set(fft_gene::data_width, 40.0, -0.4);
        set(fft_gene::radix, 25.0, -0.2);
        break;
    case Metric::throughput_per_lut: {
        // Efficiency peaks at moderate parallelism with lean datapaths: the
        // expert points at a target region rather than a monotone direction.
        set(fft_gene::streaming_width, 80.0, std::nullopt, /*target=*/16.0);
        set(fft_gene::data_width, 75.0, -0.7);
        set(fft_gene::log2n, 70.0, -0.6);
        set(fft_gene::twiddle_width, 35.0, -0.3);
        set(fft_gene::radix, 45.0, +0.4);
        set(fft_gene::scaling, 10.0, std::nullopt);
        break;
    }
    case Metric::snr_db:
        set(fft_gene::data_width, 90.0, +0.9);
        set(fft_gene::twiddle_width, 60.0, +0.5);
        set(fft_gene::scaling, 70.0, +0.7);
        set(fft_gene::log2n, 40.0, -0.4);
        break;
    default:
        break;
    }
    return hints;
}

}  // namespace nautilus::fft
