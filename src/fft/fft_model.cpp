#include "fft/fft_model.hpp"

#include <cmath>
#include <stdexcept>

namespace nautilus::fft {

namespace {

double log2d(double x)
{
    return std::log2(std::max(x, 1.0));
}

// One streaming buffer (or ROM) this large or larger maps to block RAM.
constexpr double k_bram_threshold_bits = 16384.0;

void charge_memory(synth::Resources& r, double block_bits, double blocks)
{
    if (block_bits >= k_bram_threshold_bits)
        r.bram_bits += block_bits * blocks;
    else
        r.lutram_bits += block_bits * blocks;
}

}  // namespace

synth::Resources FftAreaBreakdown::total() const
{
    return butterflies + multipliers + permutation + twiddle_rom + scaling + control;
}

bool uses_dsp(const FftConfig& config, const synth::FpgaTech& tech)
{
    return config.data_width <= tech.dsp_width && config.twiddle_width <= tech.dsp_width;
}

FftAreaBreakdown fft_area(const FftConfig& c, const synth::FpgaTech& tech)
{
    if (!c.feasible()) throw std::invalid_argument("fft_area: infeasible configuration");
    const double s = c.stages();
    const double b = c.butterflies_per_stage();
    const double r = c.radix;
    const double w = c.streaming_width;
    const double dw = c.data_width;
    const double tw = c.twiddle_width;
    const double n = c.n();

    FftAreaBreakdown a;

    // Butterfly adder trees: a radix-r butterfly performs r*log2(r) complex
    // additions = 2*r*log2(r) real adders of dw bits (~0.85 LUT per bit
    // after carry-chain packing).
    const double real_adds = 2.0 * r * c.log2_radix();
    a.butterflies.luts = s * b * real_adds * dw * 0.85;
    a.butterflies.ffs = s * b * r * 2.0 * dw;  // inter-stage registers

    // Twiddle multipliers: (r-1) complex multiplies per butterfly, skipping
    // the first (trivial-twiddle) stage.
    const double mults = std::max(s - 1.0, 0.0) * b * (r - 1.0);
    if (uses_dsp(c, tech)) {
        a.multipliers.dsps = mults * 3.0;  // 3-mult complex multiply
        a.multipliers.luts = mults * (10.0 + dw * 0.75);  // glue + post-adders
    }
    else {
        a.multipliers.luts = mults * (dw * tw * 0.9 + 5.0 * dw);
    }
    a.multipliers.ffs = mults * 2.0 * dw;

    // Inter-stage streaming permutation: ping-pong shared buffers holding n
    // complex samples per stage boundary.
    const double perm_block_bits = n * 2.0 * dw / 2.0;
    charge_memory(a.permutation, perm_block_bits, s);
    a.permutation.luts = s * (4.0 + log2d(n / w));  // address generators

    // Twiddle ROMs: n/2 coefficients of 2*tw bits per multiplier stage.
    if (mults > 0.0) {
        const double rom_block_bits = (n / 2.0) * 2.0 * tw;
        charge_memory(a.twiddle_rom, rom_block_bits, s - 1.0);
        a.twiddle_rom.luts = (s - 1.0) * 3.0;
    }

    // Scaling datapath.
    switch (c.scaling) {
    case ScalingMode::none: break;
    case ScalingMode::per_stage: a.scaling.luts = s * w * dw * 0.15; break;
    case ScalingMode::block_fp:
        a.scaling.luts = s * w * dw * 0.3 + 60.0;
        a.scaling.ffs = s * 8.0;
        break;
    }

    // Global control: stage sequencing and stream framing.
    a.control.luts = 40.0 + s * 6.0 + w * 2.0;
    a.control.ffs = 30.0 + s * 5.0;
    return a;
}

std::vector<synth::TimingPath> fft_paths(const FftConfig& c, const synth::FpgaTech& tech)
{
    if (!c.feasible()) throw std::invalid_argument("fft_paths: infeasible configuration");
    const double dw = c.data_width;
    const double tw = c.twiddle_width;

    // Butterfly + multiplier path.
    double bf_levels = 2.2 + 0.8 * c.log2_radix() + dw / 14.0;
    bf_levels += uses_dsp(c, tech) ? 1.4 : 2.0 + (dw + tw) / 14.0;
    switch (c.scaling) {
    case ScalingMode::none: break;
    case ScalingMode::per_stage: bf_levels += 0.3; break;
    case ScalingMode::block_fp: bf_levels += 0.9; break;
    }

    // Streaming-buffer addressing path.
    const double mem_levels =
        1.5 + 0.3 * log2d(static_cast<double>(c.n()) / c.streaming_width);

    return {
        {"butterfly", bf_levels, static_cast<double>(c.streaming_width) / 4.0},
        {"stream_mem", mem_levels, 4.0},
    };
}

synth::DesignDescriptor fft_descriptor(const FftConfig& c, const synth::FpgaTech& tech)
{
    synth::DesignDescriptor d;
    d.name = c.to_string();
    d.config_key = c.config_key();
    d.resources = fft_area(c, tech).total();
    d.paths = fft_paths(c, tech);
    d.toggle_rate = 0.25;
    return d;
}

double fft_throughput_msps(const FftConfig& c, double fmax_mhz)
{
    return fmax_mhz * static_cast<double>(c.streaming_width);
}

}  // namespace nautilus::fft
