#pragma once
// The streaming FFT parameter space ("FFT" IP of the paper).
//
// Models the user-visible knobs of a Spiral-style streaming FFT generator.
// The paper's FFT dataset varies 6 parameters for ~12,000 design instances;
// this space matches: 7 x 5 x 3 x 10 x 6 x 3 = 18,900 raw points of which
// ~10,800 satisfy the architectural feasibility rules (radix must divide the
// transform size; the streaming width must cover one butterfly) -- the
// "sparsely populated design spaces that include infeasible points" case of
// paper section 3.

#include <cstdint>
#include <string>

#include "core/genome.hpp"
#include "core/parameter.hpp"
#include "fft/fft_kernel.hpp"

namespace nautilus::fft {

struct FftConfig {
    int log2n = 6;          // transform size n = 2^log2n, 64..4096
    int streaming_width = 2;  // complex samples per cycle, 2..32
    int radix = 2;          // butterfly radix, {2, 4, 8}
    int data_width = 16;    // datapath bits, 8..26
    int twiddle_width = 16; // twiddle ROM bits, 8..18
    ScalingMode scaling = ScalingMode::per_stage;

    int n() const { return 1 << log2n; }
    int log2_radix() const;
    // Pipeline stages of radix-r butterfly columns.
    int stages() const { return log2n / log2_radix(); }
    // Butterflies per stage column.
    int butterflies_per_stage() const { return streaming_width / radix; }

    // Architectural feasibility: log2n divisible by log2(radix) and
    // streaming width >= radix.
    bool feasible() const;

    std::uint64_t config_key() const;
    std::string to_string() const;
};

namespace fft_gene {
inline constexpr std::size_t log2n = 0;
inline constexpr std::size_t streaming_width = 1;
inline constexpr std::size_t radix = 2;
inline constexpr std::size_t data_width = 3;
inline constexpr std::size_t twiddle_width = 4;
inline constexpr std::size_t scaling = 5;
inline constexpr std::size_t count = 6;
}  // namespace fft_gene

ParameterSpace make_fft_space();

FftConfig decode_fft(const ParameterSpace& space, const Genome& genome);

}  // namespace nautilus::fft
