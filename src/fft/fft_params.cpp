#include "fft/fft_params.hpp"

#include <sstream>
#include <stdexcept>

#include "core/rng.hpp"

namespace nautilus::fft {

int FftConfig::log2_radix() const
{
    switch (radix) {
    case 2: return 1;
    case 4: return 2;
    case 8: return 3;
    default: throw std::invalid_argument("FftConfig: radix must be 2, 4 or 8");
    }
}

bool FftConfig::feasible() const
{
    if (radix != 2 && radix != 4 && radix != 8) return false;
    if (log2n % log2_radix() != 0) return false;
    if (streaming_width < radix) return false;
    return true;
}

std::uint64_t FftConfig::config_key() const
{
    std::uint64_t h = 0x53706972616cfful;  // "Spiral"
    h = hash_combine(h, static_cast<std::uint64_t>(log2n));
    h = hash_combine(h, static_cast<std::uint64_t>(streaming_width));
    h = hash_combine(h, static_cast<std::uint64_t>(radix));
    h = hash_combine(h, static_cast<std::uint64_t>(data_width));
    h = hash_combine(h, static_cast<std::uint64_t>(twiddle_width));
    h = hash_combine(h, static_cast<std::uint64_t>(scaling));
    return h;
}

std::string FftConfig::to_string() const
{
    std::ostringstream out;
    out << "fft{n=" << n() << " w=" << streaming_width << " r=" << radix
        << " dw=" << data_width << " tw=" << twiddle_width
        << " scale=" << scaling_name(scaling) << "}";
    return out.str();
}

ParameterSpace make_fft_space()
{
    ParameterSpace space;
    space.add("log2n", ParamDomain::int_range(6, 12), "transform size exponent (n = 2^k)");
    space.add("streaming_width", ParamDomain::pow2(1, 5), "complex samples per cycle");
    space.add("radix", ParamDomain::pow2(1, 3), "butterfly radix");
    space.add("data_width", ParamDomain::int_range(8, 26, 2), "datapath word width");
    space.add("twiddle_width", ParamDomain::int_range(8, 18, 2), "twiddle ROM word width");
    space.add("scaling",
              ParamDomain::categorical({"none", "per_stage", "block_fp"}, /*ordered=*/true),
              "overflow scaling strategy (ordered by SNR at large n)");
    return space;
}

FftConfig decode_fft(const ParameterSpace& space, const Genome& genome)
{
    if (!genome.compatible_with(space) || space.size() != fft_gene::count)
        throw std::invalid_argument("decode_fft: genome/space mismatch");
    FftConfig c;
    c.log2n = static_cast<int>(genome.numeric_value(space, fft_gene::log2n));
    c.streaming_width =
        static_cast<int>(genome.numeric_value(space, fft_gene::streaming_width));
    c.radix = static_cast<int>(genome.numeric_value(space, fft_gene::radix));
    c.data_width = static_cast<int>(genome.numeric_value(space, fft_gene::data_width));
    c.twiddle_width = static_cast<int>(genome.numeric_value(space, fft_gene::twiddle_width));
    c.scaling = static_cast<ScalingMode>(genome.gene(fft_gene::scaling));
    return c;
}

}  // namespace nautilus::fft
