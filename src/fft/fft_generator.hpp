#pragma once
// FftGenerator: the Spiral-style "FFT" IP generator of the paper.
//
// Characterizes each configuration with hardware metrics (LUTs, fmax),
// domain metrics (throughput in MSPS, fixed-point SNR measured by actually
// running the quantized transform) and composites (throughput-per-LUT).
// Ships *expert* author hints -- the paper's FFT hints came from a member of
// the Spiral development team (section 4.1).

#include <memory>
#include <unordered_map>

#include "fft/fft_model.hpp"
#include "ip/ip_generator.hpp"

namespace nautilus::fft {

class FftGenerator final : public ip::IpGenerator {
public:
    explicit FftGenerator(synth::FpgaTech tech = synth::FpgaTech::virtex6_lx760t(),
                          bool measure_snr = true);

    std::string name() const override { return "spiral-fft"; }
    const ParameterSpace& space() const override { return space_; }
    std::vector<ip::Metric> metrics() const override;
    ip::MetricValues evaluate(const Genome& genome) const override;
    HintSet author_hints(ip::Metric metric) const override;

    const synth::VirtualSynthesizer& synthesizer() const { return synth_; }

private:
    // SNR depends only on (n, data_width, twiddle_width, scaling); cache so
    // dataset enumeration does not rerun identical transforms.
    double snr_for(const FftConfig& config) const;

    ParameterSpace space_;
    synth::VirtualSynthesizer synth_;
    bool measure_snr_;
    mutable std::unordered_map<std::uint64_t, double> snr_cache_;
};

}  // namespace nautilus::fft
