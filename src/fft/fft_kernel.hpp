#pragma once
// FFT kernels: double-precision reference and bit-accurate fixed point.
//
// The fixed-point kernel is the functional substrate behind the FFT IP's SNR
// metric: instead of fitting a curve, we *run* the quantized transform the
// generated hardware would compute and measure its SNR against the
// double-precision reference.  Supported scaling modes mirror common
// streaming-FFT options:
//   none       -- full-range arithmetic, saturating on overflow
//   per_stage  -- divide by 2 after every stage (unconditional, no overflow)
//   block_fp   -- block floating point: shift only when the block grows,
//                 tracking a shared exponent

#include <complex>
#include <cstdint>
#include <vector>

#include "fft/fixed_point.hpp"

namespace nautilus::fft {

enum class ScalingMode : std::uint8_t { none, per_stage, block_fp };

const char* scaling_name(ScalingMode mode);

// In-place iterative radix-2 DIT FFT; size must be a power of two >= 2.
void fft_reference(std::vector<std::complex<double>>& data);

struct FixedFftConfig {
    int n = 64;              // transform size (power of two)
    int data_width = 16;     // datapath word width
    int twiddle_width = 16;  // twiddle ROM word width
    ScalingMode scaling = ScalingMode::per_stage;
};

struct FixedFftResult {
    std::vector<std::complex<double>> output;  // denormalized to match the reference
    int total_shifts = 0;                      // stages of /2 applied (compensated in output)
    std::size_t overflow_count = 0;            // saturation events
};

// Run the fixed-point FFT on `input` (magnitudes should be < 1).
FixedFftResult fft_fixed(const FixedFftConfig& config,
                         const std::vector<std::complex<double>>& input);

// SNR in dB of the fixed-point transform vs the reference, averaged over
// `trials` deterministic pseudo-random inputs.
double measure_snr_db(const FixedFftConfig& config, std::uint64_t seed = 42,
                      int trials = 2);

}  // namespace nautilus::fft
