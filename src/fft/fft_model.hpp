#pragma once
// Streaming-FFT datapath area/timing model.
//
// Maps an FftConfig onto the resource and timing descriptors of a fully
// streamed Pease-style FFT: `stages()` columns of `butterflies_per_stage()`
// radix-r butterflies, twiddle multipliers, inter-stage streaming
// permutation memories, twiddle ROMs and the scaling datapath.  Constants
// are calibrated against the ranges visible in the paper's Figs. 6 and 7
// (minimum ~540 LUTs; peak throughput efficiency ~1.5-1.7 MSPS/LUT).

#include "fft/fft_params.hpp"
#include "synth/synthesizer.hpp"

namespace nautilus::fft {

struct FftAreaBreakdown {
    synth::Resources butterflies;   // adder trees
    synth::Resources multipliers;   // twiddle multipliers (DSP or LUT)
    synth::Resources permutation;   // inter-stage streaming buffers
    synth::Resources twiddle_rom;
    synth::Resources scaling;
    synth::Resources control;

    synth::Resources total() const;
};

// True when the twiddle multipliers fit the hard DSP blocks.
bool uses_dsp(const FftConfig& config, const synth::FpgaTech& tech);

FftAreaBreakdown fft_area(const FftConfig& config, const synth::FpgaTech& tech);

std::vector<synth::TimingPath> fft_paths(const FftConfig& config,
                                         const synth::FpgaTech& tech);

synth::DesignDescriptor fft_descriptor(const FftConfig& config,
                                       const synth::FpgaTech& tech);

// Steady-state throughput in million (complex) samples per second at `fmax`:
// a fully streaming pipeline accepts streaming_width samples per cycle.
double fft_throughput_msps(const FftConfig& config, double fmax_mhz);

}  // namespace nautilus::fft
