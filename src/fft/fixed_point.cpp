#include "fft/fixed_point.hpp"

#include <cmath>
#include <stdexcept>

namespace nautilus::fft {

namespace {

void check_width(int width)
{
    if (width < 2 || width > 32)
        throw std::invalid_argument("fixed_point: width out of [2, 32]");
}

}  // namespace

std::int64_t fixed_max(int width)
{
    check_width(width);
    return (std::int64_t{1} << (width - 1)) - 1;
}

std::int64_t fixed_min(int width)
{
    check_width(width);
    return -(std::int64_t{1} << (width - 1));
}

std::int64_t saturate(std::int64_t value, int width, bool* overflowed)
{
    const std::int64_t hi = fixed_max(width);
    const std::int64_t lo = fixed_min(width);
    if (value > hi) {
        if (overflowed) *overflowed = true;
        return hi;
    }
    if (value < lo) {
        if (overflowed) *overflowed = true;
        return lo;
    }
    return value;
}

std::int64_t quantize(double value, int width)
{
    check_width(width);
    const double scale = std::ldexp(1.0, width - 1);
    const double scaled = std::nearbyint(value * scale);
    // Clamp through saturate to handle +1.0 and out-of-range inputs.
    return saturate(static_cast<std::int64_t>(scaled), width);
}

double to_double(std::int64_t value, int width)
{
    check_width(width);
    return static_cast<double>(value) * std::ldexp(1.0, -(width - 1));
}

std::int64_t mul_round(std::int64_t a, std::int64_t b, int shift)
{
    if (shift < 0 || shift > 62) throw std::invalid_argument("mul_round: bad shift");
    const std::int64_t product = a * b;
    const std::int64_t half = shift > 0 ? (std::int64_t{1} << (shift - 1)) : 0;
    return (product + half) >> shift;
}

CFix cmul(const CFix& a, const CFix& w, int data_width, int twiddle_width, bool* overflowed)
{
    check_width(data_width);
    check_width(twiddle_width);
    // Twiddle is Q1.(tw-1): renormalize the product back to data format by
    // shifting out the twiddle fraction bits.
    const int shift = twiddle_width - 1;
    const std::int64_t re = mul_round(a.re, w.re, shift) - mul_round(a.im, w.im, shift);
    const std::int64_t im = mul_round(a.re, w.im, shift) + mul_round(a.im, w.re, shift);
    return CFix{saturate(re, data_width, overflowed), saturate(im, data_width, overflowed)};
}

CFix cadd(const CFix& a, const CFix& b, int data_width, bool* overflowed)
{
    return CFix{saturate(a.re + b.re, data_width, overflowed),
                saturate(a.im + b.im, data_width, overflowed)};
}

CFix csub(const CFix& a, const CFix& b, int data_width, bool* overflowed)
{
    return CFix{saturate(a.re - b.re, data_width, overflowed),
                saturate(a.im - b.im, data_width, overflowed)};
}

CFix cshift_down(const CFix& a)
{
    // Arithmetic shift with round-to-nearest (matches a hardware
    // truncate-with-carry-in scaler).
    return CFix{(a.re + 1) >> 1, (a.im + 1) >> 1};
}

CFix cquantize(const std::complex<double>& value, int width)
{
    return CFix{quantize(value.real(), width), quantize(value.imag(), width)};
}

std::complex<double> cfix_to_complex(const CFix& value, int width)
{
    return {to_double(value.re, width), to_double(value.im, width)};
}

}  // namespace nautilus::fft
