// Figure 1: LUT usage and maximum frequency for ~30,000 virtual-channel
// router design points (paper section 1, "The Scale of the Problem").
//
// Enumerates the full 9-parameter router space through the virtual
// synthesizer and renders the area/frequency scatter the paper plots from
// FPGA synthesis results, plus the summary statistics the figure implies.

#include <cstdio>
#include <iostream>

#include "exp/series.hpp"
#include "ip/dataset.hpp"
#include "noc/router_generator.hpp"

using namespace nautilus;
using ip::Metric;

int main()
{
    std::puts("== Figure 1: Frequency vs. Area for Virtual-Channel Router Variants ==");
    const noc::RouterGenerator gen;
    std::printf("router parameter space: %zu parameters, %.0f design points\n",
                gen.space().size(), gen.space().cardinality());

    const ip::Dataset ds = ip::Dataset::enumerate(gen);
    std::printf("characterized %zu design instances (virtual Virtex-6 synthesis)\n\n",
                ds.size());

    exp::ScatterGroup cloud;
    cloud.label = "router variants";
    cloud.glyph = '.';
    double lut_min = 1e18;
    double lut_max = 0.0;
    double f_min = 1e18;
    double f_max = 0.0;
    for (const auto& e : ds) {
        const double luts = e.values.get(Metric::area_luts);
        const double freq = e.values.get(Metric::freq_mhz);
        cloud.points.push_back({luts, freq});
        lut_min = std::min(lut_min, luts);
        lut_max = std::max(lut_max, luts);
        f_min = std::min(f_min, freq);
        f_max = std::max(f_max, freq);
    }

    exp::print_scatter(std::cout, "Frequency (MHz) vs. Area (LUTs)", "Area (LUTs)",
                       "Frequency (MHz)", {cloud});

    std::printf("\narea range:      %8.0f .. %8.0f LUTs   (paper: ~0.4k .. ~25k)\n",
                lut_min, lut_max);
    std::printf("frequency range: %8.1f .. %8.1f MHz    (paper: ~60 .. ~200)\n", f_min,
                f_max);
    std::printf("spread: %.1fx in area, %.1fx in frequency across functionally\n"
                "interchangeable design points -- the navigation problem Nautilus solves.\n",
                lut_max / lut_min, f_max / f_min);
    return 0;
}
