// Micro-benchmarks (google-benchmark): cost of the engine's inner loops.
//
// In the paper's setting one fitness evaluation is minutes-to-hours of EDA
// runtime, so the GA's own cost is negligible.  These benchmarks document
// that property for our virtual flow: operator and model costs per design
// point, to be compared against real synthesis times.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>

#include "core/breed.hpp"
#include "core/ga.hpp"
#include "obs/export.hpp"
#include "obs/log.hpp"
#include "obs/obs.hpp"
#include "obs/progress.hpp"
#include "core/nautilus.hpp"
#include "fft/fft_generator.hpp"
#include "fft/fft_kernel.hpp"
#include "noc/router_generator.hpp"

using namespace nautilus;

namespace {

ParameterSpace bench_space()
{
    ParameterSpace space;
    for (int i = 0; i < 9; ++i)
        space.add("p" + std::to_string(i), ParamDomain::int_range(0, 7));
    return space;
}

void bm_genome_random(benchmark::State& state)
{
    const auto space = bench_space();
    Rng rng{1};
    for (auto _ : state) benchmark::DoNotOptimize(Genome::random(space, rng));
}
BENCHMARK(bm_genome_random);

void bm_mutation_baseline(benchmark::State& state)
{
    const auto space = bench_space();
    const HintSet hints = HintSet::none(space);
    MutationContext ctx;
    ctx.space = &space;
    ctx.hints = &hints;
    ctx.mutation_rate = 0.1;
    Rng rng{2};
    Genome g = Genome::random(space, rng);
    for (auto _ : state) benchmark::DoNotOptimize(mutate(g, ctx, rng));
}
BENCHMARK(bm_mutation_baseline);

void bm_mutation_guided(benchmark::State& state)
{
    const auto space = bench_space();
    HintSet hints = HintSet::none(space);
    for (std::size_t i = 0; i < space.size(); ++i) {
        hints.param(i).importance = 10.0 + static_cast<double>(i) * 10.0;
        hints.param(i).bias = 0.5;
    }
    hints.set_confidence(0.8);
    MutationContext ctx;
    ctx.space = &space;
    ctx.hints = &hints;
    ctx.mutation_rate = 0.1;
    Rng rng{3};
    Genome g = Genome::random(space, rng);
    for (auto _ : state) benchmark::DoNotOptimize(mutate(g, ctx, rng));
}
BENCHMARK(bm_mutation_guided);

void bm_crossover(benchmark::State& state)
{
    const auto space = bench_space();
    Rng rng{4};
    const Genome a = Genome::random(space, rng);
    const Genome b = Genome::random(space, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(crossover(a, b, CrossoverKind::single_point, rng));
}
BENCHMARK(bm_crossover);

// One breed phase (select + crossover + mutate, population 10) through the
// preserved scalar reference path vs. the data-oriented BreedContext.  Same
// seed, same hints: the work is identical, only the implementation differs.
struct BreedBenchSetup {
    ParameterSpace space;
    HintSet hints;
    BreedConfig config;
    std::vector<Genome> population;
    std::vector<double> fitness;

    BreedBenchSetup()
    {
        for (int i = 0; i < 9; ++i)
            space.add("p" + std::to_string(i), ParamDomain::int_range(0, 7));
        hints = HintSet::none(space);
        for (std::size_t i = 0; i < space.size(); ++i) {
            hints.param(i).importance = 10.0 + static_cast<double>(i) * 10.0;
            hints.param(i).bias = 0.5;
        }
        hints.set_confidence(0.8);
        config.population_size = 10;
        Rng rng{7};
        for (std::size_t i = 0; i < config.population_size; ++i) {
            population.push_back(Genome::random(space, rng));
            fitness.push_back(rng.uniform() * 100.0);
        }
    }
};

void bm_breed_scalar(benchmark::State& state)
{
    BreedBenchSetup setup;
    Rng rng{8};
    std::size_t gen = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(breed_population_scalar(
            setup.population, setup.fitness, setup.config, setup.space, setup.hints,
            0.1, gen++ % 80, rng, false));
    }
}
BENCHMARK(bm_breed_scalar);

void bm_breed_dataop(benchmark::State& state)
{
    BreedBenchSetup setup;
    BreedContext ctx{setup.space, setup.hints, 0.1};
    Rng rng{8};
    std::size_t gen = 0;
    for (auto _ : state) {
        ctx.begin_generation(gen++ % 80);
        benchmark::DoNotOptimize(
            ctx.breed(setup.population, setup.fitness, setup.config, rng, false));
    }
}
BENCHMARK(bm_breed_dataop);

void bm_diversity_incremental(benchmark::State& state)
{
    BreedBenchSetup setup;
    DiversityCounter counter;
    for (auto _ : state) benchmark::DoNotOptimize(counter.measure(setup.population));
}
BENCHMARK(bm_diversity_incremental);

void bm_router_evaluate(benchmark::State& state)
{
    const noc::RouterGenerator gen;
    Rng rng{5};
    const Genome g = Genome::random(gen.space(), rng);
    for (auto _ : state) benchmark::DoNotOptimize(gen.evaluate(g));
}
BENCHMARK(bm_router_evaluate);

void bm_fft_evaluate_no_snr(benchmark::State& state)
{
    const fft::FftGenerator gen{synth::FpgaTech::virtex6_lx760t(), false};
    const Genome g = Genome::zeros(gen.space());
    for (auto _ : state) benchmark::DoNotOptimize(gen.evaluate(g));
}
BENCHMARK(bm_fft_evaluate_no_snr);

void bm_fixed_fft_256(benchmark::State& state)
{
    fft::FixedFftConfig cfg;
    cfg.n = 256;
    cfg.data_width = 16;
    cfg.twiddle_width = 16;
    cfg.scaling = fft::ScalingMode::per_stage;
    Rng rng{6};
    std::vector<std::complex<double>> input(256);
    for (auto& v : input) v = {rng.uniform(-0.4, 0.4), rng.uniform(-0.4, 0.4)};
    for (auto _ : state) benchmark::DoNotOptimize(fft::fft_fixed(cfg, input));
}
BENCHMARK(bm_fixed_fft_256);

void bm_full_ga_run(benchmark::State& state)
{
    const auto space = bench_space();
    const EvalFn eval = [](const Genome& g) {
        double v = 0.0;
        for (std::size_t i = 0; i < g.size(); ++i) v += g.gene(i);
        return Evaluation{true, v};
    };
    GaConfig cfg;
    cfg.generations = 80;
    const GaEngine engine{space, cfg, Direction::maximize, eval, HintSet::none(space)};
    std::uint64_t seed = 1;
    for (auto _ : state) benchmark::DoNotOptimize(engine.run(seed++));
}
BENCHMARK(bm_full_ga_run);

// Serializes events like a real sink but discards them, so the benchmark
// measures event construction + serialization without filesystem noise.
class CountingSink final : public obs::TraceSink {
public:
    void write(const obs::TraceEvent& event) override
    {
        benchmark::DoNotOptimize(obs::to_jsonl(event));
        count_.fetch_add(1, std::memory_order_relaxed);
    }
    std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> count_{0};
};

// Same workload as bm_full_ga_run with tracing enabled.  The overhead budget
// (DESIGN.md section 7) requires bm_full_ga_run itself to stay within 2% of
// its pre-observability baseline; this variant documents the traced cost.
void bm_full_ga_run_traced(benchmark::State& state)
{
    const auto space = bench_space();
    const EvalFn eval = [](const Genome& g) {
        double v = 0.0;
        for (std::size_t i = 0; i < g.size(); ++i) v += g.gene(i);
        return Evaluation{true, v};
    };
    GaConfig cfg;
    cfg.generations = 80;
    cfg.obs = obs::Instrumentation::with_sink(std::make_shared<CountingSink>());
    cfg.obs.metrics = std::make_shared<obs::MetricsRegistry>();
    const GaEngine engine{space, cfg, Direction::maximize, eval, HintSet::none(space)};
    std::uint64_t seed = 1;
    for (auto _ : state) benchmark::DoNotOptimize(engine.run(seed++));
}
BENCHMARK(bm_full_ga_run_traced);

// Same workload again with only the progress tracker attached -- the cost a
// `--serve`/`--progress` user pays even when tracing and metrics are off.
void bm_full_ga_run_progress(benchmark::State& state)
{
    const auto space = bench_space();
    const EvalFn eval = [](const Genome& g) {
        double v = 0.0;
        for (std::size_t i = 0; i < g.size(); ++i) v += g.gene(i);
        return Evaluation{true, v};
    };
    GaConfig cfg;
    cfg.generations = 80;
    cfg.obs.progress = std::make_shared<obs::ProgressTracker>();
    const GaEngine engine{space, cfg, Direction::maximize, eval, HintSet::none(space)};
    std::uint64_t seed = 1;
    for (auto _ : state) benchmark::DoNotOptimize(engine.run(seed++));
}
BENCHMARK(bm_full_ga_run_progress);

// Same workload with only a live lineage tracker attached (no tracer): the
// cost of birth bookkeeping alone, which the acceptance budget caps at 5% of
// the plain run.
void bm_full_ga_run_lineage(benchmark::State& state)
{
    const auto space = bench_space();
    const EvalFn eval = [](const Genome& g) {
        double v = 0.0;
        for (std::size_t i = 0; i < g.size(); ++i) v += g.gene(i);
        return Evaluation{true, v};
    };
    GaConfig cfg;
    cfg.generations = 80;
    cfg.obs.lineage = std::make_shared<obs::LineageTracker>();
    const GaEngine engine{space, cfg, Direction::maximize, eval, HintSet::none(space)};
    std::uint64_t seed = 1;
    for (auto _ : state) benchmark::DoNotOptimize(engine.run(seed++));
}
BENCHMARK(bm_full_ga_run_lineage);

// Same workload served entirely from a pre-warmed persistent store: every
// memo miss is a store hit, so the delta against bm_full_ga_run is the pure
// lookup cost of the store tier (`sync` off — durability is not what this
// measures).  Fixed seed: each iteration replays the identical warm run.
void bm_full_ga_run_store_warm(benchmark::State& state)
{
    const auto space = bench_space();
    const EvalFn eval = [](const Genome& g) {
        double v = 0.0;
        for (std::size_t i = 0; i < g.size(); ++i) v += g.gene(i);
        return Evaluation{true, v};
    };
    const std::string dir =
        (std::filesystem::temp_directory_path() / "nautilus_bench_store").string();
    std::filesystem::remove_all(dir);
    EvalStoreConfig store_cfg;
    store_cfg.path = dir;
    store_cfg.sync = false;
    GaConfig cfg;
    cfg.generations = 80;
    cfg.store = std::make_shared<EvalStore>(store_cfg);
    cfg.store_namespace = EvalStore::namespace_key("bench/sum");
    const GaEngine engine{space, cfg, Direction::maximize, eval, HintSet::none(space)};
    benchmark::DoNotOptimize(engine.run(1));  // warm-up pass fills the store
    for (auto _ : state) benchmark::DoNotOptimize(engine.run(1));
    std::filesystem::remove_all(dir);
}
BENCHMARK(bm_full_ga_run_store_warm);

// Forwards every trace event into the service logger's ring -- the worst
// case for the telemetry plane, where the whole engine event stream (not
// just access/job records) pays the seqlock publish on top of
// serialization.  The acceptance budget caps this at 5% over the plain run,
// same bar as lineage's.
class LogSink final : public obs::TraceSink {
public:
    explicit LogSink(std::shared_ptr<obs::Logger> logger) : logger_(std::move(logger)) {}
    void write(const obs::TraceEvent& event) override
    {
        logger_->log(obs::LogLevel::info, event);
    }

private:
    std::shared_ptr<obs::Logger> logger_;
};

// ---- BENCH_obs.json ---------------------------------------------------------
//
// `--obs-json PATH` measures the observability plane directly (outside the
// google-benchmark harness, whose JSON reporter buries the numbers we gate
// on) and writes the compact artifact documented in EXPERIMENTS.md.

double seconds_since(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
}

// Median-of-3 wall time for `reps` GA runs under the given instrumentation.
double time_ga_runs(const obs::Instrumentation& inst, int reps)
{
    const auto space = bench_space();
    const EvalFn eval = [](const Genome& g) {
        double v = 0.0;
        for (std::size_t i = 0; i < g.size(); ++i) v += g.gene(i);
        return Evaluation{true, v};
    };
    GaConfig cfg;
    cfg.generations = 80;
    cfg.obs = inst;
    const GaEngine engine{space, cfg, Direction::maximize, eval, HintSet::none(space)};
    double samples[3];
    for (double& sample : samples) {
        const auto t0 = std::chrono::steady_clock::now();
        std::uint64_t seed = 1;
        for (int r = 0; r < reps; ++r) benchmark::DoNotOptimize(engine.run(seed++));
        sample = seconds_since(t0);
    }
    if (samples[0] > samples[1]) std::swap(samples[0], samples[1]);
    if (samples[1] > samples[2]) std::swap(samples[1], samples[2]);
    if (samples[0] > samples[1]) std::swap(samples[0], samples[1]);
    return samples[1];
}

int write_obs_bench(const std::string& path)
{
    constexpr int kReps = 20;

    // 1) GA wall time: plain, tracing+metrics, progress-only.
    const double plain = time_ga_runs({}, kReps);
    auto sink = std::make_shared<CountingSink>();
    obs::Instrumentation traced = obs::Instrumentation::with_sink(sink);
    traced.metrics = std::make_shared<obs::MetricsRegistry>();
    const double traced_time = time_ga_runs(traced, kReps);
    obs::Instrumentation progressed;
    progressed.progress = std::make_shared<obs::ProgressTracker>();
    const double progress_time = time_ga_runs(progressed, kReps);
    obs::Instrumentation lineaged;
    lineaged.lineage = std::make_shared<obs::LineageTracker>();
    const double lineage_time = time_ga_runs(lineaged, kReps);
    auto ring_logger = std::make_shared<obs::Logger>(obs::LogConfig{});  // ring only
    const obs::Instrumentation logged =
        obs::Instrumentation::with_sink(std::make_shared<LogSink>(ring_logger));
    const double logged_time = time_ga_runs(logged, kReps);

    // 2) Trace serialization throughput: events/s through a discarding sink.
    const std::uint64_t events = sink->count();
    obs::TraceEvent wave{"eval_wave"};
    wave.add("size", std::size_t{20})
        .add("fresh", std::size_t{17})
        .add("seconds", obs::FieldValue{0.001});
    constexpr std::uint64_t kSerializeIters = 200000;
    const auto ser0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < kSerializeIters; ++i)
        benchmark::DoNotOptimize(obs::to_jsonl(wave));
    const double events_per_second =
        static_cast<double>(kSerializeIters) / seconds_since(ser0);

    // 2b) Logger throughput: access-shaped records through the file-less
    //     logger (level stamp + serialization + seqlock ring publish).
    obs::Logger rate_logger{obs::LogConfig{}};
    obs::TraceEvent access{"access"};
    access.add("request_id", obs::FieldValue{std::uint64_t{42}})
        .add("method", obs::FieldValue{std::string{"GET"}})
        .add("path", obs::FieldValue{std::string{"/metrics"}})
        .add("status", 200)
        .add("bytes", std::size_t{4096})
        .add("micros", obs::FieldValue{std::uint64_t{180}});
    constexpr std::uint64_t kLogIters = 200000;
    const auto log0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < kLogIters; ++i)
        rate_logger.log(obs::LogLevel::info, access);
    const double log_seconds = seconds_since(log0);
    const double log_records_per_second =
        static_cast<double>(kLogIters) / log_seconds;
    const double log_record_latency_us =
        log_seconds / static_cast<double>(kLogIters) * 1e6;

    // 3) Scrape latency: Prometheus exposition and /status JSON over a
    //    registry shaped like a real traced run's.
    obs::ProgressSnapshot snap = progressed.progress->snapshot();
    constexpr int kScrapeIters = 2000;
    const auto exp0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kScrapeIters; ++i) {
        std::string text = obs::to_prometheus(traced.metrics->snapshot());
        obs::append_progress_exposition(text, snap);
        benchmark::DoNotOptimize(text);
    }
    const double exposition_us = seconds_since(exp0) / kScrapeIters * 1e6;
    const auto st0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kScrapeIters; ++i)
        benchmark::DoNotOptimize(obs::to_json(snap));
    const double status_us = seconds_since(st0) / kScrapeIters * 1e6;

    std::ofstream out{path};
    if (!out) {
        std::fprintf(stderr, "bench_engine_micro: cannot write %s\n", path.c_str());
        return 1;
    }
    char buf[1536];
    std::snprintf(buf, sizeof buf,
                  "{\n"
                  "  \"schema\": \"nautilus-bench-obs/1\",\n"
                  "  \"ga_runs\": %d,\n"
                  "  \"ga_plain_seconds\": %.6f,\n"
                  "  \"ga_traced_seconds\": %.6f,\n"
                  "  \"ga_progress_seconds\": %.6f,\n"
                  "  \"ga_lineage_seconds\": %.6f,\n"
                  "  \"ga_logged_seconds\": %.6f,\n"
                  "  \"traced_overhead_pct\": %.2f,\n"
                  "  \"progress_overhead_pct\": %.2f,\n"
                  "  \"lineage_overhead_pct\": %.2f,\n"
                  "  \"log_overhead_pct\": %.2f,\n"
                  "  \"trace_events_per_run\": %.1f,\n"
                  "  \"trace_serialize_events_per_second\": %.0f,\n"
                  "  \"log_records_per_second\": %.0f,\n"
                  "  \"log_record_latency_us\": %.3f,\n"
                  "  \"prometheus_exposition_us\": %.2f,\n"
                  "  \"status_json_us\": %.2f\n"
                  "}\n",
                  kReps, plain, traced_time, progress_time, lineage_time, logged_time,
                  (traced_time / plain - 1.0) * 100.0,
                  (progress_time / plain - 1.0) * 100.0,
                  (lineage_time / plain - 1.0) * 100.0,
                  (logged_time / plain - 1.0) * 100.0,
                  static_cast<double>(events) / (3.0 * kReps),
                  events_per_second, log_records_per_second, log_record_latency_us,
                  exposition_us, status_us);
    out << buf;
    std::printf("%s", buf);
    std::printf("bench_engine_micro: wrote %s\n", path.c_str());
    return 0;
}

// ---- BENCH_engine.json ------------------------------------------------------
//
// `--engine-json PATH` measures the breeding hot path on the paper-scale NoC
// GA configuration (router space, population 10, strong guidance, roulette
// selection -- the GaConfig defaults) and writes the flat artifact documented
// in EXPERIMENTS.md (`nautilus-bench-engine/1`).  `--engine-baseline FILE`
// compares against a committed artifact; `--max-breed-drop PCT` turns that
// comparison into a gate on data-oriented breed throughput.

// Median-of-3 wall time of `f()` run `reps` times.
template <typename F>
double median_seconds(F&& f, int reps)
{
    double samples[3];
    for (double& sample : samples) {
        const auto t0 = std::chrono::steady_clock::now();
        for (int r = 0; r < reps; ++r) f();
        sample = seconds_since(t0);
    }
    if (samples[0] > samples[1]) std::swap(samples[0], samples[1]);
    if (samples[1] > samples[2]) std::swap(samples[1], samples[2]);
    if (samples[0] > samples[1]) std::swap(samples[0], samples[1]);
    return samples[1];
}

// Naive numeric field lookup, good enough for the flat one-level artifacts
// this tool itself writes.
bool json_number_field(const std::string& text, const std::string& key, double* out)
{
    const auto pos = text.find("\"" + key + "\"");
    if (pos == std::string::npos) return false;
    const auto colon = text.find(':', pos);
    if (colon == std::string::npos) return false;
    try {
        *out = std::stod(text.substr(colon + 1));
    } catch (const std::exception&) {
        return false;
    }
    return true;
}

int write_engine_bench(const std::string& path, const std::string& baseline_path,
                       double max_breed_drop_pct)
{
    // Paper-scale Nautilus configuration: the NoC router space (section 4.1)
    // with packaged author hints at strong guidance.
    const noc::RouterGenerator gen;
    const ParameterSpace& space = gen.space();
    const HintSet hints = apply_guidance(gen.author_hints(ip::Metric::freq_mhz),
                                         Direction::maximize, GuidanceLevel::strong);
    BreedConfig breed_cfg;  // selection/crossover/elitism: GaConfig defaults
    breed_cfg.selection = SelectionConfig{SelectionKind::roulette, 1.8, 2};
    constexpr double kMutationRate = 0.1;
    constexpr std::size_t kGenerations = 80;

    Rng setup{42};
    std::vector<Genome> population;
    std::vector<double> fitness;
    for (std::size_t i = 0; i < breed_cfg.population_size; ++i) {
        population.push_back(Genome::random(space, setup));
        const auto metrics = gen.evaluate(population.back());
        fitness.push_back(metrics.feasible ? metrics.get(ip::Metric::freq_mhz)
                                           : -std::numeric_limits<double>::infinity());
    }
    const std::size_t children_per_gen =
        breed_cfg.population_size - breed_cfg.elitism;

    // 1) Breed-phase throughput, scalar reference vs. data-oriented.
    constexpr int kBreedReps = 400;  // x kGenerations breed phases each
    auto scalar_pop = population;
    Rng scalar_rng{9};
    const double scalar_seconds = median_seconds(
        [&] {
            for (std::size_t g = 0; g < kGenerations; ++g)
                breed_population_scalar(scalar_pop, fitness, breed_cfg, space, hints,
                                        kMutationRate, g, scalar_rng, false);
        },
        kBreedReps);
    auto dataop_pop = population;
    Rng dataop_rng{9};
    BreedContext breed_ctx{space, hints, kMutationRate};
    const double dataop_seconds = median_seconds(
        [&] {
            for (std::size_t g = 0; g < kGenerations; ++g) {
                breed_ctx.begin_generation(g);
                breed_ctx.breed(dataop_pop, fitness, breed_cfg, dataop_rng, false);
            }
        },
        kBreedReps);
    const double total_children =
        static_cast<double>(kBreedReps) * kGenerations * children_per_gen;
    const double scalar_children_per_s = total_children / scalar_seconds;
    const double dataop_children_per_s = total_children / dataop_seconds;
    const double memo_probes = static_cast<double>(breed_ctx.dist_memo_hits() +
                                                   breed_ctx.dist_memo_misses());
    const double memo_hit_rate =
        memo_probes == 0.0
            ? 0.0
            : static_cast<double>(breed_ctx.dist_memo_hits()) / memo_probes;

    // 2) Per-generation population diversity, O(pop^2) pairwise definition
    //    vs. the incremental counter.
    constexpr int kDiversityReps = 20000;
    const double pairwise_seconds = median_seconds(
        [&] {
            const std::size_t genes = space.size();
            double total = 0.0;
            std::size_t pairs = 0;
            for (std::size_t i = 0; i < population.size(); ++i)
                for (std::size_t j = i + 1; j < population.size(); ++j) {
                    std::size_t differing = 0;
                    for (std::size_t g = 0; g < genes; ++g)
                        if (population[i].genes()[g] != population[j].genes()[g])
                            ++differing;
                    total += static_cast<double>(differing) / static_cast<double>(genes);
                    ++pairs;
                }
            benchmark::DoNotOptimize(total / static_cast<double>(pairs));
        },
        kDiversityReps);
    DiversityCounter counter;
    const double incremental_seconds = median_seconds(
        [&] { benchmark::DoNotOptimize(counter.measure(population)); }, kDiversityReps);

    // 3) End-to-end guided GA wall time under both breed implementations
    //    (cheap analytic evaluator, so the breed phase is visible).
    const EvalFn eval = [&gen](const Genome& g) {
        const auto metrics = gen.evaluate(g);
        return Evaluation{metrics.feasible,
                          metrics.feasible ? metrics.get(ip::Metric::freq_mhz) : 0.0};
    };
    constexpr int kGaReps = 10;
    GaConfig ga_cfg;
    ga_cfg.generations = kGenerations;
    GaConfig ga_scalar_cfg = ga_cfg;
    ga_scalar_cfg.scalar_breed = true;
    const GaEngine ga_dataop{space, ga_cfg, Direction::maximize, eval, hints};
    const GaEngine ga_scalar{space, ga_scalar_cfg, Direction::maximize, eval, hints};
    std::uint64_t seed = 1;
    const double ga_scalar_seconds = median_seconds(
        [&] { benchmark::DoNotOptimize(ga_scalar.run(seed++)); }, kGaReps);
    seed = 1;
    const double ga_dataop_seconds = median_seconds(
        [&] { benchmark::DoNotOptimize(ga_dataop.run(seed++)); }, kGaReps);

    std::ofstream out{path};
    if (!out) {
        std::fprintf(stderr, "bench_engine_micro: cannot write %s\n", path.c_str());
        return 1;
    }
    char buf[1536];
    std::snprintf(buf, sizeof buf,
                  "{\n"
                  "  \"schema\": \"nautilus-bench-engine/1\",\n"
                  "  \"population\": %zu,\n"
                  "  \"genes\": %zu,\n"
                  "  \"generations_per_rep\": %zu,\n"
                  "  \"breed_scalar_children_per_second\": %.0f,\n"
                  "  \"breed_dataop_children_per_second\": %.0f,\n"
                  "  \"breed_speedup\": %.2f,\n"
                  "  \"dist_memo_hit_rate\": %.4f,\n"
                  "  \"diversity_pairwise_us\": %.3f,\n"
                  "  \"diversity_incremental_us\": %.3f,\n"
                  "  \"ga_run_scalar_seconds\": %.6f,\n"
                  "  \"ga_run_dataop_seconds\": %.6f,\n"
                  "  \"ga_run_speedup\": %.3f\n"
                  "}\n",
                  breed_cfg.population_size, space.size(), kGenerations,
                  scalar_children_per_s, dataop_children_per_s,
                  scalar_children_per_s > 0.0
                      ? dataop_children_per_s / scalar_children_per_s
                      : 0.0,
                  memo_hit_rate, pairwise_seconds / kDiversityReps * 1e6,
                  incremental_seconds / kDiversityReps * 1e6, ga_scalar_seconds,
                  ga_dataop_seconds,
                  ga_dataop_seconds > 0.0 ? ga_scalar_seconds / ga_dataop_seconds : 0.0);
    out << buf;
    std::printf("%s", buf);
    std::printf("bench_engine_micro: wrote %s\n", path.c_str());

    if (!baseline_path.empty()) {
        std::ifstream in{baseline_path};
        if (!in) {
            std::fprintf(stderr, "bench_engine_micro: cannot read baseline %s\n",
                         baseline_path.c_str());
            return 1;
        }
        std::ostringstream text;
        text << in.rdbuf();
        double baseline_children_per_s = 0.0;
        if (!json_number_field(text.str(), "breed_dataop_children_per_second",
                               &baseline_children_per_s) ||
            baseline_children_per_s <= 0.0) {
            std::fprintf(stderr,
                         "bench_engine_micro: baseline %s lacks "
                         "breed_dataop_children_per_second\n",
                         baseline_path.c_str());
            return 1;
        }
        const double drop_pct =
            (1.0 - dataop_children_per_s / baseline_children_per_s) * 100.0;
        std::printf("bench_engine_micro: dataop breed throughput vs baseline: "
                    "%+.1f%% (%.0f -> %.0f children/s)\n",
                    -drop_pct, baseline_children_per_s, dataop_children_per_s);
        if (max_breed_drop_pct >= 0.0 && drop_pct > max_breed_drop_pct) {
            std::fprintf(stderr,
                         "bench_engine_micro: FAIL breed throughput dropped %.1f%% "
                         "(budget %.1f%%)\n",
                         drop_pct, max_breed_drop_pct);
            return 1;
        }
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv)
{
    // Strip our artifact flags before google-benchmark sees (and rejects) them.
    std::string obs_json, engine_json, engine_baseline;
    double max_breed_drop = -1.0;
    int out_argc = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--obs-json") == 0 && i + 1 < argc)
            obs_json = argv[++i];
        else if (std::strcmp(argv[i], "--engine-json") == 0 && i + 1 < argc)
            engine_json = argv[++i];
        else if (std::strcmp(argv[i], "--engine-baseline") == 0 && i + 1 < argc)
            engine_baseline = argv[++i];
        else if (std::strcmp(argv[i], "--max-breed-drop") == 0 && i + 1 < argc)
            max_breed_drop = std::stod(argv[++i]);
        else
            argv[out_argc++] = argv[i];
    }
    argc = out_argc;
    if (!engine_json.empty())
        return write_engine_bench(engine_json, engine_baseline, max_breed_drop);
    if (!obs_json.empty()) return write_obs_bench(obs_json);

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
