// Micro-benchmarks (google-benchmark): cost of the engine's inner loops.
//
// In the paper's setting one fitness evaluation is minutes-to-hours of EDA
// runtime, so the GA's own cost is negligible.  These benchmarks document
// that property for our virtual flow: operator and model costs per design
// point, to be compared against real synthesis times.

#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>

#include "core/ga.hpp"
#include "obs/obs.hpp"
#include "core/nautilus.hpp"
#include "fft/fft_generator.hpp"
#include "fft/fft_kernel.hpp"
#include "noc/router_generator.hpp"

using namespace nautilus;

namespace {

ParameterSpace bench_space()
{
    ParameterSpace space;
    for (int i = 0; i < 9; ++i)
        space.add("p" + std::to_string(i), ParamDomain::int_range(0, 7));
    return space;
}

void bm_genome_random(benchmark::State& state)
{
    const auto space = bench_space();
    Rng rng{1};
    for (auto _ : state) benchmark::DoNotOptimize(Genome::random(space, rng));
}
BENCHMARK(bm_genome_random);

void bm_mutation_baseline(benchmark::State& state)
{
    const auto space = bench_space();
    const HintSet hints = HintSet::none(space);
    MutationContext ctx;
    ctx.space = &space;
    ctx.hints = &hints;
    ctx.mutation_rate = 0.1;
    Rng rng{2};
    Genome g = Genome::random(space, rng);
    for (auto _ : state) benchmark::DoNotOptimize(mutate(g, ctx, rng));
}
BENCHMARK(bm_mutation_baseline);

void bm_mutation_guided(benchmark::State& state)
{
    const auto space = bench_space();
    HintSet hints = HintSet::none(space);
    for (std::size_t i = 0; i < space.size(); ++i) {
        hints.param(i).importance = 10.0 + static_cast<double>(i) * 10.0;
        hints.param(i).bias = 0.5;
    }
    hints.set_confidence(0.8);
    MutationContext ctx;
    ctx.space = &space;
    ctx.hints = &hints;
    ctx.mutation_rate = 0.1;
    Rng rng{3};
    Genome g = Genome::random(space, rng);
    for (auto _ : state) benchmark::DoNotOptimize(mutate(g, ctx, rng));
}
BENCHMARK(bm_mutation_guided);

void bm_crossover(benchmark::State& state)
{
    const auto space = bench_space();
    Rng rng{4};
    const Genome a = Genome::random(space, rng);
    const Genome b = Genome::random(space, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(crossover(a, b, CrossoverKind::single_point, rng));
}
BENCHMARK(bm_crossover);

void bm_router_evaluate(benchmark::State& state)
{
    const noc::RouterGenerator gen;
    Rng rng{5};
    const Genome g = Genome::random(gen.space(), rng);
    for (auto _ : state) benchmark::DoNotOptimize(gen.evaluate(g));
}
BENCHMARK(bm_router_evaluate);

void bm_fft_evaluate_no_snr(benchmark::State& state)
{
    const fft::FftGenerator gen{synth::FpgaTech::virtex6_lx760t(), false};
    const Genome g = Genome::zeros(gen.space());
    for (auto _ : state) benchmark::DoNotOptimize(gen.evaluate(g));
}
BENCHMARK(bm_fft_evaluate_no_snr);

void bm_fixed_fft_256(benchmark::State& state)
{
    fft::FixedFftConfig cfg;
    cfg.n = 256;
    cfg.data_width = 16;
    cfg.twiddle_width = 16;
    cfg.scaling = fft::ScalingMode::per_stage;
    Rng rng{6};
    std::vector<std::complex<double>> input(256);
    for (auto& v : input) v = {rng.uniform(-0.4, 0.4), rng.uniform(-0.4, 0.4)};
    for (auto _ : state) benchmark::DoNotOptimize(fft::fft_fixed(cfg, input));
}
BENCHMARK(bm_fixed_fft_256);

void bm_full_ga_run(benchmark::State& state)
{
    const auto space = bench_space();
    const EvalFn eval = [](const Genome& g) {
        double v = 0.0;
        for (std::size_t i = 0; i < g.size(); ++i) v += g.gene(i);
        return Evaluation{true, v};
    };
    GaConfig cfg;
    cfg.generations = 80;
    const GaEngine engine{space, cfg, Direction::maximize, eval, HintSet::none(space)};
    std::uint64_t seed = 1;
    for (auto _ : state) benchmark::DoNotOptimize(engine.run(seed++));
}
BENCHMARK(bm_full_ga_run);

// Serializes events like a real sink but discards them, so the benchmark
// measures event construction + serialization without filesystem noise.
class CountingSink final : public obs::TraceSink {
public:
    void write(const obs::TraceEvent& event) override
    {
        benchmark::DoNotOptimize(obs::to_jsonl(event));
        count_.fetch_add(1, std::memory_order_relaxed);
    }
    std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> count_{0};
};

// Same workload as bm_full_ga_run with tracing enabled.  The overhead budget
// (DESIGN.md section 7) requires bm_full_ga_run itself to stay within 2% of
// its pre-observability baseline; this variant documents the traced cost.
void bm_full_ga_run_traced(benchmark::State& state)
{
    const auto space = bench_space();
    const EvalFn eval = [](const Genome& g) {
        double v = 0.0;
        for (std::size_t i = 0; i < g.size(); ++i) v += g.gene(i);
        return Evaluation{true, v};
    };
    GaConfig cfg;
    cfg.generations = 80;
    cfg.obs = obs::Instrumentation::with_sink(std::make_shared<CountingSink>());
    cfg.obs.metrics = std::make_shared<obs::MetricsRegistry>();
    const GaEngine engine{space, cfg, Direction::maximize, eval, HintSet::none(space)};
    std::uint64_t seed = 1;
    for (auto _ : state) benchmark::DoNotOptimize(engine.run(seed++));
}
BENCHMARK(bm_full_ga_run_traced);

}  // namespace

BENCHMARK_MAIN();
