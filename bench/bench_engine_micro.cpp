// Micro-benchmarks (google-benchmark): cost of the engine's inner loops.
//
// In the paper's setting one fitness evaluation is minutes-to-hours of EDA
// runtime, so the GA's own cost is negligible.  These benchmarks document
// that property for our virtual flow: operator and model costs per design
// point, to be compared against real synthesis times.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "core/ga.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "obs/progress.hpp"
#include "core/nautilus.hpp"
#include "fft/fft_generator.hpp"
#include "fft/fft_kernel.hpp"
#include "noc/router_generator.hpp"

using namespace nautilus;

namespace {

ParameterSpace bench_space()
{
    ParameterSpace space;
    for (int i = 0; i < 9; ++i)
        space.add("p" + std::to_string(i), ParamDomain::int_range(0, 7));
    return space;
}

void bm_genome_random(benchmark::State& state)
{
    const auto space = bench_space();
    Rng rng{1};
    for (auto _ : state) benchmark::DoNotOptimize(Genome::random(space, rng));
}
BENCHMARK(bm_genome_random);

void bm_mutation_baseline(benchmark::State& state)
{
    const auto space = bench_space();
    const HintSet hints = HintSet::none(space);
    MutationContext ctx;
    ctx.space = &space;
    ctx.hints = &hints;
    ctx.mutation_rate = 0.1;
    Rng rng{2};
    Genome g = Genome::random(space, rng);
    for (auto _ : state) benchmark::DoNotOptimize(mutate(g, ctx, rng));
}
BENCHMARK(bm_mutation_baseline);

void bm_mutation_guided(benchmark::State& state)
{
    const auto space = bench_space();
    HintSet hints = HintSet::none(space);
    for (std::size_t i = 0; i < space.size(); ++i) {
        hints.param(i).importance = 10.0 + static_cast<double>(i) * 10.0;
        hints.param(i).bias = 0.5;
    }
    hints.set_confidence(0.8);
    MutationContext ctx;
    ctx.space = &space;
    ctx.hints = &hints;
    ctx.mutation_rate = 0.1;
    Rng rng{3};
    Genome g = Genome::random(space, rng);
    for (auto _ : state) benchmark::DoNotOptimize(mutate(g, ctx, rng));
}
BENCHMARK(bm_mutation_guided);

void bm_crossover(benchmark::State& state)
{
    const auto space = bench_space();
    Rng rng{4};
    const Genome a = Genome::random(space, rng);
    const Genome b = Genome::random(space, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(crossover(a, b, CrossoverKind::single_point, rng));
}
BENCHMARK(bm_crossover);

void bm_router_evaluate(benchmark::State& state)
{
    const noc::RouterGenerator gen;
    Rng rng{5};
    const Genome g = Genome::random(gen.space(), rng);
    for (auto _ : state) benchmark::DoNotOptimize(gen.evaluate(g));
}
BENCHMARK(bm_router_evaluate);

void bm_fft_evaluate_no_snr(benchmark::State& state)
{
    const fft::FftGenerator gen{synth::FpgaTech::virtex6_lx760t(), false};
    const Genome g = Genome::zeros(gen.space());
    for (auto _ : state) benchmark::DoNotOptimize(gen.evaluate(g));
}
BENCHMARK(bm_fft_evaluate_no_snr);

void bm_fixed_fft_256(benchmark::State& state)
{
    fft::FixedFftConfig cfg;
    cfg.n = 256;
    cfg.data_width = 16;
    cfg.twiddle_width = 16;
    cfg.scaling = fft::ScalingMode::per_stage;
    Rng rng{6};
    std::vector<std::complex<double>> input(256);
    for (auto& v : input) v = {rng.uniform(-0.4, 0.4), rng.uniform(-0.4, 0.4)};
    for (auto _ : state) benchmark::DoNotOptimize(fft::fft_fixed(cfg, input));
}
BENCHMARK(bm_fixed_fft_256);

void bm_full_ga_run(benchmark::State& state)
{
    const auto space = bench_space();
    const EvalFn eval = [](const Genome& g) {
        double v = 0.0;
        for (std::size_t i = 0; i < g.size(); ++i) v += g.gene(i);
        return Evaluation{true, v};
    };
    GaConfig cfg;
    cfg.generations = 80;
    const GaEngine engine{space, cfg, Direction::maximize, eval, HintSet::none(space)};
    std::uint64_t seed = 1;
    for (auto _ : state) benchmark::DoNotOptimize(engine.run(seed++));
}
BENCHMARK(bm_full_ga_run);

// Serializes events like a real sink but discards them, so the benchmark
// measures event construction + serialization without filesystem noise.
class CountingSink final : public obs::TraceSink {
public:
    void write(const obs::TraceEvent& event) override
    {
        benchmark::DoNotOptimize(obs::to_jsonl(event));
        count_.fetch_add(1, std::memory_order_relaxed);
    }
    std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> count_{0};
};

// Same workload as bm_full_ga_run with tracing enabled.  The overhead budget
// (DESIGN.md section 7) requires bm_full_ga_run itself to stay within 2% of
// its pre-observability baseline; this variant documents the traced cost.
void bm_full_ga_run_traced(benchmark::State& state)
{
    const auto space = bench_space();
    const EvalFn eval = [](const Genome& g) {
        double v = 0.0;
        for (std::size_t i = 0; i < g.size(); ++i) v += g.gene(i);
        return Evaluation{true, v};
    };
    GaConfig cfg;
    cfg.generations = 80;
    cfg.obs = obs::Instrumentation::with_sink(std::make_shared<CountingSink>());
    cfg.obs.metrics = std::make_shared<obs::MetricsRegistry>();
    const GaEngine engine{space, cfg, Direction::maximize, eval, HintSet::none(space)};
    std::uint64_t seed = 1;
    for (auto _ : state) benchmark::DoNotOptimize(engine.run(seed++));
}
BENCHMARK(bm_full_ga_run_traced);

// Same workload again with only the progress tracker attached -- the cost a
// `--serve`/`--progress` user pays even when tracing and metrics are off.
void bm_full_ga_run_progress(benchmark::State& state)
{
    const auto space = bench_space();
    const EvalFn eval = [](const Genome& g) {
        double v = 0.0;
        for (std::size_t i = 0; i < g.size(); ++i) v += g.gene(i);
        return Evaluation{true, v};
    };
    GaConfig cfg;
    cfg.generations = 80;
    cfg.obs.progress = std::make_shared<obs::ProgressTracker>();
    const GaEngine engine{space, cfg, Direction::maximize, eval, HintSet::none(space)};
    std::uint64_t seed = 1;
    for (auto _ : state) benchmark::DoNotOptimize(engine.run(seed++));
}
BENCHMARK(bm_full_ga_run_progress);

// Same workload served entirely from a pre-warmed persistent store: every
// memo miss is a store hit, so the delta against bm_full_ga_run is the pure
// lookup cost of the store tier (`sync` off — durability is not what this
// measures).  Fixed seed: each iteration replays the identical warm run.
void bm_full_ga_run_store_warm(benchmark::State& state)
{
    const auto space = bench_space();
    const EvalFn eval = [](const Genome& g) {
        double v = 0.0;
        for (std::size_t i = 0; i < g.size(); ++i) v += g.gene(i);
        return Evaluation{true, v};
    };
    const std::string dir =
        (std::filesystem::temp_directory_path() / "nautilus_bench_store").string();
    std::filesystem::remove_all(dir);
    EvalStoreConfig store_cfg;
    store_cfg.path = dir;
    store_cfg.sync = false;
    GaConfig cfg;
    cfg.generations = 80;
    cfg.store = std::make_shared<EvalStore>(store_cfg);
    cfg.store_namespace = EvalStore::namespace_key("bench/sum");
    const GaEngine engine{space, cfg, Direction::maximize, eval, HintSet::none(space)};
    benchmark::DoNotOptimize(engine.run(1));  // warm-up pass fills the store
    for (auto _ : state) benchmark::DoNotOptimize(engine.run(1));
    std::filesystem::remove_all(dir);
}
BENCHMARK(bm_full_ga_run_store_warm);

// ---- BENCH_obs.json ---------------------------------------------------------
//
// `--obs-json PATH` measures the observability plane directly (outside the
// google-benchmark harness, whose JSON reporter buries the numbers we gate
// on) and writes the compact artifact documented in EXPERIMENTS.md.

double seconds_since(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
}

// Median-of-3 wall time for `reps` GA runs under the given instrumentation.
double time_ga_runs(const obs::Instrumentation& inst, int reps)
{
    const auto space = bench_space();
    const EvalFn eval = [](const Genome& g) {
        double v = 0.0;
        for (std::size_t i = 0; i < g.size(); ++i) v += g.gene(i);
        return Evaluation{true, v};
    };
    GaConfig cfg;
    cfg.generations = 80;
    cfg.obs = inst;
    const GaEngine engine{space, cfg, Direction::maximize, eval, HintSet::none(space)};
    double samples[3];
    for (double& sample : samples) {
        const auto t0 = std::chrono::steady_clock::now();
        std::uint64_t seed = 1;
        for (int r = 0; r < reps; ++r) benchmark::DoNotOptimize(engine.run(seed++));
        sample = seconds_since(t0);
    }
    if (samples[0] > samples[1]) std::swap(samples[0], samples[1]);
    if (samples[1] > samples[2]) std::swap(samples[1], samples[2]);
    if (samples[0] > samples[1]) std::swap(samples[0], samples[1]);
    return samples[1];
}

int write_obs_bench(const std::string& path)
{
    constexpr int kReps = 20;

    // 1) GA wall time: plain, tracing+metrics, progress-only.
    const double plain = time_ga_runs({}, kReps);
    auto sink = std::make_shared<CountingSink>();
    obs::Instrumentation traced = obs::Instrumentation::with_sink(sink);
    traced.metrics = std::make_shared<obs::MetricsRegistry>();
    const double traced_time = time_ga_runs(traced, kReps);
    obs::Instrumentation progressed;
    progressed.progress = std::make_shared<obs::ProgressTracker>();
    const double progress_time = time_ga_runs(progressed, kReps);

    // 2) Trace serialization throughput: events/s through a discarding sink.
    const std::uint64_t events = sink->count();
    obs::TraceEvent wave{"eval_wave"};
    wave.add("size", std::size_t{20})
        .add("fresh", std::size_t{17})
        .add("seconds", obs::FieldValue{0.001});
    constexpr std::uint64_t kSerializeIters = 200000;
    const auto ser0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < kSerializeIters; ++i)
        benchmark::DoNotOptimize(obs::to_jsonl(wave));
    const double events_per_second =
        static_cast<double>(kSerializeIters) / seconds_since(ser0);

    // 3) Scrape latency: Prometheus exposition and /status JSON over a
    //    registry shaped like a real traced run's.
    obs::ProgressSnapshot snap = progressed.progress->snapshot();
    constexpr int kScrapeIters = 2000;
    const auto exp0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kScrapeIters; ++i) {
        std::string text = obs::to_prometheus(traced.metrics->snapshot());
        obs::append_progress_exposition(text, snap);
        benchmark::DoNotOptimize(text);
    }
    const double exposition_us = seconds_since(exp0) / kScrapeIters * 1e6;
    const auto st0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kScrapeIters; ++i)
        benchmark::DoNotOptimize(obs::to_json(snap));
    const double status_us = seconds_since(st0) / kScrapeIters * 1e6;

    std::ofstream out{path};
    if (!out) {
        std::fprintf(stderr, "bench_engine_micro: cannot write %s\n", path.c_str());
        return 1;
    }
    char buf[1024];
    std::snprintf(buf, sizeof buf,
                  "{\n"
                  "  \"schema\": \"nautilus-bench-obs/1\",\n"
                  "  \"ga_runs\": %d,\n"
                  "  \"ga_plain_seconds\": %.6f,\n"
                  "  \"ga_traced_seconds\": %.6f,\n"
                  "  \"ga_progress_seconds\": %.6f,\n"
                  "  \"traced_overhead_pct\": %.2f,\n"
                  "  \"progress_overhead_pct\": %.2f,\n"
                  "  \"trace_events_per_run\": %.1f,\n"
                  "  \"trace_serialize_events_per_second\": %.0f,\n"
                  "  \"prometheus_exposition_us\": %.2f,\n"
                  "  \"status_json_us\": %.2f\n"
                  "}\n",
                  kReps, plain, traced_time, progress_time,
                  (traced_time / plain - 1.0) * 100.0,
                  (progress_time / plain - 1.0) * 100.0,
                  static_cast<double>(events) / (3.0 * kReps),
                  events_per_second, exposition_us, status_us);
    out << buf;
    std::printf("%s", buf);
    std::printf("bench_engine_micro: wrote %s\n", path.c_str());
    return 0;
}

}  // namespace

int main(int argc, char** argv)
{
    // Strip --obs-json before google-benchmark sees (and rejects) it.
    std::string obs_json;
    int out_argc = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--obs-json") == 0 && i + 1 < argc)
            obs_json = argv[++i];
        else
            argv[out_argc++] = argv[i];
    }
    argc = out_argc;
    if (!obs_json.empty()) return write_obs_bench(obs_json);

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
