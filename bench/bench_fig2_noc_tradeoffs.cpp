// Figure 2: area, power and performance for 64-endpoint CONNECT-style NoCs
// on a commercial-65nm-like ASIC node, across eight topology families.
//
// Reproduces both panels: peak bisection bandwidth vs area and vs power,
// with one glyph per topology family, and reports the 2-3 orders of
// magnitude spread the paper highlights.

#include <cstdio>
#include <iostream>

#include "exp/series.hpp"
#include "ip/dataset.hpp"
#include "noc/network_generator.hpp"

using namespace nautilus;
using ip::Metric;

int main()
{
    std::puts("== Figure 2: Area, power and performance of 64-endpoint NoCs (65nm) ==");
    const noc::NetworkGenerator gen{64};
    const ip::Dataset ds = ip::Dataset::enumerate(gen);
    std::printf("characterized %zu network configurations (8 topology families)\n\n",
                ds.size());

    static constexpr char glyphs[] = {'r', 'd', 'c', 'D', 'm', 't', 'f', 'b'};
    std::vector<exp::ScatterGroup> vs_area(noc::k_topology_count);
    std::vector<exp::ScatterGroup> vs_power(noc::k_topology_count);
    for (int k = 0; k < noc::k_topology_count; ++k) {
        const char* name = noc::topology_name(static_cast<noc::TopologyKind>(k));
        vs_area[k].label = name;
        vs_area[k].glyph = glyphs[k];
        vs_power[k].label = name;
        vs_power[k].glyph = glyphs[k];
    }

    double bw_min = 1e18;
    double bw_max = 0.0;
    for (const auto& e : ds) {
        const std::size_t topo = e.genome.gene(noc::network_gene::topology);
        const double bw = e.values.get(Metric::bisection_gbps);
        vs_area[topo].points.push_back({e.values.get(Metric::area_mm2), bw});
        vs_power[topo].points.push_back({e.values.get(Metric::power_mw), bw});
        bw_min = std::min(bw_min, bw);
        bw_max = std::max(bw_max, bw);
    }

    exp::ScatterOptions opts;
    opts.log_x = true;
    opts.log_y = true;
    exp::print_scatter(std::cout, "NoC Area vs. Performance", "Area (mm^2)",
                       "Peak Bisection Bandwidth (Gbps)", vs_area, opts);
    std::puts("");
    exp::print_scatter(std::cout, "NoC Power vs. Performance", "Power (mW)",
                       "Peak Bisection Bandwidth (Gbps)", vs_power, opts);

    std::puts("\nper-family characteristics (traffic columns measured by routing all\n"
              "endpoint pairs on the explicit topology graph):");
    std::printf("  %-18s %-16s %-12s %-14s\n", "family", "best Gbps/mm^2", "avg hops",
                "saturation");
    for (int k = 0; k < noc::k_topology_count; ++k) {
        double best = 0.0;
        for (const auto& [area, bw] : vs_area[k].points)
            best = std::max(best, bw / area);
        const auto& t = gen.traffic(static_cast<noc::TopologyKind>(k));
        std::printf("  %-18s %10.1f %12.2f %12.3f flits/cyc/node\n",
                    vs_area[k].label.c_str(), best, t.avg_hops, t.saturation_injection);
    }
    std::printf("\nbandwidth spread across interchangeable configurations: %.0fx\n",
                bw_max / bw_min);
    std::puts("(paper: 2-3 orders of magnitude across power, area and performance)");
    return 0;
}
