// Figure 6: minimizing the number of LUTs in the FFT design space.
//
// The FFT engine is *expert-guided*: author hints shipped with the generator
// (in the paper, set by a Spiral developer).  Also reproduces footnote 3's
// random-sampling comparison at the 2x-optimum threshold.

#include "core/random_search.hpp"
#include "fft/fft_generator.hpp"
#include "fig_common.hpp"

using namespace nautilus;
using ip::Metric;

int main()
{
    std::puts("== Figure 6: FFT, minimize # LUTs (expert-guided) ==");
    const fft::FftGenerator gen{synth::FpgaTech::virtex6_lx760t(), /*measure_snr=*/false};
    const ip::Dataset ds = ip::Dataset::enumerate(gen);
    const double best = ds.best(Metric::area_luts, Direction::minimize);
    std::printf("dataset: %zu designs (%zu feasible), minimum %.0f LUTs (paper: ~540)\n",
                ds.size(), ds.feasible_count(), best);
    std::printf("best design: %s\n\n",
                fft::decode_fft(gen.space(),
                                ds.best_entry(Metric::area_luts, Direction::minimize).genome)
                    .to_string()
                    .c_str());

    const exp::Query query =
        exp::Query::simple("FFT: Minimize # LUTs", Metric::area_luts, Direction::minimize);
    exp::Experiment e{gen, query, bench::paper_config()};
    e.use_dataset(ds);
    e.add_standard_engines();
    e.enable_random_search(800);

    bench::FigureReport report{e.run()};
    report.result.print(std::cout);
    std::puts("");
    report.print_speedups(best * 1.02, "the optimum (within 2%)");
    const double relaxed = best * 2.0;
    report.print_speedups(relaxed, "2x the optimum");

    // Footnote 3: expected random-sampling cost to meet the relaxed goal.
    const double hit = ds.hit_fraction(Metric::area_luts, Direction::minimize, relaxed);
    std::printf("\nrandom sampling, analytic expectation to reach %.0f LUTs: %.0f draws\n",
                relaxed, RandomSearch::expected_draws(hit));
    std::puts("(paper: strong Nautilus 101 vs baseline 463 evals to the optimum;\n"
              " 23.6 vs 78.9 evals to 2x optimum; random sampling ~11,921)");
    return 0;
}
