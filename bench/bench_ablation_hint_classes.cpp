// Ablation: contribution of each hint class in isolation.
//
// The paper proposes a taxonomy of hints (importance, importance decay,
// bias, target) but evaluates them combined.  This ablation runs the FFT
// min-LUTs query with each class enabled alone, quantifying what each
// mechanism buys over the baseline.

#include <cstdio>
#include <iostream>

#include "fft/fft_generator.hpp"
#include "fig_common.hpp"

using namespace nautilus;
using ip::Metric;

namespace {

// Author hints restricted to a single hint class.
HintSet only_class(const HintSet& full, const std::string& klass)
{
    HintSet out = full;
    for (std::size_t i = 0; i < out.size(); ++i) {
        ParamHints& h = out.param(i);
        const ParamHints original = h;
        h = ParamHints{};
        if (klass == "importance") {
            h.importance = original.importance;
        }
        else if (klass == "importance+decay") {
            h.importance = original.importance;
            h.importance_decay = original.importance_decay;
        }
        else if (klass == "bias") {
            h.bias = original.bias;
        }
        else if (klass == "target") {
            h.target = original.target;
        }
    }
    return out;
}

}  // namespace

int main()
{
    std::puts("== Ablation: hint classes in isolation (FFT, minimize LUTs) ==");
    const fft::FftGenerator gen{synth::FpgaTech::virtex6_lx760t(), /*measure_snr=*/false};
    const ip::Dataset ds = ip::Dataset::enumerate(gen);
    const double best = ds.best(Metric::area_luts, Direction::minimize);

    const exp::Query query =
        exp::Query::simple("min-luts", Metric::area_luts, Direction::minimize);
    const HintSet full = exp::query_hints(gen, query);

    exp::Experiment e{gen, query, bench::paper_config(30)};
    e.use_dataset(ds);
    e.add_engine({"baseline", GuidanceLevel::none, std::nullopt, std::nullopt});
    e.add_engine({"importance-only", GuidanceLevel::strong, only_class(full, "importance"),
                  std::nullopt});
    e.add_engine({"imp+decay", GuidanceLevel::strong,
                  only_class(full, "importance+decay"), std::nullopt});
    e.add_engine({"bias-only", GuidanceLevel::strong, only_class(full, "bias"),
                  std::nullopt});
    e.add_engine({"all-hints", GuidanceLevel::strong, std::nullopt, std::nullopt});

    bench::FigureReport report{e.run()};
    std::puts("");
    report.print_speedups(best * 1.05, "within 5% of the optimum");
    std::puts("");
    report.print_speedups(best * 1.5, "within 1.5x of the optimum");
    std::puts("");
    for (const auto& er : report.result.engines)
        std::printf("  %-18s final best (mean): %8.1f LUTs\n", er.spec.label.c_str(),
                    er.curve.mean_final_best());
    std::puts("\nexpected: bias drives most of the gain on this monotone query;\n"
              "importance alone helps less; decay recovers the endgame losses of\n"
              "importance-only focusing.");
    return 0;
}
