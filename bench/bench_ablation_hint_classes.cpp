// Ablation: contribution of each hint class in isolation.
//
// The paper proposes a taxonomy of hints (importance, importance decay,
// bias, target) but evaluates them combined.  This ablation runs the FFT
// min-LUTs query with each class enabled alone, quantifying what each
// mechanism buys over the baseline.

#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "fft/fft_generator.hpp"
#include "fig_common.hpp"
#include "synth/job_queue.hpp"

using namespace nautilus;
using ip::Metric;

namespace {

// Author hints restricted to a single hint class.
HintSet only_class(const HintSet& full, const std::string& klass)
{
    HintSet out = full;
    for (std::size_t i = 0; i < out.size(); ++i) {
        ParamHints& h = out.param(i);
        const ParamHints original = h;
        h = ParamHints{};
        if (klass == "importance") {
            h.importance = original.importance;
        }
        else if (klass == "importance+decay") {
            h.importance = original.importance;
            h.importance_decay = original.importance_decay;
        }
        else if (klass == "bias") {
            h.bias = original.bias;
        }
        else if (klass == "target") {
            h.target = original.target;
        }
    }
    return out;
}

// One GA run through the parallel evaluation pipeline with a synthetic slow
// EvalFn (each cache miss "synthesizes" for a few ms).  A simulated
// synthesis cluster with the same worker count rides along via the batch
// observer, so the report shows simulated EDA time next to the measured
// wall-clock of the real thread pool.
struct ParallelProbe {
    RunResult result;
    double simulated_minutes = 0.0;
    double utilization = 0.0;
};

ParallelProbe run_parallel_probe(const fft::FftGenerator& gen, const ip::Dataset& ds,
                                 const exp::Query& query, const HintSet& hints,
                                 std::size_t workers)
{
    const EvalFn fast = ds.lookup_eval(query.metric, exp::query_eval(gen, query));
    const EvalFn slow = [fast](const Genome& g) {
        std::this_thread::sleep_for(std::chrono::milliseconds(3));  // fake CAD runtime
        return fast(g);
    };

    auto cluster = std::make_shared<synth::SynthesisCluster>(workers);
    GaConfig cfg;
    cfg.seed = 2015;
    cfg.generations = 20;
    cfg.eval_workers = workers;
    cfg.eval_observer = [cluster, fast](std::span<const Genome> fresh, double) {
        std::vector<double> jobs;
        jobs.reserve(fresh.size());
        for (const Genome& g : fresh) {
            const Evaluation e = fast(g);
            jobs.push_back(synth::synthesis_minutes(e.feasible ? e.value : 500.0, g.key()));
        }
        cluster->run_batch(jobs);
    };

    const GaEngine engine{gen.space(), cfg, query.direction, slow, hints};
    ParallelProbe probe;
    probe.result = engine.run();
    probe.simulated_minutes = cluster->elapsed_minutes();
    probe.utilization = cluster->utilization();
    return probe;
}

void report_parallel_pipeline(const fft::FftGenerator& gen, const ip::Dataset& ds,
                              const exp::Query& query, const HintSet& full)
{
    HintSet strong = full;
    strong.set_confidence(guidance_confidence(GuidanceLevel::strong, full.confidence()));

    std::puts("== Parallel evaluation pipeline (synthetic 3 ms/job EvalFn) ==");
    const ParallelProbe serial = run_parallel_probe(gen, ds, query, strong, 1);
    const ParallelProbe parallel = run_parallel_probe(gen, ds, query, strong, 4);

    bool same_accounting =
        serial.result.distinct_evals == parallel.result.distinct_evals &&
        serial.result.curve.size() == parallel.result.curve.size() &&
        serial.result.best_eval.value == parallel.result.best_eval.value;
    if (same_accounting) {
        const auto& a = serial.result.curve.points();
        const auto& b = parallel.result.curve.points();
        for (std::size_t i = 0; i < a.size(); ++i)
            if (a[i].evals != b[i].evals || a[i].best != b[i].best)
                same_accounting = false;
    }
    std::printf("  1 worker : %4zu distinct evals, measured eval wall-clock %6.3f s, "
                "simulated EDA %8.1f min\n",
                serial.result.distinct_evals, serial.result.eval_seconds,
                serial.simulated_minutes);
    std::printf("  4 workers: %4zu distinct evals, measured eval wall-clock %6.3f s, "
                "simulated EDA %8.1f min (util %.0f%%)\n",
                parallel.result.distinct_evals, parallel.result.eval_seconds,
                parallel.simulated_minutes, parallel.utilization * 100.0);
    const double speedup = parallel.result.eval_seconds > 0.0
                               ? serial.result.eval_seconds / parallel.result.eval_seconds
                               : 0.0;
    std::printf("  measured speedup: %.2fx (expect > 1.5x), simulated cluster speedup: "
                "%.2fx\n",
                speedup,
                parallel.simulated_minutes > 0.0
                    ? serial.simulated_minutes / parallel.simulated_minutes
                    : 0.0);
    std::printf("  best-vs-distinct-evals curves identical across worker counts: %s\n",
                same_accounting ? "yes" : "NO -- DETERMINISM BUG");
}

}  // namespace

int main()
{
    std::puts("== Ablation: hint classes in isolation (FFT, minimize LUTs) ==");
    const fft::FftGenerator gen{synth::FpgaTech::virtex6_lx760t(), /*measure_snr=*/false};
    const ip::Dataset ds = ip::Dataset::enumerate(gen);
    const double best = ds.best(Metric::area_luts, Direction::minimize);

    const exp::Query query =
        exp::Query::simple("min-luts", Metric::area_luts, Direction::minimize);
    const HintSet full = exp::query_hints(gen, query);

    exp::Experiment e{gen, query, bench::paper_config(30)};
    e.use_dataset(ds);
    e.add_engine({"baseline", GuidanceLevel::none, std::nullopt, std::nullopt});
    e.add_engine({"importance-only", GuidanceLevel::strong, only_class(full, "importance"),
                  std::nullopt});
    e.add_engine({"imp+decay", GuidanceLevel::strong,
                  only_class(full, "importance+decay"), std::nullopt});
    e.add_engine({"bias-only", GuidanceLevel::strong, only_class(full, "bias"),
                  std::nullopt});
    e.add_engine({"all-hints", GuidanceLevel::strong, std::nullopt, std::nullopt});

    bench::FigureReport report{e.run()};
    std::puts("");
    report.print_speedups(best * 1.05, "within 5% of the optimum");
    std::puts("");
    report.print_speedups(best * 1.5, "within 1.5x of the optimum");
    std::puts("");
    for (const auto& er : report.result.engines)
        std::printf("  %-18s final best (mean): %8.1f LUTs\n", er.spec.label.c_str(),
                    er.curve.mean_final_best());
    std::puts("\nexpected: bias drives most of the gain on this monotone query;\n"
              "importance alone helps less; decay recovers the endgame losses of\n"
              "importance-only focusing.");

    std::puts("");
    report_parallel_pipeline(gen, ds, query, full);
    return 0;
}
