// Ablation: search strategies under the same budget and cost accounting.
//
// The paper's related work places GAs among stochastic DSE methods
// (simulated annealing in physical design, Monte Carlo methods in HLS).
// This bench compares, on the FFT min-LUTs query with identical distinct-
// evaluation budgets: random sampling, hill climbing, simulated annealing,
// the baseline GA, and guided variants of each (the hint machinery plugs
// into every engine's proposal distribution).

#include <cstdio>
#include <iostream>

#include "core/local_search.hpp"
#include "core/random_search.hpp"
#include "exp/experiment.hpp"
#include "fft/fft_generator.hpp"
#include "fig_common.hpp"

using namespace nautilus;
using ip::Metric;

int main()
{
    std::puts("== Ablation: search strategies (FFT, minimize LUTs, equal budgets) ==");
    const fft::FftGenerator gen{synth::FpgaTech::virtex6_lx760t(), /*measure_snr=*/false};
    const ip::Dataset ds = ip::Dataset::enumerate(gen);
    const double best = ds.best(Metric::area_luts, Direction::minimize);
    const EvalFn eval = ds.lookup_eval(Metric::area_luts);
    constexpr std::size_t budget = 400;
    constexpr std::size_t runs = 30;

    const exp::Query query =
        exp::Query::simple("min-luts", Metric::area_luts, Direction::minimize);
    HintSet guided = exp::query_hints(gen, query);
    guided.set_confidence(guidance_confidence(GuidanceLevel::strong, 0.0));
    const HintSet none = HintSet::none(gen.space());

    struct Row {
        const char* name;
        MultiRunCurve curve;
    };
    std::vector<Row> rows;

    {
        RandomSearchConfig rc;
        rc.max_distinct_evals = budget;
        rows.push_back(
            {"random", RandomSearch{gen.space(), rc, Direction::minimize, eval}.run_many(
                           runs)});
    }
    {
        HillClimbConfig hc;
        hc.max_distinct_evals = budget;
        rows.push_back({"hill-climb",
                        HillClimber{gen.space(), hc, Direction::minimize, eval, none}
                            .run_many(runs)});
        rows.push_back({"hill-climb+hints",
                        HillClimber{gen.space(), hc, Direction::minimize, eval, guided}
                            .run_many(runs)});
    }
    {
        AnnealingConfig ac;
        ac.max_distinct_evals = budget;
        rows.push_back(
            {"sim-anneal",
             SimulatedAnnealing{gen.space(), ac, Direction::minimize, eval, none}.run_many(
                 runs)});
        rows.push_back({"sim-anneal+hints",
                        SimulatedAnnealing{gen.space(), ac, Direction::minimize, eval,
                                           guided}
                            .run_many(runs)});
    }
    {
        GaConfig cfg;
        cfg.seed = 2015;
        const GaEngine base{gen.space(), cfg, Direction::minimize, eval, none};
        const GaEngine strong{gen.space(), cfg, Direction::minimize, eval, guided};
        rows.push_back({"ga-baseline", base.run_many(runs)});
        rows.push_back({"ga+hints (nautilus)", strong.run_many(runs)});
    }

    std::printf("\n  %-22s %-24s %-24s %-12s\n", "strategy", "evals to optimum+5%",
                "evals to optimum+50%", "final best");
    for (const Row& row : rows) {
        const auto tight = row.curve.evals_to_reach(best * 1.05);
        const auto loose = row.curve.evals_to_reach(best * 1.5);
        auto fmt = [](const MultiRunCurve::Convergence& c) {
            char buf[40];
            if (c.reached == 0)
                std::snprintf(buf, sizeof buf, "never (0/%zu)", c.runs);
            else
                std::snprintf(buf, sizeof buf, "%7.1f (%zu/%zu)", c.mean_evals, c.reached,
                              c.runs);
            return std::string(buf);
        };
        std::printf("  %-22s %-24s %-24s %8.1f\n", row.name, fmt(tight).c_str(),
                    fmt(loose).c_str(), row.curve.mean_final_best());
    }
    std::puts("\nexpected: every structured strategy beats random sampling; hints\n"
              "accelerate each strategy they plug into, and the guided GA is the\n"
              "most reliable at the tight threshold (population diversity protects\n"
              "the endgame where single-trajectory methods stall).");
    return 0;
}
