// Extension: converting evaluation counts into simulated EDA wall-clock.
//
// The paper counts cost in synthesis jobs because each job is "minutes to
// hours" of CAD runtime (section 4.2) and "the population size effectively
// caps the available parallelism during the evaluation phase" (section 2).
// This bench replays baseline and guided runs of the Fig. 4 query through a
// simulated synthesis cluster at several worker counts, reporting the
// wall-clock each method needs to reach the same quality.

#include <cstdio>
#include <memory>

#include "core/fault_injection.hpp"
#include "core/hint_estimator.hpp"
#include "fig_common.hpp"
#include "noc/router_generator.hpp"
#include "synth/job_queue.hpp"

using namespace nautilus;
using ip::Metric;

namespace {

// Run one GA and capture, per generation, the durations of the distinct
// synthesis jobs it issued.
struct ReplayedRun {
    std::vector<std::vector<double>> batches;  // minutes per job per generation
    Curve curve;                               // best-so-far vs distinct evals

    ReplayedRun() : curve(Direction::maximize) {}
};

ReplayedRun capture_run(const ip::IpGenerator& gen, const HintSet& hints,
                        std::uint64_t seed)
{
    // Log each distinct evaluation's synthesis duration in issue order.
    auto log = std::make_shared<std::vector<double>>();
    const EvalFn base_eval = gen.metric_eval(Metric::freq_mhz);
    const EvalFn logging_eval = [&gen, base_eval, log](const Genome& g) {
        const auto mv = gen.evaluate(g);
        const double luts = mv.feasible ? mv.get(Metric::area_luts) : 500.0;
        log->push_back(synth::synthesis_minutes(luts, g.key()));
        return base_eval(g);
    };

    GaConfig cfg;
    cfg.seed = seed;
    const GaEngine engine{gen.space(), cfg, Direction::maximize, logging_eval, hints};
    const RunResult r = engine.run(seed);

    ReplayedRun out;
    out.curve = r.curve;
    std::size_t consumed = 0;
    for (const auto& g : r.history) {
        const std::size_t upto = g.distinct_evals;
        out.batches.emplace_back(log->begin() + static_cast<std::ptrdiff_t>(consumed),
                                 log->begin() + static_cast<std::ptrdiff_t>(upto));
        consumed = upto;
    }
    return out;
}

}  // namespace

int main()
{
    std::puts("== Extension: simulated EDA wall-clock (NoC, maximize frequency) ==");
    const noc::RouterGenerator gen;

    const HintEstimator estimator;
    const HintSet estimated =
        estimator.estimate(gen.space(), gen.metric_eval(Metric::freq_mhz));
    HintSet strong = estimated;
    strong.set_confidence(guidance_confidence(GuidanceLevel::strong, 0.0));

    const ReplayedRun baseline = capture_run(gen, HintSet::none(gen.space()), 2015);
    const ReplayedRun guided = capture_run(gen, strong, 2015);

    const double target = 180.0;  // MHz quality target
    std::printf("quality target: %.0f MHz\n", target);
    std::printf("baseline issued %.0f jobs, guided %.0f jobs over 80 generations\n\n",
                baseline.curve.final_evals(), guided.curve.final_evals());

    std::printf("  %-10s %-26s %-26s %-12s\n", "workers", "baseline hours to target",
                "nautilus hours to target", "speedup");
    for (std::size_t workers : {1u, 2u, 5u, 10u, 20u}) {
        auto hours_to_target = [&](const ReplayedRun& run) -> double {
            synth::SynthesisCluster cluster{workers};
            const auto clock = synth::replay_schedule(cluster, run.batches);
            // Find the generation whose cumulative distinct evals first meets
            // the target, then read the simulated clock there.
            const auto evals_needed = run.curve.evals_to_reach(target);
            if (!evals_needed) return -1.0;
            std::size_t consumed = 0;
            for (std::size_t g = 0; g < run.batches.size(); ++g) {
                consumed += run.batches[g].size();
                if (static_cast<double>(consumed) >= *evals_needed)
                    return clock[g] / 60.0;
            }
            return clock.back() / 60.0;
        };
        const double base_h = hours_to_target(baseline);
        const double guided_h = hours_to_target(guided);
        if (base_h < 0.0 || guided_h < 0.0) {
            std::printf("  %-10zu (target not reached in this seeded run)\n", workers);
            continue;
        }
        std::printf("  %-10zu %-26.1f %-26.1f %.2fx\n", workers, base_h, guided_h,
                    base_h / guided_h);
    }

    // Cluster-utilization view: population size caps parallelism.
    std::puts("\ncluster utilization replaying the guided run:");
    for (std::size_t workers : {5u, 10u, 20u}) {
        synth::SynthesisCluster cluster{workers};
        synth::replay_schedule(cluster, guided.batches);
        std::printf("  %2zu workers: %5.1f days wall-clock, utilization %4.1f%%\n", workers,
                    cluster.elapsed_minutes() / 60.0 / 24.0,
                    100.0 * cluster.utilization());
    }
    std::puts("\n(the paper's offline characterization of the same space: 200+ cores for"
              "\n~2 weeks; a guided query touches a few hundred designs instead)");

    // Fault-tolerance view: real CAD tools crash.  Replay the guided query
    // against a 10%-failure evaluator with a 3-attempt retry ladder and
    // report the cluster-time inflation the retries cost (each retry is a
    // re-issued synthesis job).
    std::puts("\nguided query under a 10%-failure synthesis backend (3 attempts/job):");
    {
        FaultInjectionConfig fic;
        fic.fail_rate = 0.10;
        fic.seed = 2015;
        FaultInjectingEvaluator chaos{gen.metric_eval(Metric::freq_mhz), fic};
        GaConfig cfg;
        cfg.seed = 2015;
        cfg.fault.retry.max_attempts = 3;
        cfg.fault.tolerate_failures = true;
        const GaEngine engine{gen.space(), cfg, Direction::maximize, chaos.as_eval_fn(),
                              strong};
        const RunResult r = engine.run();
        const double inflation =
            static_cast<double>(r.fault.attempts) / static_cast<double>(r.distinct_evals);
        std::printf("  %zu distinct designs, %llu attempts (%llu retries, "
                    "%llu quarantined): %.1f%% extra cluster time\n",
                    r.distinct_evals, static_cast<unsigned long long>(r.fault.attempts),
                    static_cast<unsigned long long>(r.fault.retries),
                    static_cast<unsigned long long>(r.fault.quarantined),
                    100.0 * (inflation - 1.0));
        std::printf("  best frequency still found: %.1f MHz (fault-free run: %.1f MHz)\n",
                    r.best_eval.value, guided.curve.final_best());
    }
    return 0;
}
