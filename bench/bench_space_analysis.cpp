// Extension: dataset sensitivity analysis ("sweep each parameter and
// observe how the metrics respond", paper section 3).
//
// Prints main-effect reports for the key metrics of both paper IPs and
// checks that analysis-derived hints agree in sign with the shipped author
// hints -- the consistency argument behind trusting non-expert hints.

#include <cstdio>
#include <iostream>

#include "fft/fft_generator.hpp"
#include "ip/analysis.hpp"
#include "noc/router_generator.hpp"

using namespace nautilus;
using ip::Metric;

namespace {

void analyze(const ip::IpGenerator& gen, const ip::Dataset& ds, Metric metric)
{
    std::printf("\n-- %s / %s --\n", gen.name().c_str(), ip::metric_name(metric));
    const auto effects = ip::main_effects(ds, gen, metric);
    ip::print_sensitivity_report(std::cout, gen, metric, effects);

    const HintSet derived = ip::effects_to_hints(gen, effects);
    const HintSet authored = gen.author_hints(metric);
    std::size_t compared = 0;
    std::size_t agree = 0;
    for (std::size_t p = 0; p < gen.space().size(); ++p) {
        if (!derived.param(p).bias || !authored.param(p).bias) continue;
        ++compared;
        if ((*derived.param(p).bias > 0) == (*authored.param(p).bias > 0)) ++agree;
    }
    if (compared > 0)
        std::printf("  author-hint sign agreement: %zu/%zu biased parameters\n", agree,
                    compared);
}

}  // namespace

int main()
{
    std::puts("== Extension: design-space sensitivity analysis ==");

    {
        const noc::RouterGenerator gen;
        const ip::Dataset ds = ip::Dataset::enumerate(gen);
        analyze(gen, ds, Metric::freq_mhz);
        analyze(gen, ds, Metric::area_luts);
    }
    {
        const fft::FftGenerator gen{synth::FpgaTech::virtex6_lx760t(), false};
        const ip::Dataset ds = ip::Dataset::enumerate(gen);
        analyze(gen, ds, Metric::area_luts);
        analyze(gen, ds, Metric::throughput_per_lut);
    }
    return 0;
}
