// Ablation: GA knob sensitivity around the paper's configuration
// (population 10, per-gene mutation rate 0.1, 80 generations).
//
// Verifies the reproduction is not an artifact of one lucky GA setting: the
// guided-vs-baseline ordering must hold across population sizes and
// mutation rates.

#include <cstdio>
#include <iostream>

#include "fft/fft_generator.hpp"
#include "fig_common.hpp"

using namespace nautilus;
using ip::Metric;

int main()
{
    std::puts("== Ablation: GA knob sensitivity (FFT, minimize LUTs) ==");
    const fft::FftGenerator gen{synth::FpgaTech::virtex6_lx760t(), /*measure_snr=*/false};
    const ip::Dataset ds = ip::Dataset::enumerate(gen);
    const double best = ds.best(Metric::area_luts, Direction::minimize);
    const double threshold = best * 1.10;
    const exp::Query query =
        exp::Query::simple("min-luts", Metric::area_luts, Direction::minimize);

    std::printf("  %-10s%-10s%-24s%-24s%-10s\n", "pop", "rate", "baseline evals->+10%",
                "strong evals->+10%", "gain");
    for (std::size_t pop : {6u, 10u, 20u}) {
        for (double rate : {0.05, 0.1, 0.2}) {
            exp::ExperimentConfig cfg = bench::paper_config(20);
            cfg.ga.population_size = pop;
            cfg.ga.mutation_rate = rate;
            exp::Experiment e{gen, query, cfg};
            e.use_dataset(ds);
            e.add_engine({"baseline", GuidanceLevel::none, std::nullopt, std::nullopt});
            e.add_engine({"strong", GuidanceLevel::strong, std::nullopt, std::nullopt});
            const auto r = e.run();
            const auto base = r.engines[0].curve.evals_to_reach(threshold);
            const auto strong = r.engines[1].curve.evals_to_reach(threshold);
            const double gain =
                strong.mean_evals > 0.0 ? base.mean_evals / strong.mean_evals : 0.0;
            std::printf("  %-10zu%-10.2f%8.1f (%2zu/%2zu)%8s%8.1f (%2zu/%2zu)%8s%6.2fx\n",
                        pop, rate, base.mean_evals, base.reached, base.runs, "",
                        strong.mean_evals, strong.reached, strong.runs, "", gain);
        }
    }
    std::puts("\nexpected: guided >= baseline across the grid; the paper's 10/0.1 setting\n"
              "is representative, not cherry-picked.");
    return 0;
}
