// Figure 5: minimizing the area-delay product (clock period x LUTs) in the
// NoC design space, first 20 generations.
//
// This query merges hints: frequency-related hints plus "importance and bias
// of IP parameters that affect area, such as virtual-channel buffer depth"
// (paper section 4.2).  Hints are non-expert estimates, as in Fig. 4.

#include "core/hint_estimator.hpp"
#include "fig_common.hpp"
#include "noc/router_generator.hpp"

using namespace nautilus;
using ip::Metric;

int main()
{
    std::puts("== Figure 5: NoC, minimize area-delay product (20 generations) ==");
    const noc::RouterGenerator gen;
    const ip::Dataset ds = ip::Dataset::enumerate(gen);
    const double best = ds.best(Metric::area_delay_product, Direction::minimize);
    std::printf("dataset: %zu designs, best area-delay product %.0f ns*LUTs\n\n", ds.size(),
                best);

    // Non-expert estimate directly on the composite metric.
    const HintEstimator estimator;
    const HintSet estimated = [&] {
        HintSet h = estimator.estimate(gen.space(),
                                       gen.metric_eval(Metric::area_delay_product));
        return h.negated_bias();  // fold for the minimize query
    }();

    const exp::Query query = exp::Query::simple(
        "NoC: Minimize Area-Delay Product", Metric::area_delay_product, Direction::minimize);
    exp::Experiment e{gen, query, bench::paper_config(40, 20)};
    e.use_dataset(ds);
    e.add_engine({"baseline", GuidanceLevel::none, std::nullopt, std::nullopt});
    e.add_engine({"nautilus", GuidanceLevel::strong, estimated, std::nullopt});

    bench::FigureReport report{e.run()};
    report.result.print(std::cout);
    std::puts("");
    // 20 generations reach the good-but-not-optimal regime; report the
    // quality levels the mean curves actually traverse (as Fig. 5 does).
    report.print_speedups(best * 1.15, "within 15% of the best area-delay product");
    report.print_speedups(best * 1.30, "within 30% of the best area-delay product");
    std::puts("\npaper: Nautilus achieves similar quality with about half the synthesis"
              "\nruns required by the baseline within the first 20 generations.");
    return 0;
}
