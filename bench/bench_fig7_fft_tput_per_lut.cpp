// Figure 7: maximizing throughput per LUT (MSPS/LUT) in the FFT space.
//
// A composite-metric query: the expert hints include a *target* hint on the
// streaming width (efficiency peaks at moderate parallelism) plus bias hints
// on the datapath widths.  The paper reports the largest speedup here
// (strong Nautilus reaches 1.45 MSPS/LUT >8x faster; the baseline never
// reaches 1.5).

#include "fft/fft_generator.hpp"
#include "fig_common.hpp"

using namespace nautilus;
using ip::Metric;

int main()
{
    std::puts("== Figure 7: FFT, maximize throughput per LUT (expert-guided) ==");
    const fft::FftGenerator gen{synth::FpgaTech::virtex6_lx760t(), /*measure_snr=*/false};
    const ip::Dataset ds = ip::Dataset::enumerate(gen);
    const double best = ds.best(Metric::throughput_per_lut, Direction::maximize);
    std::printf("dataset: %zu designs, best efficiency %.3f MSPS/LUT (paper: >1.5)\n",
                ds.size(), best);
    std::printf(
        "best design: %s\n\n",
        fft::decode_fft(gen.space(),
                        ds.best_entry(Metric::throughput_per_lut, Direction::maximize).genome)
            .to_string()
            .c_str());

    const exp::Query query = exp::Query::simple(
        "FFT: Maximize Throughput per LUT", Metric::throughput_per_lut, Direction::maximize);
    exp::Experiment e{gen, query, bench::paper_config()};
    e.use_dataset(ds);
    e.add_standard_engines();

    bench::FigureReport report{e.run()};
    report.result.print(std::cout);
    std::puts("");
    // The paper's two reference levels, scaled to our dataset's optimum: the
    // paper reads 1.45 and 1.5 MSPS/LUT off a ~1.7 peak.
    report.print_speedups(best * 0.85, "85% of the best efficiency (paper's 1.45 level)");
    report.print_speedups(best * 0.92, "92% of the best efficiency (paper's 1.5 level)");
    std::puts("\npaper: strong Nautilus reaches 1.45 MSPS/LUT in 61.6 evals vs baseline"
              "\n501.4 (>8x); only Nautilus ever exceeds 1.5 MSPS/LUT.");
    return 0;
}
