// Figure 3: baseline GA vs Nautilus with 1 or 2 "bias" hints.
//
// Plots the design-solution score (percentile of the FFT dataset, 100 = best
// point) of the best-so-far design per *generation*, averaged over 20 runs
// (the paper's Fig. 3 setting).  Hints here are bias-only: no importance, no
// target, isolating the value-direction mechanism.

#include <cstdio>
#include <iostream>

#include "core/ga.hpp"
#include "exp/series.hpp"
#include "fft/fft_generator.hpp"
#include "ip/dataset.hpp"

using namespace nautilus;
using ip::Metric;

namespace {

// "Design solution score": how close the best-so-far value is to the best
// the generator can offer (100 = the optimum; a solution within the top 1%
// scores >= 99).  Averaged per generation over `runs` seeds.
std::vector<double> mean_score_curve(const GaEngine& engine, const ip::Dataset& ds,
                                     std::size_t runs)
{
    const double optimum = ds.best(Metric::area_luts, Direction::minimize);
    std::vector<double> mean;
    Rng seeder{20};
    for (std::size_t r = 0; r < runs; ++r) {
        const RunResult result = engine.run(seeder.next_u64());
        if (mean.empty()) mean.assign(result.history.size(), 0.0);
        for (std::size_t g = 0; g < result.history.size(); ++g)
            mean[g] += 100.0 * optimum / result.history[g].best_so_far;
    }
    for (double& v : mean) v /= static_cast<double>(runs);
    return mean;
}

std::size_t generations_to_score(const std::vector<double>& curve, double score)
{
    for (std::size_t g = 0; g < curve.size(); ++g)
        if (curve[g] >= score) return g;
    return curve.size();
}

}  // namespace

int main()
{
    std::puts("== Figure 3: Baseline GA vs Nautilus with 'bias' hints (FFT) ==");
    const fft::FftGenerator gen{synth::FpgaTech::virtex6_lx760t(), /*measure_snr=*/false};
    const ip::Dataset ds = ip::Dataset::enumerate(gen);
    const EvalFn eval = ds.lookup_eval(Metric::area_luts);

    GaConfig cfg;  // paper defaults: pop 10, rate 0.1, 80 generations
    constexpr std::size_t runs = 20;

    // Bias hints folded for the minimize-LUTs query: "decreasing streaming
    // width / data width decreases LUTs".
    HintSet one_hint = HintSet::none(gen.space());
    one_hint.param(fft::fft_gene::streaming_width).bias = -0.8;
    one_hint.set_confidence(0.8);
    HintSet two_hints = one_hint;
    two_hints.param(fft::fft_gene::data_width).bias = -0.7;

    const GaEngine baseline{gen.space(), cfg, Direction::minimize, eval,
                            HintSet::none(gen.space())};
    const GaEngine nautilus1{gen.space(), cfg, Direction::minimize, eval, one_hint};
    const GaEngine nautilus2{gen.space(), cfg, Direction::minimize, eval, two_hints};

    const auto base_curve = mean_score_curve(baseline, ds, runs);
    const auto one_curve = mean_score_curve(nautilus1, ds, runs);
    const auto two_curve = mean_score_curve(nautilus2, ds, runs);

    std::puts("\n  [Design Solution Score (%) of best-so-far, avg of 20 runs]");
    std::printf("  %-12s%-14s%-18s%-18s\n", "generation", "baseline", "nautilus-1-bias",
                "nautilus-2-bias");
    for (std::size_t g = 0; g < base_curve.size(); g += 5)
        std::printf("  %-12zu%-14.2f%-18.2f%-18.2f\n", g, base_curve[g], one_curve[g],
                    two_curve[g]);

    std::vector<exp::LabeledSeries> series(3);
    series[0].label = "baseline";
    series[1].label = "1 bias hint";
    series[2].label = "2 bias hints";
    for (std::size_t g = 0; g < base_curve.size(); ++g) {
        series[0].points.push_back({static_cast<double>(g), base_curve[g]});
        series[1].points.push_back({static_cast<double>(g), one_curve[g]});
        series[2].points.push_back({static_cast<double>(g), two_curve[g]});
    }
    std::puts("");
    exp::print_ascii_chart(std::cout,
                           "score (%) vs generation (x axis = generation #)", series);

    // Paper: baseline reaches a solution within the top 1% at generation
    // ~56; Nautilus with bias hints at generations 15-23.
    for (double level : {95.0, 99.0}) {
        std::printf("\ngenerations to reach a score of %.0f%% (solution within %.0f%% of"
                    " the optimum):\n",
                    level, 100.0 - level);
        auto show = [&](const char* name, const std::vector<double>& curve) {
            const std::size_t g = generations_to_score(curve, level);
            if (g >= curve.size())
                std::printf("  %-16s not within %zu generations\n", name, curve.size());
            else
                std::printf("  %-16s %zu\n", name, g);
        };
        show("baseline:", base_curve);
        show("1 bias hint:", one_curve);
        show("2 bias hints:", two_curve);
    }
    std::puts("\npaper: baseline converges to a top-1% solution at generation ~56;\n"
              "Nautilus with only bias hints within 15-23 generations.");
    return 0;
}
