// Figure 4: maximizing frequency in the NoC design space.
//
// Baseline GA vs weakly/strongly guided Nautilus (differing only in the
// confidence hint, paper footnote 2).  Matching the paper's methodology, the
// NoC hints are *estimated by a non-expert* from 80 synthesized samples
// (<0.3% of the space), not authored by an expert.

#include "core/hint_estimator.hpp"
#include "fig_common.hpp"
#include "noc/router_generator.hpp"

using namespace nautilus;
using ip::Metric;

int main()
{
    std::puts("== Figure 4: NoC, maximize frequency ==");
    const noc::RouterGenerator gen;
    const ip::Dataset ds = ip::Dataset::enumerate(gen);
    const double best = ds.best(Metric::freq_mhz, Direction::maximize);
    std::printf("dataset: %zu designs, best frequency %.1f MHz\n\n", ds.size(), best);

    // Non-expert hint estimation from 80 samples (the paper's budget).
    const HintEstimator estimator;
    const HintSet estimated =
        estimator.estimate(gen.space(), gen.metric_eval(Metric::freq_mhz));
    std::puts("hints estimated from 80 random synthesized samples:");
    for (std::size_t i = 0; i < gen.space().size(); ++i) {
        const ParamHints& h = estimated.param(i);
        std::printf("  %-16s importance %5.1f  bias %s\n", gen.space()[i].name.c_str(),
                    h.importance, h.bias ? std::to_string(*h.bias).c_str() : "   --");
    }
    std::puts("");

    const exp::Query query =
        exp::Query::simple("NoC: Maximize Frequency", Metric::freq_mhz,
                           Direction::maximize);
    exp::Experiment e{gen, query, bench::paper_config()};
    e.use_dataset(ds);
    e.add_engine({"baseline", GuidanceLevel::none, std::nullopt, std::nullopt});
    e.add_engine({"nautilus-weak", GuidanceLevel::weak, estimated, std::nullopt});
    e.add_engine({"nautilus-strong", GuidanceLevel::strong, estimated, std::nullopt});

    bench::FigureReport report{e.run()};
    report.result.print(std::cout);
    std::puts("");
    report.print_speedups(best * 0.99, "within 1% of the best frequency");
    report.print_speedups(best * 0.95, "within 5% of the best frequency");
    std::puts("\npaper: baseline needs ~2.8x (vs strong) and ~1.8x (vs weak) the synthesis"
              "\njobs to converge within 1% of the best solution.");
    return 0;
}
