// Ablation: confidence sweep from baseline (0) to fully directed (1).
//
// The paper frames confidence as the knob between the stochastic baseline
// and near-gradient-descent behavior (section 3).  This sweep locates the
// regime where the FFT expert hints help most and verifies the endpoints:
// confidence 0 == baseline; confidence 1 never freezes the search.

#include <cstdio>
#include <iostream>

#include "fft/fft_generator.hpp"
#include "fig_common.hpp"

using namespace nautilus;
using ip::Metric;

int main()
{
    std::puts("== Ablation: confidence sweep (FFT, minimize LUTs) ==");
    const fft::FftGenerator gen{synth::FpgaTech::virtex6_lx760t(), /*measure_snr=*/false};
    const ip::Dataset ds = ip::Dataset::enumerate(gen);
    const double best = ds.best(Metric::area_luts, Direction::minimize);
    std::printf("dataset optimum: %.0f LUTs\n\n", best);

    const exp::Query query =
        exp::Query::simple("min-luts", Metric::area_luts, Direction::minimize);

    exp::Experiment e{gen, query, bench::paper_config(30)};
    e.use_dataset(ds);
    for (double conf : {0.0, 0.2, 0.45, 0.6, 0.8, 0.95, 1.0}) {
        char label[32];
        std::snprintf(label, sizeof label, "conf=%.2f", conf);
        e.add_engine({label, GuidanceLevel::custom, std::nullopt, conf});
    }

    bench::FigureReport report{e.run()};
    std::printf("  %-12s %-22s %-20s\n", "confidence", "evals to optimum+5%",
                "final best (mean)");
    for (const auto& er : report.result.engines) {
        const auto conv = er.curve.evals_to_reach(best * 1.05);
        std::printf("  %-12s %8.1f (%zu/%zu runs)    %8.1f LUTs\n", er.spec.label.c_str(),
                    conv.mean_evals, conv.reached, conv.runs, er.curve.mean_final_best());
    }
    std::puts("\nexpected: a sweet spot at moderate-high confidence; conf=1.0 remains\n"
              "functional (stochastic floor, paper footnote 1) but can lose endgame\n"
              "diversity; conf=0 reproduces the baseline exactly.");
    return 0;
}
