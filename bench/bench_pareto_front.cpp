// Extension: tracing a Pareto front with repeated guided queries.
//
// The paper's related work (Zuluaga et al., Knowles) models the full
// Pareto-optimal set; Nautilus instead answers one query at a time.  This
// bench shows the middle path the paper implies: sweep the weight of a
// weighted-sum objective across several guided queries and measure how much
// of the true area/throughput front the collected results cover -- at a
// fraction of the evaluations full enumeration needs.

#include <cstdio>
#include <iostream>
#include <unordered_set>

#include "core/ga.hpp"
#include "core/nautilus.hpp"
#include "core/nsga2.hpp"
#include "core/pareto.hpp"
#include "exp/query.hpp"
#include "fft/fft_generator.hpp"
#include "ip/dataset.hpp"

using namespace nautilus;
using ip::Metric;

int main()
{
    std::puts("== Extension: Pareto front sweep (FFT, LUTs vs throughput) ==");
    const fft::FftGenerator gen{synth::FpgaTech::virtex6_lx760t(), /*measure_snr=*/false};
    const ip::Dataset ds = ip::Dataset::enumerate(gen);

    const std::vector<Direction> dirs{Direction::minimize, Direction::maximize};

    // Ground truth: the dataset's true front.
    std::vector<ObjectivePoint> all;
    all.reserve(ds.size());
    for (std::size_t i = 0; i < ds.size(); ++i) {
        const auto& e = ds.entry(i);
        if (!e.values.feasible) continue;
        all.push_back({i,
                       {e.values.get(Metric::area_luts),
                        e.values.get(Metric::throughput_msps)}});
    }
    const auto true_front_idx = pareto_front(all, dirs);
    std::vector<ObjectivePoint> true_front;
    for (std::size_t i : true_front_idx) true_front.push_back(all[i]);
    std::printf("true front: %zu of %zu feasible points (full enumeration cost: %zu)\n\n",
                true_front.size(), all.size(), ds.size());

    // Weighted-sum sweep with guided GA queries.
    const double lut_scale = ds.best(Metric::area_luts, Direction::maximize);
    const double tput_scale = ds.best(Metric::throughput_msps, Direction::maximize);
    const HintSet area_hints =
        exp::query_hints(gen, exp::Query::simple("a", Metric::area_luts,
                                                 Direction::minimize));
    const HintSet tput_hints =
        exp::query_hints(gen, exp::Query::simple("t", Metric::throughput_msps,
                                                 Direction::maximize));

    std::vector<ObjectivePoint> found;
    std::unordered_set<std::uint64_t> found_keys;
    std::size_t total_evals = 0;

    const EvalFn lut_eval = ds.lookup_eval(Metric::area_luts);
    const EvalFn tput_eval = ds.lookup_eval(Metric::throughput_msps);

    for (double w_area : {0.0, 0.15, 0.3, 0.5, 0.7, 0.85, 1.0}) {
        const double w_tput = 1.0 - w_area;
        // Scalarized objective over the dataset metrics.
        const EvalFn eval = [&](const Genome& g) -> Evaluation {
            const Evaluation a = lut_eval(g);
            const Evaluation t = tput_eval(g);
            if (!a.feasible || !t.feasible) return {false, 0.0};
            const ObjectivePoint p{0, {a.value, t.value}};
            const std::vector<double> weights{w_area, w_tput};
            const std::vector<double> scales{lut_scale, tput_scale};
            return {true, weighted_sum(p, dirs, weights, scales)};
        };
        // Merge hints with the same weights.
        const std::vector<WeightedHintSet> parts{{&area_hints, w_area + 0.01},
                                                 {&tput_hints, w_tput + 0.01}};
        HintSet hints = merge_hints(parts);
        hints.set_confidence(guidance_confidence(GuidanceLevel::strong, 0.0));

        GaConfig cfg;
        cfg.generations = 40;
        cfg.seed = 17 + static_cast<std::uint64_t>(w_area * 100);
        const GaEngine engine{gen.space(), cfg, Direction::maximize, eval, hints};
        const RunResult r = engine.run();
        total_evals += r.distinct_evals;

        // Collect the run's best genome plus everything on its curve.
        const auto& e = ds.entry(r.best_genome.to_rank(gen.space()));
        if (e.values.feasible && found_keys.insert(r.best_genome.key()).second) {
            found.push_back({0,
                             {e.values.get(Metric::area_luts),
                              e.values.get(Metric::throughput_msps)}});
        }
        std::printf("  w_area=%.2f: best %6.0f LUTs / %6.0f MSPS  (%3zu evals)\n", w_area,
                    e.values.get(Metric::area_luts),
                    e.values.get(Metric::throughput_msps), r.distinct_evals);
    }

    const auto approx_front_idx = pareto_front(found, dirs);
    std::vector<ObjectivePoint> approx_front;
    for (std::size_t i : approx_front_idx) approx_front.push_back(found[i]);

    const ObjectivePoint reference{0, {lut_scale * 1.01, 0.0}};
    const double hv_true = hypervolume_2d(true_front, dirs, reference);
    const double hv_approx = hypervolume_2d(approx_front, dirs, reference);

    std::printf("\nweighted-sum sweep after %zu total evaluations (%.1f%% of"
                " enumeration):\n",
                total_evals, 100.0 * static_cast<double>(total_evals) /
                                 static_cast<double>(ds.size()));
    std::printf("  hypervolume:   %.3g of %.3g (%.1f%% of the true front)\n", hv_approx,
                hv_true, 100.0 * hv_approx / hv_true);
    std::printf("  coverage:      %.1f%% of true-front points dominated or matched\n",
                100.0 * front_coverage(approx_front, true_front, dirs));

    // --- Native multi-objective search: hint-aware NSGA-II -----------------
    const MultiEvalFn mo_eval =
        [&](const Genome& g) -> std::optional<std::vector<double>> {
        const Evaluation a = lut_eval(g);
        const Evaluation t = tput_eval(g);
        if (!a.feasible || !t.feasible) return std::nullopt;
        return std::vector<double>{a.value, t.value};
    };
    // Importance-only hints (no directional bias: the objectives conflict).
    HintSet mo_hints = HintSet::none(gen.space());
    for (std::size_t i = 0; i < gen.space().size(); ++i) {
        const double a_imp = area_hints.param(i).importance;
        const double t_imp = tput_hints.param(i).importance;
        mo_hints.param(i).importance = std::max(a_imp, t_imp);
    }
    mo_hints.set_confidence(0.5);

    MultiObjectiveConfig mo_cfg;
    mo_cfg.population_size = 24;
    mo_cfg.generations = 50;
    mo_cfg.seed = 23;
    const Nsga2Engine nsga2{gen.space(), mo_cfg, {dirs[0], dirs[1]}, mo_eval, mo_hints};
    const MultiObjectiveResult mo = nsga2.run();

    std::vector<ObjectivePoint> nsga_front;
    for (const auto& p : mo.front) nsga_front.push_back({0, p.values});
    const double hv_nsga = hypervolume_2d(nsga_front, dirs, reference);

    std::printf("\nNSGA-II (hint-aware) after %zu evaluations (%.1f%% of enumeration):\n",
                mo.distinct_evals, 100.0 * static_cast<double>(mo.distinct_evals) /
                                       static_cast<double>(ds.size()));
    std::printf("  front size:    %zu points\n", mo.front.size());
    std::printf("  hypervolume:   %.3g (%.1f%% of the true front)\n", hv_nsga,
                100.0 * hv_nsga / hv_true);
    std::printf("  coverage:      %.1f%% of true-front points dominated or matched\n",
                100.0 * front_coverage(nsga_front, true_front, dirs));
    std::puts("\nexpected: NSGA-II covers many more distinct front points than the\n"
              "weighted-sum sweep (which collapses onto knee points), at comparable\n"
              "hypervolume and evaluation cost.");
    return 0;
}
