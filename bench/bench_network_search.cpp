// Extension: guided search over the whole-network space.
//
// Exercises the pieces the router/FFT queries do not: an *unordered*
// categorical parameter (topology family) steered purely by importance
// hints, measured traffic metrics (zero-load latency from explicit-graph
// routing), and a constrained query ("minimize latency within an area
// budget", the paper's fitness-constraint device).

#include <cstdio>
#include <iostream>

#include "exp/constraint.hpp"
#include "fig_common.hpp"
#include "noc/network_generator.hpp"

using namespace nautilus;
using ip::Metric;

int main()
{
    std::puts("== Extension: guided search over 64-endpoint networks ==");
    const noc::NetworkGenerator gen;
    const ip::Dataset ds = ip::Dataset::enumerate(gen);
    std::printf("space: %zu configurations across %d topology families\n\n", ds.size(),
                noc::k_topology_count);

    // Query 1: minimize zero-load latency, unconstrained.
    {
        const exp::Query q =
            exp::Query::simple("min-latency", Metric::latency_ns, Direction::minimize);
        exp::Experiment e{gen, q, bench::paper_config(30, 40)};
        e.use_dataset(ds);
        e.add_standard_engines();
        const auto r = e.run();
        const double best = ds.best(Metric::latency_ns, Direction::minimize);
        std::printf("min zero-load latency (dataset best %.1f ns):\n", best);
        r.print_convergence(std::cout, best * 1.05, "within 5% of the best latency");
        for (const auto& er : r.engines)
            std::printf("    %-18s final best %.1f ns\n", er.spec.label.c_str(),
                        er.curve.mean_final_best());
    }

    // Query 2: the same under an area budget that excludes the fat tree's
    // wide-flit corner.
    {
        const std::vector<exp::Constraint> budget{
            {Metric::area_mm2, exp::Constraint::Bound::upper, 20.0}};
        const double rate = exp::constraint_satisfaction_rate(ds, budget);
        std::printf("\nmin latency with area <= 20 mm^2 (%.0f%% of the space"
                    " qualifies):\n",
                    rate * 100.0);
        const EvalFn eval = exp::constrained_eval(gen, Metric::latency_ns,
                                                  Direction::minimize, budget,
                                                  exp::ConstraintMode::hard);
        const exp::Query q =
            exp::Query::simple("min-latency-budget", Metric::latency_ns,
                               Direction::minimize);
        HintSet hints = exp::query_hints(gen, q);
        hints.set_confidence(guidance_confidence(GuidanceLevel::strong, 0.0));

        GaConfig cfg;
        cfg.generations = 40;
        cfg.seed = 2015;
        const GaEngine baseline{gen.space(), cfg, Direction::minimize, eval,
                                HintSet::none(gen.space())};
        const GaEngine guided{gen.space(), cfg, Direction::minimize, eval, hints};
        const auto base = baseline.run_many(30);
        const auto strong = guided.run_many(30);
        std::printf("    %-18s final best %.1f ns\n", "baseline", base.mean_final_best());
        std::printf("    %-18s final best %.1f ns\n", "nautilus-strong",
                    strong.mean_final_best());

        // Show a winning design.
        const RunResult one = guided.run(7);
        const noc::NetworkConfig win = gen.decode(one.best_genome);
        const auto mv = gen.evaluate(one.best_genome);
        std::printf("    winner: %s, flit %d, %.1f ns at %.1f mm^2 (%zu evals)\n",
                    noc::topology_name(win.topology.kind), win.router.flit_width,
                    mv.get(Metric::latency_ns), mv.get(Metric::area_mm2),
                    one.distinct_evals);
    }

    // Query 3: saturation throughput is a pure topology property -- the
    // importance-only hint on the unordered family parameter should find the
    // fat tree quickly.
    {
        const exp::Query q = exp::Query::simple(
            "max-saturation", Metric::saturation_injection, Direction::maximize);
        exp::Experiment e{gen, q, bench::paper_config(30, 25)};
        e.use_dataset(ds);
        e.add_engine({"baseline", GuidanceLevel::none, std::nullopt, std::nullopt});
        e.add_engine({"nautilus-strong", GuidanceLevel::strong, std::nullopt,
                      std::nullopt});
        const auto r = e.run();
        const double best = ds.best(Metric::saturation_injection, Direction::maximize);
        std::printf("\nmax saturation injection (best %.3f flits/cyc/node):\n", best);
        r.print_convergence(std::cout, best, "the best saturation");
    }

    // Latency-vs-offered-load curves (M/D/1 queueing on the measured
    // channel loads) -- the classic NoC characterization plot.
    std::puts("\nlatency vs offered load (cycles; 512-bit packets, 64-bit flits,"
              " 2-stage routers):");
    std::printf("  %-18s", "injection ->");
    for (int i = 0; i < 6; ++i) std::printf("%8.0f%%", 98.0 * i / 5.0);
    std::puts("  (of each family's own saturation)");
    for (int k = 0; k < noc::k_topology_count; ++k) {
        const auto kind = static_cast<noc::TopologyKind>(k);
        const auto curve = load_latency_curve(gen.traffic(kind), 2, 512, 64, 6);
        std::printf("  %-18s", noc::topology_name(kind));
        for (const auto& p : curve) std::printf("%9.1f", p.latency_cycles);
        std::puts("");
    }
    return 0;
}
