#pragma once
// Shared plumbing for the Figure 4-7 benches: run a baseline-vs-Nautilus
// experiment against an offline dataset with the paper's configuration and
// print the standard report.

#include <cstdio>
#include <iostream>
#include <optional>

#include "exp/experiment.hpp"
#include "ip/dataset.hpp"

namespace nautilus::bench {

inline exp::ExperimentConfig paper_config(std::size_t runs = 40, std::size_t gens = 80)
{
    exp::ExperimentConfig cfg;
    cfg.runs = runs;          // paper: averaged over 40 runs
    cfg.ga.generations = gens;  // paper: 80 generations (Fig. 5 shows 20)
    cfg.ga.seed = 2015;
    return cfg;
}

struct FigureReport {
    exp::ExperimentResult result;

    void print_speedups(double threshold, const std::string& label) const
    {
        result.print_convergence(std::cout, threshold, label);
        const auto& baseline = result.engines.front().curve;
        for (std::size_t i = 1; i < result.engines.size(); ++i) {
            const auto s = speedup_at_threshold(baseline, result.engines[i].curve, threshold);
            if (s)
                std::printf("    per-run speedup %s vs baseline: %.2fx\n",
                            result.engines[i].spec.label.c_str(), *s);
        }
    }
};

}  // namespace nautilus::bench
