// Ablation: robustness to wrong hints.
//
// Hints are "imperfect" by design (paper section 1: balancing author
// guidance against the stochastic GA "is critical ... for handling design
// regions that may defy the author's intuition").  This bench inverts every
// bias hint and checks that the guided GA degrades gracefully instead of
// diverging -- the stochastic floor (footnote 1) must keep the search alive.

#include <cstdio>
#include <iostream>

#include "fft/fft_generator.hpp"
#include "fig_common.hpp"

using namespace nautilus;
using ip::Metric;

int main()
{
    std::puts("== Ablation: inverted (wrong) hints (FFT, minimize LUTs) ==");
    const fft::FftGenerator gen{synth::FpgaTech::virtex6_lx760t(), /*measure_snr=*/false};
    const ip::Dataset ds = ip::Dataset::enumerate(gen);
    const double best = ds.best(Metric::area_luts, Direction::minimize);
    std::printf("dataset optimum: %.0f LUTs\n\n", best);

    const exp::Query query =
        exp::Query::simple("min-luts", Metric::area_luts, Direction::minimize);
    const HintSet correct = exp::query_hints(gen, query);
    const HintSet wrong = correct.negated_bias();  // every bias points uphill

    exp::Experiment e{gen, query, bench::paper_config(30)};
    e.use_dataset(ds);
    e.add_engine({"baseline", GuidanceLevel::none, std::nullopt, std::nullopt});
    e.add_engine({"correct-weak", GuidanceLevel::weak, correct, std::nullopt});
    e.add_engine({"correct-strong", GuidanceLevel::strong, correct, std::nullopt});
    e.add_engine({"wrong-weak", GuidanceLevel::weak, wrong, std::nullopt});
    e.add_engine({"wrong-strong", GuidanceLevel::strong, wrong, std::nullopt});

    bench::FigureReport report{e.run()};
    std::printf("  %-16s %-22s %-18s\n", "engine", "evals to optimum+10%", "final best");
    for (const auto& er : report.result.engines) {
        const auto conv = er.curve.evals_to_reach(best * 1.10);
        std::printf("  %-16s %8.1f (%2zu/%2zu runs)   %8.1f LUTs\n", er.spec.label.c_str(),
                    conv.mean_evals, conv.reached, conv.runs, er.curve.mean_final_best());
    }
    std::puts("\nexpected: wrong hints slow the search (especially wrong-strong) but do\n"
              "not break it -- final quality stays within reach of the baseline because\n"
              "hint-directed choices are blended with uniform exploration, never\n"
              "replacing it.");
    return 0;
}
