#include "core/nsga2.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nautilus {
namespace {

const std::vector<Direction> min_min{Direction::minimize, Direction::minimize};
const std::vector<Direction> min_max{Direction::minimize, Direction::maximize};

ObjectivePoint pt(double a, double b, std::size_t tag = 0)
{
    return ObjectivePoint{tag, {a, b}};
}

// ---- non_dominated_sort ------------------------------------------------------

TEST(NonDominatedSort, LayersByDomination)
{
    // minimize both.  Layer 0: (1,1).  Layer 1: (2,2).  Layer 2: (3,3).
    const std::vector<ObjectivePoint> points{pt(2, 2, 0), pt(1, 1, 1), pt(3, 3, 2)};
    const auto fronts = non_dominated_sort(points, min_min);
    ASSERT_EQ(fronts.size(), 3u);
    EXPECT_EQ(fronts[0], (std::vector<std::size_t>{1}));
    EXPECT_EQ(fronts[1], (std::vector<std::size_t>{0}));
    EXPECT_EQ(fronts[2], (std::vector<std::size_t>{2}));
}

TEST(NonDominatedSort, TradeoffsShareTheFirstFront)
{
    const std::vector<ObjectivePoint> points{pt(1, 5), pt(2, 4), pt(3, 3), pt(4, 2)};
    const auto fronts = non_dominated_sort(points, min_min);
    ASSERT_EQ(fronts.size(), 1u);
    EXPECT_EQ(fronts[0].size(), 4u);
}

TEST(NonDominatedSort, EveryPointAppearsExactlyOnce)
{
    std::vector<ObjectivePoint> points;
    for (int i = 0; i < 20; ++i)
        points.push_back(pt((i * 7) % 10, (i * 3) % 8, static_cast<std::size_t>(i)));
    const auto fronts = non_dominated_sort(points, min_max);
    std::vector<int> seen(points.size(), 0);
    for (const auto& front : fronts)
        for (std::size_t idx : front) ++seen[idx];
    for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(NonDominatedSort, EmptyInput)
{
    EXPECT_TRUE(non_dominated_sort({}, min_min).empty());
}

// ---- crowding_distance --------------------------------------------------------

TEST(CrowdingDistance, BoundaryPointsAreInfinite)
{
    const std::vector<ObjectivePoint> points{pt(1, 5), pt(2, 4), pt(3, 3), pt(4, 2)};
    const std::vector<std::size_t> front{0, 1, 2, 3};
    const auto dist = crowding_distance(points, front, min_min);
    EXPECT_TRUE(std::isinf(dist[0]));
    EXPECT_TRUE(std::isinf(dist[3]));
    EXPECT_FALSE(std::isinf(dist[1]));
    EXPECT_FALSE(std::isinf(dist[2]));
}

TEST(CrowdingDistance, IsolatedPointsScoreHigher)
{
    // Interior points: one crowded (close neighbors), one isolated.
    const std::vector<ObjectivePoint> points{pt(0, 10), pt(1, 9), pt(2, 8), pt(8, 2),
                                             pt(10, 0)};
    const std::vector<std::size_t> front{0, 1, 2, 3, 4};
    const auto dist = crowding_distance(points, front, min_min);
    EXPECT_GT(dist[3], dist[1]);  // index 3 sits in a sparse stretch
}

TEST(CrowdingDistance, TinyFrontsAllInfinite)
{
    const std::vector<ObjectivePoint> points{pt(1, 1), pt(2, 2)};
    const std::vector<std::size_t> front{0, 1};
    for (double d : crowding_distance(points, front, min_min)) EXPECT_TRUE(std::isinf(d));
}

// ---- Nsga2Engine ---------------------------------------------------------------

ParameterSpace mo_space()
{
    ParameterSpace space;
    space.add("a", ParamDomain::int_range(0, 15));
    space.add("b", ParamDomain::int_range(0, 15));
    return space;
}

// Convex tradeoff: cost = a + b, gain = a * b (conflict along a + b budget).
std::optional<std::vector<double>> tradeoff_eval(const Genome& g)
{
    const double a = g.gene(0);
    const double b = g.gene(1);
    return std::vector<double>{a + b, a * b};
}

TEST(Nsga2Engine, ConstructionValidation)
{
    const auto space = mo_space();
    EXPECT_THROW(
        Nsga2Engine(space, MultiObjectiveConfig{}, {}, tradeoff_eval,
                    HintSet::none(space)),
        std::invalid_argument);
    EXPECT_THROW(Nsga2Engine(space, MultiObjectiveConfig{}, {Direction::minimize},
                             MultiEvalFn{}, HintSet::none(space)),
                 std::invalid_argument);
    MultiObjectiveConfig bad;
    bad.population_size = 2;
    EXPECT_THROW(Nsga2Engine(space, bad,
                             {Direction::minimize, Direction::maximize}, tradeoff_eval,
                             HintSet::none(space)),
                 std::invalid_argument);
}

TEST(Nsga2Engine, FrontIsMutuallyNonDominated)
{
    const auto space = mo_space();
    MultiObjectiveConfig cfg;
    cfg.generations = 20;
    const Nsga2Engine engine{space, cfg, {Direction::minimize, Direction::maximize},
                             tradeoff_eval, HintSet::none(space)};
    const auto result = engine.run(3);
    ASSERT_GT(result.front.size(), 1u);
    const std::vector<Direction> dirs{Direction::minimize, Direction::maximize};
    for (const auto& a : result.front) {
        for (const auto& b : result.front) {
            const ObjectivePoint pa{0, a.values};
            const ObjectivePoint pb{0, b.values};
            EXPECT_FALSE(dominates(pa, pb, dirs) && dominates(pb, pa, dirs));
        }
    }
}

TEST(Nsga2Engine, FindsTheKnownExtremes)
{
    const auto space = mo_space();
    MultiObjectiveConfig cfg;
    cfg.generations = 30;
    const Nsga2Engine engine{space, cfg, {Direction::minimize, Direction::maximize},
                             tradeoff_eval, HintSet::none(space)};
    const auto result = engine.run(5);
    bool has_low_cost = false;
    bool has_high_gain = false;
    for (const auto& p : result.front) {
        has_low_cost |= p.values[0] <= 2.0;      // near the zero-cost corner
        has_high_gain |= p.values[1] >= 200.0;   // near the 15*15 = 225 corner
    }
    EXPECT_TRUE(has_low_cost);
    EXPECT_TRUE(has_high_gain);
}

TEST(Nsga2Engine, DeterministicPerSeed)
{
    const auto space = mo_space();
    MultiObjectiveConfig cfg;
    cfg.generations = 10;
    const Nsga2Engine engine{space, cfg, {Direction::minimize, Direction::maximize},
                             tradeoff_eval, HintSet::none(space)};
    const auto a = engine.run(8);
    const auto b = engine.run(8);
    ASSERT_EQ(a.front.size(), b.front.size());
    EXPECT_EQ(a.distinct_evals, b.distinct_evals);
}

TEST(Nsga2Engine, CountsDistinctEvaluationsOnly)
{
    const auto space = mo_space();  // 256 points total
    MultiObjectiveConfig cfg;
    cfg.generations = 40;
    const Nsga2Engine engine{space, cfg, {Direction::minimize, Direction::maximize},
                             tradeoff_eval, HintSet::none(space)};
    const auto result = engine.run(2);
    EXPECT_LE(result.distinct_evals, 256u);
}

TEST(Nsga2Engine, HandlesInfeasibleRegions)
{
    const auto space = mo_space();
    const MultiEvalFn eval =
        [](const Genome& g) -> std::optional<std::vector<double>> {
        if ((g.gene(0) + g.gene(1)) % 3 == 0) return std::nullopt;
        return std::vector<double>{static_cast<double>(g.gene(0)),
                                   static_cast<double>(g.gene(1))};
    };
    MultiObjectiveConfig cfg;
    cfg.generations = 10;
    const Nsga2Engine engine{space, cfg, {Direction::minimize, Direction::maximize},
                             eval, HintSet::none(space)};
    const auto result = engine.run(4);
    for (const auto& p : result.front)
        EXPECT_NE(static_cast<int>(p.values[0] + p.values[1]) % 3, 0);
}

TEST(Nsga2Engine, FullyInfeasibleSpaceReturnsEmptyFront)
{
    const auto space = mo_space();
    const MultiEvalFn eval =
        [](const Genome&) -> std::optional<std::vector<double>> { return std::nullopt; };
    MultiObjectiveConfig cfg;
    cfg.generations = 3;
    const Nsga2Engine engine{space, cfg, {Direction::minimize, Direction::maximize},
                             eval, HintSet::none(space)};
    EXPECT_TRUE(engine.run(1).front.empty());
}

TEST(Nsga2Engine, ArityMismatchDetected)
{
    const auto space = mo_space();
    const MultiEvalFn eval =
        [](const Genome&) -> std::optional<std::vector<double>> {
        return std::vector<double>{1.0};  // one value for two objectives
    };
    MultiObjectiveConfig cfg;
    cfg.generations = 2;
    const Nsga2Engine engine{space, cfg, {Direction::minimize, Direction::maximize},
                             eval, HintSet::none(space)};
    EXPECT_THROW(engine.run(1), std::runtime_error);
}

TEST(Nsga2Engine, HintsImproveFrontQuality)
{
    // Objectives pull parameter `a` in conflict; hints that mark both
    // parameters important should cover the front at least as well.
    const auto space = mo_space();
    HintSet hints = HintSet::none(space);
    hints.param(0).importance = 60.0;
    hints.param(1).importance = 60.0;
    hints.set_confidence(0.5);

    MultiObjectiveConfig cfg;
    cfg.generations = 15;
    const std::vector<Direction> dirs{Direction::minimize, Direction::maximize};
    const Nsga2Engine plain{space, cfg, dirs, tradeoff_eval, HintSet::none(space)};
    const Nsga2Engine guided{space, cfg, dirs, tradeoff_eval, hints};

    auto hv = [&](const MultiObjectiveResult& r) {
        std::vector<ObjectivePoint> front;
        for (const auto& p : r.front) front.push_back({0, p.values});
        return hypervolume_2d(front, dirs, ObjectivePoint{0, {31.0, 0.0}});
    };
    EXPECT_GE(hv(guided.run(6)) * 1.05, hv(plain.run(6)));
}

}  // namespace
}  // namespace nautilus
