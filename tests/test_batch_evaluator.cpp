// Concurrency contract of the parallel evaluation pipeline: thread-safe
// caching with in-flight dedup, deterministic results independent of the
// worker count, and distinct-evaluation accounting identical to serial runs
// (DESIGN.md, "Evaluation pipeline").

#include "core/batch_evaluator.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <thread>
#include <vector>

#include "core/ga.hpp"
#include "core/local_search.hpp"
#include "core/nsga2.hpp"
#include "core/random_search.hpp"

namespace nautilus {
namespace {

ParameterSpace small_space()
{
    ParameterSpace space;
    space.add("a", ParamDomain::int_range(0, 9));
    space.add("b", ParamDomain::int_range(0, 9));
    return space;
}

Evaluation sum_eval(const Genome& g)
{
    return {true, static_cast<double>(g.gene(0) + g.gene(1))};
}

// ---- CachingEvaluator thread safety ----------------------------------------

TEST(CachingEvaluatorConcurrency, ConcurrentSameGenomeChargesExactlyOnce)
{
    std::atomic<int> calls{0};
    CachingEvaluator ev{[&](const Genome& g) {
        ++calls;
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        return Evaluation{true, static_cast<double>(g.gene(0))};
    }};

    const Genome g{{5, 5}};
    constexpr int k_threads = 8;
    std::vector<std::thread> threads;
    std::vector<Evaluation> results(k_threads);
    for (int t = 0; t < k_threads; ++t)
        threads.emplace_back([&, t] { results[t] = ev.evaluate(g); });
    for (auto& t : threads) t.join();

    EXPECT_EQ(calls.load(), 1);
    EXPECT_EQ(ev.distinct_evaluations(), 1u);
    EXPECT_EQ(ev.total_calls(), static_cast<std::size_t>(k_threads));
    for (const auto& r : results) EXPECT_DOUBLE_EQ(r.value, 5.0);
}

TEST(CachingEvaluatorConcurrency, ManyThreadsManyGenomesAccountingExact)
{
    std::atomic<int> calls{0};
    CachingEvaluator ev{[&](const Genome& g) {
        ++calls;
        return Evaluation{true, static_cast<double>(g.gene(0) * 10 + g.gene(1))};
    }};

    const auto space = small_space();
    constexpr int k_threads = 6;
    constexpr std::size_t k_points = 40;  // every thread hits the same 40 points
    std::vector<std::thread> threads;
    for (int t = 0; t < k_threads; ++t) {
        threads.emplace_back([&] {
            for (std::size_t rank = 0; rank < k_points; ++rank)
                ev.evaluate(Genome::from_rank(space, rank));
        });
    }
    for (auto& t : threads) t.join();

    EXPECT_EQ(calls.load(), static_cast<int>(k_points));
    EXPECT_EQ(ev.distinct_evaluations(), k_points);
    EXPECT_EQ(ev.total_calls(), k_points * k_threads);
}

TEST(CachingEvaluatorConcurrency, ThrowingEvalAllowsRetryAndChargesOnce)
{
    std::atomic<int> calls{0};
    CachingEvaluator ev{[&](const Genome&) -> Evaluation {
        if (++calls == 1) throw std::runtime_error("transient synthesis failure");
        return Evaluation{true, 7.0};
    }};
    const Genome g{{1, 2}};
    EXPECT_THROW(ev.evaluate(g), std::runtime_error);
    EXPECT_EQ(ev.distinct_evaluations(), 0u);  // failed job is not charged
    EXPECT_DOUBLE_EQ(ev.evaluate(g).value, 7.0);
    EXPECT_EQ(ev.distinct_evaluations(), 1u);
}

// ---- BatchEvaluator ---------------------------------------------------------

TEST(BatchEvaluator, DuplicatesWithinBatchComputedOnce)
{
    std::atomic<int> calls{0};
    CachingEvaluator ev{[&](const Genome& g) {
        ++calls;
        return Evaluation{true, static_cast<double>(g.gene(0))};
    }};
    BatchEvaluator batch{4};

    const std::vector<Genome> genomes(16, Genome{{3, 4}});
    const auto out = batch.evaluate(ev, genomes);
    EXPECT_EQ(calls.load(), 1);
    EXPECT_EQ(ev.distinct_evaluations(), 1u);
    EXPECT_EQ(ev.total_calls(), 16u);
    for (const auto& e : out) EXPECT_DOUBLE_EQ(e.value, 3.0);
}

TEST(BatchEvaluator, ActuallyRunsConcurrently)
{
    std::atomic<int> inside{0};
    std::atomic<int> peak{0};
    CachingEvaluator ev{[&](const Genome& g) {
        const int now = ++inside;
        int prev = peak.load();
        while (now > prev && !peak.compare_exchange_weak(prev, now)) {
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        --inside;
        return Evaluation{true, static_cast<double>(g.gene(0))};
    }};
    BatchEvaluator batch{4};

    const auto space = small_space();
    std::vector<Genome> genomes;
    for (std::size_t rank = 0; rank < 8; ++rank)
        genomes.push_back(Genome::from_rank(space, rank));
    batch.evaluate(ev, genomes);
    EXPECT_GT(peak.load(), 1);  // at least two evaluations overlapped
    EXPECT_GT(batch.eval_seconds(), 0.0);
}

TEST(BatchEvaluator, ObserverSeesFreshGenomesOnly)
{
    CachingEvaluator ev{sum_eval};
    BatchEvaluator batch{4};
    std::vector<std::size_t> fresh_counts;
    batch.set_observer([&](std::span<const Genome> fresh, double) {
        fresh_counts.push_back(fresh.size());
        // Deterministic presentation order regardless of thread schedule.
        for (std::size_t i = 1; i < fresh.size(); ++i)
            EXPECT_LT(fresh[i - 1].key(), fresh[i].key());
    });

    const Genome a{{1, 1}};
    const Genome b{{2, 2}};
    const std::vector<Genome> first{a, b, a, b, a};
    batch.evaluate(ev, first);
    const std::vector<Genome> second{a, b};  // fully cached: no new jobs
    batch.evaluate(ev, second);

    ASSERT_EQ(fresh_counts.size(), 2u);
    EXPECT_EQ(fresh_counts[0], 2u);
    EXPECT_EQ(fresh_counts[1], 0u);
}

TEST(BatchEvaluator, PropagatesEvalExceptions)
{
    CachingEvaluator ev{[](const Genome& g) -> Evaluation {
        if (g.gene(0) == 3) throw std::runtime_error("bad design point");
        return Evaluation{true, 1.0};
    }};
    BatchEvaluator batch{4};
    const auto space = small_space();
    std::vector<Genome> genomes;
    for (std::size_t rank = 0; rank < 60; ++rank)
        genomes.push_back(Genome::from_rank(space, rank));
    std::vector<Evaluation> out(genomes.size());
    EXPECT_THROW(batch.evaluate(ev, genomes, std::span<Evaluation>{out}),
                 std::runtime_error);
}

TEST(BatchEvaluator, SerialPathFinishesBatchBeforeRethrowingLikeThePool)
{
    // Regression: the serial path used to abort on the first throwing item,
    // leaving fewer cached entries than a pooled run of the same batch and
    // breaking worker-count independence under failing evaluations.
    const auto make_eval = [] {
        return CachingEvaluator{[](const Genome& g) -> Evaluation {
            if (g.gene(0) == 3) throw std::runtime_error("bad design point");
            return Evaluation{true, static_cast<double>(g.gene(0))};
        }};
    };
    const auto space = small_space();
    std::vector<Genome> genomes;
    for (std::size_t rank = 0; rank < 60; ++rank)
        genomes.push_back(Genome::from_rank(space, rank));

    CachingEvaluator serial_ev = make_eval();
    BatchEvaluator serial{1};
    EXPECT_THROW(serial.evaluate(serial_ev, genomes), std::runtime_error);

    CachingEvaluator pooled_ev = make_eval();
    BatchEvaluator pooled{4};
    EXPECT_THROW(pooled.evaluate(pooled_ev, genomes), std::runtime_error);

    // Same cache state either way: every non-throwing item was still
    // evaluated and charged.
    EXPECT_EQ(serial_ev.distinct_evaluations(), pooled_ev.distinct_evaluations());
    EXPECT_GT(serial_ev.distinct_evaluations(), 1u);
    for (const auto& g : genomes) {
        if (g.gene(0) == 3) continue;
        // A cached point re-evaluates without charging a new distinct job.
        const std::size_t before = serial_ev.distinct_evaluations();
        EXPECT_DOUBLE_EQ(serial_ev.evaluate(g).value, static_cast<double>(g.gene(0)));
        EXPECT_EQ(serial_ev.distinct_evaluations(), before);
    }
}

// ---- engine determinism: 1 worker vs N workers ------------------------------

GaConfig parallel_ga_config(std::size_t workers)
{
    GaConfig cfg;
    cfg.population_size = 12;
    cfg.generations = 25;
    cfg.seed = 99;
    cfg.eval_workers = workers;
    return cfg;
}

TEST(ParallelDeterminism, GaIdenticalForOneVsManyWorkers)
{
    const auto space = small_space();
    const HintSet hints = HintSet::none(space);
    const GaEngine serial{space, parallel_ga_config(1), Direction::maximize, sum_eval,
                          hints};
    const GaEngine parallel{space, parallel_ga_config(4), Direction::maximize, sum_eval,
                            hints};
    const RunResult a = serial.run();
    const RunResult b = parallel.run();

    EXPECT_EQ(a.distinct_evals, b.distinct_evals);
    EXPECT_EQ(a.best_genome, b.best_genome);
    EXPECT_DOUBLE_EQ(a.best_eval.value, b.best_eval.value);
    ASSERT_EQ(a.history.size(), b.history.size());
    for (std::size_t i = 0; i < a.history.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.history[i].best, b.history[i].best);
        EXPECT_DOUBLE_EQ(a.history[i].mean, b.history[i].mean);
        EXPECT_EQ(a.history[i].distinct_evals, b.history[i].distinct_evals);
    }
    ASSERT_EQ(a.curve.size(), b.curve.size());
    for (std::size_t i = 0; i < a.curve.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.curve.points()[i].evals, b.curve.points()[i].evals);
        EXPECT_DOUBLE_EQ(a.curve.points()[i].best, b.curve.points()[i].best);
    }
    EXPECT_EQ(b.eval_workers, 4u);
}

TEST(ParallelDeterminism, GaUnchangedFromSerialBaselineSemantics)
{
    // The batch path must not change what a plain serial GA computes: a run
    // with the default worker count (1) equals a run with the pool engaged,
    // even when evaluation cost varies per point.
    const auto space = small_space();
    const EvalFn jittery = [](const Genome& g) {
        std::this_thread::sleep_for(std::chrono::microseconds(50 * (g.gene(0) + 1)));
        return Evaluation{g.gene(1) != 0, static_cast<double>(g.gene(0) * g.gene(1))};
    };
    GaConfig cfg = parallel_ga_config(1);
    cfg.generations = 10;
    const GaEngine serial{space, cfg, Direction::maximize, jittery, HintSet::none(space)};
    cfg.eval_workers = 6;
    const GaEngine parallel{space, cfg, Direction::maximize, jittery,
                            HintSet::none(space)};
    const RunResult a = serial.run();
    const RunResult b = parallel.run();
    EXPECT_EQ(a.distinct_evals, b.distinct_evals);
    EXPECT_DOUBLE_EQ(a.best_eval.value, b.best_eval.value);
    EXPECT_EQ(a.best_genome, b.best_genome);
}

TEST(ParallelDeterminism, RandomSearchIdenticalForOneVsManyWorkers)
{
    const auto space = small_space();
    RandomSearchConfig cfg;
    cfg.max_distinct_evals = 60;
    const RandomSearch serial{space, cfg, Direction::maximize, sum_eval};
    cfg.eval_workers = 4;
    const RandomSearch parallel{space, cfg, Direction::maximize, sum_eval};
    const Curve a = serial.run(17);
    const Curve b = parallel.run(17);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.points()[i].evals, b.points()[i].evals);
        EXPECT_DOUBLE_EQ(a.points()[i].best, b.points()[i].best);
    }
}

TEST(ParallelDeterminism, Nsga2IdenticalForOneVsManyWorkers)
{
    const auto space = small_space();
    const MultiEvalFn eval = [](const Genome& g) -> std::optional<std::vector<double>> {
        if ((g.gene(0) + g.gene(1)) % 5 == 0) return std::nullopt;  // sparse space
        return std::vector<double>{static_cast<double>(g.gene(0) + g.gene(1)),
                                   static_cast<double>(g.gene(0) * g.gene(1))};
    };
    const std::vector<Direction> dirs{Direction::minimize, Direction::maximize};
    MultiObjectiveConfig cfg;
    cfg.generations = 12;
    const Nsga2Engine serial{space, cfg, dirs, eval, HintSet::none(space)};
    cfg.eval_workers = 4;
    const Nsga2Engine parallel{space, cfg, dirs, eval, HintSet::none(space)};
    const auto a = serial.run(21);
    const auto b = parallel.run(21);
    EXPECT_EQ(a.distinct_evals, b.distinct_evals);
    ASSERT_EQ(a.front.size(), b.front.size());
    for (std::size_t i = 0; i < a.front.size(); ++i) {
        EXPECT_EQ(a.front[i].genome, b.front[i].genome);
        EXPECT_EQ(a.front[i].values, b.front[i].values);
    }
}

TEST(ParallelDeterminism, LocalSearchIdenticalForOneVsManyWorkers)
{
    const auto space = small_space();
    AnnealingConfig sa_cfg;
    sa_cfg.max_distinct_evals = 80;
    const SimulatedAnnealing sa_serial{space, sa_cfg, Direction::maximize, sum_eval,
                                       HintSet::none(space)};
    sa_cfg.eval_workers = 4;
    const SimulatedAnnealing sa_parallel{space, sa_cfg, Direction::maximize, sum_eval,
                                         HintSet::none(space)};
    const Curve sa = sa_serial.run(31);
    const Curve sp = sa_parallel.run(31);
    ASSERT_EQ(sa.size(), sp.size());
    for (std::size_t i = 0; i < sa.size(); ++i) {
        EXPECT_DOUBLE_EQ(sa.points()[i].evals, sp.points()[i].evals);
        EXPECT_DOUBLE_EQ(sa.points()[i].best, sp.points()[i].best);
    }

    HillClimbConfig hc_cfg;
    hc_cfg.max_distinct_evals = 80;
    const HillClimber hc_serial{space, hc_cfg, Direction::maximize, sum_eval,
                                HintSet::none(space)};
    hc_cfg.eval_workers = 4;
    const HillClimber hc_parallel{space, hc_cfg, Direction::maximize, sum_eval,
                                  HintSet::none(space)};
    const Curve ha = hc_serial.run(31);
    const Curve hb = hc_parallel.run(31);
    ASSERT_EQ(ha.size(), hb.size());
    for (std::size_t i = 0; i < ha.size(); ++i)
        EXPECT_DOUBLE_EQ(ha.points()[i].best, hb.points()[i].best);
}

TEST(ParallelDeterminism, WorkerCountValidation)
{
    const auto space = small_space();
    GaConfig cfg;
    cfg.eval_workers = 0;
    EXPECT_THROW(
        GaEngine(space, cfg, Direction::maximize, sum_eval, HintSet::none(space)),
        std::invalid_argument);
}

}  // namespace
}  // namespace nautilus
